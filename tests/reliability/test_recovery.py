"""Checkpoint/replay recovery: the executor's escalation ladder end to end."""

import numpy as np
import pytest

from repro.core.config import ChipConfig
from repro.fhe.ckks import CkksContext, CkksParams
from repro.reliability import guards
from repro.reliability.errors import (
    FaultDetectedError,
    ParameterError,
    UnrecoverableFaultError,
)
from repro.reliability.recovery import (
    RecoveringExecutor,
    RecoveryPolicy,
    RingBufferStore,
    restore_checkpoint,
    run_recovery_campaign,
    snapshot_ciphertext,
    take_checkpoint,
)


@pytest.fixture(scope="module")
def rctx():
    """Small sealed-ciphertext context shared by the executor tests."""
    params = CkksParams(degree=128, max_level=4, digits=1,
                        secret_hamming=8, seed=11)
    ctx = CkksContext(params, policy=guards.ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    rot = ctx.rotation_hint(sk, 1)
    return ctx, sk, rot


_SNAP_CACHE: dict[int, dict] = {}


def _state(ctx, sk, seed=0):
    """Bit-identical starting state on every call.

    Encryption draws from the context's rng, so two ``encrypt_values``
    calls never produce the same ciphertext; snapshot one encryption and
    restore it for every run that must be comparable bit-for-bit.
    """
    snaps = _SNAP_CACHE.get(seed)
    if snaps is None:
        rng = np.random.default_rng(seed)
        snaps = _SNAP_CACHE[seed] = {
            name: ctx.snapshot(ctx.encrypt_values(
                sk, 0.5 * rng.standard_normal(ctx.params.slots)))
            for name in ("acc", "base")
        }
    return {name: ctx.restore(snap) for name, snap in snaps.items()}


def _steps(ctx, rot, n=6):
    def rot_step(c, s):
        s["acc"] = c.rotate(s["acc"], 1, rot)

    def add_step(c, s):
        s["acc"] = c.add(s["acc"], s["base"])

    return [(f"s{i}", rot_step if i % 2 == 0 else add_step)
            for i in range(n)]


def _reference(ctx, sk, rot, n=6, seed=0):
    state = _state(ctx, sk, seed)
    for _, fn in _steps(ctx, rot, n):
        fn(ctx, state)
    return state["acc"]


def test_clean_run_is_inert(rctx):
    ctx, sk, rot = rctx
    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2))
    state, stats = exe.run(_steps(ctx, rot), _state(ctx, sk))
    ref = _reference(ctx, sk, rot)
    assert stats.detections == 0
    assert stats.rollbacks == 0
    assert stats.replayed_ops == 0
    assert stats.checkpoints_taken > 0
    assert stats.recovered
    assert np.array_equal(state["acc"].c0.data, ref.c0.data)
    assert np.array_equal(state["acc"].c1.data, ref.c1.data)


def test_transient_fault_rolls_back_and_replays(rctx):
    ctx, sk, rot = rctx
    steps = _steps(ctx, rot)
    fired = []

    def corrupt_once(c, s):
        if not fired:
            fired.append(True)
            s["acc"].c0.data[0, 0] ^= np.uint64(1 << 7)
        steps[3][1](c, s)

    trial = list(steps)
    trial[3] = ("s3", corrupt_once)
    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2))
    state, stats = exe.run(trial, _state(ctx, sk))
    ref = _reference(ctx, sk, rot)
    assert stats.detections >= 1
    assert stats.rollbacks >= 1
    assert stats.replayed_ops >= 1
    assert stats.recovered
    # Replay is deterministic: the recovered output is bit-identical to
    # the fault-free run's.
    assert np.array_equal(state["acc"].c0.data, ref.c0.data)
    assert np.array_equal(state["acc"].c1.data, ref.c1.data)


def test_fault_on_last_step_caught_at_output_commit(rctx):
    ctx, sk, rot = rctx
    steps = _steps(ctx, rot)
    last = len(steps) - 1
    fired = []

    def corrupt_after(c, s):
        steps[last][1](c, s)
        if not fired:
            fired.append(True)
            s["acc"].c0.data[0, 0] ^= np.uint64(1 << 5)

    trial = list(steps)
    trial[last] = (f"s{last}", corrupt_after)
    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2))
    state, stats = exe.run(trial, _state(ctx, sk))
    ref = _reference(ctx, sk, rot)
    assert stats.detections >= 1  # the output-commit verify caught it
    assert np.array_equal(state["acc"].c0.data, ref.c0.data)


def test_persistent_fault_escalates_to_unrecoverable(rctx):
    ctx, sk, rot = rctx

    def always_faults(c, s):
        raise FaultDetectedError("stuck-at fault", site="test")

    steps = _steps(ctx, rot, 4)
    trial = list(steps)
    trial[2] = ("s2", always_faults)
    policy = RecoveryPolicy(checkpoint_every=2, max_retries=2, max_restarts=1)
    exe = RecoveringExecutor(ctx, policy)
    with pytest.raises(UnrecoverableFaultError) as exc:
        exe.run(trial, _state(ctx, sk))
    # retries twice, restarts once, retries twice again, then gives up.
    assert exc.value.context["detections"] == 6
    assert exc.value.context["restarts"] == 1
    # The subclass stays catchable as its parent.
    assert isinstance(exc.value, FaultDetectedError)


def test_corrupt_checkpoint_detected_and_walked_back(rctx):
    ctx, sk, rot = rctx
    steps = _steps(ctx, rot)
    store = RingBufferStore(4)
    fired = []

    def corrupt_then(c, s):
        if not fired:
            fired.append(True)
            # Damage the newest stored checkpoint at rest, then the live
            # state: recovery must reject the poisoned rollback target
            # and walk back to an older one.
            newest = store.latest()
            newest.entries["acc"].data0[0, 0] ^= np.uint64(1 << 3)
            s["acc"].c0.data[0, 0] ^= np.uint64(1 << 9)
        steps[4][1](c, s)

    trial = list(steps)
    trial[4] = ("s4", corrupt_then)
    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2),
                             store=store)
    state, stats = exe.run(trial, _state(ctx, sk))
    ref = _reference(ctx, sk, rot)
    assert stats.detections >= 1
    assert stats.recovered
    assert np.array_equal(state["acc"].c0.data, ref.c0.data)


def test_checkpoint_refuses_corrupted_entry(rctx):
    ctx, sk, rot = rctx
    state = _state(ctx, sk)
    state["acc"].c0.data[0, 0] ^= np.uint64(1 << 4)
    with pytest.raises(FaultDetectedError):
        take_checkpoint(ctx, state, 0)


def test_restore_detects_at_rest_corruption(rctx):
    ctx, sk, _ = rctx
    state = _state(ctx, sk)
    ckpt = take_checkpoint(ctx, state, 0)
    ckpt.entries["base"].data1[0, 0] ^= np.uint64(1 << 2)
    with pytest.raises(FaultDetectedError, match="at rest"):
        restore_checkpoint(ckpt)


def test_snapshot_restore_roundtrip_bit_identical(rctx):
    ctx, sk, _ = rctx
    ct = _state(ctx, sk)["acc"]
    snap = snapshot_ciphertext(ct)
    back = snap.restore()
    assert np.array_equal(back.c0.data, ct.c0.data)
    assert np.array_equal(back.c1.data, ct.c1.data)
    assert back.scale == ct.scale
    assert back.basis.moduli == ct.basis.moduli
    assert back.c0.data is not ct.c0.data  # a genuine deep copy


def test_executor_prices_checkpoints_and_replays(rctx):
    ctx, sk, rot = rctx
    steps = _steps(ctx, rot)
    fired = []

    def corrupt_once(c, s):
        if not fired:
            fired.append(True)
            s["acc"].c0.data[0, 0] ^= np.uint64(1 << 6)
        steps[3][1](c, s)

    trial = list(steps)
    trial[3] = ("s3", corrupt_once)
    cfg = ChipConfig()
    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2),
                             cfg=cfg, step_cycles=[5.0] * len(steps))
    _, stats = exe.run(trial, _state(ctx, sk))
    assert stats.checkpoint_cycles > 0
    assert stats.replay_cycles == 5.0 * stats.replayed_ops
    assert stats.overhead_cycles == (stats.checkpoint_cycles
                                     + stats.replay_cycles)


def test_policy_validation():
    with pytest.raises(ParameterError):
        RecoveryPolicy(checkpoint_every=0)
    with pytest.raises(ParameterError):
        RecoveryPolicy(max_retries=-1)
    assert RecoveryPolicy(backoff_base_s=0.5).backoff_seconds(2) == 1.0


def test_ring_buffer_store_bounds_and_drops():
    store = RingBufferStore(2)
    from repro.reliability.recovery import Checkpoint

    for step in (1, 2, 3):
        store.save(Checkpoint(step=step, entries={}))
    assert len(store) == 2
    assert store.latest().step == 3
    assert store.drop_latest().step == 3
    assert store.latest().step == 2
    with pytest.raises(ParameterError):
        RingBufferStore(0)


# -- campaign smoke test -----------------------------------------------------


@pytest.fixture(scope="module")
def recovery_campaign():
    return run_recovery_campaign(seed=2022, faults=16, degree=128,
                                 max_level=4, clean_runs=2)


def test_recovery_campaign_recovers_all_detected(recovery_campaign):
    r = recovery_campaign
    assert r.false_positives == 0
    assert r.injected > 0
    assert r.detected == r.injected          # every injection detected
    assert r.recovered == r.detected         # every detection recovered
    assert r.aborted == 0 and r.undetected == 0
    assert r.recovery_rate == 1.0


def test_recovery_campaign_accounts_overhead(recovery_campaign):
    r = recovery_campaign
    assert r.checkpoint_cycles > 0
    assert r.replay_cycles > 0
    assert r.base_cycles_per_run > 0
    report = r.report()
    assert "recovered" in report and "cycles" in report


def test_recovery_campaign_reproducible(recovery_campaign):
    again = run_recovery_campaign(seed=2022, faults=16, degree=128,
                                  max_level=4, clean_runs=2)
    for site, stats in recovery_campaign.sites.items():
        assert again.sites[site].injected == stats.injected
        assert again.sites[site].recovered == stats.recovered
        assert again.sites[site].replayed_ops == stats.replayed_ops
