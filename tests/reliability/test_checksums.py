"""Per-limb modular checksums: exactness, detection, sealed ciphertexts."""

import numpy as np
import pytest

from repro.reliability.checksums import (
    limb_checksums,
    mismatched_limbs,
    verify_limbs,
)
from repro.reliability.errors import FaultDetectedError

MODULI = (268369921, 268361729)  # two 28-bit NTT-friendly primes


def _residues(seed=0, n=64):
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.integers(0, q, size=n, dtype=np.uint64) for q in MODULI
    ])


def test_checksums_match_bigint_reference():
    data = _residues()
    sums = limb_checksums(data, MODULI)
    for i, q in enumerate(MODULI):
        assert int(sums[i]) == sum(int(v) for v in data[i]) % q


def test_clean_data_verifies_silently():
    data = _residues()
    reference = limb_checksums(data, MODULI)
    verify_limbs(data, MODULI, reference)  # no raise
    assert mismatched_limbs(data, MODULI, reference) == []


@pytest.mark.parametrize("bit", [0, 7, 13, 27])
def test_single_bit_flip_always_detected(bit):
    # Any flip below the modulus width shifts the row sum by +-2^bit,
    # nonzero mod a 28-bit prime: deterministic detection, no escapes.
    data = _residues(seed=bit)
    reference = limb_checksums(data, MODULI)
    data[1, 17] ^= np.uint64(1 << bit)
    assert mismatched_limbs(data, MODULI, reference) == [1]
    with pytest.raises(FaultDetectedError, match="limb checksum mismatch"):
        verify_limbs(data, MODULI, reference, what="test data")


def test_sealed_ciphertext_roundtrip():
    """CkksContext.seal/verify_integrity on a real ciphertext."""
    from repro.fhe.ckks import CkksContext, CkksParams
    from repro.reliability.guards import ReliabilityPolicy

    ctx = CkksContext(CkksParams(degree=64, max_level=3, seed=2),
                      policy=ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    ct = ctx.encrypt_values(sk, [0.25, -0.5])  # encrypt seals automatically
    assert ct.integrity is not None
    ctx.verify_integrity(ct)  # clean: silent

    ct.c0.data[0, 5] ^= np.uint64(1 << 9)
    with pytest.raises(FaultDetectedError):
        ctx.verify_integrity(ct)
