"""Graceful degradation: strict mode raises, degrade mode repairs.

These tests build their own contexts (the shared fixtures are strict and
session-scoped; degradation mutates policy-dependent behavior).
"""

import numpy as np
import pytest

from repro.fhe.bootstrap import BootstrapConfig, Bootstrapper
from repro.fhe.ckks import CkksContext, CkksParams
from repro.obs import collector as obs
from repro.reliability.errors import NoiseBudgetExhaustedError
from repro.reliability.guards import ReliabilityPolicy


def test_strict_mode_raises_on_exhausted_chain():
    ctx = CkksContext(CkksParams(degree=64, max_level=3, seed=1))
    sk = ctx.keygen()
    ct = ctx.encrypt_values(sk, [0.1], level=1)
    with pytest.raises(NoiseBudgetExhaustedError, match="bootstrap"):
        ctx.pmult(ct, [2.0])


def test_degrade_without_bootstrapper_still_raises():
    ctx = CkksContext(CkksParams(degree=64, max_level=3, seed=1),
                      policy=ReliabilityPolicy(mode="degrade"))
    sk = ctx.keygen()
    ct = ctx.encrypt_values(sk, [0.1], level=1)
    with pytest.raises(NoiseBudgetExhaustedError, match="bootstrapper"):
        ctx.pmult(ct, [2.0])


def test_degrade_auto_rescale_normalizes_deferred_scales():
    # Two un-rescaled products carry scale ~q^2; multiplying them again
    # would overflow the live modulus.  Degrade mode inserts the deferred
    # rescale automatically and counts it.
    params = CkksParams(degree=64, max_level=6, seed=4)
    ctx = CkksContext(params, policy=ReliabilityPolicy(mode="degrade"))
    sk = ctx.keygen()
    relin = ctx.relin_hint(sk)
    z = np.full(params.slots, 0.5)
    ct = ctx.encrypt_values(sk, z)

    squared = ctx.multiply(ct, ct, relin)  # scale ~q^2, no rescale
    with obs.collecting() as c:
        fourth = ctx.multiply(squared, squared, relin)
    assert c.counters.get("reliability.auto_rescale", 0) > 0
    got = ctx.decrypt(sk, fourth)
    assert np.allclose(got.real, 0.5**4, atol=1e-2)


def test_degrade_auto_bootstrap_restores_levels():
    # The acceptance scenario in miniature: an op needs a level the
    # ciphertext no longer has; degrade mode bootstraps instead of dying,
    # and both the counter and the span make the repair observable.
    params = CkksParams(degree=256, max_level=15, digits=1,
                        secret_hamming=8, seed=5)
    ctx = CkksContext(params, policy=ReliabilityPolicy(mode="degrade"))
    sk = ctx.keygen()
    ctx.set_bootstrapper(
        Bootstrapper(ctx, sk, BootstrapConfig(taylor_degree=15)))

    ref = np.full(params.slots, 0.02)
    ct = ctx.encrypt_values(sk, ref, level=1)  # chain already depleted
    with obs.collecting() as c:
        out = ctx.pmult(ct, np.full(params.slots, 2.0))

    assert c.counters.get("reliability.auto_bootstrap") == 1
    assert any(s.name == "reliability.auto_bootstrap" for s in c.spans)
    assert out.level > 1
    got = ctx.decrypt(sk, out)
    assert np.allclose(got.real, 0.04, atol=1e-2)
