"""Property test: checkpoint save -> load -> resume is exact.

Across random seeds and levels, resuming a program from a checkpoint
(through either store) must yield ciphertexts bit-identical to the
uninterrupted run, and checkpointed simulation must price the same
program to identical cycle counts every time.  This is the determinism
contract :class:`repro.reliability.recovery.RecoveringExecutor` relies
on when it promises replayed results match fault-free execution.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.fhe.ckks import CkksContext, CkksParams
from repro.reliability import guards
from repro.reliability.recovery import (
    DiskStore,
    restore_checkpoint,
    take_checkpoint,
)

_CTX_CACHE: dict[int, tuple] = {}


def _context(max_level: int):
    """One sealed context per level; hypothesis reruns share them."""
    cached = _CTX_CACHE.get(max_level)
    if cached is None:
        params = CkksParams(degree=128, max_level=max_level, digits=1,
                            secret_hamming=8, seed=100 + max_level)
        ctx = CkksContext(params,
                          policy=guards.ReliabilityPolicy(checksums=True))
        sk = ctx.keygen()
        rot = ctx.rotation_hint(sk, 1)
        cached = _CTX_CACHE[max_level] = (ctx, sk, rot)
    return cached


def _run_steps(ctx, rot, state, start, stop):
    for i in range(start, stop):
        if i % 2 == 0:
            state["acc"] = ctx.rotate(state["acc"], 1, rot)
        else:
            state["acc"] = ctx.add(state["acc"], state["base"])
    return state


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       max_level=st.integers(min_value=2, max_value=4),
       split=st.integers(min_value=1, max_value=5))
def test_checkpoint_save_load_resume_is_bit_exact(seed, max_level, split):
    ctx, sk, rot = _context(max_level)
    rng = np.random.default_rng(seed)
    values = 0.5 * rng.standard_normal(ctx.params.slots)
    base_vals = 0.5 * rng.standard_normal(ctx.params.slots)
    total = 6

    def fresh_state():
        # Encryption draws from the context rng, so both runs must start
        # from byte-identical ciphertexts: snapshot one encryption.
        return {"acc": ctx.restore(start_acc), "base": ctx.restore(start_base)}

    start_acc = ctx.snapshot(ctx.encrypt_values(sk, values))
    start_base = ctx.snapshot(ctx.encrypt_values(sk, base_vals))

    # Uninterrupted reference run.
    ref = _run_steps(ctx, rot, fresh_state(), 0, total)["acc"]

    # Interrupted run: execute to `split`, checkpoint to disk, reload in
    # a fresh store instance (as a restarted process would), resume.
    state = _run_steps(ctx, rot, fresh_state(), 0, split)
    with tempfile.TemporaryDirectory() as tmp:
        DiskStore(tmp).save(take_checkpoint(ctx, state, split))
        loaded = DiskStore(tmp).load(split)
    assert loaded.step == split
    resumed = _run_steps(ctx, rot, restore_checkpoint(loaded),
                         loaded.step, total)["acc"]

    assert np.array_equal(resumed.c0.data, ref.c0.data)
    assert np.array_equal(resumed.c1.data, ref.c1.data)
    assert resumed.scale == ref.scale
    assert resumed.basis.moduli == ref.basis.moduli


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       level=st.integers(min_value=2, max_value=6),
       every=st.integers(min_value=1, max_value=4))
def test_checkpointed_simulation_cycles_deterministic(seed, level, every):
    rng = np.random.default_rng(seed)
    ops = [ir.HomOp(kind=ir.INPUT, level=level, result="a"),
           ir.HomOp(kind=ir.INPUT, level=level, result="b")]
    prev = "a"
    for i in range(int(rng.integers(3, 9))):
        kind = ir.ADD if rng.random() < 0.5 else ir.ROTATE
        op = ir.HomOp(kind=kind, level=level, result=f"t{i}",
                      operands=(prev, "b") if kind == ir.ADD else (prev,),
                      hint_id="h" if kind == ir.ROTATE else None)
        ops.append(op)
        prev = f"t{i}"
    ops.append(ir.HomOp(kind=ir.OUTPUT, level=level, result="out",
                        operands=(prev,)))
    prog = ir.Program(name="ckpt-prop", degree=4096, max_level=level,
                      ops=ops)
    cfg = ChipConfig()

    first = simulate(prog, cfg, checkpoint_every=every)
    second = simulate(prog, cfg, checkpoint_every=every)
    assert first.cycles == second.cycles
    assert first.traffic_words == second.traffic_words
    # Checkpointing only ever adds memory traffic, never removes cycles.
    plain = simulate(prog, cfg)
    assert first.cycles >= plain.cycles
    assert "ckpt" in first.traffic_words and "ckpt" not in plain.traffic_words


def test_disk_store_torn_write_degrades_to_stale_checkpoint():
    """Crash-mid-checkpoint regression: a payload without its manifest
    (the write order guarantees this is the only torn shape) is counted
    stale and recovery falls back to the newest *complete* checkpoint."""
    from repro.obs import collector as obs

    ctx, sk, rot = _context(3)
    rng = np.random.default_rng(7)
    state = {"acc": ctx.encrypt_values(
        sk, 0.5 * rng.standard_normal(ctx.params.slots))}
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskStore(tmp)
        store.save(take_checkpoint(ctx, state, 1))
        store.save(take_checkpoint(ctx, state, 2))
        # No temporary files survive a completed save.
        leftovers = [p.name for p in Path(tmp).iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
        assert store.steps() == [1, 2]

        # Simulate the crash window: payload committed, manifest not.
        store._path(2).with_suffix(".json").unlink()
        with obs.collecting() as c:
            assert store.steps() == [1]
            fallback = store.latest()
        assert c.counters["reliability.recovery.stale_checkpoints"] >= 1
        assert fallback is not None and fallback.step == 1
        # The stale payload is kept for post-mortems, never loaded.
        assert store._path(2).exists()

        # The torn payload half is also tolerated: manifest alone next.
        store._path(2).unlink()
        store.save(take_checkpoint(ctx, state, 2))
        assert store.steps() == [1, 2]
        restored = restore_checkpoint(store.load(2))
        assert np.array_equal(restored["acc"].c0.data,
                              state["acc"].c0.data)
