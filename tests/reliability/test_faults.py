"""Deterministic fault injection: the injector and the campaign harness."""

import numpy as np
import pytest

from repro.reliability.faults import (
    HBM,
    LIMB,
    NTT,
    RF,
    SITES,
    FaultInjector,
    run_campaign,
)


def test_injector_is_deterministic():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 1 << 28, size=(2, 32), dtype=np.uint64)

    outs = []
    for _ in range(2):
        work = data.copy()
        injector = FaultInjector(seed=42)
        injector.arm(LIMB)
        assert injector.maybe_corrupt(LIMB, work)
        outs.append(work)
    assert np.array_equal(outs[0], outs[1])
    assert not np.array_equal(outs[0], data)


def test_armed_fault_fires_exactly_once():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=1)
    injector.arm(NTT)
    assert injector.maybe_corrupt(NTT, data)
    assert not injector.maybe_corrupt(NTT, data)  # disarmed after firing


def test_unarmed_sites_stay_clean():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=1)
    injector.arm(LIMB)
    assert not injector.maybe_corrupt(HBM, data)
    assert np.count_nonzero(data) == 0


def test_corruption_flips_bits_below_modulus_width():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=3)
    injector.arm(LIMB)
    injector.maybe_corrupt(LIMB, data)
    changed = data[data != 0]
    assert len(changed) == 1
    assert int(changed[0]) < 1 << 28  # single flip below bit 28


# -- campaign smoke test ----------------------------------------------------
#
# The full acceptance campaign (1000+ faults) runs in CI via
# `python -m repro.reliability`; here a small seeded campaign checks the
# harness end to end without dominating the suite's runtime.

@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=2022, faults=80, degree=128, max_level=5,
                        pool_size=4, clean_ops=16)


def test_campaign_covers_all_sites(campaign):
    assert set(campaign.sites) == set(SITES)
    for site in SITES:
        assert campaign.sites[site].injected > 0, site


def test_campaign_zero_false_positives(campaign):
    assert campaign.false_positives == 0


def test_campaign_deterministic_detection_rates(campaign):
    # Every detector is now exact: operand-at-rest and hint-transfer
    # checksums were always so; the end-of-op transform checksum catches
    # any single corrupted NTT output word deterministically, and the
    # keyswitch-boundary eviction sweep covers every RF resident (the
    # PR 2 spot checks left both below 100%).
    assert campaign.detection_rate(LIMB) == 1.0
    assert campaign.detection_rate(HBM) == 1.0
    assert campaign.detection_rate(NTT) == 1.0
    assert campaign.detection_rate(RF) == 1.0


def test_campaign_reproducible(campaign):
    again = run_campaign(seed=2022, faults=80, degree=128, max_level=5,
                         pool_size=4, clean_ops=16)
    for site in SITES:
        assert again.sites[site].injected == campaign.sites[site].injected
        assert again.sites[site].detected == campaign.sites[site].detected
