"""Deterministic fault injection: the injector and the campaign harness."""

import numpy as np
import pytest

from repro.reliability.faults import (
    HBM,
    LIMB,
    NTT,
    RF,
    SITES,
    FaultInjector,
    run_campaign,
)


def test_injector_is_deterministic():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 1 << 28, size=(2, 32), dtype=np.uint64)

    outs = []
    for _ in range(2):
        work = data.copy()
        injector = FaultInjector(seed=42)
        injector.arm(LIMB)
        assert injector.maybe_corrupt(LIMB, work)
        outs.append(work)
    assert np.array_equal(outs[0], outs[1])
    assert not np.array_equal(outs[0], data)


def test_armed_fault_fires_exactly_once():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=1)
    injector.arm(NTT)
    assert injector.maybe_corrupt(NTT, data)
    assert not injector.maybe_corrupt(NTT, data)  # disarmed after firing


def test_unarmed_sites_stay_clean():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=1)
    injector.arm(LIMB)
    assert not injector.maybe_corrupt(HBM, data)
    assert np.count_nonzero(data) == 0


def test_corruption_flips_bits_below_modulus_width():
    data = np.zeros((1, 16), dtype=np.uint64)
    injector = FaultInjector(seed=3)
    injector.arm(LIMB)
    injector.maybe_corrupt(LIMB, data)
    changed = data[data != 0]
    assert len(changed) == 1
    assert int(changed[0]) < 1 << 28  # single flip below bit 28


# -- campaign smoke test ----------------------------------------------------
#
# The full acceptance campaign (1000+ faults) runs in CI via
# `python -m repro.reliability`; here a small seeded campaign checks the
# harness end to end without dominating the suite's runtime.

@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=2022, faults=80, degree=128, max_level=5,
                        pool_size=4, clean_ops=16)


def test_campaign_covers_all_sites(campaign):
    assert set(campaign.sites) == set(SITES)
    for site in SITES:
        assert campaign.sites[site].injected > 0, site


def test_campaign_zero_false_positives(campaign):
    assert campaign.false_positives == 0


def test_campaign_deterministic_detection_rates(campaign):
    # Every detector is now exact: operand-at-rest and hint-transfer
    # checksums were always so; the end-of-op transform checksum catches
    # any single corrupted NTT output word deterministically, and the
    # keyswitch-boundary eviction sweep covers every RF resident (the
    # PR 2 spot checks left both below 100%).
    assert campaign.detection_rate(LIMB) == 1.0
    assert campaign.detection_rate(HBM) == 1.0
    assert campaign.detection_rate(NTT) == 1.0
    assert campaign.detection_rate(RF) == 1.0


def test_campaign_reproducible(campaign):
    again = run_campaign(seed=2022, faults=80, degree=128, max_level=5,
                         pool_size=4, clean_ops=16)
    for site in SITES:
        assert again.sites[site].injected == campaign.sites[site].injected
        assert again.sites[site].detected == campaign.sites[site].detected


# -- hoisted rotations ------------------------------------------------------
#
# The compiler's hoisting pass makes one ModUp's raised digits a shared
# operand of a whole rotation group, so the seal must carry through the
# hoist: a limb fault there would otherwise poison every rotation of the
# group while the per-ciphertext checksums stay green.

@pytest.fixture(scope="module")
def sealed_fhe():
    from repro.fhe.ckks import CkksContext, CkksParams
    from repro.reliability.guards import ReliabilityPolicy

    ctx = CkksContext(CkksParams(degree=128, max_level=4, seed=5),
                      policy=ReliabilityPolicy(checksums=True))
    return ctx, ctx.keygen()


def test_limb_fault_in_raised_digits_is_detected(sealed_fhe):
    from repro.fhe.hoisting import HoistedRotator
    from repro.reliability.errors import FaultDetectedError

    ctx, sk = sealed_fhe
    ct = ctx.encrypt_values(sk, [0.5, -0.25])
    rotator = HoistedRotator(ctx, ct, alpha=ctx.params.alpha)
    assert rotator.integrity is not None  # sealed at construction
    hint = ctx.rotation_hint(sk, 1)
    rotator.rotate(1, hint)  # clean: silent

    injector = FaultInjector(seed=11)
    injector.arm(LIMB)
    assert injector.maybe_corrupt(LIMB, rotator.raised_digits[0].data)
    with pytest.raises(FaultDetectedError, match="hoisted raised digit"):
        rotator.rotate(1, hint)


def test_corrupt_source_is_caught_before_hoisting(sealed_fhe):
    from repro.fhe.hoisting import HoistedRotator
    from repro.reliability.errors import FaultDetectedError

    ctx, sk = sealed_fhe
    ct = ctx.encrypt_values(sk, [0.125])
    injector = FaultInjector(seed=12)
    injector.arm(LIMB)
    assert injector.maybe_corrupt(LIMB, ct.c1.data)
    with pytest.raises(FaultDetectedError, match="hoist source"):
        HoistedRotator(ctx, ct, alpha=ctx.params.alpha)


def test_hoisted_rotation_output_is_sealed(sealed_fhe):
    from repro.fhe.hoisting import HoistedRotator

    ctx, sk = sealed_fhe
    ct = ctx.encrypt_values(sk, [0.5, 0.5])
    rotator = HoistedRotator(ctx, ct, alpha=ctx.params.alpha)
    out = rotator.rotate(1, ctx.rotation_hint(sk, 1))
    assert out.integrity is not None  # downstream ops can keep verifying
    ctx.verify_integrity(out)
