"""ReliabilityPolicy, invariant guard helpers, and the integrity switch."""

import numpy as np
import pytest

from repro.reliability import guards
from repro.reliability.errors import (
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
    ScaleMismatchError,
)
from repro.reliability.guards import (
    IntegrityConfig,
    ReliabilityPolicy,
    check_min_level,
    check_same_basis,
    check_scale_match,
)


class _FakeCt:
    """Just enough surface for the guard helpers (level/basis/scale)."""

    def __init__(self, level=3, basis="B", scale=2.0**28):
        self.level = level
        self.basis = basis
        self.scale = scale


# -- policy -----------------------------------------------------------------

def test_policy_defaults_to_strict():
    policy = ReliabilityPolicy()
    assert policy.mode == guards.STRICT
    assert not policy.degrade
    assert not policy.track_noise
    assert not policy.checksums


def test_degrade_mode_flag():
    assert ReliabilityPolicy(mode="degrade").degrade


def test_unknown_mode_rejected():
    with pytest.raises(ParameterError, match="unknown reliability mode"):
        ReliabilityPolicy(mode="fastest")


def test_min_level_must_be_positive():
    with pytest.raises(ParameterError, match="min_level"):
        ReliabilityPolicy(min_level=0)


# -- guard helpers ----------------------------------------------------------

def test_check_same_basis_passes_and_raises():
    a, b = _FakeCt(basis="B1"), _FakeCt(basis="B1")
    check_same_basis(a, b, "add")  # no raise
    with pytest.raises(LevelMismatchError, match="different RNS bases"):
        check_same_basis(a, _FakeCt(basis="B2"), "add")


def test_check_scale_match_tolerance():
    a = _FakeCt(scale=2.0**28)
    close = _FakeCt(scale=2.0**28 * (1 + 1e-12))
    check_scale_match(a, close, "add", tolerance=1e-9)  # within tolerance
    with pytest.raises(ScaleMismatchError, match="mismatched scales"):
        check_scale_match(a, _FakeCt(scale=2.0**29), "add", tolerance=1e-9)


def test_check_min_level_raises_exhaustion():
    check_min_level(_FakeCt(level=2), 2, "rescale")  # no raise
    with pytest.raises(NoiseBudgetExhaustedError, match="bootstrap"):
        check_min_level(_FakeCt(level=1), 2, "rescale")


# -- integrity switch -------------------------------------------------------

def test_integrity_switch_default_off():
    assert guards.integrity_active() is None


def test_integrity_scope_restores_previous_state():
    assert guards.integrity_active() is None
    with guards.integrity(IntegrityConfig(ntt_recheck_every=4)) as cfg:
        assert guards.integrity_active() is cfg
        assert cfg.ntt_recheck_every == 4
        assert cfg.verify_hints
    assert guards.integrity_active() is None


def test_integrity_enable_disable_roundtrip():
    cfg = guards.enable_integrity()
    try:
        assert guards.integrity_active() is cfg
    finally:
        assert guards.disable_integrity() is cfg
    assert guards.integrity_active() is None


def test_ntt_recheck_detects_injected_compute_fault():
    """End to end through the NTT layer: corrupt a transform output and
    the every-k-th re-execution check must flag it (transform checksum
    disabled here to isolate the recheck path)."""
    from repro.fhe.ntt import NttContext
    from repro.reliability.errors import FaultDetectedError
    from repro.reliability.faults import NTT, FaultInjector, install, uninstall

    ntt = NttContext.get(998244353, 64)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 998244353, size=64, dtype=np.uint64)

    injector = FaultInjector(seed=1)
    install(injector)
    try:
        with guards.integrity(IntegrityConfig(ntt_checksum=False,
                                              ntt_recheck_every=1)):
            injector.arm(NTT)
            with pytest.raises(FaultDetectedError, match="re-execution"):
                ntt.forward(data)
    finally:
        uninstall()

    # Clean transforms under the same recheck policy stay silent.
    with guards.integrity(IntegrityConfig(ntt_recheck_every=1)):
        out = ntt.forward(data)
    assert np.array_equal(ntt.inverse(out), data)


def test_ntt_transform_checksum_detects_any_single_word_fault():
    """The O(N) end-of-op checksum is deterministic: a corrupted output
    word in either transform direction raises, wherever it lands."""
    from repro.fhe.ntt import NttContext
    from repro.reliability.errors import FaultDetectedError
    from repro.reliability.faults import NTT, FaultInjector, install, uninstall

    ntt = NttContext.get(998244353, 64)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 998244353, size=64, dtype=np.uint64)

    for seed in range(8):  # varies which word/bit the injector flips
        injector = FaultInjector(seed=seed)
        install(injector)
        try:
            with guards.integrity(IntegrityConfig(ntt_checksum=True)):
                injector.arm(NTT)
                with pytest.raises(FaultDetectedError, match="checksum"):
                    ntt.forward(data)
                injector.arm(NTT)
                with pytest.raises(FaultDetectedError, match="checksum"):
                    ntt.inverse(ntt.forward(data))
        finally:
            uninstall()

    # Clean transforms round-trip silently under the checksum.
    with guards.integrity(IntegrityConfig(ntt_checksum=True)):
        assert np.array_equal(ntt.inverse(ntt.forward(data)), data)
