"""The typed exception hierarchy: taxonomy, compat, context payloads."""

import pytest

from repro.reliability.errors import (
    ConfigError,
    FaultDetectedError,
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
    ReproError,
    ScaleMismatchError,
    ScheduleError,
)

VALIDATION_ERRORS = [
    ParameterError,
    LevelMismatchError,
    ScaleMismatchError,
    NoiseBudgetExhaustedError,
    ScheduleError,
    ConfigError,
]


@pytest.mark.parametrize("exc", VALIDATION_ERRORS)
def test_validation_errors_are_repro_and_value_errors(exc):
    # Pre-existing `except ValueError` handlers (and ~70 tests) must keep
    # catching these; new code can catch the whole family via ReproError.
    err = exc("boom")
    assert isinstance(err, ReproError)
    assert isinstance(err, ValueError)


def test_fault_detected_is_runtime_not_value_error():
    # Corrupted data is not a usage error: it must NOT be swallowed by
    # `except ValueError` paths that handle bad parameters.
    err = FaultDetectedError("corrupted")
    assert isinstance(err, ReproError)
    assert isinstance(err, RuntimeError)
    assert not isinstance(err, ValueError)


def test_context_kwargs_are_stored_and_rendered():
    err = LevelMismatchError("levels disagree", left=3, right=1)
    assert err.context == {"left": 3, "right": 1}
    assert "levels disagree" in str(err)
    assert "left=3" in str(err) and "right=1" in str(err)


def test_message_without_context_is_untouched():
    assert str(ParameterError("plain message")) == "plain message"


def test_catching_the_family_covers_every_subclass():
    for exc in VALIDATION_ERRORS + [FaultDetectedError]:
        with pytest.raises(ReproError):
            raise exc("x")
