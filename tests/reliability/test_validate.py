"""Pre-flight config/program validation and its wiring into simulate()."""

import pytest

from repro.core import ChipConfig, simulate
from repro.ir import ADD, INPUT, MULT, OUTPUT, HomOp, Program
from repro.reliability.errors import ConfigError, ScheduleError
from repro.reliability.validate import validate_config, validate_program


def _program(degree=4096, max_level=8):
    p = Program(name="toy", degree=degree, max_level=max_level)
    p.append(HomOp(kind=INPUT, result="a", level=4))
    p.append(HomOp(kind=INPUT, result="b", level=4))
    p.append(HomOp(kind=ADD, result="c", level=4, operands=("a", "b")))
    p.append(HomOp(kind=OUTPUT, result="out", level=4, operands=("c",)))
    return p


# -- field validation at construction ---------------------------------------

def test_config_rejects_indivisible_lane_groups():
    with pytest.raises(ConfigError, match="lane groups"):
        ChipConfig(lanes=2048, lane_groups=3)


def test_config_rejects_zero_hbm():
    with pytest.raises(ConfigError, match="HBM"):
        ChipConfig(hbm_gbps_per_phy=0.0)
    with pytest.raises(ConfigError, match="HBM"):
        ChipConfig(hbm_phys=0)


def test_config_rejects_nonpositive_register_file():
    with pytest.raises(ConfigError, match="register file"):
        ChipConfig(register_file_mb=0.0)


def test_config_rejects_zero_fu_units():
    with pytest.raises(ConfigError, match="ntt_units"):
        ChipConfig(ntt_units=0)


def test_default_and_ablation_configs_validate():
    cfg = ChipConfig()
    for variant in (cfg, ChipConfig.craterlake_128k(), cfg.without_kshgen(),
                    cfg.without_crb_chaining(), cfg.with_crossbar_network()):
        validate_config(variant)  # no raise


# -- (program, config) pairing ----------------------------------------------

def test_program_above_native_degree_rejected():
    with pytest.raises(ConfigError, match="native maximum"):
        validate_program(_program(degree=131072), ChipConfig())


def test_register_file_too_small_for_one_ciphertext():
    cfg = ChipConfig(register_file_mb=0.001)
    with pytest.raises(ConfigError, match="cannot hold"):
        validate_program(_program(), cfg)


def test_op_above_declared_max_level_rejected():
    p = _program(max_level=8)
    p.ops[2] = HomOp(kind=ADD, result="c", level=9, operands=("a", "b"))
    with pytest.raises(ScheduleError, match="above the"):
        validate_program(p, ChipConfig())


def test_digits_exceeding_level_rejected():
    p = _program()
    p.ops[2] = HomOp(kind=MULT, result="c", level=2, operands=("a", "b"),
                     hint_id="relin", digits=3)
    with pytest.raises(ScheduleError, match="digits"):
        validate_program(p, ChipConfig())


def test_operand_before_definition_rejected():
    p = Program(name="bad", degree=4096, max_level=8)
    p.append(HomOp(kind=INPUT, result="a", level=4))
    p.append(HomOp(kind=ADD, result="c", level=4, operands=("a", "ghost")))
    with pytest.raises(ScheduleError, match="dataflow"):
        validate_program(p, ChipConfig())


def test_valid_program_passes():
    validate_program(_program(), ChipConfig())  # no raise


def test_simulate_runs_validation_up_front():
    # The simulator must reject the pairing before executing any op.
    with pytest.raises(ConfigError, match="native maximum"):
        simulate(_program(degree=131072), ChipConfig())
    # ...but the same program runs on the 128K variant.
    result = simulate(_program(degree=131072), ChipConfig.craterlake_128k())
    assert result.cycles > 0
