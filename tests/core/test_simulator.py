"""Cycle-level simulator: timing, Belady storage, traffic accounting."""

import pytest

from repro.compiler.dsl import FheBuilder
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.ir import HomOp, Program

CFG = ChipConfig()


def tiny_program(level=20, rotations=4, distinct_hints=2):
    b = FheBuilder("tiny", degree=65536, max_level=level)
    x = b.input("x", level)
    for i in range(rotations):
        x = b.rotate(x, 1, hint_id=f"h{i % distinct_hints}")
    b.output(x)
    return b.build()


def test_empty_program():
    res = simulate(Program(name="empty", degree=65536, max_level=10), CFG)
    assert res.cycles == 0
    assert res.total_traffic_bytes == 0


def test_degree_guard():
    prog = Program(name="big", degree=131072, max_level=10)
    with pytest.raises(ValueError, match="native maximum"):
        simulate(prog, CFG)
    simulate(prog, ChipConfig.craterlake_128k())  # fine on the variant


def test_hint_reuse_reduces_traffic():
    many = simulate(tiny_program(rotations=8, distinct_hints=8), CFG)
    few = simulate(tiny_program(rotations=8, distinct_hints=1), CFG)
    assert few.traffic_words["ksh"] < many.traffic_words["ksh"] / 4
    # Compute work is identical either way.
    assert few.fu_busy_cycles == many.fu_busy_cycles


def test_time_is_max_of_compute_and_memory():
    res = simulate(tiny_program(), CFG)
    assert res.cycles >= res.mem_cycles
    assert res.cycles >= res.compute_cycles - 1e-9 or True
    assert res.cycles == max(res.compute_cycles, res.mem_cycles)


def test_memory_bound_when_hints_never_reused():
    res = simulate(tiny_program(rotations=30, distinct_hints=30), CFG)
    assert res.bandwidth_utilization > 0.9


def test_small_register_file_thrashes():
    prog = tiny_program(level=60, rotations=24, distinct_hints=6)
    big = simulate(prog, CFG)
    small = simulate(prog, CFG.with_register_file(30))
    assert small.traffic_words["ksh"] > big.traffic_words["ksh"]
    assert small.cycles > big.cycles


def test_belady_keeps_the_reused_hint():
    """Two hints alternate; a third is used once in the middle.  With room
    for ~two hints, Belady must evict the single-use one."""
    b = FheBuilder("belady", degree=65536, max_level=60)
    x = b.input("x", 60)
    pattern = ["a", "b", "once", "a", "b", "a", "b", "a", "b"]
    for i, h in enumerate(pattern):
        x = b.rotate(x, 1, hint_id=h)
    prog = b.build()
    # Hint ~26 MB at L=60; RF of 64 MB fits two hints + operands-ish.
    res = simulate(prog, CFG.with_register_file(96))
    hint_words = None
    from repro.core.cost import boosted_keyswitch_cost

    hint_words = boosted_keyswitch_cost(CFG, 65536, 60, 2).hint_words
    loads = res.traffic_words["ksh"] / hint_words
    # Optimal: a, b, once fetched once each, plus at most ~2 re-fetches.
    assert loads <= 5.5, loads


def test_traffic_categories():
    b = FheBuilder("cats", degree=65536, max_level=20)
    x = b.input("x", 20)
    y = b.pmult(x, "weights", rescale=False)
    z = b.mult(x, y)
    b.output(z)
    res = simulate(b.build(), CFG)
    assert res.traffic_words["inputs"] > 0       # the input ct + plaintext
    assert res.traffic_words["ksh"] > 0          # relin hint
    assert res.traffic_words["interm_store"] > 0  # the output writeback


def test_compact_plaintexts_move_less():
    def prog(compact):
        b = FheBuilder("c", degree=65536, max_level=40)
        x = b.input("x", 40)
        x = b.pmult(x, "w", rescale=False, compact=compact)
        b.output(x)
        return b.build()
    full = simulate(prog(False), CFG)
    small = simulate(prog(True), CFG)
    assert small.traffic_words["inputs"] < full.traffic_words["inputs"]


def test_f1plus_slower_on_deep_keyswitching():
    from repro.baselines import f1plus_config

    prog = tiny_program(level=57, rotations=12, distinct_hints=3)
    cl = simulate(prog, CFG)
    f1 = simulate(prog, f1plus_config())
    assert f1.cycles > 3 * cl.cycles


def test_fu_utilization_bounds():
    res = simulate(tiny_program(), CFG)
    assert 0 <= res.fu_utilization() <= 1
    assert 0 <= res.bandwidth_utilization <= 1


# -- lookahead orchestration, dead-dropping, and the sim.* observables ----


def test_prefetch_depth_must_cover_current_op():
    from repro.reliability.errors import ConfigError

    with pytest.raises(ConfigError, match="prefetch window"):
        ChipConfig(prefetch_depth=0)


def test_prefetch_window_is_cycle_and_traffic_neutral():
    """The memory stream already runs decoupled from compute, and the
    prefetcher only claims free capacity - so deepening the window may
    reorder fetches but must not change totals on a stream that fits."""
    prog = tiny_program(level=60, rotations=12, distinct_hints=3)
    base = simulate(prog, CFG)
    for depth in (2, 4):
        deep = simulate(prog, CFG.with_prefetch_depth(depth))
        assert deep.cycles == base.cycles
        assert deep.traffic_words == base.traffic_words


def test_prefetch_hits_are_counted_at_depth():
    prog = tiny_program(level=60, rotations=12, distinct_hints=3)
    assert simulate(prog, CFG).prefetch_hits == 0
    deep = simulate(prog, CFG.with_prefetch_depth(4))
    assert deep.prefetch_hits > 0


def test_prefetch_never_evicts_residents():
    """Under pressure the window stops growing instead of displacing data
    the compute head still needs: evictions at depth k never exceed the
    depth-1 count."""
    prog = tiny_program(level=60, rotations=24, distinct_hints=6)
    cfg = CFG.with_register_file(30)   # forces thrash at depth 1
    base = simulate(prog, cfg)
    assert base.rf_evictions > 0
    deep = simulate(prog, cfg.with_prefetch_depth(8))
    assert deep.rf_evictions <= base.rf_evictions
    assert deep.traffic_words["ksh"] <= base.traffic_words["ksh"]


def test_dead_values_are_dropped_on_last_use():
    """Free-on-last-use: a chain of rotates kills each intermediate at
    its single consumer, so residents are released instead of lingering
    as Belady victims."""
    res = simulate(tiny_program(rotations=8, distinct_hints=2), CFG)
    assert res.dead_drops > 0
    assert res.rf_evictions == 0


def test_output_drops_stored_record_for_non_ssa_streams():
    """An OUTPUT whose result name shadows a resident value (hand-built,
    non-SSA streams) must release that record too - and its operand, once
    stored, is dead and dropped as well."""
    prog = Program(name="shadow", degree=65536, max_level=10)
    prog.append(HomOp(kind="input", level=10, result="x"))
    prog.append(HomOp(kind="add", level=10, result="y", operands=("x", "x")))
    prog.append(HomOp(kind="output", level=10, result="y", operands=("x",)))
    res = simulate(prog, CFG)
    # x dropped as a stored dead operand; y dropped as the shadowed record
    # (y is the op's own result name, hence counted via the result branch).
    assert res.dead_drops >= 2


def test_op_events_telescope_at_all_depths():
    from repro.obs import collector as obs

    prog = tiny_program(level=60, rotations=12, distinct_hints=3)
    for depth in (1, 2, 8):
        with obs.collecting() as c:
            res = simulate(prog, CFG.with_prefetch_depth(depth))
        assert c.total_op_cycles() == pytest.approx(res.cycles)
        assert c.counters.get("sim.rf_evictions", 0) == res.rf_evictions
        assert c.counters.get("sim.dead_drops", 0) == res.dead_drops
        assert c.counters.get("sim.prefetch_hits", 0) == res.prefetch_hits
        assert c.counters.get("sim.stall_cycles", 0) == pytest.approx(
            res.stall_cycles)


def test_stall_cause_split_is_consistent():
    res = simulate(tiny_program(rotations=30, distinct_hints=30), CFG)
    assert res.stall_cycles > 0          # memory-bound: compute waits
    assert 0 <= res.prefetch_window_stall_cycles <= res.stall_cycles


def test_tag_cycles_telescope_to_total():
    """Per-tag critical-path attribution partitions the total exactly:
    every cycle of critical-path advance is charged to exactly one
    phase tag, so the tag shares sum to SimResult.cycles."""
    b = FheBuilder("tagged", degree=65536, max_level=20)
    b.phase("load")
    x = b.input("x", 20)
    b.phase("spin")
    for i in range(6):
        x = b.rotate(x, 1, hint_id=f"h{i % 2}")
    b.phase("emit")
    b.output(x)
    res = simulate(b.build(), CFG)
    assert res.tag_cycles
    assert sum(res.tag_cycles.values()) == pytest.approx(res.cycles)
    assert set(res.tag_cycles) <= {"load", "spin", "emit"}
    assert res.tag_cycles.get("spin", 0) > 0


def test_tag_cycles_scale_with_occupancy_repeat():
    """A pmult with repeat=k streams k plaintexts: its phase's share
    grows with k while untouched phases keep their cost - the serving
    layer's per-request attribution depends on this."""
    def prog(repeat):
        b = FheBuilder("occ", degree=65536, max_level=20)
        b.phase("in")
        x = b.input("x", 20)
        b.phase("score")
        x = b.pmult(x, "w", repeat=repeat)
        b.phase("reduce")
        x = b.rotate(x, 1, hint_id="h0")
        b.output(x)
        return b.build()

    lean = simulate(prog(1), CFG)
    full = simulate(prog(8), CFG)
    assert full.tag_cycles["score"] > lean.tag_cycles["score"]
    # Attribution is critical-path advance, not isolated op cost: the
    # bigger score phase's streaming can HIDE part of the later hint
    # load, so reduce's share may shrink with occupancy - never grow.
    assert full.tag_cycles["reduce"] <= lean.tag_cycles["reduce"] + 1e-9
    assert full.cycles > lean.cycles
