"""Cycle-level simulator: timing, Belady storage, traffic accounting."""

import pytest

from repro.compiler.dsl import FheBuilder
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.ir import HomOp, Program

CFG = ChipConfig()


def tiny_program(level=20, rotations=4, distinct_hints=2):
    b = FheBuilder("tiny", degree=65536, max_level=level)
    x = b.input("x", level)
    for i in range(rotations):
        x = b.rotate(x, 1, hint_id=f"h{i % distinct_hints}")
    b.output(x)
    return b.build()


def test_empty_program():
    res = simulate(Program(name="empty", degree=65536, max_level=10), CFG)
    assert res.cycles == 0
    assert res.total_traffic_bytes == 0


def test_degree_guard():
    prog = Program(name="big", degree=131072, max_level=10)
    with pytest.raises(ValueError, match="native maximum"):
        simulate(prog, CFG)
    simulate(prog, ChipConfig.craterlake_128k())  # fine on the variant


def test_hint_reuse_reduces_traffic():
    many = simulate(tiny_program(rotations=8, distinct_hints=8), CFG)
    few = simulate(tiny_program(rotations=8, distinct_hints=1), CFG)
    assert few.traffic_words["ksh"] < many.traffic_words["ksh"] / 4
    # Compute work is identical either way.
    assert few.fu_busy_cycles == many.fu_busy_cycles


def test_time_is_max_of_compute_and_memory():
    res = simulate(tiny_program(), CFG)
    assert res.cycles >= res.mem_cycles
    assert res.cycles >= res.compute_cycles - 1e-9 or True
    assert res.cycles == max(res.compute_cycles, res.mem_cycles)


def test_memory_bound_when_hints_never_reused():
    res = simulate(tiny_program(rotations=30, distinct_hints=30), CFG)
    assert res.bandwidth_utilization > 0.9


def test_small_register_file_thrashes():
    prog = tiny_program(level=60, rotations=24, distinct_hints=6)
    big = simulate(prog, CFG)
    small = simulate(prog, CFG.with_register_file(30))
    assert small.traffic_words["ksh"] > big.traffic_words["ksh"]
    assert small.cycles > big.cycles


def test_belady_keeps_the_reused_hint():
    """Two hints alternate; a third is used once in the middle.  With room
    for ~two hints, Belady must evict the single-use one."""
    b = FheBuilder("belady", degree=65536, max_level=60)
    x = b.input("x", 60)
    pattern = ["a", "b", "once", "a", "b", "a", "b", "a", "b"]
    for i, h in enumerate(pattern):
        x = b.rotate(x, 1, hint_id=h)
    prog = b.build()
    # Hint ~26 MB at L=60; RF of 64 MB fits two hints + operands-ish.
    res = simulate(prog, CFG.with_register_file(96))
    hint_words = None
    from repro.core.cost import boosted_keyswitch_cost

    hint_words = boosted_keyswitch_cost(CFG, 65536, 60, 2).hint_words
    loads = res.traffic_words["ksh"] / hint_words
    # Optimal: a, b, once fetched once each, plus at most ~2 re-fetches.
    assert loads <= 5.5, loads


def test_traffic_categories():
    b = FheBuilder("cats", degree=65536, max_level=20)
    x = b.input("x", 20)
    y = b.pmult(x, "weights", rescale=False)
    z = b.mult(x, y)
    b.output(z)
    res = simulate(b.build(), CFG)
    assert res.traffic_words["inputs"] > 0       # the input ct + plaintext
    assert res.traffic_words["ksh"] > 0          # relin hint
    assert res.traffic_words["interm_store"] > 0  # the output writeback


def test_compact_plaintexts_move_less():
    def prog(compact):
        b = FheBuilder("c", degree=65536, max_level=40)
        x = b.input("x", 40)
        x = b.pmult(x, "w", rescale=False, compact=compact)
        b.output(x)
        return b.build()
    full = simulate(prog(False), CFG)
    small = simulate(prog(True), CFG)
    assert small.traffic_words["inputs"] < full.traffic_words["inputs"]


def test_f1plus_slower_on_deep_keyswitching():
    from repro.baselines import f1plus_config

    prog = tiny_program(level=57, rotations=12, distinct_hints=3)
    cl = simulate(prog, CFG)
    f1 = simulate(prog, f1plus_config())
    assert f1.cycles > 3 * cl.cycles


def test_fu_utilization_bounds():
    res = simulate(tiny_program(), CFG)
    assert 0 <= res.fu_utilization() <= 1
    assert 0 <= res.bandwidth_utilization <= 1
