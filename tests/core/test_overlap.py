"""Overlap-stream invariants of the core simulator.

The pod layer's double-buffered transfers lean on three algebraic
guarantees of ``simulate(..., overlap_streams=...)``:

* *never worse than serialized*: the overlapped run's ``cycles`` is
  bounded by what the same streams cost through ``extra_streams``, and
  its ``serialized_cycles`` field reproduces that serialized run
  bit-for-bit (same float ops, same order);
* *never better than physics*: overlap can hide a transfer behind
  compute and idle bandwidth, but not shrink the op stream's own
  critical path or outrun the busiest per-direction port;
* *telescoping accounting*: per-tag critical-path buckets sum exactly
  to ``program_cycles`` at every prefetch depth, so the serving layer's
  per-phase charging never invents or loses a cycle.

Checked property-based on random DAGs x random stream sets, plus spot
checks on a deep benchmark.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.dsl import FheBuilder
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.workloads import benchmark

CFG = ChipConfig()


def random_program(draw_ops, inputs):
    """A valid random DAG from a hypothesis-drawn op script."""
    b = FheBuilder("hyp-overlap", degree=256, max_level=6)
    values = [b.input(f"x{i}", level=4) for i in range(inputs)]
    for kind, a, c in draw_ops:
        va = values[a % len(values)]
        if kind == "add":
            values.append(b.add(va, values[c % len(values)]))
        elif kind == "rotate":
            values.append(b.rotate(va, steps=1 + c % 7))
        else:
            if va.level >= 2:
                values.append(b.square(va))
    b.output(values[-1])
    return b.build()


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["add", "rotate", "square"]),
              st.integers(0, 63), st.integers(0, 63)),
    min_size=1, max_size=30)

streams_strategy = st.dictionaries(
    st.sampled_from(["link_in", "link_out"]),
    st.tuples(st.floats(1.0, 1e7), st.floats(0.01, 1e4)),
    min_size=1, max_size=2)


@settings(max_examples=30, deadline=None)
@given(ops=ops_strategy, inputs=st.integers(1, 4),
       streams=streams_strategy)
def test_overlap_bounded_by_serialized_and_physics(ops, inputs, streams):
    program = random_program(ops, inputs)
    overlapped = simulate(program, CFG, overlap_streams=streams)
    serialized = simulate(program, CFG, extra_streams=streams)
    # Bit-identical serialized reference: the overlap run carries the
    # would-have-been cost in the same float ops as extra_streams.
    assert overlapped.serialized_cycles == serialized.cycles
    assert overlapped.cycles <= serialized.cycles
    # Physics floor: the op stream's own critical path and the busiest
    # per-direction port are irreducible.
    assert overlapped.cycles >= overlapped.program_cycles
    assert overlapped.cycles >= overlapped.link_port_cycles
    # Hidden cycles are exactly the serialized-vs-overlapped gap.
    assert overlapped.overlap_hidden_cycles == pytest.approx(
        overlapped.serialized_cycles - overlapped.cycles)
    # Both models agree on the traffic split (words moved are words
    # moved, whoever hides them).
    assert overlapped.traffic_words == serialized.traffic_words


@settings(max_examples=30, deadline=None)
@given(ops=ops_strategy, inputs=st.integers(1, 4))
def test_no_streams_degenerates_to_plain_run(ops, inputs):
    program = random_program(ops, inputs)
    plain = simulate(program, CFG)
    assert plain.serialized_cycles == plain.cycles
    assert plain.overlap_hidden_cycles == 0.0
    assert plain.link_port_cycles == 0.0
    assert plain.program_cycles == plain.cycles


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy, inputs=st.integers(1, 4),
       depth=st.sampled_from([1, 2, 8]))
def test_tag_cycles_telescope_at_every_prefetch_depth(ops, inputs, depth):
    program = random_program(ops, inputs)
    res = simulate(program, CFG.with_prefetch_depth(depth))
    assert sum(res.tag_cycles.values()) == pytest.approx(
        res.program_cycles, rel=1e-12)


def test_deep_benchmark_overlap_spot_check():
    """A bandwidth-heavy stream on a real benchmark: some of it hides
    behind compute, and the accounting identities still close."""
    program = benchmark("logreg")
    plain = simulate(program, CFG)
    words = plain.mem_cycles  # ~1 word/cycle worth of extra transfers
    streams = {"link_in": (words, 0.5), "link_out": (words, 0.5)}
    overlapped = simulate(program, CFG, overlap_streams=streams)
    serialized = simulate(program, CFG, extra_streams=streams)
    assert overlapped.serialized_cycles == serialized.cycles
    assert overlapped.cycles < serialized.cycles  # something hid
    assert overlapped.overlap_hidden_cycles > 0
    assert overlapped.cycles >= max(plain.cycles, words / 0.5)
