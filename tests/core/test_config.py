"""Chip configurations and derived quantities."""

import pytest

from repro.core.config import ChipConfig


def test_default_matches_paper():
    cfg = ChipConfig()
    assert cfg.lanes == 2048 and cfg.lane_groups == 8
    assert cfg.group_lanes == 256
    assert cfg.register_file_mb == 256.0
    assert cfg.ntt_units == 2 and cfg.mul_units == 5 and cfg.add_units == 5
    assert cfg.max_degree == 65536


def test_hbm_bandwidth():
    cfg = ChipConfig()
    # 2 PHYs x 512 GB/s at 1 GHz = 1024 B/cycle.
    assert abs(cfg.hbm_bytes_per_cycle - 1024.0) < 1e-9
    assert abs(cfg.hbm_words_per_cycle - 1024.0 / 3.5) < 1e-9


def test_network_bandwidth_is_29_tbps():
    cfg = ChipConfig()
    tbps = cfg.network_words_per_cycle * cfg.bytes_per_word * cfg.clock_hz / 1e12
    assert 28 < tbps < 30  # Sec. 4.2: 29 TB/s


def test_register_file_capacity_in_ciphertexts():
    cfg = ChipConfig()
    ct_words = 2 * 65536 * 60
    # Sec. 6: 'just shy of 10 ciphertexts' at N=64K, L=60.
    assert 9 <= cfg.register_file_words // ct_words < 10


def test_passes():
    cfg = ChipConfig()
    assert cfg.passes(65536) == 32
    assert cfg.passes(16384) == 8
    assert cfg.passes(1024) == 1  # never below one cycle


def test_validation():
    with pytest.raises(ValueError):
        ChipConfig(lanes=2048, lane_groups=7)
    with pytest.raises(ValueError):
        ChipConfig(lanes=1000)
    with pytest.raises(ValueError):
        ChipConfig(max_degree=100000)


def test_ablation_constructors():
    cfg = ChipConfig()
    assert not cfg.without_kshgen().kshgen
    no_crb = cfg.without_crb_chaining()
    assert not no_crb.crb and not no_crb.chaining
    xbar = cfg.with_crossbar_network()
    assert not xbar.fixed_network
    assert xbar.network_efficiency < 1.0
    assert cfg.with_register_file(100).register_file_mb == 100
    # Ablations leave the base config untouched (frozen dataclass).
    assert cfg.kshgen and cfg.crb and cfg.fixed_network


def test_128k_variant():
    big = ChipConfig.craterlake_128k()
    assert big.max_degree == 131072
    assert big.passes(131072) == 64
