"""Functional models of CraterLake's novel hardware: CRB, KSHGen,
transpose network, vector chaining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chaining import (
    FU_INPUT_STREAMS,
    Pipeline,
    PipelineStage,
    keyswitch_pipelines,
    validate_port_budget,
)
from repro.core.crb import CrbUnit
from repro.core.kshgen import KshGenUnit, seed_is_schedulable
from repro.core.transpose import TransposeNetwork
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis

# ---------------------------------------------------------------- transpose


@pytest.mark.parametrize("eg,g", [(8, 2), (16, 4), (32, 8), (256, 8)])
def test_transpose_equals_numpy(eg, g):
    net = TransposeNetwork(eg, g)
    rng = np.random.default_rng(eg + g)
    m = rng.integers(0, 1000, size=(eg, eg))
    out, moved = net.transpose(m)
    assert np.array_equal(out, m.T)
    assert moved == net.exchange_words()


def test_transpose_double_is_identity():
    net = TransposeNetwork(16, 4)
    m = np.arange(256).reshape(16, 16)
    once, _ = net.transpose(m)
    twice, _ = net.transpose(once)
    assert np.array_equal(twice, m)


def test_exchange_words_fraction():
    # N * (G-1)/G words cross groups: 7/8 of the matrix for G=8.
    net = TransposeNetwork(256, 8)
    assert net.exchange_words() == 256 * 256 * 7 // 8


def test_permutation_map_is_static_bijection():
    net = TransposeNetwork(8, 2)
    mapping = net.permutation_map()
    # A fixed wiring must be a bijection on (group, slot) pairs.
    assert len(set(mapping.values())) == len(mapping)
    # And symmetric: i->j wiring mirrors j->i (pure wires, no switching).
    for (src, s_slot), (dst, d_slot) in mapping.items():
        assert mapping[(dst, d_slot)] == (src, s_slot)


def test_transpose_validation():
    with pytest.raises(ValueError):
        TransposeNetwork(10, 4)
    net = TransposeNetwork(8, 2)
    with pytest.raises(ValueError):
        net.distribute(np.zeros((4, 4)))


# ---------------------------------------------------------------- KSHGen

Q = find_ntt_primes(1, 28, 64)[0]


def test_kshgen_uniformity_and_range():
    unit = KshGenUnit(Q, seed=1)
    values, stats = unit.generate(200_000)
    assert values.max() < Q
    assert abs(values.mean() / Q - 0.5) < 0.01
    assert stats.rejection_rate < 2 ** -3  # extra bits keep rejection rare


def test_kshgen_determinism():
    a, _ = KshGenUnit(Q, seed=7).generate(1000)
    b, _ = KshGenUnit(Q, seed=7).generate(1000)
    c, _ = KshGenUnit(Q, seed=8).generate(1000)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


# A modulus far from a power of two: where rejection actually bites.
# (The 28-bit chain moduli sit just below 2^28, where even extra_bits=0
# rejects rarely; the unit must handle the general case.)
Q_MID = 167772161  # 5 * 2^25 + 1, NTT-friendly, ~1.25 * 2^27


def test_kshgen_extra_bits_shrink_rejection():
    p0 = KshGenUnit(Q_MID, extra_bits=0).rejection_probability
    p4 = KshGenUnit(Q_MID, extra_bits=4).rejection_probability
    p8 = KshGenUnit(Q_MID, extra_bits=8).rejection_probability
    assert p0 > p4 > p8
    assert p0 > 0.2                       # naive sampling stalls constantly
    assert p4 < 2 ** -4 and p8 < 2 ** -8


def test_kshgen_buffer_hides_rejections():
    """Sec. 5.2: with extra bits and a 16-deep buffer, the probability of
    a stall over a full hint's worth of words is negligible."""
    unit = KshGenUnit(Q_MID, extra_bits=4)
    stats = unit.stall_cycles(100_000, seed=3)
    assert stats.stall_cycles == 0
    # Without extra bits the buffer drains and stalls appear.
    bad = KshGenUnit(Q_MID, extra_bits=0, buffer_depth=2)
    assert bad.stall_cycles(100_000, seed=3).stall_cycles > 0


def test_seed_vetting():
    assert seed_is_schedulable(Q, seed=5, words=50_000)


# ---------------------------------------------------------------- CRB

def test_crb_matches_change_rns_base():
    primes = find_ntt_primes(8, 28, 64)
    src, dst = RnsBasis(primes[:4]), RnsBasis(primes[4:])
    rng = np.random.default_rng(0)
    residues = np.stack([
        rng.integers(0, q, 64, dtype=np.uint64) for q in src
    ])
    # Software reference (without the float correction the hardware MAC
    # array does not perform).
    want = src.convert_approx(residues, dst, correct=False)
    # Hardware path: scale inputs upstream, MAC against the constants.
    scaled = np.stack([
        residues[i] * np.uint64(src._q_hat_invs[i]) % np.uint64(q)
        for i, q in enumerate(src)
    ])
    unit = CrbUnit(lanes=64, pipelines=60)
    got, run = unit.convert(scaled, src.conversion_constants(dst), dst.moduli)
    assert np.array_equal(got, want)
    assert run.cycles == 4  # L_src passes at N == lanes
    assert run.macs == 4 * 4 * 64
    assert run.pipelines_used == 4


def test_crb_streaming_time_independent_of_outputs():
    primes = find_ntt_primes(24, 28, 64)
    src = RnsBasis(primes[:4])
    rng = np.random.default_rng(1)
    residues = np.stack([rng.integers(0, q, 64, dtype=np.uint64) for q in src])
    scaled = residues  # scaling irrelevant for the timing claim
    unit = CrbUnit(lanes=64)
    few = unit.convert(scaled, src.conversion_constants(RnsBasis(primes[4:8])),
                       primes[4:8])[1]
    many = unit.convert(scaled, src.conversion_constants(RnsBasis(primes[4:])),
                        primes[4:])[1]
    assert few.cycles == many.cycles  # O(L_src), not O(L_src * L_dst)
    assert many.utilization > few.utilization


def test_crb_pipeline_limit():
    unit = CrbUnit(lanes=64, pipelines=4)
    with pytest.raises(ValueError, match="pipelines"):
        unit.convert(np.zeros((2, 64), dtype=np.uint64),
                     np.zeros((2, 5), dtype=np.uint64), [3] * 5)


def test_crb_buffer_size_matches_paper():
    assert abs(CrbUnit().buffer_megabytes() - 26.25) < 0.01


# ---------------------------------------------------------------- chaining

def test_fig8_style_pipeline_ports():
    """Chained keyswitching pipelines fit 12 RF ports; unchained they need
    more than 24 (Sec. 5.1/5.4)."""
    pipes = keyswitch_pipelines()
    assert validate_port_budget(pipes, rf_ports=12, concurrent=2)
    total_unchained = max(p.unchained_ports() for p in pipes)
    assert total_unchained > 12
    assert sum(p.unchained_ports() for p in pipes) > 24


def test_port_reduction_factor():
    """Average port reduction near the paper's measured 3.5x RF-traffic
    saving."""
    pipes = keyswitch_pipelines()
    reductions = [p.port_reduction() for p in pipes]
    avg = sum(reductions) / len(reductions)
    assert 2.0 < avg < 5.0


def test_pipeline_validation():
    with pytest.raises(ValueError):
        PipelineStage("bogus")
    with pytest.raises(ValueError):
        PipelineStage("ntt", chained_inputs=2)
    p = Pipeline("x", [PipelineStage("mul"), PipelineStage("add",
                                                           chained_inputs=1)])
    assert p.ports() == 2 + 1 + 1  # 2 reads + 1 read + 1 write
    assert p.unchained_ports() == 3 + 3


@given(st.integers(min_value=0, max_value=2))
@settings(max_examples=10, deadline=None)
def test_chained_inputs_always_reduce_ports(chained):
    stage = PipelineStage("mul", chained_inputs=chained)
    p = Pipeline("t", [stage])
    assert p.read_ports() == FU_INPUT_STREAMS["mul"] - chained
