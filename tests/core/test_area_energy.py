"""Area and energy models (Table 2 / Fig. 10b backing)."""

from repro.core import ChipConfig, area_breakdown, simulate, total_area
from repro.core.area import scaled_5nm, total_fu_area
from repro.core.energy import (
    average_power,
    energy_breakdown,
    performance_per_joule,
)
from repro.workloads import benchmark


def test_total_area_near_paper():
    assert abs(total_area() - 472.3) < 3.0


def test_fu_area_share():
    assert 0.48 < total_fu_area() / total_area() < 0.54


def test_crb_dominates_fu_area():
    b = area_breakdown()
    assert b["CRB FU"] > 0.6 * total_fu_area()


def test_ablations_change_area_sensibly():
    cfg = ChipConfig()
    assert total_area(cfg.without_crb_chaining()) < total_area(cfg)
    assert total_area(cfg.with_crossbar_network()) > total_area(cfg) + 100
    assert total_area(cfg.with_register_file(350)) > total_area(cfg)


def test_5nm_projection():
    proj = scaled_5nm()
    assert abs(proj["area_mm2"] - 157.0) < 3.0
    assert abs(proj["peak_power_w"] - 146.0) < 2.0


def test_power_within_envelope_and_fu_dominated():
    res = simulate(benchmark("packed_bootstrap"), ChipConfig())
    watts = average_power(res)
    assert 80 < watts < 330
    brk = energy_breakdown(res)
    assert brk["Func Units"] == max(brk.values())


def test_performance_per_joule_orders_systems():
    from repro.baselines import f1plus_config

    prog = benchmark("packed_bootstrap")
    cl = simulate(prog, ChipConfig())
    f1 = simulate(prog, f1plus_config())
    # Sec. 9.2: CraterLake is far more efficient per joule than F1+.
    assert (performance_per_joule(cl, ChipConfig())
            > 3 * performance_per_joule(f1, f1plus_config()))
