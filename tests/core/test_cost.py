"""Per-op cost model: Table 1 correspondence and limiting resources."""

import pytest

from repro.core.config import ChipConfig
from repro.core.cost import (
    boosted_keyswitch_cost,
    ciphertext_words,
    keyswitch_cost,
    op_cost,
    op_latency,
    plaintext_words,
    standard_keyswitch_cost,
)
from repro.ir import ADD, MULT, PMULT, RESCALE, ROTATE, HomOp

CFG = ChipConfig()
N = 65536


def test_boosted_ntt_passes_match_table1():
    # t=1 at level L: 6L NTT passes (Listing 1 / Table 1).
    for level in (10, 30, 60):
        cost = boosted_keyswitch_cost(CFG, N, level, 1)
        assert cost.fu_elements["ntt"] == 6 * level * N


def test_standard_ntt_passes_match_table1():
    cost = standard_keyswitch_cost(CFG, N, 60)
    assert cost.fu_elements["ntt"] == 60 * 60 * N
    assert cost.fu_elements["mul"] == 2 * 60 * 60 * N


def test_boosted_keyswitch_is_ntt_bound_on_craterlake():
    """The CRB absorbs the 3L^2 MACs, leaving NTTs as the critical path:
    this is the O(L^2) -> O(L) keyswitch time reduction of Sec. 5.1."""
    cost = boosted_keyswitch_cost(CFG, N, 60, 1)
    ntt_cycles = cost.fu_elements["ntt"] / (CFG.ntt_units * CFG.lanes)
    assert abs(cost.compute_cycles(CFG) - ntt_cycles) / ntt_cycles < 0.05


def test_keyswitch_scales_linearly_with_level():
    c30 = boosted_keyswitch_cost(CFG, N, 30, 1).compute_cycles(CFG)
    c60 = boosted_keyswitch_cost(CFG, N, 60, 1).compute_cycles(CFG)
    assert 1.8 < c60 / c30 < 2.2


def test_no_crb_ablation_is_port_bound():
    no_crb = CFG.without_crb_chaining()
    base = boosted_keyswitch_cost(CFG, N, 57, 2).compute_cycles(CFG)
    ablated = boosted_keyswitch_cost(no_crb, N, 57, 2).compute_cycles(no_crb)
    assert ablated > 10 * base  # the Table 4 CRB/chain cliff


def test_kshgen_halves_hint_words():
    with_gen = boosted_keyswitch_cost(CFG, N, 60, 1)
    without = boosted_keyswitch_cost(CFG.without_kshgen(), N, 60, 1)
    assert without.hint_words == 2 * with_gen.hint_words
    assert with_gen.kshgen_elements > 0
    assert without.kshgen_elements == 0


def test_hint_words_match_sec3_sizes():
    # Seeded 1-digit hint at L=60: half of 52.5 MB => ~26 MB.
    cost = boosted_keyswitch_cost(CFG, N, 60, 1)
    mb = cost.hint_words * CFG.bytes_per_word / 2**20
    assert 25 < mb < 28


def test_digits_tradeoff():
    """Sec. 3.1: more digits => bigger hints, more modup NTTs."""
    h1 = boosted_keyswitch_cost(CFG, N, 60, 1)
    h2 = boosted_keyswitch_cost(CFG, N, 60, 2)
    h3 = boosted_keyswitch_cost(CFG, N, 60, 3)
    assert h1.hint_words < h2.hint_words < h3.hint_words
    assert (h1.fu_elements["ntt"] <= h2.fu_elements["ntt"]
            <= h3.fu_elements["ntt"])
    assert h3.fu_elements["ntt"] > h1.fu_elements["ntt"]


def test_policy_craterlake_always_boosted():
    cost = keyswitch_cost(CFG, N, 4, 1)
    # CRB present: boosted even where standard would be cheap.
    assert "crb" in cost.fu_elements


def test_policy_f1plus_crossover():
    """F1+-style machines pick standard at low L, boosted at high L."""
    from repro.baselines import f1plus_config

    f1 = f1plus_config()
    low = keyswitch_cost(f1, N, 6, 1)
    high = keyswitch_cost(f1, N, 40, 1)
    assert low.fu_elements["ntt"] == 36 * N          # L^2: standard
    assert high.fu_elements["ntt"] == 6 * 40 * N     # 6L: boosted
    assert high.fu_elements["ntt"] < 40 * 40 * N


def test_op_cost_kinds():
    for kind, operands in ((MULT, ("a", "b")), (ROTATE, ("a",)),
                           (PMULT, ("a",)), (ADD, ("a", "b")),
                           (RESCALE, ("a",))):
        op = HomOp(kind=kind, level=20, result="r", operands=operands,
                   hint_id="h" if kind in (MULT, ROTATE) else None)
        cost = op_cost(CFG, op, N)
        assert cost.compute_cycles(CFG) > 0, kind


def test_mult_costs_more_than_pmult():
    mult = HomOp(kind=MULT, level=20, result="r", operands=("a", "b"),
                 hint_id="relin")
    pmult = HomOp(kind=PMULT, level=20, result="r", operands=("a",),
                  plaintext_id="w")
    assert (op_cost(CFG, mult, N).compute_cycles(CFG)
            > 5 * op_cost(CFG, pmult, N).compute_cycles(CFG))


def test_repeat_scales_compute_not_hints():
    base = HomOp(kind=PMULT, level=20, result="r", operands=("a",),
                 plaintext_id="w")
    batched = HomOp(kind=PMULT, level=20, result="r", operands=("a",),
                    plaintext_id="w", repeat=10)
    cb, cr = op_cost(CFG, base, N), op_cost(CFG, batched, N)
    assert cr.fu_elements["mul"] == 10 * cb.fu_elements["mul"]
    rot = HomOp(kind=ROTATE, level=20, result="r", operands=("a",),
                hint_id="h", repeat=4)
    rot1 = HomOp(kind=ROTATE, level=20, result="r", operands=("a",),
                 hint_id="h")
    assert op_cost(CFG, rot, N).hint_words == op_cost(CFG, rot1, N).hint_words


def test_latency_model():
    mult = HomOp(kind=MULT, level=20, result="r", operands=("a", "b"),
                 hint_id="relin")
    add = HomOp(kind=ADD, level=20, result="r", operands=("a", "b"))
    assert op_latency(CFG, mult, N) > op_latency(CFG, add, N) > 0
    # Multicore-style machines hide latency by overlapping ops.
    from dataclasses import replace

    overlapped = replace(CFG, serial_execution=False)
    assert op_latency(overlapped, mult, N) == 0


def test_word_helpers():
    assert ciphertext_words(N, 60) == 2 * N * 60
    assert plaintext_words(N, 60) == N * 60
