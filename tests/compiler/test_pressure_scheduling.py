"""Register-pressure-aware scheduling: safety, the simulator gate, and
the eviction regression the pass exists to hold.

Mirrors the hoisting-pass suite: correctness is checked differentially
(the reordered program, executed op by op against the real CKKS layer,
decrypts bit-exactly to the program-order outputs), and performance is
checked against the simulator gate's contract - the returned schedule is
never worse than the input in critical-path cycles or ``interm_store``
writeback traffic, on any input.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import FheBuilder, hoist_rotations, order_for_pressure
from repro.compiler.ordering import _order_for_pressure
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.obs import collector as obs
from repro.reliability.validate import validate_program
from repro.workloads import benchmark
from tests.compiler.test_hoisting_pass import _build_program, _execute

_CFG = ChipConfig()

# Traced seed values for plain (unhoisted, program-order)
# packed_bootstrap on the CraterLake configuration, before this pass and
# the simulator's dead-dropping existed: the ROADMAP's "~1.9k evictions"
# open item.  The regression floor below pins the combined scheduler +
# simulator at >= 30% under the eviction seed and at-or-under the
# writeback seed.
SEED_RF_EVICTIONS = 1926
SEED_INTERM_STORE_WORDS = 393216


def test_pressure_ordering_preserves_dependencies():
    b = FheBuilder("dep", degree=65536, max_level=20)
    x = b.input("x", 20)
    y = b.mult(x, x)
    z = b.rotate(y, 1)
    w = b.add(z, y)
    b.output(w)
    prog = b.build()
    ordered = order_for_pressure(prog, _CFG)
    assert len(ordered.ops) == len(prog.ops)
    assert {op.result for op in ordered.ops} == {op.result for op in prog.ops}
    position = {op.result: i for i, op in enumerate(ordered.ops)}
    for op in ordered.ops:
        for operand in op.operands:
            if operand in position:
                assert position[operand] < position[op.result]


@settings(max_examples=10, deadline=None)
@given(groups=st.lists(
    st.lists(st.integers(1, 3), min_size=1, max_size=6),
    min_size=1, max_size=2,
), hint_pool=st.integers(0, 2))
def test_pressure_ordering_is_bit_exact_and_never_slower(fhe, groups,
                                                         hint_pool):
    """The pass may only permute ops along dependency edges, so the
    reordered program must decrypt identically - and the simulator gate
    must make the returned schedule at-or-better in cycles and stores,
    whether it accepted the candidate or fell back to program order."""
    program = _build_program(groups, hint_pool=hint_pool)
    ordered = order_for_pressure(program, _CFG)
    validate_program(ordered, _CFG)

    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(55))
    want = _execute(program, fhe, ct)
    got = _execute(ordered, fhe, ct)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        assert np.array_equal(w, g)

    base = simulate(program, _CFG)
    after = simulate(ordered, _CFG)
    assert after.cycles <= base.cycles
    assert (after.traffic_words["interm_store"]
            <= base.traffic_words["interm_store"])

    # The hoisted form survives pressure scheduling the same way.
    hoisted = hoist_rotations(program, _CFG)
    combined = simulate(order_for_pressure(hoisted, _CFG), _CFG)
    assert combined.cycles <= simulate(hoisted, _CFG).cycles


def test_packed_bootstrap_eviction_regression():
    """The acceptance criterion: combined hoisting + pressure scheduling
    + dead-dropping holds packed_bootstrap's register-file evictions at
    >= 30% under the traced seed (~1.9k) without growing writeback
    traffic or cycles."""
    program = benchmark("packed_bootstrap")
    seed = simulate(program, _CFG)
    hoisted = hoist_rotations(program, _CFG)
    final = simulate(order_for_pressure(hoisted, _CFG), _CFG)

    assert final.rf_evictions <= SEED_RF_EVICTIONS * 0.7
    assert (final.traffic_words["interm_store"]
            <= SEED_INTERM_STORE_WORDS)
    # Never worse than the unscheduled seed on the critical path either.
    assert final.cycles <= seed.cycles


def test_gate_counters_surface_and_gate_sims_stay_silent():
    """The pass books its decisions as compiler.reorder.* counters, and
    its internal what-if simulations run under obs.paused() - a live
    trace must see the scheduling decisions but zero phantom sim.* ops
    from the gate's two probe runs."""
    program = _build_program([[1, 2, 3], [1, 2]])
    with obs.collecting() as c:
        order_for_pressure(program, _CFG)
    picks = (c.counters.get("compiler.reorder.killer_picks", 0)
             + c.counters.get("compiler.reorder.program_order_picks", 0))
    assert picks == len(program.ops)
    assert (c.counters.get("compiler.reorder.gate_accepted", 0)
            + c.counters.get("compiler.reorder.gate_rejected", 0)) == 1
    assert "sim.ops" not in c.counters
    assert not c.op_events


def test_killer_is_pulled_forward():
    """A last-use consumer whose scheduling shrinks the live set runs as
    soon as its operands exist, ahead of program order: the raw ordering
    (no gate) must schedule the value-killing add before the unrelated
    input-stream tail that program order placed first."""
    b = FheBuilder("killer", degree=65536, max_level=20)
    x = b.input("x", 20)
    y = b.mult(x, x)
    z = b.mult(x, x)
    inputs = [b.input(f"pad{i}", 20) for i in range(4)]
    dead = b.add(y, z)  # kills y and z: strictly negative growth
    acc = dead
    for p in inputs:
        acc = b.add(acc, p)
    b.output(acc)
    prog = b.build()
    ordered = _order_for_pressure(prog, _CFG, window=8)
    names = [op.result for op in ordered.ops]
    assert names.index(dead.name) < names.index(inputs[-1].name)
