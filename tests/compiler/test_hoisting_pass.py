"""Differential + property tests for the rotation-hoisting pass.

The pass rewrites groups of same-source rotations into shared-ModUp form
(`repro.compiler.hoisting`).  Correctness is checked *differentially*:
the hoisted program, executed op by op against the real CKKS layer, must
decrypt to bit-exactly the same outputs as the unhoisted program, for
randomized rotation sets.  Performance is checked against the simulator:
the hoisted schedule is never worse, and on the hoisting-heavy
``packed_bootstrap`` workload it is >= 10% better.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import FheBuilder, hoist_rotations, order_for_reuse
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.fhe.hoisting import HoistedRotator
from repro.ir import (
    ADD,
    HOIST_MODUP,
    INPUT,
    OUTPUT,
    ROTATE,
    ROTATE_HOISTED,
    Program,
)
from repro.obs import collector as obs
from repro.obs.export import top_report
from repro.reliability.validate import validate_program
from repro.workloads import benchmark

_CFG = ChipConfig()

# Rotation hints are expensive to generate; cache per step count for the
# session-scoped fhe context.
_HINTS: dict[int, object] = {}


def _hint(fhe, steps: int):
    if steps not in _HINTS:
        _HINTS[steps] = fhe.ctx.rotation_hint(fhe.sk, steps)
    return _HINTS[steps]


def _build_program(groups: list[list[int]], hint_pool: int = 0) -> Program:
    """A program rotating one (or a derived second) source by each step.

    ``groups`` is a list of step lists; group 0 rotates the input, group
    i > 0 rotates a fresh value derived by i doublings, so the pass sees
    several distinct hoisting groups.  All rotation results fold into one
    output through an add chain.  ``hint_pool`` > 0 draws hint ids from a
    shared pool of that many names (``pool{steps % hint_pool}``) - the
    real-workload pattern where one hint id is reused across *different*
    rotation amounts (`repro.workloads.neural`'s ``rot{j % 8}``) - so the
    differential suite exercises programs where hint equality does NOT
    imply value equality; 0 keeps the DSL's per-amount default names.

    Cost metadata (degree 65536, level 57) is paper-scale so the
    profitability gate operates in its real regime - on tiny rings the
    pipeline-fill latency of the hoist -> rotate chain exceeds the
    compute savings and the pass correctly leaves everything fused.  The
    differential executor ignores cost metadata, so the same program
    runs bit-exactly on the small test ring.
    """
    b = FheBuilder("hoist-diff", degree=65536, max_level=60)
    x = b.input("x", 57)
    acc = None
    for gi, steps_list in enumerate(groups):
        src = x
        for _ in range(gi):
            src = b.add(src, src)
        for steps in steps_list:
            hint = f"pool{steps % hint_pool}" if hint_pool else None
            r = b.rotate(src, steps, hint_id=hint)
            acc = r if acc is None else b.add(acc, r)
    b.output(acc if acc is not None else x)
    return b.build()


def _execute(program: Program, fhe, ct) -> list[np.ndarray]:
    """Interpret a Program against the CKKS layer; returns decrypted
    outputs.  Rotation amounts come from the explicit ``op.steps`` field,
    never from hint names: hint ids are reuse handles that workloads
    share across different amounts, so parsing them would make the
    harness blind to exactly the miscompilation it exists to catch."""
    ctx, sk = fhe.ctx, fhe.sk
    env: dict[str, object] = {}
    rotators: dict[str, HoistedRotator] = {}
    outputs: list[np.ndarray] = []
    for op in program.ops:
        if op.kind == INPUT:
            env[op.result] = ct
        elif op.kind == ADD:
            env[op.result] = ctx.add(env[op.operands[0]], env[op.operands[1]])
        elif op.kind == ROTATE:
            assert op.steps is not None, f"rotate {op.result} lost its steps"
            env[op.result] = ctx.rotate(env[op.operands[0]], op.steps,
                                        _hint(fhe, op.steps))
        elif op.kind == HOIST_MODUP:
            rotators[op.result] = HoistedRotator(
                ctx, env[op.operands[0]], alpha=ctx.params.alpha)
        elif op.kind == ROTATE_HOISTED:
            assert op.steps is not None, f"rotate {op.result} lost its steps"
            env[op.result] = rotators[op.operands[0]].rotate(
                op.steps, _hint(fhe, op.steps))
        elif op.kind == OUTPUT:
            outputs.append(ctx.decrypt(sk, env[op.operands[0]]))
        else:  # pragma: no cover - generator only emits the kinds above
            raise AssertionError(f"unexpected op kind {op.kind}")
    return outputs


@settings(max_examples=20, deadline=None)
@given(groups=st.lists(
    st.lists(st.integers(1, 3), min_size=1, max_size=6),
    min_size=1, max_size=2,
), hint_pool=st.integers(0, 2))
def test_hoisted_program_is_bit_exact_and_never_slower(fhe, groups,
                                                       hint_pool):
    program = _build_program(groups, hint_pool=hint_pool)
    hoisted = hoist_rotations(program, _CFG)
    validate_program(hoisted, _CFG)
    if sum(len(g) >= 2 for g in groups):
        assert any(op.kind == HOIST_MODUP for op in hoisted.ops)

    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(77))
    want = _execute(program, fhe, ct)
    got = _execute(hoisted, fhe, ct)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        # Bit-exact, not approximately equal: phi_k commutes with the
        # coefficient-wise digit split, so the hoisted keyswitch computes
        # the identical residue arithmetic in a different order of
        # identical steps.
        assert np.array_equal(w, g)

    base = simulate(program, _CFG).cycles
    assert simulate(hoisted, _CFG).cycles <= base
    # A hoisted program survives the reuse scheduler and still never
    # loses to the plain schedule.
    assert simulate(order_for_reuse(hoisted), _CFG).cycles <= base


def test_singleton_groups_are_never_rewritten():
    # Exact-complement split => hoisting a lone rotation is break-even,
    # and the profitability gate is strict, so even min_group=1 leaves
    # the program untouched.
    program = _build_program([[2]])
    hoisted = hoist_rotations(program, _CFG, min_group=1)
    assert [op.kind for op in hoisted.ops] == [op.kind for op in program.ops]
    assert not any(op.kind == HOIST_MODUP for op in hoisted.ops)


def test_non_rotation_programs_pass_through():
    b = FheBuilder("no-rotations", degree=512, max_level=6)
    x = b.input("x", 6)
    b.output(b.add(x, x))
    program = b.build()
    hoisted = hoist_rotations(program, _CFG)
    assert [op.kind for op in hoisted.ops] == [op.kind for op in program.ops]


def test_same_hint_members_batch_into_one_op():
    # Three rotations by the same amount share an evaluation key; hoisting
    # batches them (repeat=3) so the KSH generator runs once, and rewires
    # the dropped members' consumers to the representative result.
    program = _build_program([[1, 1, 1, 2]])
    hoisted = hoist_rotations(program, _CFG)
    batched = [op for op in hoisted.ops if op.kind == ROTATE_HOISTED]
    assert sorted(op.repeat for op in batched) == [1, 3]
    produced = {op.result for op in hoisted.ops}
    for op in hoisted.ops:
        for operand in op.operands:
            assert operand in produced, f"dangling operand {operand}"


def test_shared_hint_across_amounts_is_not_merged(fhe):
    # Real workloads cycle a small pool of hint slots across *different*
    # rotation amounts: `repro.workloads.neural`'s lola_mnist_ew dense1
    # layer rotates one source by j+1 under 8 shared "rot{j % 8}" hints.
    # A hint id is a reuse handle, not a semantic equivalence - batching
    # on it alone would rewire consumers to the wrong rotation and book
    # the deleted rotations as "savings".  The pass must hoist the group
    # while keeping every distinct amount a separate rotate_hoisted.
    b = FheBuilder("shared-hints", degree=65536, max_level=60)
    x = b.input("x", 57)
    acc = None
    for j in range(12):
        r = b.rotate(x, j + 1, hint_id=f"rot{j % 4}")
        acc = r if acc is None else b.add(acc, r)
    b.output(acc)
    program = b.build()

    hoisted = hoist_rotations(program, _CFG)
    validate_program(hoisted, _CFG)
    assert any(op.kind == HOIST_MODUP for op in hoisted.ops)
    probes = [op for op in hoisted.ops if op.kind == ROTATE_HOISTED]
    # Twelve distinct amounts -> twelve probes, none batched away, with
    # the multiset of amounts preserved exactly.
    assert sorted(p.steps for p in probes) == list(range(1, 13))
    assert all(p.repeat == 1 for p in probes)

    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(31))
    want = _execute(program, fhe, ct)
    got = _execute(hoisted, fhe, ct)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        assert np.array_equal(w, g)


def test_unknown_amounts_never_batch():
    # Hand-built streams may omit HomOp.steps; without a known amount
    # there is no basis for a value merge, even under one shared hint.
    # The ModUp is still shared (that part is amount-independent).
    from repro.ir import HomOp

    program = Program(name="nosteps", degree=65536, max_level=60)
    program.append(HomOp(kind=INPUT, level=57, result="x"))
    for i in range(6):
        program.append(HomOp(kind=ROTATE, level=57, result=f"r{i}",
                             operands=("x",), hint_id="shared"))
    program.append(HomOp(kind=OUTPUT, level=57, result="out",
                         operands=("r5",)))
    hoisted = hoist_rotations(program, _CFG)
    validate_program(hoisted, _CFG)
    probes = [op for op in hoisted.ops if op.kind == ROTATE_HOISTED]
    assert len(probes) == 6
    assert all(p.repeat == 1 for p in probes)
    produced = {op.result for op in hoisted.ops}
    assert {f"r{i}" for i in range(6)} <= produced


def test_dropped_member_as_later_group_source_is_renamed(fhe):
    # A batch-dropped rotation's result can itself be the source of a
    # later hoisting group.  The later group's hoist_modup and probes
    # capture operand names at analysis time, so they must be emitted
    # through the live rename map - otherwise the output program
    # references a name nothing produces and the scheduler silently
    # treats it as an external input.
    b = FheBuilder("chained", degree=65536, max_level=60)
    x = b.input("x", 57)
    r0 = b.rotate(x, 1)
    r1 = b.rotate(x, 1)  # same amount: batches with r0, r1 is dropped
    acc = b.add(r0, r1)
    for steps in (1, 2, 3):
        acc = b.add(acc, b.rotate(r1, steps))
    b.output(acc)
    program = b.build()

    hoisted = hoist_rotations(program, _CFG)
    validate_program(hoisted, _CFG)  # rejects operands with no producer
    assert sum(op.kind == HOIST_MODUP for op in hoisted.ops) == 2
    produced = {op.result for op in hoisted.ops}
    for op in hoisted.ops:
        if op.kind != INPUT:
            for operand in op.operands:
                assert operand in produced, f"dangling operand {operand}"

    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(13))
    want = _execute(program, fhe, ct)
    got = _execute(hoisted, fhe, ct)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        assert np.array_equal(w, g)


def test_version_tracking_separates_redefined_sources():
    # Rotations of *different* values that happen to share an operand name
    # must not share a ModUp.  The DSL emits SSA names, so craft the
    # stream by hand.
    from repro.ir import HomOp

    program = Program(name="versioned", degree=65536, max_level=60)
    program.append(HomOp(kind=INPUT, level=57, result="x"))
    for i in range(3):
        program.append(HomOp(kind=ROTATE, level=57, result=f"r{i}",
                             operands=("x",), hint_id=f"rot{i + 1}"))
    # Redefine x, then rotate the new value by the same amounts.
    program.append(HomOp(kind=ADD, level=57, result="x",
                         operands=("r0", "r1")))
    for i in range(3):
        program.append(HomOp(kind=ROTATE, level=57, result=f"s{i}",
                             operands=("x",), hint_id=f"rot{i + 1}"))
    program.append(HomOp(kind=OUTPUT, level=57, result="out",
                         operands=("s1",)))
    hoisted = hoist_rotations(program, _CFG)
    hoists = [op for op in hoisted.ops if op.kind == HOIST_MODUP]
    assert len(hoists) == 2  # one ModUp per version of x, never shared
    validate_program(hoisted, _CFG)


def test_packed_bootstrap_drops_at_least_ten_percent():
    program = benchmark("packed_bootstrap")
    hoisted = hoist_rotations(program, _CFG)
    base = simulate(program, _CFG).cycles
    fast = simulate(hoisted, _CFG).cycles
    assert (base - fast) / base >= 0.10
    # The reuse scheduler must not undo the win (this guards against
    # raised-object keying that clusters whole groups and thrashes the
    # register file).
    ordered = simulate(order_for_reuse(hoisted), _CFG).cycles
    assert ordered <= simulate(order_for_reuse(program), _CFG).cycles
    assert (base - ordered) / base >= 0.10


def test_pass_counters_surface_in_top_report():
    program = benchmark("packed_bootstrap")
    with obs.collecting() as c:
        hoist_rotations(program, _CFG)
    assert c.counters["compiler.hoist.hoisted_groups"] == 7
    assert c.counters["compiler.hoist.modups_saved"] == 7 * 59
    assert c.counters["compiler.hoist.rotations_hoisted"] == 7 * 60
    report = top_report(c)
    assert "compiler.hoist.hoisted_groups" in report
    assert "compiler.hoist.modups_saved" in report
