"""Differential + property tests for the rotation-hoisting pass.

The pass rewrites groups of same-source rotations into shared-ModUp form
(`repro.compiler.hoisting`).  Correctness is checked *differentially*:
the hoisted program, executed op by op against the real CKKS layer, must
decrypt to bit-exactly the same outputs as the unhoisted program, for
randomized rotation sets.  Performance is checked against the simulator:
the hoisted schedule is never worse, and on the hoisting-heavy
``packed_bootstrap`` workload it is >= 10% better.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import FheBuilder, hoist_rotations, order_for_reuse
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.fhe.hoisting import HoistedRotator
from repro.ir import (
    ADD,
    HOIST_MODUP,
    INPUT,
    OUTPUT,
    ROTATE,
    ROTATE_HOISTED,
    Program,
)
from repro.obs import collector as obs
from repro.obs.export import top_report
from repro.reliability.validate import validate_program
from repro.workloads import benchmark

_CFG = ChipConfig()

# Rotation hints are expensive to generate; cache per step count for the
# session-scoped fhe context.
_HINTS: dict[int, object] = {}


def _hint(fhe, steps: int):
    if steps not in _HINTS:
        _HINTS[steps] = fhe.ctx.rotation_hint(fhe.sk, steps)
    return _HINTS[steps]


def _build_program(groups: list[list[int]]) -> Program:
    """A program rotating one (or a derived second) source by each step.

    ``groups`` is a list of step lists; group 0 rotates the input, group
    i > 0 rotates a fresh value derived by i doublings, so the pass sees
    several distinct hoisting groups.  All rotation results fold into one
    output through an add chain.

    Cost metadata (degree 65536, level 57) is paper-scale so the
    profitability gate operates in its real regime - on tiny rings the
    pipeline-fill latency of the hoist -> rotate chain exceeds the
    compute savings and the pass correctly leaves everything fused.  The
    differential executor ignores cost metadata, so the same program
    runs bit-exactly on the small test ring.
    """
    b = FheBuilder("hoist-diff", degree=65536, max_level=60)
    x = b.input("x", 57)
    acc = None
    for gi, steps_list in enumerate(groups):
        src = x
        for _ in range(gi):
            src = b.add(src, src)
        for steps in steps_list:
            r = b.rotate(src, steps)
            acc = r if acc is None else b.add(acc, r)
    b.output(acc if acc is not None else x)
    return b.build()


def _execute(program: Program, fhe, ct) -> list[np.ndarray]:
    """Interpret a Program against the CKKS layer; returns decrypted
    outputs.  Rotation amounts are parsed from the DSL's default
    ``rot{steps}`` hint names."""
    ctx, sk = fhe.ctx, fhe.sk
    env: dict[str, object] = {}
    rotators: dict[str, HoistedRotator] = {}
    outputs: list[np.ndarray] = []
    for op in program.ops:
        if op.kind == INPUT:
            env[op.result] = ct
        elif op.kind == ADD:
            env[op.result] = ctx.add(env[op.operands[0]], env[op.operands[1]])
        elif op.kind == ROTATE:
            steps = int(op.hint_id.removeprefix("rot"))
            env[op.result] = ctx.rotate(env[op.operands[0]], steps,
                                        _hint(fhe, steps))
        elif op.kind == HOIST_MODUP:
            rotators[op.result] = HoistedRotator(
                ctx, env[op.operands[0]], alpha=ctx.params.alpha)
        elif op.kind == ROTATE_HOISTED:
            steps = int(op.hint_id.removeprefix("rot"))
            env[op.result] = rotators[op.operands[0]].rotate(
                steps, _hint(fhe, steps))
        elif op.kind == OUTPUT:
            outputs.append(ctx.decrypt(sk, env[op.operands[0]]))
        else:  # pragma: no cover - generator only emits the kinds above
            raise AssertionError(f"unexpected op kind {op.kind}")
    return outputs


@settings(max_examples=20, deadline=None)
@given(groups=st.lists(
    st.lists(st.integers(1, 3), min_size=1, max_size=6),
    min_size=1, max_size=2,
))
def test_hoisted_program_is_bit_exact_and_never_slower(fhe, groups):
    program = _build_program(groups)
    hoisted = hoist_rotations(program, _CFG)
    validate_program(hoisted, _CFG)
    if sum(len(g) >= 2 for g in groups):
        assert any(op.kind == HOIST_MODUP for op in hoisted.ops)

    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(77))
    want = _execute(program, fhe, ct)
    got = _execute(hoisted, fhe, ct)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        # Bit-exact, not approximately equal: phi_k commutes with the
        # coefficient-wise digit split, so the hoisted keyswitch computes
        # the identical residue arithmetic in a different order of
        # identical steps.
        assert np.array_equal(w, g)

    base = simulate(program, _CFG).cycles
    assert simulate(hoisted, _CFG).cycles <= base
    # A hoisted program survives the reuse scheduler and still never
    # loses to the plain schedule.
    assert simulate(order_for_reuse(hoisted), _CFG).cycles <= base


def test_singleton_groups_are_never_rewritten():
    # Exact-complement split => hoisting a lone rotation is break-even,
    # and the profitability gate is strict, so even min_group=1 leaves
    # the program untouched.
    program = _build_program([[2]])
    hoisted = hoist_rotations(program, _CFG, min_group=1)
    assert [op.kind for op in hoisted.ops] == [op.kind for op in program.ops]
    assert not any(op.kind == HOIST_MODUP for op in hoisted.ops)


def test_non_rotation_programs_pass_through():
    b = FheBuilder("no-rotations", degree=512, max_level=6)
    x = b.input("x", 6)
    b.output(b.add(x, x))
    program = b.build()
    hoisted = hoist_rotations(program, _CFG)
    assert [op.kind for op in hoisted.ops] == [op.kind for op in program.ops]


def test_same_hint_members_batch_into_one_op():
    # Three rotations by the same amount share an evaluation key; hoisting
    # batches them (repeat=3) so the KSH generator runs once, and rewires
    # the dropped members' consumers to the representative result.
    program = _build_program([[1, 1, 1, 2]])
    hoisted = hoist_rotations(program, _CFG)
    batched = [op for op in hoisted.ops if op.kind == ROTATE_HOISTED]
    assert sorted(op.repeat for op in batched) == [1, 3]
    produced = {op.result for op in hoisted.ops}
    for op in hoisted.ops:
        for operand in op.operands:
            assert operand in produced, f"dangling operand {operand}"


def test_version_tracking_separates_redefined_sources():
    # Rotations of *different* values that happen to share an operand name
    # must not share a ModUp.  The DSL emits SSA names, so craft the
    # stream by hand.
    from repro.ir import HomOp

    program = Program(name="versioned", degree=65536, max_level=60)
    program.append(HomOp(kind=INPUT, level=57, result="x"))
    for i in range(3):
        program.append(HomOp(kind=ROTATE, level=57, result=f"r{i}",
                             operands=("x",), hint_id=f"rot{i + 1}"))
    # Redefine x, then rotate the new value by the same amounts.
    program.append(HomOp(kind=ADD, level=57, result="x",
                         operands=("r0", "r1")))
    for i in range(3):
        program.append(HomOp(kind=ROTATE, level=57, result=f"s{i}",
                             operands=("x",), hint_id=f"rot{i + 1}"))
    program.append(HomOp(kind=OUTPUT, level=57, result="out",
                         operands=("s1",)))
    hoisted = hoist_rotations(program, _CFG)
    hoists = [op for op in hoisted.ops if op.kind == HOIST_MODUP]
    assert len(hoists) == 2  # one ModUp per version of x, never shared
    validate_program(hoisted, _CFG)


def test_packed_bootstrap_drops_at_least_ten_percent():
    program = benchmark("packed_bootstrap")
    hoisted = hoist_rotations(program, _CFG)
    base = simulate(program, _CFG).cycles
    fast = simulate(hoisted, _CFG).cycles
    assert (base - fast) / base >= 0.10
    # The reuse scheduler must not undo the win (this guards against
    # raised-object keying that clusters whole groups and thrashes the
    # register file).
    ordered = simulate(order_for_reuse(hoisted), _CFG).cycles
    assert ordered <= simulate(order_for_reuse(program), _CFG).cycles
    assert (base - ordered) / base >= 0.10


def test_pass_counters_surface_in_top_report():
    program = benchmark("packed_bootstrap")
    with obs.collecting() as c:
        hoist_rotations(program, _CFG)
    assert c.counters["compiler.hoist.hoisted_groups"] == 7
    assert c.counters["compiler.hoist.modups_saved"] == 7 * 59
    assert c.counters["compiler.hoist.rotations_hoisted"] == 7 * 60
    report = top_report(c)
    assert "compiler.hoist.hoisted_groups" in report
    assert "compiler.hoist.modups_saved" in report
