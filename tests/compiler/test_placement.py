"""Greedy bootstrap placement (Sec. 2.3's NP-hard problem, chain case)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.placement import (
    Placement,
    amortized_cost_per_op,
    greedy_is_lazy,
    plan_refreshes,
)


def test_no_refresh_when_budget_suffices():
    p = plan_refreshes([3, 3, 3], usable_levels=10)
    assert p.count == 0


def test_refresh_exactly_at_exhaustion():
    p = plan_refreshes([3, 3, 3, 3], usable_levels=10)
    # 3+3+3 = 9 fits; the 4th step would need 12 > 10: refresh before it.
    assert p.refresh_before == (3,)


def test_repeated_refreshes():
    p = plan_refreshes([5] * 10, usable_levels=10)
    assert p.count == 4  # two steps per region after the first budget


def test_start_budget_override():
    p = plan_refreshes([5, 5], usable_levels=20, start_budget=5)
    assert p.refresh_before == (1,)


def test_oversized_step_rejected():
    with pytest.raises(ValueError, match="decompose"):
        plan_refreshes([25], usable_levels=22)
    with pytest.raises(ValueError):
        plan_refreshes([1], usable_levels=0)


def test_amortized_cost():
    p = Placement(refresh_before=(2,), usable_levels=10)
    cost = amortized_cost_per_op(p, [1.0, 1.0, 1.0, 1.0], bootstrap_cost=8.0)
    assert cost == (4 + 8) / 4
    with pytest.raises(ValueError):
        amortized_cost_per_op(p, [], 1.0)


@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=40),
       st.integers(min_value=8, max_value=30))
@settings(max_examples=60, deadline=None)
def test_greedy_placement_properties(depths, usable):
    """Properties: the plan is feasible (no region over budget) and lazy
    (never refreshes while the next step still fits) - which for serial
    chains implies minimal refresh count."""
    p = plan_refreshes(depths, usable)
    # Feasibility: replay and confirm budget never goes negative.
    budget = usable
    refreshes = set(p.refresh_before)
    for i, d in enumerate(depths):
        if i in refreshes:
            budget = usable
        budget -= d
        assert budget >= 0
    assert greedy_is_lazy(p, depths)
