"""Reuse-ordering pass: dependency safety and traffic improvement."""

import pytest

from repro.compiler.dsl import FheBuilder
from repro.compiler.ordering import order_for_reuse
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.ir import HomOp, Program


def interleaved_hints_program():
    """Rotations alternating between two hints on independent data: the
    worst order for hint reuse, trivially improvable by grouping."""
    b = FheBuilder("interleave", degree=65536, max_level=60)
    xs = [b.input(f"x{i}", 60) for i in range(6)]
    for x in xs:
        b.rotate(x, 1, hint_id="hintA")
    # Emit in an interleaved order by rebuilding manually:
    prog = b.build()
    ops = []
    for i, x in enumerate(xs):
        ops.append(HomOp(kind="rotate", level=60, result=f"ra{i}",
                         operands=(x.name,), hint_id="hintA"))
        ops.append(HomOp(kind="rotate", level=60, result=f"rb{i}",
                         operands=(x.name,), hint_id="hintB"))
    out = Program(name="interleave", degree=65536, max_level=60)
    out.ops = [op for op in prog.ops if op.kind == "input"] + ops
    return out


def test_ordering_preserves_dependencies():
    b = FheBuilder("dep", degree=65536, max_level=20)
    x = b.input("x", 20)
    y = b.mult(x, x)
    z = b.rotate(y, 1)
    b.output(z)
    prog = b.build()
    ordered = order_for_reuse(prog)
    assert len(ordered.ops) == len(prog.ops)
    position = {op.result: i for i, op in enumerate(ordered.ops)}
    for op in ordered.ops:
        for operand in op.operands:
            if operand in position:
                assert position[operand] < position[op.result]


def test_ordering_groups_hint_uses():
    prog = interleaved_hints_program()
    ordered = order_for_reuse(prog)
    hints = [op.hint_id for op in ordered.ops if op.hint_id]
    # After ordering, each hint's uses are contiguous (2 runs, not 12).
    runs = 1 + sum(1 for a, b in zip(hints, hints[1:]) if a != b)
    assert runs == 2


def test_ordering_reduces_simulated_traffic():
    """With a register file that fits one L=60 hint, grouping hint uses
    halves the KSH traffic - the compiler's reason to reorder."""
    prog = interleaved_hints_program()
    cfg = ChipConfig().with_register_file(64)
    before = simulate(prog, cfg).traffic_words["ksh"]
    after = simulate(order_for_reuse(prog), cfg).traffic_words["ksh"]
    assert after <= before / 3


def test_ordering_is_idempotent_on_serial_chains():
    b = FheBuilder("serial", degree=65536, max_level=20)
    x = b.input("x", 20)
    for _ in range(5):
        x = b.mult(x, x)
    prog = b.build()
    ordered = order_for_reuse(prog)
    assert [op.result for op in ordered.ops] == [op.result for op in prog.ops]
