"""Kernel op-count shapes: BSGS matvec, PS activation, reductions."""

import math

from repro.compiler.dsl import FheBuilder
from repro.compiler.kernels import (
    blocked_matvec,
    matvec,
    polynomial_activation,
    rotate_accumulate,
)
from repro.ir import MULT, PMULT, ROTATE


def fresh(level=20):
    b = FheBuilder("k", degree=65536, max_level=level)
    return b, b.input("x", level)


def test_matvec_bsgs_rotation_count():
    b, x = fresh()
    matvec(b, x, 256, weights="w")
    prog = b.build()
    rotations = prog.count(ROTATE)
    # BSGS: ~2*sqrt(256) rotations, far fewer than 256.
    assert rotations < 256 / 4
    assert rotations >= math.isqrt(256) - 1


def test_matvec_consumes_one_level():
    b, x = fresh()
    out = matvec(b, x, 64, weights="w")
    assert out.level == 19


def test_matvec_batched_pmults_cover_all_diagonals():
    b, x = fresh()
    matvec(b, x, 100, weights="w")
    prog = b.build()
    total = sum(op.repeat for op in prog.ops if op.kind == PMULT)
    assert total == 100


def test_matvec_hint_sharing_across_calls():
    b, x = fresh()
    matvec(b, x, 64, weights="w1")
    matvec(b, x, 64, weights="w2")
    prog = b.build()
    hints = {op.hint_id for op in prog.ops if op.kind == ROTATE}
    # Same default hint namespace: second matvec reuses the first's hints.
    per_call = prog.count(ROTATE) // 2
    assert len(hints) == per_call


def test_blocked_matvec_scales_compute_not_hints():
    b1, x1 = fresh()
    blocked_matvec(b1, x1, 32, blocks=1, weights="w")
    b8, x8 = fresh()
    blocked_matvec(b8, x8, 32, blocks=8, weights="w")
    p1, p8 = b1.build(), b8.build()
    assert p1.distinct_hints() == p8.distinct_hints()
    reps1 = sum(op.repeat for op in p1.ops if op.kind == ROTATE)
    reps8 = sum(op.repeat for op in p8.ops if op.kind == ROTATE)
    assert reps8 == 8 * reps1


def test_polynomial_activation_log_depth():
    for degree in (3, 7, 15, 27, 63):
        b, x = fresh(level=20)
        out = polynomial_activation(b, x, degree)
        consumed = 20 - out.level
        assert consumed <= math.ceil(math.log2(degree + 1)) + 3, degree


def test_polynomial_activation_sqrt_mults():
    b, x = fresh()
    polynomial_activation(b, x, 63)
    mults = b.build().count(MULT)
    assert mults < 63 / 2          # PS: far below one mult per degree
    assert mults >= math.isqrt(63)


def test_rotate_accumulate_log_rotations():
    b, x = fresh()
    rotate_accumulate(b, x, 256)
    assert b.build().count(ROTATE) == 8  # log2(256)
