"""The compiler/artifact contract: serialization, fingerprints, cache.

Three layers of guarantees, in the order the cache depends on them:

1. Round-trip bit-exactness - a Program survives the columnar encoding
   and the on-disk artifact format fieldwise (hypothesis-driven over
   builder-generated programs, plus the hoisted/batched real thing).
2. Fingerprint contract - invariant under SSA/hint/plaintext renames,
   dict ordering, and display names; sensitive to every schedule-
   relevant mutation of program, config, or pass flags.
3. Cache behavior - LRU memory tier, persistent disk tier, corruption
   of any artifact byte degrades to a counted miss (never an exception,
   never a wrong schedule), and ``simulate(cache=...)`` produces
   bit-identical results to a fresh compile on the deep benchmarks.

docs/COMPILER.md's worked example is validated here too, so the doc
cannot drift from the code.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cache import (
    DEFAULT_FLAGS,
    FORMAT_VERSION,
    CompileCache,
    canonical_json,
    compile_program,
    default_cache_dir,
    fingerprint,
    load_artifact,
    normalize_flags,
    program_from_arrays,
    program_to_arrays,
    save_artifact,
)
from repro.compiler.dsl import FheBuilder
from repro.compiler.hoisting import hoist_rotations
from repro.compiler.ordering import order_for_pressure
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.ir import HomOp, Program
from repro.obs import collector as obs
from repro.reliability.errors import ArtifactError
from repro.workloads import DEEP_BENCHMARKS, benchmark

REPO = Path(__file__).resolve().parents[2]


def docs_example_program() -> Program:
    """The worked example in docs/COMPILER.md (kept tiny on purpose)."""
    b = FheBuilder("docs-example", degree=64, max_level=4)
    x = b.input("x", level=3)
    r1 = b.rotate(x, steps=1)
    r2 = b.rotate(x, steps=2)
    s = b.add(r1, r2)
    b.output(s)
    return b.build()


def renamed(program: Program, value_prefix: str = "", hint_prefix: str = "",
            pt_prefix: str = "") -> Program:
    """A fresh Program with every name consistently prefixed."""
    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    for op in program.ops:
        out.ops.append(replace(
            op,
            result=value_prefix + op.result,
            operands=tuple(value_prefix + o for o in op.operands),
            hint_id=(hint_prefix + op.hint_id
                     if op.hint_id is not None else None),
            plaintext_id=(pt_prefix + op.plaintext_id
                          if op.plaintext_id is not None else None),
        ))
    return out


def with_ops(program: Program, ops: list[HomOp]) -> Program:
    """A fresh Program (no fingerprint memo) carrying ``ops``."""
    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    out.ops = ops
    return out


# -- hypothesis: builder-generated programs ---------------------------------

@st.composite
def programs(draw) -> Program:
    """Valid programs via the DSL: random dags of add/rotate/pmult/mult
    over a shared hint pool, so serialization sees hint sharing,
    plaintexts, steps (positive and negative), and level drops."""
    b = FheBuilder(draw(st.sampled_from(["p", "prog-x"])),
                   degree=64, max_level=8)
    values = [b.input(f"in{i}", level=draw(st.integers(4, 8)))
              for i in range(draw(st.integers(1, 3)))]
    for _ in range(draw(st.integers(0, 12))):
        action = draw(st.sampled_from(["add", "rotate", "pmult", "mult"]))
        a = draw(st.sampled_from(values))
        if action == "add":
            other = draw(st.sampled_from(values))
            if other.level == a.level:
                values.append(b.add(a, other))
        elif action == "rotate":
            steps = draw(st.integers(-31, 31))
            hint = draw(st.sampled_from([None, "hA", "hB"]))
            values.append(b.rotate(a, steps=steps, hint_id=hint))
        elif action == "pmult":
            pt = draw(st.sampled_from(["w0", "w1"]))
            if a.level >= 2:
                values.append(b.pmult(a, pt, compact=draw(st.booleans())))
        elif action == "mult":
            other = draw(st.sampled_from(values))
            if other.level == a.level and a.level >= 2:
                values.append(b.mult(a, other))
    b.output(draw(st.sampled_from(values)))
    return b.build()


@settings(max_examples=50, deadline=None)
@given(programs())
def test_round_trip_is_bit_exact(program):
    arrays = program_to_arrays(program)
    meta = {"name": program.name, "degree": program.degree,
            "max_level": program.max_level,
            "description": program.description,
            "op_count": len(program.ops)}
    loaded = program_from_arrays(meta, arrays)
    assert loaded == program  # dataclass fieldwise equality, ops included
    assert fingerprint(loaded) == fingerprint(program)


@settings(max_examples=50, deadline=None)
@given(programs(), st.data())
def test_any_schedule_relevant_mutation_changes_fingerprint(program, data):
    base = fingerprint(program)
    ops = list(program.ops)
    i = data.draw(st.integers(0, len(ops) - 1), label="op index")
    op = ops[i]
    mutations = ["drop", "tag", "level"]
    if op.kind in ("mult", "pmult", "add", "rotate", "conjugate",
                   "rotate_hoisted"):
        mutations.append("repeat")
    if op.kind in ("rotate", "rotate_hoisted"):
        mutations.append("steps")
    kind = data.draw(st.sampled_from(mutations), label="mutation")
    if kind == "drop":
        del ops[i]
    elif kind == "steps":
        ops[i] = replace(op, steps=(op.steps or 0) + 1)
    elif kind == "repeat":
        ops[i] = replace(op, repeat=op.repeat + 1)
    elif kind == "tag":
        ops[i] = replace(op, tag=op.tag + "x")
    elif kind == "level":
        ops[i] = replace(op, level=max(1, op.level - 1)
                         if op.level > 1 else op.level + 1)
    assert fingerprint(with_ops(program, ops)) != base


def test_fingerprint_sensitive_to_op_order():
    # Op order IS the schedule; reordering distinct op kinds must miss.
    # (Swapping two *isomorphic* ops - same kind, same wiring - is a
    # rename and legitimately hits; that's the invariance tests above.)
    program = docs_example_program()
    i = next(i for i, op in enumerate(program.ops) if op.kind == "rotate")
    ops = list(program.ops)
    ops[i], ops[i + 1] = ops[i + 1], ops[i]
    assert fingerprint(with_ops(program, ops)) != fingerprint(program)


# -- fingerprint invariances (the other half of the contract) ---------------

def test_fingerprint_invariant_under_consistent_renames():
    program = docs_example_program()
    base = fingerprint(program)
    assert fingerprint(renamed(program, value_prefix="ssa_")) == base
    assert fingerprint(renamed(program, hint_prefix="hint_")) == base
    assert fingerprint(renamed(program, value_prefix="z", hint_prefix="q",
                               pt_prefix="w")) == base


def test_fingerprint_sensitive_to_hint_sharing_structure():
    # Collapsing two distinct hints into one is NOT a rename: it changes
    # how much hint traffic the schedule pays, so it must change the hash.
    b = FheBuilder("two-hints", degree=64, max_level=4)
    x = b.input("x", level=3)
    b.output(b.add(b.rotate(x, steps=1, hint_id="h1"),
                   b.rotate(x, steps=2, hint_id="h2")))
    two = b.build()
    merged = with_ops(two, [
        replace(op, hint_id="h1" if op.hint_id is not None else None)
        for op in two.ops
    ])
    assert fingerprint(merged) != fingerprint(two)


def test_fingerprint_ignores_display_names_only():
    program = docs_example_program()
    base = fingerprint(program)
    relabeled = with_ops(program, list(program.ops))
    relabeled.name = "something-else"
    relabeled.description = "same schedule, new label"
    assert fingerprint(relabeled) == base
    assert fingerprint(program, ChipConfig(name="renamed-chip")) == \
        fingerprint(program, ChipConfig())
    assert fingerprint(program, ChipConfig(register_file_mb=128.0)) != \
        fingerprint(program, ChipConfig())
    assert fingerprint(program, ChipConfig(prefetch_depth=4)) != \
        fingerprint(program, ChipConfig())


def test_fingerprint_sensitive_to_flags_and_ring_params():
    program = docs_example_program()
    base = fingerprint(program)
    assert fingerprint(program, flags={"window": 8}) != base
    assert fingerprint(program, flags={"reuse": True}) != base
    assert fingerprint(program, flags=dict(DEFAULT_FLAGS)) == base
    bigger = with_ops(program, list(program.ops))
    bigger.max_level = program.max_level + 1
    assert fingerprint(bigger) != base


def test_fingerprint_insensitive_to_dict_ordering():
    program = docs_example_program()
    shuffled = dict(reversed(list(DEFAULT_FLAGS.items())))
    assert fingerprint(program, flags=shuffled) == fingerprint(program)
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_unknown_pass_flag_is_rejected():
    with pytest.raises(ArtifactError):
        normalize_flags({"presure": True})  # typo must not alias pipelines


# -- artifacts on disk ------------------------------------------------------

def test_artifact_round_trip_and_deterministic_bytes(tmp_path):
    program = compile_program(docs_example_program())
    cfg = ChipConfig()
    fp = fingerprint(program, cfg)
    manifest = save_artifact(tmp_path / "a", program, fp, cfg)
    loaded = load_artifact(tmp_path / "a", expect_fingerprint=fp)
    assert loaded == program
    # Re-serializing the identical compilation is byte-identical (no
    # timestamps in the manifest; the seal covers array contents).
    save_artifact(tmp_path / "b", program, fp, cfg)
    assert manifest.read_bytes() == (tmp_path / "b.json").read_bytes()


def test_artifact_round_trips_hoisted_and_batched_ops(tmp_path):
    # The real thing: a deep benchmark slice with hoist_modup /
    # rotate_hoisted ops, shared hints, compact plaintexts, repeat>1.
    program = hoist_rotations(benchmark("packed_bootstrap"), ChipConfig())
    assert program.count("hoist_modup") > 0
    fp = fingerprint(program)
    save_artifact(tmp_path / "pb", program, fp, ChipConfig())
    assert load_artifact(tmp_path / "pb", expect_fingerprint=fp) == program


def test_artifact_version_skew_is_rejected(tmp_path):
    program = docs_example_program()
    fp = fingerprint(program)
    base = tmp_path / "v"
    save_artifact(base, program, fp, ChipConfig())
    manifest = json.loads(base.with_suffix(".json").read_text())
    manifest["format"] = FORMAT_VERSION + 1
    base.with_suffix(".json").write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError):
        load_artifact(base)


def test_artifact_wrong_fingerprint_is_rejected(tmp_path):
    program = docs_example_program()
    save_artifact(tmp_path / "f", program, "0" * 64, ChipConfig())
    with pytest.raises(ArtifactError):
        load_artifact(tmp_path / "f", expect_fingerprint="1" * 64)


# -- the two-tier cache -----------------------------------------------------

def test_memory_tier_hit_miss_and_lru_eviction():
    cache = CompileCache(memory_entries=2)
    progs = {f"fp{i}": docs_example_program() for i in range(3)}
    assert cache.get("fp0") is None
    for fp, p in progs.items():
        cache.put(fp, p)
    # fp0 was evicted by fp2 (LRU, capacity 2)
    assert cache.get("fp0") is None
    assert cache.get("fp1") is not None
    assert cache.get("fp2") is not None
    assert cache.stats == {"hit": 2, "miss": 2, "store": 3, "evict": 1,
                           "invalid": 0}


def test_put_snapshots_the_ops_list():
    cache = CompileCache()
    program = docs_example_program()
    cache.put("fp", program)
    program.ops.append(HomOp(kind="input", level=1, result="late"))
    assert len(cache.get("fp").ops) == len(program.ops) - 1


def test_disk_tier_survives_process_restart(tmp_path):
    program = compile_program(docs_example_program())
    fp = fingerprint(program)
    CompileCache(tmp_path).put(fp, program, ChipConfig())
    fresh = CompileCache(tmp_path)  # a "new process"
    hit = fresh.get(fp)
    assert hit == program
    assert fresh.stats["hit"] == 1
    # and the loaded copy was promoted to the memory tier
    assert fresh.get(fp) is hit


@pytest.mark.parametrize("corruption", [
    "truncate_npz", "bitflip_npz", "garbage_json", "missing_npz",
    "empty_json",
])
def test_corrupt_artifact_degrades_to_counted_miss(tmp_path, corruption):
    program = docs_example_program()
    fp = fingerprint(program)
    cache = CompileCache(tmp_path)
    cache.put(fp, program, ChipConfig())
    npz = tmp_path / f"{fp}.npz"
    manifest = tmp_path / f"{fp}.json"
    if corruption == "truncate_npz":
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
    elif corruption == "bitflip_npz":
        raw = bytearray(npz.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        npz.write_bytes(bytes(raw))
    elif corruption == "garbage_json":
        manifest.write_text("{not json")
    elif corruption == "missing_npz":
        npz.unlink()
    elif corruption == "empty_json":
        manifest.write_text("")
    cache._memory.clear()  # force the disk path
    assert cache.get(fp) is None  # never an exception
    assert cache.stats["invalid"] == 1
    assert cache.stats["miss"] == 1
    assert not manifest.exists() and not npz.exists()  # cleaned up
    # and the slot is reusable: a re-store round-trips again
    cache.put(fp, program, ChipConfig())
    cache._memory.clear()
    assert cache.get(fp) == program


def test_disk_budget_evicts_oldest_artifact(tmp_path):
    program = compile_program(docs_example_program())
    cache = CompileCache(tmp_path, disk_bytes=1)  # fits nothing...
    cache.put("a" * 64, program, ChipConfig())
    # ...but the just-written artifact always survives (budget degrades
    # capacity, not correctness).
    assert (tmp_path / ("a" * 64 + ".json")).exists()
    pair_bytes = sum(p.stat().st_size for p in tmp_path.iterdir())
    cache = CompileCache(tmp_path, disk_bytes=int(pair_bytes * 2.5))
    os.utime(tmp_path / ("a" * 64 + ".json"), times=(1, 1))  # oldest
    cache.put("b" * 64, program, ChipConfig())
    cache.put("c" * 64, program, ChipConfig())
    assert not (tmp_path / ("a" * 64 + ".json")).exists()
    assert not (tmp_path / ("a" * 64 + ".npz")).exists()
    assert (tmp_path / ("c" * 64 + ".json")).exists()
    assert cache.stats["evict"] >= 1


def test_unwritable_directory_is_swallowed(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("")  # mkdir(parents=True) under a file -> OSError
    cache = CompileCache(blocker / "cache")
    cache.put("d" * 64, docs_example_program(), ChipConfig())  # no raise
    assert cache.get("d" * 64) is not None  # memory tier still works


def test_cache_counters_flow_through_obs():
    with obs.collecting() as collector:
        cache = CompileCache()
        cache.get("e" * 64)
        cache.put("e" * 64, docs_example_program())
        cache.get("e" * 64)
    assert collector.counters["compiler.cache.miss"] == 1
    assert collector.counters["compiler.cache.store"] == 1
    assert collector.counters["compiler.cache.hit"] == 1
    assert collector.counters["compiler.cache.hit.memory"] == 1


# -- compile_program + simulate wiring --------------------------------------

def test_compile_program_matches_manual_pipeline():
    program = docs_example_program()
    cfg = ChipConfig()
    manual = order_for_pressure(hoist_rotations(program, cfg, 2), cfg, 32)
    assert compile_program(program, cfg) == manual
    cache = CompileCache()
    first = compile_program(program, cfg, cache=cache)
    again = compile_program(program, cfg, cache=cache)
    assert first == manual == again
    assert cache.stats == {"hit": 1, "miss": 1, "store": 1, "evict": 0,
                           "invalid": 0}


def test_cache_hit_keeps_caller_metadata():
    cache = CompileCache()
    compile_program(docs_example_program(), cache=cache)
    relabeled = docs_example_program()
    relabeled.name = "served-request-17"
    relabeled.description = "same graph, new label"
    out = compile_program(relabeled, cache=cache)
    assert cache.stats["hit"] == 1
    assert out.name == "served-request-17"
    assert out.description == "same graph, new label"


def test_compile_spans_are_recorded():
    with obs.collecting() as collector:
        compile_program(docs_example_program(), cache=CompileCache())
    totals = collector.span_totals()
    assert totals["compiler.compile"][0] == 1
    assert totals["compiler.cache.fingerprint"][0] == 1


def test_cache_knob_accepts_a_directory_path(tmp_path):
    from repro.compiler.cache import resolve_cache

    compile_program(docs_example_program(), cache=str(tmp_path))
    assert list(tmp_path.glob("*.json"))  # persisted under the given dir
    assert resolve_cache(None) is None and resolve_cache(False) is None
    with pytest.raises(ArtifactError):
        resolve_cache(123)


def test_simulate_cache_knob_is_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
    program = docs_example_program()
    result = simulate(program, ChipConfig())
    # No compilation happened: the program went in as-is.
    assert result.name == program.name
    with obs.collecting() as collector:
        simulate(program, ChipConfig())
    assert "compiler.cache.miss" not in collector.counters


def test_simulate_cache_env_knob(monkeypatch, tmp_path):
    import repro.compiler.cache as cache_mod
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)
    assert default_cache_dir() == tmp_path
    program = docs_example_program()
    first = simulate(program, ChipConfig())
    second = simulate(docs_example_program(), ChipConfig())
    assert first == second
    assert cache_mod._DEFAULT_CACHE.stats["hit"] == 1
    assert list(tmp_path.glob("*.json"))  # persisted via REPRO_CACHE_DIR


@pytest.mark.slow
@pytest.mark.parametrize("name", DEEP_BENCHMARKS)
def test_cached_simulation_is_bit_identical(name):
    """The differential seal: on every deep benchmark, simulating the
    cache-hit schedule reproduces the fresh compile's SimResult exactly
    (cycles, traffic, every field)."""
    program = benchmark(name)
    cfg = ChipConfig()
    cache = CompileCache()
    fresh = simulate(program, cfg, cache=cache)   # miss: full pipeline
    cached = simulate(program, cfg, cache=cache)  # hit: deserialized ops
    assert cache.stats["hit"] == 1 and cache.stats["miss"] == 1
    assert cached == fresh  # dataclass equality: bit-identical everything
    assert cached.cycles == fresh.cycles


# -- docs stay true ---------------------------------------------------------

def test_compiler_doc_example_is_generated_from_code():
    """docs/COMPILER.md's worked example must match what the code
    actually produces for the example program."""
    text = (REPO / "docs" / "COMPILER.md").read_text()
    program = docs_example_program()
    fp = fingerprint(program)
    token = re.search(r'"program_sha256": "([0-9a-f]{64})"', text)
    assert token, "COMPILER.md lost its fingerprint-document example"
    from repro.compiler.cache import program_token
    assert token.group(1) == program_token(program)
    assert fp in text, "COMPILER.md's example fingerprint is stale"
    doc_flags = re.search(r"DEFAULT_FLAGS = (\{[^}]+\})", text)
    assert doc_flags and eval(doc_flags.group(1)) == DEFAULT_FLAGS


def test_repo_docs_links_resolve():
    """No broken intra-repo links in README/docs (same check CI runs)."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs_links.py"),
         str(REPO / "README.md"), str(REPO / "docs")],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
