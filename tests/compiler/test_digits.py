"""Digit schedule selection for security targets (Sec. 3.1)."""

import pytest

from repro.compiler.digits import digit_schedule, max_usable_level


def test_80bit_schedule_mostly_one_digit():
    sched = digit_schedule(65536, 80, 57)
    assert sched[1] == 1
    assert sched[30] == 1
    assert max(sched.values()) <= 2
    # The 1->2 digit crossover sits in the upper-40s/low-50s.
    crossover = min(l for l, d in sched.items() if d == 2)
    assert 45 <= crossover <= 57


def test_schedule_monotone_in_level():
    sched = digit_schedule(65536, 80, 57)
    for level in range(2, 57):
        assert sched[level] >= sched[level - 1]


def test_128bit_needs_higher_digits():
    max_lvl = max_usable_level(65536, 128)
    sched = digit_schedule(65536, 128, max_lvl)
    assert max(sched.values()) >= 3


def test_insecure_combination_raises():
    with pytest.raises(ValueError, match="insecure"):
        digit_schedule(4096, 128, 30)


def test_max_usable_level_by_degree():
    assert max_usable_level(131072, 200) > max_usable_level(65536, 200)
    assert max_usable_level(65536, 80) > max_usable_level(65536, 128)
