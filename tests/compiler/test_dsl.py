"""DSL front end: level tracking, digit schedules, op emission."""

import pytest

from repro.compiler.dsl import FheBuilder, Value
from repro.ir import ADD, INPUT, MULT, OUTPUT, PMULT, RESCALE, ROTATE


def make_builder(**kw):
    defaults = dict(name="t", degree=65536, max_level=20)
    defaults.update(kw)
    return FheBuilder(**defaults)


def test_value_validation():
    with pytest.raises(ValueError):
        Value("x", 0)


def test_input_output_roundtrip():
    b = make_builder()
    x = b.input("x", 10)
    b.output(x)
    prog = b.build()
    assert [op.kind for op in prog.ops] == [INPUT, OUTPUT]
    assert prog.ops[1].operands == (x.name,)


def test_mult_emits_keyswitch_and_rescale():
    b = make_builder()
    x = b.input("x", 10)
    y = b.mult(x, x)
    prog = b.build()
    kinds = [op.kind for op in prog.ops]
    assert kinds == [INPUT, MULT, RESCALE]
    assert y.level == 9
    assert prog.ops[1].hint_id == "relin"


def test_mult_level_mismatch():
    b = make_builder()
    x = b.input("x", 10)
    y = b.input("y", 8)
    with pytest.raises(ValueError, match="different levels"):
        b.mult(x, y)
    b.mult(b.mod_drop(x, 8), y)  # aligned: fine


def test_add_auto_aligns_levels():
    b = make_builder()
    x = b.input("x", 10)
    y = b.input("y", 7)
    z = b.add(x, y)
    assert z.level == 7


def test_rotate_hint_naming():
    b = make_builder()
    x = b.input("x", 10)
    b.rotate(x, 5)
    b.rotate(x, 5, hint_id="custom")
    prog = b.build()
    assert prog.ops[1].hint_id == "rot5"
    assert prog.ops[2].hint_id == "custom"


def test_digit_schedule_applied_per_level():
    b = make_builder(digit_schedule={10: 2, 9: 1})
    x = b.input("x", 10)
    y = b.mult(x, x)          # keyswitch at level 10 -> 2 digits
    b.mult(y, y)              # at level 9 -> 1 digit
    prog = b.build()
    mults = [op for op in prog.ops if op.kind == MULT]
    assert mults[0].digits == 2
    assert mults[1].digits == 1


def test_rescale_floor():
    b = make_builder()
    x = b.input("x", 1)
    with pytest.raises(ValueError):
        b.rescale(x)


def test_mod_drop_and_raise_level():
    b = make_builder()
    x = b.input("x", 10)
    assert b.mod_drop(x, 5).level == 5
    with pytest.raises(ValueError):
        b.mod_drop(x, 12)
    assert b.raise_level(x, 15).level == 15
    with pytest.raises(ValueError):
        b.raise_level(x, 5)


def test_phase_tagging():
    b = make_builder()
    x = b.input("x", 10)
    b.phase("conv0")
    x = b.pmult(x, "w")
    b.phase("act")
    b.mult(x, x)
    prog = b.build()
    assert prog.ops[1].tag == "conv0"
    assert prog.ops[-1].tag == "act"
    assert prog.phase_names() == ["conv0", "act"]


def test_max_level_guard():
    b = make_builder(max_level=5)
    with pytest.raises(ValueError, match="exceeds"):
        b.input("x", 9)


def test_pmult_repeat_and_compact():
    b = make_builder()
    x = b.input("x", 10)
    b.pmult(x, "w", rescale=False, repeat=7, compact=True)
    op = b.build().ops[-1]
    assert op.kind == PMULT and op.repeat == 7 and op.compact_pt
