"""BGV on the shared substrate: exact batched integer arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.bgv import BgvCiphertext, BgvContext, BgvParams

T = 65537


@pytest.fixture(scope="module")
def bgv():
    ctx = BgvContext(BgvParams(degree=256, max_level=6, seed=3))
    sk = ctx.keygen()
    relin = ctx.relin_hint(sk)
    return ctx, sk, relin


def test_params_validation():
    with pytest.raises(ValueError):
        BgvParams(degree=100)
    with pytest.raises(ValueError):
        BgvParams(plain_modulus=65536)  # not prime
    with pytest.raises(ValueError):
        BgvParams(degree=1024, plain_modulus=257)  # 256 !| 2048... not 1 mod 2N


def test_encode_decode_roundtrip(bgv):
    ctx, _, _ = bgv
    values = np.array([0, 1, 2, T - 1, 12345])
    coeffs = ctx.encode(values)
    assert np.array_equal(ctx.decode(coeffs)[:5], values % T)


def test_encrypt_decrypt_exact(bgv):
    ctx, sk, _ = bgv
    values = np.arange(50, dtype=np.int64) * 917 % T
    ct = ctx.encrypt(sk, values)
    assert np.array_equal(ctx.decrypt(sk, ct)[:50], values)


def test_add_exact_mod_t(bgv):
    ctx, sk, _ = bgv
    a = np.array([T - 1, 5, 100])
    b = np.array([2, T - 5, 65437])
    out = ctx.decrypt(sk, ctx.add(ctx.encrypt(sk, a), ctx.encrypt(sk, b)))
    assert np.array_equal(out[:3], (a + b) % T)


def test_multiply_exact_mod_t(bgv):
    ctx, sk, relin = bgv
    a = np.array([3, 0, T - 2, 256])
    b = np.array([5, 9, 2, 256])
    prod = ctx.multiply(ctx.encrypt(sk, a), ctx.encrypt(sk, b), relin)
    assert np.array_equal(ctx.decrypt(sk, prod)[:4], a * b % T)


def test_mod_switch_preserves_plaintext(bgv):
    ctx, sk, relin = bgv
    a = np.array([123, 456, T - 7])
    ct = ctx.encrypt(sk, a)
    switched = ctx.mod_switch(ct)
    assert switched.level == ct.level - 1
    assert switched.plain_factor != 1  # the q^-1 bookkeeping is live
    assert np.array_equal(ctx.decrypt(sk, switched)[:3], a)


def test_leveled_multiplication_chain(bgv):
    ctx, sk, relin = bgv
    a = np.array([2, 3, 5])
    ct = ctx.encrypt(sk, a)
    want = a.copy()
    for _ in range(3):  # three exact squarings with modswitch between
        ct = ctx.mod_switch(ctx.multiply(ct, ct, relin))
        want = want * want % T
    assert np.array_equal(ctx.decrypt(sk, ct)[:3], want)


def test_mismatched_factors_rejected(bgv):
    ctx, sk, _ = bgv
    a = ctx.encrypt(sk, [1])
    b = ctx.mod_switch(ctx.encrypt(sk, [1]))
    with pytest.raises(ValueError, match="factor"):
        ctx.add(a, b)


@given(st.lists(st.integers(min_value=0, max_value=T - 1),
                min_size=1, max_size=6),
       st.lists(st.integers(min_value=0, max_value=T - 1),
                min_size=1, max_size=6))
@settings(max_examples=10, deadline=None)
def test_homomorphism_property(xs, ys):
    ctx = BgvContext(BgvParams(degree=64, max_level=4, seed=17))
    sk = ctx.keygen()
    relin = ctx.relin_hint(sk)
    n = min(len(xs), len(ys))
    a, b = np.array(xs[:n]), np.array(ys[:n])
    ca, cb = ctx.encrypt(sk, a), ctx.encrypt(sk, b)
    assert np.array_equal(ctx.decrypt(sk, ctx.add(ca, cb))[:n], (a + b) % T)
    prod = ctx.multiply(ca, cb, relin)
    assert np.array_equal(ctx.decrypt(sk, prod)[:n], a * b % T)
