"""Perf-regression gate for the limb-batched kernels.

Times the batched kernel against the per-limb/per-poly reference oracle
*in the same process on the same data* at a fixed shape (N=4096, L=8)
and fails if the speedup ratio drops below the floor recorded in
``tests/baselines/fhe_perf_floor.json``.  Because both sides run on the
same machine in the same run, the gate is machine-relative: absolute
speed does not matter, only the batching advantage.  A refactor that
quietly reintroduces a per-limb Python loop drives the ratio to ~1.0
and fails every floor.

Timing discipline: best-of-N (minimum over rounds) is the standard way
to reject scheduler noise when gating on ratios; both sides use it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fhe.ntt import BatchedNttContext, NttContext
from repro.fhe.poly import EVAL, RnsPoly, batch_rescale
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis

FLOOR_FILE = Path(__file__).parent.parent / "baselines" / "fhe_perf_floor.json"


@pytest.fixture(scope="module")
def gate():
    spec = json.loads(FLOOR_FILE.read_text())
    degree, limbs = spec["degree"], spec["limbs"]
    primes = tuple(find_ntt_primes(limbs, 30, degree))
    basis = RnsBasis(primes)
    rng = np.random.default_rng(2024)
    data = np.stack([
        rng.integers(0, q, degree, dtype=np.uint64) for q in primes
    ])
    return spec["floors"], basis, data


def _best_of(fn, reps: int = 3, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def test_batched_ntt_beats_per_limb_floor(gate):
    floors, basis, data = gate
    batched = BatchedNttContext.get(basis.moduli, data.shape[1])
    limbs = [NttContext.get(q, data.shape[1]) for q in basis.moduli]

    def per_limb_forward():
        return np.stack([c._forward(data[i]) for i, c in enumerate(limbs)])

    def per_limb_inverse():
        return np.stack([c._inverse(data[i]) for i, c in enumerate(limbs)])

    fwd_ratio = _best_of(per_limb_forward) / _best_of(
        lambda: batched._forward(data))
    inv_ratio = _best_of(per_limb_inverse) / _best_of(
        lambda: batched._inverse(data))
    assert fwd_ratio >= floors["ntt_forward"], (
        f"batched forward NTT speedup {fwd_ratio:.2f}x fell below the "
        f"floor {floors['ntt_forward']}x - a per-limb loop crept back in?"
    )
    assert inv_ratio >= floors["ntt_inverse"], (
        f"batched inverse NTT speedup {inv_ratio:.2f}x fell below the "
        f"floor {floors['ntt_inverse']}x"
    )


def test_batch_rescale_beats_per_poly_floor(gate):
    floors, basis, data = gate
    polys = [
        RnsPoly(basis, data, EVAL),
        RnsPoly(basis, data * np.uint64(3) % basis.moduli_col, EVAL),
    ]
    ratio = _best_of(lambda: [p.rescale() for p in polys]) / _best_of(
        lambda: batch_rescale(polys))
    assert ratio >= floors["rescale"], (
        f"batch_rescale speedup {ratio:.2f}x fell below the floor "
        f"{floors['rescale']}x - lazy transforms regressed?"
    )


def test_eval_automorphism_beats_roundtrip_floor(gate):
    floors, basis, data = gate
    poly = RnsPoly(basis, data, EVAL)
    k = 5

    def roundtrip():
        return poly.to_coeff().automorphism(k).to_eval()

    ratio = _best_of(roundtrip) / _best_of(lambda: poly.automorphism(k))
    assert ratio >= floors["eval_automorphism"], (
        f"EVAL-domain automorphism speedup {ratio:.2f}x fell below the "
        f"floor {floors['eval_automorphism']}x - rotations are paying "
        "for NTTs again?"
    )
