"""RnsPoly ring arithmetic, domains, automorphisms, rescaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.poly import COEFF, EVAL, RnsPoly
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis

N = 64
PRIMES = find_ntt_primes(6, 28, N)
BASIS = RnsBasis(PRIMES[:3])


def poly_from(coeffs, basis=BASIS, domain=COEFF):
    full = list(coeffs) + [0] * (N - len(coeffs))
    return RnsPoly.from_integers(basis, full, domain)


def as_ints(poly):
    return [int(v) for v in poly.to_integers()]


def test_zero_constructor():
    z = RnsPoly.zero(BASIS, N)
    assert z.level == 3 and z.degree == N
    assert not z.data.any()


def test_shape_validation():
    with pytest.raises(ValueError):
        RnsPoly(BASIS, np.zeros((2, N), dtype=np.uint64))
    with pytest.raises(ValueError):
        RnsPoly(BASIS, np.zeros((3, N), dtype=np.uint64), domain="bogus")


def test_add_sub_neg_roundtrip():
    a = poly_from([1, 2, 3])
    b = poly_from([10, -5, 7])
    assert as_ints(a + b)[:3] == [11, -3, 10]
    assert as_ints(a - b)[:3] == [-9, 7, -4]
    assert as_ints(-a)[:3] == [-1, -2, -3]
    assert as_ints((a + b) - b) == as_ints(a)


def test_domain_mismatch_rejected():
    a = poly_from([1])
    b = poly_from([1]).to_eval()
    with pytest.raises(ValueError, match="domain"):
        _ = a + b


def test_basis_mismatch_rejected():
    a = poly_from([1])
    b = poly_from([1], basis=RnsBasis(PRIMES[3:6]))
    with pytest.raises(ValueError, match="bases"):
        _ = a + b


def test_mul_requires_eval_domain():
    a = poly_from([1, 1])
    with pytest.raises(ValueError, match="EVAL"):
        _ = a * a


def test_polynomial_product():
    # (1 + 2x)(3 + x) = 3 + 7x + 2x^2
    a = poly_from([1, 2]).to_eval()
    b = poly_from([3, 1]).to_eval()
    assert as_ints((a * b).to_coeff())[:3] == [3, 7, 2]


def test_scalar_mul_signed():
    a = poly_from([5, -4])
    assert as_ints(a.scalar_mul(-3))[:2] == [-15, 12]


def test_domain_roundtrip():
    rng = np.random.default_rng(0)
    data = rng.integers(0, PRIMES[0], size=(3, N), dtype=np.uint64)
    data = data % np.array(BASIS.moduli, dtype=np.uint64)[:, None]
    p = RnsPoly(BASIS, data, COEFF)
    assert np.array_equal(p.to_eval().to_coeff().data, data)


def test_automorphism_index_map():
    # x -> x^5 sends coefficient of x^1 to x^5, x^13 to x^65 = -x^1.
    p = poly_from([0, 1] + [0] * 11 + [1])  # x + x^13
    out = as_ints(p.automorphism(5))
    assert out[5] == 1
    assert out[1] == -1


def test_automorphism_composition():
    p = poly_from(list(range(1, 9)))
    lhs = p.automorphism(5).automorphism(5)
    rhs = p.automorphism(25)
    assert as_ints(lhs) == as_ints(rhs)


def test_automorphism_inverse():
    p = poly_from([3, 1, 4, 1, 5])
    k = 5
    k_inv = pow(k, -1, 2 * N)
    assert as_ints(p.automorphism(k).automorphism(k_inv)) == as_ints(p)


def test_automorphism_preserves_eval_domain_flag():
    p = poly_from([1, 2]).to_eval()
    assert p.automorphism(5).domain == EVAL


def test_automorphism_rejects_even_exponent():
    with pytest.raises(ValueError):
        poly_from([1]).automorphism(4)


def test_automorphism_is_ring_homomorphism():
    a = poly_from([1, 2, 3]).to_eval()
    b = poly_from([4, 5]).to_eval()
    lhs = (a * b).automorphism(9)
    rhs = a.automorphism(9) * b.automorphism(9)
    assert as_ints(lhs.to_coeff()) == as_ints(rhs.to_coeff())


def test_rescale_divides_and_rounds():
    q_last = BASIS.moduli[-1]
    coeffs = [q_last * 7, q_last * 3 + q_last // 2 + 1, -q_last * 2]
    p = poly_from(coeffs)
    r = p.rescale()
    assert r.level == 2
    got = [int(v) for v in r.to_integers()[:3]]
    assert got == [7, 4, -2]  # second entry rounds up


def test_rescale_level1_rejected():
    p = poly_from([1], basis=RnsBasis(PRIMES[:1]))
    with pytest.raises(ValueError):
        p.rescale()


def test_change_basis_exact_vs_approx():
    dest = RnsBasis(PRIMES[3:6])
    p = poly_from([123, -456, 789])
    exact = p.change_basis(dest, exact=True)
    approx = p.change_basis(dest)
    # Small values convert identically (no overflow term triggers).
    assert as_ints(exact)[:3] == [123, -456, 789]
    assert np.array_equal(exact.data, approx.data)


def test_uniform_random_determinism():
    rng1 = np.random.default_rng(42)
    rng2 = np.random.default_rng(42)
    a = RnsPoly.uniform_random(BASIS, N, rng1)
    b = RnsPoly.uniform_random(BASIS, N, rng2)
    assert np.array_equal(a.data, b.data)
    for i, q in enumerate(BASIS):
        assert a.data[i].max() < q


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_product_degree0_term_property(coeffs):
    """Property: constant term of p*p equals c0^2 - sum of wrap products."""
    p = poly_from(coeffs).to_eval()
    sq = as_ints((p * p).to_coeff())
    c = coeffs + [0] * (N - len(coeffs))
    want = sum(c[i] * c[-i % N] * (1 if i == 0 else -1) for i in range(N))
    assert sq[0] == want
