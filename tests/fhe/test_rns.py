"""RNS bases and the changeRNSBase kernel (Listing 1's core loop)."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis

PRIMES = find_ntt_primes(8, 28, 64)


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(PRIMES[:4])


@pytest.fixture(scope="module")
def dest():
    return RnsBasis(PRIMES[4:8])


def test_modulus_product(basis):
    q = 1
    for p in PRIMES[:4]:
        q *= p
    assert basis.modulus == q
    assert abs(basis.log_modulus - np.log2(float(q))) < 1e-6


def test_duplicate_moduli_rejected():
    with pytest.raises(ValueError):
        RnsBasis([PRIMES[0], PRIMES[0]])


def test_empty_basis_rejected():
    with pytest.raises(ValueError):
        RnsBasis([])


def test_slicing_and_equality(basis):
    sub = basis[:2]
    assert isinstance(sub, RnsBasis)
    assert sub == RnsBasis(PRIMES[:2])
    assert sub != basis
    assert basis[0] == PRIMES[0]


def test_extend_disjointness(basis, dest):
    ext = basis.extend(dest)
    assert len(ext) == 8
    with pytest.raises(ValueError, match="share"):
        basis.extend(basis)


def test_drop_last(basis):
    assert basis.drop_last() == RnsBasis(PRIMES[:3])
    assert basis.drop_last(3) == RnsBasis(PRIMES[:1])
    with pytest.raises(ValueError):
        basis.drop_last(4)


def test_residue_roundtrip_signed(basis):
    values = [0, 1, -1, 12345, -987654321, basis.modulus // 2 - 3]
    res = basis.to_residues(values)
    back = basis.to_integers(res, centered=True)
    assert [int(v) for v in back] == values


def test_residue_roundtrip_uncentered(basis):
    values = [-5]
    res = basis.to_residues(values)
    back = basis.to_integers(res, centered=False)
    assert int(back[0]) == basis.modulus - 5


@given(st.lists(st.integers(min_value=-(2**80), max_value=2**80),
                min_size=1, max_size=8))
# Exactly 2**63: numpy promotes the list to uint64, where an int64 cast
# in the vectorized to_residues fast path would wrap negative.
@example([2**63])
@settings(max_examples=50, deadline=None)
def test_crt_roundtrip_property(values):
    basis = RnsBasis(PRIMES[:4])
    q = basis.modulus
    reduced = [((v + q // 2) % q) - q // 2 for v in values]
    back = basis.to_integers(basis.to_residues(values))
    assert [int(b) for b in back] == reduced


def test_conversion_constants_shape(basis, dest):
    c = basis.conversion_constants(dest)
    assert c.shape == (4, 4)
    q_hat = basis.modulus // basis.moduli[0]
    assert int(c[0, 0]) == q_hat % dest.moduli[0]


def test_convert_exact_matches_bigint(basis, dest):
    values = [123456789, -42, 0, basis.modulus // 3]
    res = basis.to_residues(values)
    got = basis.convert_exact(res, dest)
    want = dest.to_residues(basis.to_integers(res))
    assert np.array_equal(got, want)


def _overflow_allowed(diff, q, pj, max_k):
    """diff must be k*Q mod pj for |k| <= max_k."""
    return any((k * q) % pj == diff for k in range(-max_k, max_k + 1))


def test_convert_approx_small_overflow(basis, dest):
    rng = np.random.default_rng(0)
    values = [int(v) for v in rng.integers(0, 2**60, size=16)]
    res = basis.to_residues(values)
    exact = basis.convert_exact(res, dest)
    approx = basis.convert_approx(res, dest)
    q = basis.modulus
    for j, pj in enumerate(dest.moduli):
        for col in range(len(values)):
            diff = (int(approx[j, col]) - int(exact[j, col])) % pj
            # With the floating-point correction the overflow is |a| <= 1.
            assert _overflow_allowed(diff, q, pj, 1), (j, col)


def test_convert_approx_uncorrected_bounded_overflow(basis, dest):
    rng = np.random.default_rng(1)
    values = [int(v) for v in rng.integers(0, 2**60, size=16)]
    res = basis.to_residues(values)
    exact = basis.convert_exact(res, dest)
    approx = basis.convert_approx(res, dest, correct=False)
    q = basis.modulus
    for j, pj in enumerate(dest.moduli):
        for col in range(len(values)):
            diff = (int(approx[j, col]) - int(exact[j, col])) % pj
            assert _overflow_allowed(diff, q, pj, len(basis)), (j, col)


def test_convert_approx_shape_validation(basis, dest):
    with pytest.raises(ValueError):
        basis.convert_approx(np.zeros((2, 4), dtype=np.uint64), dest)
