"""CKKS canonical-embedding encoder: roundtrips and algebraic structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.encoder import CkksEncoder


@pytest.fixture(scope="module")
def enc():
    return CkksEncoder(64)


def rand_slots(n, seed=0, mag=1.0):
    rng = np.random.default_rng(seed)
    return mag * (rng.normal(size=n) + 1j * rng.normal(size=n))


def test_rotation_group_is_odd_and_distinct(enc):
    assert len(set(enc.rot_group.tolist())) == enc.slots
    assert all(g % 2 == 1 for g in enc.rot_group)


def test_embed_unembed_roundtrip(enc):
    z = rand_slots(enc.slots)
    coeffs = enc.unembed(z)
    assert coeffs.dtype == np.float64  # exactly real
    back = enc.embed(coeffs)
    assert np.max(np.abs(back - z)) < 1e-9


def test_embed_matches_direct_evaluation(enc):
    # embed must agree with evaluating the polynomial at zeta^(5^j).
    rng = np.random.default_rng(1)
    coeffs = rng.normal(size=enc.degree)
    zeta = np.exp(1j * np.pi / enc.degree)
    direct = np.array([
        sum(c * zeta ** (k * i) for i, c in enumerate(coeffs))
        for k in enc.rot_group[:4]
    ])
    assert np.max(np.abs(enc.embed(coeffs)[:4] - direct)) < 1e-6


def test_encode_decode_roundtrip(enc):
    z = rand_slots(enc.slots, mag=0.7)
    scale = 2.0**30
    coeffs = enc.encode(z, scale)
    back = enc.decode(coeffs, scale)
    assert np.max(np.abs(back - z)) < 1e-6


def test_encode_replicates_short_vectors(enc):
    z = np.array([1.0 + 2.0j, -0.5])
    coeffs = enc.encode(z, 2.0**28)
    back = enc.decode(coeffs, 2.0**28)
    assert np.max(np.abs(back - np.tile(z, enc.slots // 2))) < 1e-6


def test_encode_rejects_bad_lengths(enc):
    with pytest.raises(ValueError):
        enc.encode(np.ones(enc.slots + 1), 2.0**20)
    with pytest.raises(ValueError):
        enc.encode(np.ones(3), 2.0**20)  # 32 not divisible by 3


def test_encode_overflow_guard(enc):
    with pytest.raises(OverflowError):
        enc.encode([1.0], 2.0**70)


def test_encoding_is_additive(enc):
    scale = 2.0**30
    a, b = rand_slots(enc.slots, 2), rand_slots(enc.slots, 3)
    ca = enc.encode(a, scale)
    cb = enc.encode(b, scale)
    both = enc.decode(ca + cb, scale)
    assert np.max(np.abs(both - (a + b))) < 1e-6


def test_rotation_group_realizes_slot_rotation(enc):
    """Automorphism x -> x^(5^r) rotates slots: the property rotations use."""
    z = rand_slots(enc.slots, 4)
    coeffs = enc.encode(z, 2.0**30)
    n2 = 2 * enc.degree
    k = pow(5, 1, n2)
    # Apply x -> x^k to the integer coefficients (negacyclic index map).
    out = np.zeros(enc.degree, dtype=object)
    for i in range(enc.degree):
        idx = i * k % n2
        if idx >= enc.degree:
            out[idx - enc.degree] = -coeffs[i]
        else:
            out[idx] = coeffs[i]
    rotated = enc.decode(out, 2.0**30)
    assert np.max(np.abs(rotated - np.roll(z, -1))) < 1e-6


def test_conjugation_automorphism(enc):
    z = rand_slots(enc.slots, 5)
    coeffs = enc.encode(z, 2.0**30)
    n2 = 2 * enc.degree
    out = np.zeros(enc.degree, dtype=object)
    for i in range(enc.degree):
        idx = i * (n2 - 1) % n2
        if idx >= enc.degree:
            out[idx - enc.degree] = -coeffs[i]
        else:
            out[idx] = coeffs[i]
    assert np.max(np.abs(enc.decode(out, 2.0**30) - np.conj(z))) < 1e-6


def test_monomial_n_half_is_imaginary_unit(enc):
    """x^(N/2) decodes to i in every slot (used by bootstrapping)."""
    coeffs = np.zeros(enc.degree, dtype=object)
    coeffs[enc.degree // 2] = 1
    vals = enc.decode(coeffs, 1.0)
    assert np.max(np.abs(vals - 1j)) < 1e-9


@given(st.floats(min_value=-100, max_value=100, allow_nan=False),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_constant_encoding_property(re, im):
    enc = CkksEncoder(32)
    z = complex(re, im)
    back = enc.decode(enc.encode([z], 2.0**32), 2.0**32)
    assert np.max(np.abs(back - z)) < 1e-4
