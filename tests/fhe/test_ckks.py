"""End-to-end CKKS scheme tests: the FHE interface of Sec. 2.1."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext, CkksParams


def decrypt_error(fix, ct, want):
    return np.max(np.abs(fix.ctx.decrypt(fix.sk, ct) - want))


# -- parameters ------------------------------------------------------------

def test_params_validation():
    with pytest.raises(ValueError):
        CkksParams(degree=100)
    with pytest.raises(ValueError):
        CkksParams(max_level=0)
    with pytest.raises(ValueError):
        CkksParams(max_level=4, digits=5)


def test_params_alpha_derivation():
    assert CkksParams(max_level=6, digits=1).alpha == 6
    assert CkksParams(max_level=6, digits=2).alpha == 3
    assert CkksParams(max_level=7, digits=2).alpha == 4  # ceil


def test_context_bases(fhe):
    ctx = fhe.ctx
    assert len(ctx.q_basis) == 6
    assert len(ctx.aux_basis) == ctx.params.aux_level
    assert ctx.basis_at(3) == ctx.q_basis[:3]
    with pytest.raises(ValueError):
        ctx.basis_at(0)
    with pytest.raises(ValueError):
        ctx.basis_at(7)


# -- encryption ------------------------------------------------------------

def test_encrypt_decrypt(fhe):
    z = fhe.random_values(0)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    assert ct.level == 6
    assert decrypt_error(fhe, ct, z) < 1e-5


def test_encrypt_at_lower_level(fhe):
    z = fhe.random_values(1)
    ct = fhe.ctx.encrypt_values(fhe.sk, z, level=2)
    assert ct.level == 2
    assert decrypt_error(fhe, ct, z) < 1e-5


def test_encryption_is_randomized(fhe):
    z = fhe.random_values(2)
    a = fhe.ctx.encrypt_values(fhe.sk, z)
    b = fhe.ctx.encrypt_values(fhe.sk, z)
    assert not np.array_equal(a.c1.data, b.c1.data)


def test_wrong_key_fails_to_decrypt(fhe):
    z = fhe.random_values(3)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    other = fhe.ctx.keygen()
    garbled = fhe.ctx.decrypt(other, ct)
    assert np.max(np.abs(garbled - z)) > 1.0


# -- additive homomorphism ----------------------------------------------------

def test_add_sub_negate(fhe):
    a_vals, b_vals = fhe.random_values(4), fhe.random_values(5)
    a = fhe.ctx.encrypt_values(fhe.sk, a_vals)
    b = fhe.ctx.encrypt_values(fhe.sk, b_vals)
    assert decrypt_error(fhe, fhe.ctx.add(a, b), a_vals + b_vals) < 1e-4
    assert decrypt_error(fhe, fhe.ctx.sub(a, b), a_vals - b_vals) < 1e-4
    assert decrypt_error(fhe, fhe.ctx.negate(a), -a_vals) < 1e-4


def test_add_plain_and_scalar(fhe):
    z = fhe.random_values(6)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    pt = fhe.ctx.encode(np.full(fhe.slots, 0.25), level=ct.level)
    assert decrypt_error(fhe, fhe.ctx.add_plain(ct, pt), z + 0.25) < 1e-4
    assert decrypt_error(fhe, fhe.ctx.add_scalar(ct, 1j), z + 1j) < 1e-4


def test_add_scale_mismatch_rejected(fhe):
    z = fhe.random_values(7)
    a = fhe.ctx.encrypt_values(fhe.sk, z)
    b = fhe.ctx.encrypt(fhe.sk, fhe.ctx.encode(z, scale=2.0**20))
    with pytest.raises(ValueError, match="scale"):
        fhe.ctx.add(a, b)


# -- multiplication -----------------------------------------------------------

def test_mul_plain_rescale(fhe):
    z = fhe.random_values(8)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    pt = fhe.ctx.encode(np.full(fhe.slots, 3.0), level=ct.level)
    prod = fhe.ctx.rescale(fhe.ctx.mul_plain(ct, pt))
    assert prod.level == ct.level - 1
    assert decrypt_error(fhe, prod, 3 * z) < 1e-4


def test_pmult_exact_scale_targeting(fhe):
    z = fhe.random_values(9)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    out = fhe.ctx.pmult(ct, np.full(fhe.slots, 2.0))
    assert out.scale == ct.scale  # exactly, not approximately
    assert decrypt_error(fhe, out, 2 * z) < 1e-4
    target = 2.0**27
    out2 = fhe.ctx.pmult(ct, [1.0], result_scale=target)
    assert out2.scale == target


def test_multiply_ciphertexts(fhe):
    a_vals, b_vals = fhe.random_values(10), fhe.random_values(11)
    a = fhe.ctx.encrypt_values(fhe.sk, a_vals)
    b = fhe.ctx.encrypt_values(fhe.sk, b_vals)
    prod = fhe.ctx.rescale(fhe.ctx.multiply(a, b, fhe.relin))
    assert decrypt_error(fhe, prod, a_vals * b_vals) < 1e-4


def test_square(fhe):
    z = fhe.random_values(12)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    sq = fhe.ctx.rescale(fhe.ctx.square(ct, fhe.relin))
    assert decrypt_error(fhe, sq, z * z) < 1e-4


def test_multiply_level_mismatch_rejected(fhe):
    z = fhe.random_values(13)
    a = fhe.ctx.encrypt_values(fhe.sk, z)
    b = fhe.ctx.encrypt_values(fhe.sk, z, level=3)
    with pytest.raises(ValueError):
        fhe.ctx.multiply(a, b, fhe.relin)


def test_multiplication_chain_to_depletion(fhe):
    """Repeated squaring until the budget runs out (Fig. 2's decay)."""
    z = np.full(fhe.slots, 0.9)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    want = z.copy()
    while ct.level > 1:
        ct = fhe.ctx.rescale(fhe.ctx.square(ct, fhe.relin))
        want = want * want
    assert ct.level == 1
    assert decrypt_error(fhe, ct, want) < 1e-2
    with pytest.raises(ValueError):
        fhe.ctx.rescale(ct)  # budget exhausted: cannot rescale further


# -- level management -----------------------------------------------------------

def test_mod_drop_preserves_values(fhe):
    z = fhe.random_values(14)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    dropped = fhe.ctx.drop_to_level(ct, 2)
    assert dropped.level == 2
    assert dropped.scale == ct.scale
    assert decrypt_error(fhe, dropped, z) < 1e-4
    with pytest.raises(ValueError):
        fhe.ctx.drop_to_level(dropped, 5)


# -- rotations and conjugation ---------------------------------------------------

def test_rotate_by_one(fhe):
    z = fhe.random_values(15)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    rot = fhe.ctx.rotate(ct, 1, fhe.rot1)
    assert decrypt_error(fhe, rot, np.roll(z, -1)) < 1e-4


def test_rotate_various_steps(fhe):
    z = fhe.random_values(16)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    for steps in (2, 7, fhe.slots // 2, fhe.slots - 1):
        hint = fhe.ctx.rotation_hint(fhe.sk, steps)
        rot = fhe.ctx.rotate(ct, steps, hint)
        assert decrypt_error(fhe, rot, np.roll(z, -steps)) < 1e-4, steps


def test_rotation_composes(fhe):
    z = fhe.random_values(17)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    twice = fhe.ctx.rotate(fhe.ctx.rotate(ct, 1, fhe.rot1), 1, fhe.rot1)
    assert decrypt_error(fhe, twice, np.roll(z, -2)) < 1e-4


def test_conjugate(fhe):
    z = fhe.random_values(18)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    conj = fhe.ctx.conjugate(ct, fhe.conj)
    assert decrypt_error(fhe, conj, np.conj(z)) < 1e-4


def test_rotation_at_low_level(fhe):
    z = fhe.random_values(19)
    ct = fhe.ctx.encrypt_values(fhe.sk, z, level=2)
    rot = fhe.ctx.rotate(ct, 1, fhe.rot1)
    assert decrypt_error(fhe, rot, np.roll(z, -1)) < 1e-4


# -- multi-digit keyswitching -------------------------------------------------------

def test_two_digit_multiply(fhe_2digit):
    fix = fhe_2digit
    z = fix.random_values(20)
    ct = fix.ctx.encrypt_values(fix.sk, z)
    prod = fix.ctx.rescale(fix.ctx.square(ct, fix.relin))
    assert decrypt_error(fix, prod, z * z) < 1e-4


def test_three_digit_multiply_and_rotate(fhe_3digit):
    fix = fhe_3digit
    z = fix.random_values(21)
    ct = fix.ctx.encrypt_values(fix.sk, z)
    prod = fix.ctx.rescale(fix.ctx.square(ct, fix.relin))
    assert decrypt_error(fix, prod, z * z) < 1e-4
    rot = fix.ctx.rotate(ct, 1, fix.rot1)
    assert decrypt_error(fix, rot, np.roll(z, -1)) < 1e-4


def test_digit_hint_footprint_ordering(fhe, fhe_2digit):
    """Sec. 3.1: a t-digit hint stores t*(L+alpha) residues per half;
    higher t means a bigger hint (the memory-vs-expansion tradeoff)."""
    h1 = fhe.relin
    h2 = fhe_2digit.relin
    assert h2.digits == 2 and h1.digits == 1
    assert h2.size_words() > h1.size_words() * 0.7  # 6*... vs 12 rows
    rows1 = sum(p.level for p in h1.b_polys)
    rows2 = sum(p.level for p in h2.b_polys)
    assert rows1 == 12  # 1 digit x (6 + 6)
    assert rows2 == 18  # 2 digits x (6 + 3)


# -- compute on realistic pipeline ----------------------------------------------

def test_dot_product_pipeline(fhe):
    """rotate-and-add reduction: the inner loop of every matvec benchmark."""
    ctx, sk = fhe.ctx, fhe.sk
    rng = np.random.default_rng(22)
    x = rng.normal(size=fhe.slots) * 0.3
    w = rng.normal(size=fhe.slots) * 0.3
    ct = ctx.encrypt_values(sk, x)
    prod = ctx.pmult(ct, w)
    acc = prod
    steps = 1
    while steps < fhe.slots:
        hint = ctx.rotation_hint(sk, steps)
        acc = ctx.add(acc, ctx.rotate(acc, steps, hint))
        steps *= 2
    dec = ctx.decrypt(sk, acc)
    want = np.sum(x * w)
    assert abs(dec[0].real - want) < 1e-2
    assert np.max(np.abs(dec.real - want)) < 1e-2  # replicated everywhere
