"""Security estimator and the digit-schedule logic of Sec. 3.1 / 9.4."""

import pytest

from repro.fhe.security import (
    SecurityEstimator,
    ciphertext_megabytes,
    hint_megabytes,
    max_log_q_for_security,
    security_bits,
)


def test_table_monotonic_in_degree():
    for sec in (80, 128, 192, 256):
        prev = 0
        for n in (1024, 4096, 16384, 65536, 131072):
            cur = max_log_q_for_security(n, sec)
            assert cur > prev
            prev = cur


def test_table_monotonic_in_security():
    for n in (4096, 65536):
        assert (max_log_q_for_security(n, 80)
                > max_log_q_for_security(n, 128)
                > max_log_q_for_security(n, 192)
                > max_log_q_for_security(n, 256))


def test_interpolation_between_levels():
    """The paper's 200-bit target must sit between the 192 and 256 rows."""
    q200 = max_log_q_for_security(131072, 200)
    assert max_log_q_for_security(131072, 256) < q200
    assert q200 < max_log_q_for_security(131072, 192)


def test_unknown_degree_rejected():
    with pytest.raises(ValueError):
        max_log_q_for_security(3000, 128)


def test_security_bits_inverts_table():
    for sec in (80, 128, 192):
        logq = max_log_q_for_security(65536, sec)
        est = security_bits(65536, logq)
        assert abs(est - sec) < 3


def test_security_bits_decreasing_in_logq():
    assert security_bits(65536, 1000) > security_bits(65536, 2000)


def test_paper_80bit_operating_point():
    """Sec. 3.1: 80-bit @ N=64K runs 1-digit keyswitching up to L=52 and
    2-digit beyond; our estimator must reproduce that schedule shape."""
    est = SecurityEstimator(65536, 80, modulus_bits=28)
    schedule = est.digit_schedule(57)
    crossover = min(lvl for lvl, d in schedule.items() if d == 2)
    assert 45 <= crossover <= 57
    assert all(d == 1 for lvl, d in schedule.items() if lvl < crossover)


def test_paper_128bit_needs_more_digits():
    """Sec. 9.4: 128-bit @ N=64K uses 1/2/3-digit keyswitching by level."""
    est = SecurityEstimator(65536, 128, modulus_bits=28)
    max_lvl = est.max_level()
    assert 40 <= max_lvl <= 60
    schedule = est.digit_schedule(max_lvl)
    assert max(schedule.values()) >= 3
    assert schedule[10] == 1


def test_128bit_max_level_below_80bit():
    lo = SecurityEstimator(65536, 128).max_level()
    hi = SecurityEstimator(65536, 80).max_level()
    assert lo < hi


def test_200bit_requires_larger_ring():
    """Sec. 9.4: deep chains at 200 bits do not fit N=64K; N=128K works."""
    small = SecurityEstimator(65536, 200)
    large = SecurityEstimator(131072, 200)
    assert small.max_level() < 45  # cannot host the deep benchmarks
    assert large.max_level() >= 57


def test_insecure_schedule_raises():
    est = SecurityEstimator(1024, 128, modulus_bits=28)
    with pytest.raises(ValueError, match="insecure"):
        est.digit_schedule(20)


def test_log_qp_formula():
    est = SecurityEstimator(65536, 80)
    assert est.log_qp(60, 1) == (60 + 60) * 28
    assert est.log_qp(60, 2) == (60 + 30) * 28
    assert est.log_qp(60, 3) == (60 + 20) * 28
    assert est.log_qp(7, 2) == (7 + 4) * 28  # ceil(7/2) = 4


def test_ciphertext_size_paper_numbers():
    """Sec. 2.3 / Sec. 6: N=64K, L=60 ciphertexts are ~26 MB; L=54 at
    1500-bit Q etc.  Check the headline 10-ciphertexts-in-256MB claim."""
    mb = ciphertext_megabytes(65536, 60)
    assert 25 < mb < 28
    assert int(256 // mb) == 9  # 'fits just shy of 10 ciphertexts'


def test_hint_size_paper_numbers():
    """Sec. 3: at N=64K, L=60 a boosted KSH takes 52.5 MB (2 ciphertexts);
    with seeded generation (KSHGen) half of that is stored."""
    full = hint_megabytes(65536, 60, digits=1, seeded=False)
    assert 50 < full < 55
    seeded = hint_megabytes(65536, 60, digits=1, seeded=True)
    assert abs(full - 2 * seeded) < 1e-9


def test_hint_size_grows_with_digits():
    """Sec. 3.1: t-digit hints take t+1 ciphertexts' worth of residues."""
    h1 = hint_megabytes(65536, 60, 1, seeded=False)
    h2 = hint_megabytes(65536, 60, 2, seeded=False)
    h3 = hint_megabytes(65536, 60, 3, seeded=False)
    ct = ciphertext_megabytes(65536, 60)
    assert abs(h1 / ct - 2) < 0.1
    assert abs(h2 / ct - 3) < 0.1
    assert abs(h3 / ct - 4) < 0.1
