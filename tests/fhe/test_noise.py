"""Noise measurement and the Fig. 2 budget tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.ckks import CkksContext, CkksParams
from repro.fhe.noise import NoiseBudget, budget_bits, measure_noise_bits
from repro.reliability.errors import NoiseBudgetExhaustedError
from repro.reliability.guards import ReliabilityPolicy


def test_measure_noise_on_fresh_ciphertext(fhe):
    z = fhe.random_values(40)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    bits = measure_noise_bits(fhe.ctx, fhe.sk, ct, z)
    # Fresh encryption noise is a handful of bits, far below the modulus.
    assert 0 < bits < 16
    assert budget_bits(ct) > 100


def test_noise_grows_with_operations(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(41, magnitude=0.3)
    ct = ctx.encrypt_values(sk, z)
    fresh = measure_noise_bits(ctx, sk, ct, z)
    rotated = ctx.rotate(ct, 1, fhe.rot1)
    after = measure_noise_bits(ctx, sk, rotated, np.roll(z, -1))
    assert after >= fresh - 1  # keyswitching never reduces noise


def test_budget_tracker_depth_capacity():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=22)
    assert nb.depth_capacity() == 21
    for _ in range(21):
        nb.multiply()
    assert nb.depth_capacity() == 0
    with pytest.raises(ValueError, match="bootstrap"):
        nb.multiply()


def test_budget_trace_is_decreasing():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=22)
    trace = nb.trace(30)
    assert len(trace) == 22  # stops at exhaustion (Fig. 2's red cliff)
    assert all(b2 < b1 for b1, b2 in zip(trace, trace[1:]))


def test_rotation_does_not_spend_levels():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=10)
    levels_before = nb.levels
    nb.rotate()
    assert nb.levels == levels_before


# -- property: the static estimator upper-bounds measured noise -------------
#
# NoiseBudget is a *worst-case* planner: if it ever reports less noise than
# a real ciphertext carries, a program it declares safe could silently fail
# to decrypt.  Drive a tracked context through random op sequences and check
# the estimate stays above measure_noise_bits ground truth after every op.

_TRACKED = None


def _tracked_fixture():
    """Module-cached tracked context (keygen + hints are the expensive part)."""
    global _TRACKED
    if _TRACKED is None:
        params = CkksParams(degree=256, max_level=6, digits=1, seed=3)
        ctx = CkksContext(params, policy=ReliabilityPolicy(track_noise=True))
        sk = ctx.keygen()
        _TRACKED = (ctx, sk, ctx.relin_hint(sk), ctx.rotation_hint(sk, 1))
    return _TRACKED


def _unit_values(rng, slots):
    return np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=slots))


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    ops=st.lists(
        st.sampled_from(["add", "rotate", "pmult", "square"]),
        min_size=1, max_size=8,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_budget_upper_bounds_measured_noise(ops, seed):
    ctx, sk, relin, rot1 = _tracked_fixture()
    slots = ctx.params.slots
    rng = np.random.default_rng(seed)

    ref = 0.5 * _unit_values(rng, slots)
    ct = ctx.encrypt_values(sk, ref)
    assert ct.budget is not None
    assert ct.budget.noise_bits >= measure_noise_bits(ctx, sk, ct, ref)

    for op in ops:
        if ct.level < 2 and op in ("pmult", "square"):
            continue  # depth-consuming ops need a live level below the top
        try:
            if op == "add":
                ct, ref = ctx.add(ct, ct), ref + ref
            elif op == "rotate":
                ct, ref = ctx.rotate(ct, 1, rot1), np.roll(ref, -1)
            elif op == "pmult":
                v = _unit_values(rng, slots)
                ct, ref = ctx.pmult(ct, v), ref * v
            elif op == "square":
                ct, ref = ctx.multiply(ct, ct, relin), ref * ref
                if ct.level >= 2:
                    ct = ctx.rescale(ct)
        except NoiseBudgetExhaustedError:
            break  # the estimator called exhaustion first; that is its job
        if np.abs(ref).max() > 8:
            break  # repeated ct+ct: message growth would swamp the check

        measured = measure_noise_bits(ctx, sk, ct, ref)
        assert ct.budget is not None
        # The invariant under test: worst-case estimate >= ground truth.
        assert ct.budget.noise_bits >= measured, (
            f"estimator underestimates after {op}: "
            f"{ct.budget.noise_bits:.2f} < {measured:.2f}"
        )
        # Structural bookkeeping stays in sync with the ciphertext.
        assert ct.budget.levels == ct.level
