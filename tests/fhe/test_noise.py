"""Noise measurement and the Fig. 2 budget tracker."""

import numpy as np
import pytest

from repro.fhe.noise import NoiseBudget, budget_bits, measure_noise_bits


def test_measure_noise_on_fresh_ciphertext(fhe):
    z = fhe.random_values(40)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    bits = measure_noise_bits(fhe.ctx, fhe.sk, ct, z)
    # Fresh encryption noise is a handful of bits, far below the modulus.
    assert 0 < bits < 16
    assert budget_bits(ct) > 100


def test_noise_grows_with_operations(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(41, magnitude=0.3)
    ct = ctx.encrypt_values(sk, z)
    fresh = measure_noise_bits(ctx, sk, ct, z)
    rotated = ctx.rotate(ct, 1, fhe.rot1)
    after = measure_noise_bits(ctx, sk, rotated, np.roll(z, -1))
    assert after >= fresh - 1  # keyswitching never reduces noise


def test_budget_tracker_depth_capacity():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=22)
    assert nb.depth_capacity() == 21
    for _ in range(21):
        nb.multiply()
    assert nb.depth_capacity() == 0
    with pytest.raises(ValueError, match="bootstrap"):
        nb.multiply()


def test_budget_trace_is_decreasing():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=22)
    trace = nb.trace(30)
    assert len(trace) == 22  # stops at exhaustion (Fig. 2's red cliff)
    assert all(b2 < b1 for b1, b2 in zip(trace, trace[1:]))


def test_rotation_does_not_spend_levels():
    nb = NoiseBudget(degree=65536, modulus_bits_per_level=28, levels=10)
    levels_before = nb.levels
    nb.rotate()
    assert nb.levels == levels_before
