"""Keyswitching algorithms: boosted (t-digit) vs standard, noise, hints."""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext, CkksParams
from repro.fhe.keyswitch import (
    KeySwitchHint,
    boosted_keyswitch,
    digit_bases,
    generate_hint,
    standard_keyswitch,
)
from repro.fhe.poly import EVAL, RnsPoly
from repro.fhe.rns import RnsBasis


@pytest.fixture(scope="module")
def setup():
    params = CkksParams(degree=256, max_level=6, digits=1, seed=13)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    sk2 = ctx.keygen()
    return ctx, sk, sk2


def keyswitch_noise(ctx, sk_old, sk_new, hint, aux, level=None):
    """RMS integer-domain error of ks0 + ks1*s_new - c*s_old."""
    basis = ctx.q_basis if level is None else ctx.basis_at(level)
    rng = np.random.default_rng(99)
    c = RnsPoly.uniform_random(basis, ctx.params.degree, rng, EVAL)
    if aux is not None:
        ks0, ks1 = boosted_keyswitch(c, hint, aux)
    else:
        ks0, ks1 = standard_keyswitch(c, hint)
    s_new = sk_new.poly(basis)
    s_old = sk_old.poly(ctx.full_basis)
    s_old_r = RnsPoly(basis, s_old.data[: len(basis)], EVAL)
    err = (ks0 + ks1 * s_new - c * s_old_r).to_coeff().to_integers()
    mags = np.array([abs(int(e)) for e in err], dtype=float)
    return np.sqrt((mags**2).mean())


def test_digit_bases_partition():
    basis = RnsBasis([536813569, 536690689, 536641537, 536608769, 536551429][:4])
    parts = digit_bases(basis, 3)
    assert [len(p) for p in parts] == [3, 1]
    assert parts[0].moduli + parts[1].moduli == basis.moduli
    with pytest.raises(ValueError):
        digit_bases(basis, 0)


def test_boosted_keyswitch_small_noise(setup):
    ctx, sk, sk2 = setup
    s_old = sk2.poly(ctx.full_basis)
    hint = generate_hint(s_old, sk.poly(ctx.full_basis), ctx.q_basis,
                         ctx.aux_basis, ctx.params.alpha, ctx.rng, 1)
    rms = keyswitch_noise(ctx, sk2, sk, hint, ctx.aux_basis)
    # Boosted keyswitch noise stays near the error distribution: a few bits.
    assert rms < 2**8


def test_boosted_keyswitch_at_lower_level(setup):
    ctx, sk, sk2 = setup
    s_old = sk2.poly(ctx.full_basis)
    hint = generate_hint(s_old, sk.poly(ctx.full_basis), ctx.q_basis,
                         ctx.aux_basis, ctx.params.alpha, ctx.rng, 2)
    rms = keyswitch_noise(ctx, sk2, sk, hint, ctx.aux_basis, level=3)
    assert rms < 2**8


def test_standard_keyswitch_larger_but_bounded_noise(setup):
    """BV noise carries a q_i factor: orders of magnitude above boosted,
    still far below the modulus (usable, as in F1)."""
    ctx, sk, sk2 = setup
    s_old = sk2.poly(ctx.q_basis)
    hint = generate_hint(s_old, sk.poly(ctx.q_basis), ctx.q_basis, None, 1,
                         ctx.rng, 3)
    rms = keyswitch_noise(ctx, sk2, sk, hint, None)
    assert 2**10 < rms < 2**40


def test_standard_hint_has_L_digits(setup):
    ctx, sk, _ = setup
    hint = ctx.standard_relin_hint(sk)
    assert hint.digits == len(ctx.q_basis)
    assert hint.aux_count == 0


def test_boosted_hint_digit_structure(setup):
    ctx, sk, _ = setup
    hint = ctx.relin_hint(sk)
    assert hint.digits == 1
    assert hint.aux_count == len(ctx.aux_basis)
    # Each stored half spans Q*P.
    assert hint.b_polys[0].level == len(ctx.q_basis) + len(ctx.aux_basis)


def test_hint_seeded_expansion_is_deterministic(setup):
    ctx, sk, _ = setup
    hint = ctx.relin_hint(sk)
    a1 = hint.a_poly(0)
    # A fresh hint object with the same seed regenerates the same poly.
    clone = KeySwitchHint(
        b_polys=hint.b_polys, seed=hint.seed, alpha=hint.alpha,
        full_basis=hint.full_basis, aux_count=hint.aux_count,
    )
    assert np.array_equal(clone.a_poly(0).data, a1.data)


def test_hint_seed_changes_a_poly(setup):
    ctx, sk, _ = setup
    s = sk.poly(ctx.full_basis)
    h1 = generate_hint(s, s, ctx.q_basis, ctx.aux_basis, ctx.params.alpha,
                       ctx.rng, seed=41)
    h2 = generate_hint(s, s, ctx.q_basis, ctx.aux_basis, ctx.params.alpha,
                       ctx.rng, seed=42)
    assert h1.seed != h2.seed
    assert not np.array_equal(h1.a_poly(0).data, h2.a_poly(0).data)


def test_context_hints_are_cached(setup):
    """ARK-style hint reuse: repeated requests return the same hint object
    instead of re-sampling uniforms (and re-spending a seed)."""
    ctx, sk, sk2 = setup
    assert ctx.relin_hint(sk) is ctx.relin_hint(sk)
    assert ctx.rotation_hint(sk, 1) is ctx.rotation_hint(sk, 1)
    assert ctx.conjugation_hint(sk) is ctx.conjugation_hint(sk)
    # Distinct keys, steps, or digit counts miss the cache.
    assert ctx.relin_hint(sk) is not ctx.relin_hint(sk2)
    assert ctx.rotation_hint(sk, 1) is not ctx.rotation_hint(sk, 2)
    assert ctx.rotation_hint(sk, 1, digits=2) is not ctx.rotation_hint(sk, 1)
    # Rotation steps are keyed modulo the slot count (same automorphism).
    slots = ctx.params.slots
    assert ctx.rotation_hint(sk, 1) is ctx.rotation_hint(sk, 1 + slots)


def test_hint_size_words_counts_stored_half_only(setup):
    """The KSHGen saving: only b halves are stored; a halves are seeds."""
    ctx, sk, _ = setup
    hint = ctx.relin_hint(sk)
    rows = sum(p.level for p in hint.b_polys)
    assert hint.size_words() == rows * ctx.params.degree


def test_restricted_rows_alignment(setup):
    ctx, sk, _ = setup
    hint = ctx.relin_hint(sk)
    sub = ctx.basis_at(2).extend(ctx.aux_basis)
    b, a = hint.restricted_rows(0, sub)
    assert b.shape == (len(sub), ctx.params.degree)
    full_moduli = hint.full_basis.moduli
    for row, q in enumerate(sub.moduli):
        src = full_moduli.index(q)
        assert np.array_equal(b[row], hint.b_polys[0].data[src])


def test_mismatched_hint_algorithm_rejected(setup):
    ctx, sk, _ = setup
    boosted = ctx.relin_hint(sk)
    standard = ctx.standard_relin_hint(sk)
    rng = np.random.default_rng(5)
    c = RnsPoly.uniform_random(ctx.q_basis, ctx.params.degree, rng, EVAL)
    with pytest.raises(ValueError):
        standard_keyswitch(c, boosted)
    with pytest.raises(ValueError):
        boosted_keyswitch(c, standard, ctx.aux_basis)


def test_generate_hint_requires_full_basis(setup):
    ctx, sk, _ = setup
    with pytest.raises(ValueError, match="full basis"):
        generate_hint(sk.poly(ctx.q_basis), sk.poly(ctx.q_basis),
                      ctx.q_basis, ctx.aux_basis, 6, ctx.rng, 9)


def test_keyswitch_actually_switches_keys(setup):
    """Encrypt under sk2, keyswitch to sk, decrypt under sk."""
    ctx, sk, sk2 = setup
    from repro.fhe.ckks import Ciphertext
    rng = np.random.default_rng(7)
    z = 0.3 * (rng.normal(size=ctx.params.slots))
    ct = ctx.encrypt_values(sk2, z)
    hint = generate_hint(sk2.poly(ctx.full_basis), sk.poly(ctx.full_basis),
                         ctx.q_basis, ctx.aux_basis, ctx.params.alpha,
                         ctx.rng, 11)
    ks0, ks1 = boosted_keyswitch(ct.c1, hint, ctx.aux_basis)
    switched = Ciphertext(ct.c0 + ks0, ks1, ct.scale)
    dec = ctx.decrypt(sk, switched)
    assert np.max(np.abs(dec - z)) < 1e-4
