"""Differential harness: limb-batched kernels vs their per-limb oracles.

The vectorized hot path must be *bit-identical* to the scalar reference
kernels that stay in the tree as oracles:

===========================  =========================================
batched kernel               reference oracle
===========================  =========================================
``BatchedNttContext``        per-limb ``NttContext`` loops
``batch_rescale``            per-poly ``RnsPoly.rescale``
``mod_down_pair``            two ``mod_down`` calls
EVAL-domain ``automorphism`` COEFF automorphism through an NTT round trip
split-MAC ``convert_approx`` per-term-reduced accumulation loop
vectorized twiddle tables    scalar square-and-multiply power ladders
===========================  =========================================

Bit-exactness (not closeness) is the contract: the reliability layer's
checksums, the serving campaign's bit-reproducible baselines and the pod
campaign's bit-exact recovery all assume the batched kernels compute the
same residues the per-limb kernels would.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.keyswitch import mod_down, mod_down_pair
from repro.fhe.ntt import (
    BatchedNttContext,
    NttContext,
    bit_reverse_permutation,
    eval_automorphism_permutation,
    power_table,
)
from repro.fhe.poly import COEFF, EVAL, RnsPoly, batch_rescale
from repro.fhe.polyeval import add_any
from repro.fhe.primes import find_ntt_primes
from repro.reliability.errors import ParameterError

from tests.fhe.conftest import rand_rows


# ---------------------------------------------------------------------------
# Batched NTT vs per-limb reference
# ---------------------------------------------------------------------------

@given(degree=st.sampled_from([16, 64, 256]),
       limbs=st.integers(min_value=1, max_value=5),
       lead=st.sampled_from([0, 1, 2, 3]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_batched_ntt_bit_exact(prime_pool, degree, limbs, lead, seed):
    """Forward and inverse agree with per-limb transforms, limb by limb,
    for plain (L, N) matrices and for any leading batch axis."""
    moduli = prime_pool[:limbs]
    batched = BatchedNttContext.get(moduli, degree)
    rng = np.random.default_rng(seed)
    shape = ((lead,) if lead else ()) + (limbs, degree)
    data = np.empty(shape, dtype=np.uint64)
    for i, q in enumerate(moduli):
        data[..., i, :] = rng.integers(0, q, size=shape[:-2] + (degree,),
                                       dtype=np.uint64)
    fwd = batched.forward(data)
    inv = batched.inverse(data)
    assert fwd.shape == data.shape and inv.shape == data.shape
    for i, q in enumerate(moduli):
        limb = NttContext.get(q, degree)
        want_f = np.apply_along_axis(limb.forward, -1, data[..., i, :])
        want_i = np.apply_along_axis(limb.inverse, -1, data[..., i, :])
        assert np.array_equal(fwd[..., i, :], want_f)
        assert np.array_equal(inv[..., i, :], want_i)


@given(degree=st.sampled_from([16, 64, 256]),
       limbs=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_batched_ntt_roundtrip(prime_pool, degree, limbs, seed):
    moduli = prime_pool[:limbs]
    batched = BatchedNttContext.get(moduli, degree)
    rng = np.random.default_rng(seed)
    data = np.stack([rng.integers(0, q, degree, dtype=np.uint64)
                     for q in moduli])
    assert np.array_equal(batched.inverse(batched.forward(data)), data)
    assert np.array_equal(batched.forward(batched.inverse(data)), data)


def test_batched_context_is_cached(prime_pool):
    moduli = prime_pool[:3]
    assert BatchedNttContext.get(moduli, 64) is BatchedNttContext.get(
        list(moduli), 64)


# ---------------------------------------------------------------------------
# Twiddle-table construction vs scalar reference ladders
# ---------------------------------------------------------------------------

def _scalar_power_table(base: int, count: int, modulus: int) -> np.ndarray:
    out = np.empty(count, dtype=np.uint64)
    acc = 1
    for i in range(count):
        out[i] = acc
        acc = acc * base % modulus
    return out


def test_power_table_matches_scalar_ladder(prime_pool):
    q = prime_pool[0]
    for base in (3, 7, q - 2):
        assert np.array_equal(power_table(base, 128, q),
                              _scalar_power_table(base, 128, q))


def test_ntt_tables_match_scalar_construction(prime_pool):
    """The vectorized NttContext init builds the same psi tables a scalar
    square-and-multiply loop would."""
    q, degree = prime_pool[0], 64
    ctx = NttContext.get(q, degree)
    rev = bit_reverse_permutation(degree)
    psi = int(ctx._psi)
    want = _scalar_power_table(psi, degree, q)[rev]
    assert np.array_equal(ctx.psi_bitrev, want)
    psi_inv = pow(psi, q - 2, q)
    want_inv = _scalar_power_table(psi_inv, degree, q)[rev]
    assert np.array_equal(ctx.psi_inv_bitrev, want_inv)


def test_batched_tables_stack_per_limb_tables(prime_pool):
    moduli, degree = prime_pool[:4], 64
    batched = BatchedNttContext.get(moduli, degree)
    for i, q in enumerate(moduli):
        limb = NttContext.get(q, degree)
        assert np.array_equal(batched.psi_bitrev[i], limb.psi_bitrev)
        assert np.array_equal(batched.psi_inv_bitrev[i], limb.psi_inv_bitrev)
        assert batched.n_inv_col[i, 0] == limb.n_inv
        assert batched.q_col[i, 0] == q


def test_inverse_check_vector_relation(prime_pool):
    """Integrity checksum: the vectorized check vector satisfies the iNTT
    relation verify_transform relies on, sum(c * a_eval) == N * sum(iNTT)."""
    q, degree = prime_pool[1], 64
    ctx = NttContext.get(q, degree)
    rng = np.random.default_rng(5)
    data = rng.integers(0, q, degree, dtype=np.uint64)
    out = ctx.inverse(data)
    lhs = int((ctx._inverse_check_vector() * data % np.uint64(q)).sum() % q)
    rhs = degree % q * (int(out.sum()) % q) % q
    assert lhs == rhs


# ---------------------------------------------------------------------------
# EVAL-domain automorphism vs COEFF reference
# ---------------------------------------------------------------------------

@given(k=st.integers(min_value=0, max_value=511).map(lambda v: 2 * v + 1),
       limbs=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_eval_automorphism_matches_coeff_roundtrip(make_basis, k, limbs, seed):
    """phi_k on EVAL data is a pure permutation, bit-identical to
    INTT -> coefficient automorphism -> NTT."""
    degree = 128
    basis = make_basis(limbs)
    poly = RnsPoly(basis, rand_rows(basis, degree, seed), EVAL)
    fast = poly.automorphism(k)
    assert fast.domain == EVAL
    reference = poly.to_coeff().automorphism(k).to_eval()
    assert np.array_equal(fast.data, reference.data)


def test_eval_automorphism_rejects_even_exponent():
    with pytest.raises(ParameterError):
        eval_automorphism_permutation(64, 6)


def test_automorphism_permutation_cached():
    a = eval_automorphism_permutation(64, 5)
    b = eval_automorphism_permutation(64, 5)
    assert a is b
    assert not a.flags.writeable


# ---------------------------------------------------------------------------
# batch_rescale vs per-poly RnsPoly.rescale
# ---------------------------------------------------------------------------

@given(limbs=st.integers(min_value=2, max_value=6),
       count=st.integers(min_value=1, max_value=3),
       domain=st.sampled_from([COEFF, EVAL]),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_batch_rescale_bit_exact(make_basis, limbs, count, domain, seed):
    """The stacked (and, in EVAL, lazy single-limb-INTT) rescale equals the
    per-polynomial oracle on every limb of every polynomial."""
    degree = 64
    basis = make_basis(limbs)
    polys = [RnsPoly(basis, rand_rows(basis, degree, seed + i), domain)
             for i in range(count)]
    got = batch_rescale(polys)
    for g, p in zip(got, polys):
        want = p.rescale()
        assert g.domain == want.domain == domain
        assert g.basis == want.basis
        assert np.array_equal(g.data, want.data)


def test_batch_rescale_rejects_depleted(make_basis):
    basis = make_basis(1)
    poly = RnsPoly(basis, rand_rows(basis, 64, 0), COEFF)
    with pytest.raises(ValueError):
        batch_rescale([poly])


# ---------------------------------------------------------------------------
# mod_down_pair vs mod_down
# ---------------------------------------------------------------------------

@given(q_limbs=st.integers(min_value=1, max_value=4),
       aux_limbs=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_mod_down_pair_bit_exact(make_basis, q_limbs, aux_limbs, seed):
    """The shared-transform pair path equals two independent mod_down
    calls (the oracle), for both halves, in EVAL and COEFF domains."""
    degree = 64
    q_basis = make_basis(q_limbs)
    aux_basis = make_basis(aux_limbs, offset=q_limbs)
    target = q_basis.extend(aux_basis)
    for domain in (EVAL, COEFF):
        p0 = RnsPoly(target, rand_rows(target, degree, seed), domain)
        p1 = RnsPoly(target, rand_rows(target, degree, seed + 1), domain)
        g0, g1 = mod_down_pair(p0, p1, q_basis, aux_basis)
        w0 = mod_down(p0, q_basis, aux_basis)
        w1 = mod_down(p1, q_basis, aux_basis)
        assert np.array_equal(g0.to_coeff().data, w0.to_coeff().data)
        assert np.array_equal(g1.to_coeff().data, w1.to_coeff().data)
        if domain == EVAL:
            assert g0.domain == EVAL and g1.domain == EVAL


# ---------------------------------------------------------------------------
# Split-MAC convert_approx vs per-term-reduced reference
# ---------------------------------------------------------------------------

@given(src_limbs=st.integers(min_value=1, max_value=6),
       dst_limbs=st.integers(min_value=1, max_value=8),
       correct=st.booleans(),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_convert_approx_bit_exact(make_basis, src_limbs, dst_limbs, correct,
                                  seed):
    """The division-free hi/lo MAC equals the historical kernel that
    reduced every product term before accumulating."""
    degree = 64
    src = make_basis(src_limbs)
    dst = make_basis(dst_limbs, offset=src_limbs)
    residues = rand_rows(src, degree, seed)
    got = src.convert_approx(residues, dst, correct=correct)
    scaled = residues * src._q_hat_inv_col % src.moduli_col
    overflow = None
    if correct:
        fraction = np.zeros(degree, dtype=np.float64)
        for i, qi in enumerate(src.moduli):
            fraction += scaled[i].astype(np.float64) / qi
        overflow = np.rint(fraction).astype(np.uint64)
    consts = src.conversion_constants(dst)
    for j, pj in enumerate(dst.moduli):
        pj64 = np.uint64(pj)
        acc = (scaled * consts[:, j, None] % pj64).sum(
            axis=0, dtype=np.uint64) % pj64
        if correct:
            q_mod = np.uint64(src.modulus % pj)
            acc = (acc + (pj64 - overflow % pj64 * q_mod % pj64)) % pj64
        assert np.array_equal(got[j], acc)


# ---------------------------------------------------------------------------
# Canonical-residue arithmetic (the min-trick reductions)
# ---------------------------------------------------------------------------

@given(limbs=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_ring_ops_stay_canonical(make_basis, limbs, seed):
    """add/sub/neg via conditional subtraction produce exactly the values
    a true ``%`` reduction would - including at the q-1/0 boundaries."""
    degree = 32
    basis = make_basis(limbs)
    q = basis.moduli_col
    a_data = rand_rows(basis, degree, seed)
    b_data = rand_rows(basis, degree, seed + 1)
    # Force boundary values into the first columns.
    a_data[:, 0] = 0
    b_data[:, 0] = 0
    a_data[:, 1] = (q - np.uint64(1))[:, 0]
    b_data[:, 1] = (q - np.uint64(1))[:, 0]
    a = RnsPoly(basis, a_data, COEFF)
    b = RnsPoly(basis, b_data, COEFF)
    assert np.array_equal((a + b).data, (a_data + b_data) % q)
    assert np.array_equal((a - b).data, (a_data + q - b_data) % q)
    assert np.array_equal((-a).data, (q - a_data) % q)
    for out in ((a + b).data, (a - b).data, (-a).data):
        assert np.all(out < q)


# ---------------------------------------------------------------------------
# End to end: the vectorized path under a full homomorphic pipeline
# ---------------------------------------------------------------------------

def test_end_to_end_rotate_keyswitch_rescale(fhe):
    """encrypt -> rotate (keyswitch) -> plaintext multiply -> rescale ->
    decrypt through every batched kernel recovers the expected slots."""
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(seed=21, magnitude=0.25)
    ct = ctx.encrypt_values(sk, z)
    rot = ctx.rotate(ct, 1, fhe.rot1)
    weights = np.linspace(0.5, 1.5, fhe.slots)
    prod = ctx.pmult(rot, weights)
    got = ctx.decrypt(sk, prod)
    want = np.roll(z, -1) * weights
    assert np.max(np.abs(got - want)) < 1e-4


def test_deferred_pmult_matches_eager_sum(fhe):
    """Lazy rescale: sum-then-rescale lands within rounding distance of
    rescale-then-sum and on exactly the same scale and level."""
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(seed=22, magnitude=0.25)
    ct = ctx.encrypt_values(sk, z)
    w1 = np.linspace(0.1, 0.9, fhe.slots)
    w2 = np.linspace(-0.5, 0.5, fhe.slots)
    eager = ctx.add(ctx.pmult(ct, w1), ctx.pmult(ct, w2))
    lazy = add_any(ctx, ctx.pmult_deferred(ct, w1),
                   ctx.pmult_deferred(ct, w2))
    lazy = ctx.rescale(lazy)
    lazy.scale = ct.scale
    assert lazy.level == eager.level
    assert lazy.scale == eager.scale
    got = ctx.decrypt(sk, lazy)
    want = z * (w1 + w2)
    assert np.max(np.abs(got - want)) < 1e-4
    assert np.max(np.abs(ctx.decrypt(sk, eager) - want)) < 1e-4
