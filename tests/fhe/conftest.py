"""FHE-suite fixtures: expensive objects are built once per session.

Prime search, NTT table generation and bootstrap key generation dominate
test *setup* time, so the shared objects live here at session scope and
individual modules only build what is unique to them.  Fixtures must not
be mutated (FHE operations are functional and return new objects).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fhe.bootstrap import Bootstrapper
from repro.fhe.ckks import CkksContext, CkksParams
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis


@pytest.fixture(scope="session")
def prime_pool():
    """30-bit NTT-friendly primes usable for any degree up to 1024."""
    return tuple(find_ntt_primes(24, 30, 1024))


@pytest.fixture(scope="session")
def make_basis(prime_pool):
    """Build an RnsBasis from a slice of the shared prime pool."""

    def _make(count: int, offset: int = 0) -> RnsBasis:
        if offset + count > len(prime_pool):
            raise ValueError("prime pool exhausted")
        return RnsBasis(prime_pool[offset : offset + count])

    return _make


@pytest.fixture(scope="session")
def boot():
    """Bootstrap-capable context shared by every bootstrapping test."""
    params = CkksParams(degree=512, max_level=15, digits=1,
                        secret_hamming=16, seed=11)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    return ctx, sk, Bootstrapper(ctx, sk)


def rand_rows(basis: RnsBasis, degree: int, seed: int) -> np.ndarray:
    """Uniform (L, N) residue matrix for differential tests."""
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.integers(0, q, size=degree, dtype=np.uint64) for q in basis
    ])
