"""Fully packed bootstrapping: the paper's headline capability, end to end.

These are the slowest tests in the suite (a real homomorphic bootstrap at
toy parameters); they are marked so `-m "not slow"` can skip them.
"""

import numpy as np
import pytest

from repro.fhe.bootstrap import BootstrapConfig, Bootstrapper
from repro.fhe.ckks import CkksContext, CkksParams

# The bootstrap-capable context is expensive to key; it is the
# session-scoped ``boot`` fixture in tests/fhe/conftest.py.


def test_config_derivation(boot):
    ctx, sk, bs = boot
    assert bs.range_bound >= 8
    assert bs.squarings >= 1
    assert bs.levels_consumed() <= ctx.params.max_level


def test_keyswitch_count_positive(boot):
    _, _, bs = boot
    # Dozens of rotations for the transforms plus EvalMod multiplies.
    assert bs.keyswitch_count() > 50


def test_mod_raise_preserves_plaintext(boot):
    ctx, sk, bs = boot
    rng = np.random.default_rng(0)
    z = 0.02 * (rng.normal(size=ctx.params.slots))
    ct = ctx.encrypt_values(sk, z, level=1)
    raised = bs.mod_raise(ct)
    assert raised.level == ctx.params.max_level
    # Raised plaintext = m + q1*I: slots must match z modulo integer*q1/q1.
    dec = ctx.decrypt(sk, raised)  # decoded at scale q1: eps + I patterns
    # The fractional parts of the coefficient-domain plaintext carry m.
    coeffs = np.array([float(c) for c in ctx.decrypt_poly(sk, raised).to_integers()])
    q1 = ct.basis.moduli[0]
    frac = coeffs / q1 - np.rint(coeffs / q1)
    want = ctx.encoder.unembed(z) * ct.scale / q1
    assert np.max(np.abs(frac - want)) < 1e-4


def test_mod_raise_rejects_high_level(boot):
    ctx, sk, bs = boot
    z = np.zeros(ctx.params.slots)
    ct = ctx.encrypt_values(sk, z, level=2)
    with pytest.raises(ValueError):
        bs.mod_raise(ct)


@pytest.mark.slow
def test_bootstrap_refreshes_level_and_value(boot):
    ctx, sk, bs = boot
    rng = np.random.default_rng(3)
    n = ctx.params.slots
    z = (rng.normal(size=n) + 1j * rng.normal(size=n)) * 0.02
    ct = ctx.encrypt_values(sk, z, level=1)
    out = bs.bootstrap(ct)
    assert out.level > 1  # multiplicative budget refreshed (Fig. 2)
    err = np.abs(ctx.decrypt(sk, out) - z)
    assert err.max() < 5e-3


@pytest.mark.slow
def test_bootstrap_output_is_computable(boot):
    """The refreshed ciphertext supports further homomorphic compute."""
    ctx, sk, bs = boot
    rng = np.random.default_rng(4)
    n = ctx.params.slots
    z = rng.normal(size=n) * 0.02
    ct = ctx.encrypt_values(sk, z, level=1)
    out = bs.bootstrap(ct)
    sq = ctx.rescale(ctx.square(out, bs.relin_hint))
    err = np.abs(ctx.decrypt(sk, sq) - z * z)
    assert err.max() < 1e-3


@pytest.mark.slow
def test_unbounded_computation(boot):
    """Compute past the native budget: a level-1 ciphertext supports zero
    further multiplies, but bootstrap -> multiply -> deplete -> bootstrap
    continues indefinitely - the paper's 'unbounded' claim in miniature
    (three refresh cycles)."""
    ctx, sk, bs = boot
    n = ctx.params.slots
    z = np.full(n, 0.02)
    ct = ctx.encrypt_values(sk, z, level=1)
    with pytest.raises(ValueError):
        ctx.rescale(ct)  # depleted: no multiplicative budget left
    total_mults = 0
    for _ in range(3):
        ct = bs.bootstrap(ct)
        assert ct.level > 1
        while ct.level > 1:  # spend the refreshed budget back down
            ct = ctx.pmult(ct, np.full(n, 1.1))
            total_mults += 1
    want = z * 1.1**total_mults
    err = np.abs(ctx.decrypt(sk, ct) - want)
    assert err.max() < 5e-3
    assert total_mults >= 3  # impossible without refreshes


def test_custom_config_overrides():
    cfg = BootstrapConfig(taylor_degree=31, max_arg=4.0, range_bound=8)
    params = CkksParams(degree=256, max_level=15, digits=1,
                        secret_hamming=8, seed=21)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    bs = Bootstrapper(ctx, sk, cfg)
    assert bs.range_bound == 8
    assert bs.squarings == int(np.ceil(np.log2(2 * np.pi * 8 / 4.0)))
