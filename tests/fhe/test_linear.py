"""BSGS homomorphic linear transforms (matrix-vector on slots)."""

import numpy as np
import pytest

from repro.fhe.linear import (
    LinearTransform,
    RealLinearTransform,
    holomorphic_parts,
)


def make_hints(fix, transform):
    return {
        r: fix.ctx.rotation_hint(fix.sk, r)
        for r in transform.required_rotations()
    }


def test_holomorphic_parts_complex_linear():
    n = 8
    rng = np.random.default_rng(0)
    m = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    a, b = holomorphic_parts(lambda z: m @ z, n)
    assert np.allclose(a, m)
    assert np.max(np.abs(b)) < 1e-12


def test_holomorphic_parts_conjugation():
    n = 4
    a, b = holomorphic_parts(np.conj, n)
    assert np.max(np.abs(a)) < 1e-12
    assert np.allclose(b, np.eye(n))


def test_holomorphic_parts_mixed():
    n = 4
    rng = np.random.default_rng(1)
    ma = rng.normal(size=(n, n))
    mb = rng.normal(size=(n, n))
    fn = lambda z: ma @ z + mb @ np.conj(z)
    a, b = holomorphic_parts(fn, n)
    assert np.allclose(a, ma) and np.allclose(b, mb)


def test_dense_matrix_apply(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    n = fhe.slots
    rng = np.random.default_rng(2)
    m = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / np.sqrt(n)
    lt = LinearTransform(ctx, m)
    hints = make_hints(fhe, lt)
    z = fhe.random_values(3, magnitude=0.3)
    ct = ctx.encrypt_values(sk, z)
    out = lt.apply(ct, hints)
    assert out.level == ct.level - 1
    assert np.max(np.abs(ctx.decrypt(sk, out) - m @ z)) < 1e-3


def test_diagonal_matrix_needs_no_rotations(fhe):
    ctx = fhe.ctx
    n = fhe.slots
    d = np.diag(np.linspace(0.5, 1.5, n))
    lt = LinearTransform(ctx, d)
    assert lt.required_rotations() == set()
    assert lt.rotation_count() == 0
    z = fhe.random_values(4)
    ct = ctx.encrypt_values(fhe.sk, z)
    out = lt.apply(ct, {})
    want = np.linspace(0.5, 1.5, n) * z
    assert np.max(np.abs(ctx.decrypt(fhe.sk, out) - want)) < 1e-3


def test_banded_matrix_cheap(fhe):
    """Structured (tridiagonal-cyclic) matrices only pay for live diagonals."""
    ctx = fhe.ctx
    n = fhe.slots
    m = np.zeros((n, n), dtype=complex)
    idx = np.arange(n)
    m[idx, idx] = 1.0
    m[idx, (idx + 1) % n] = 0.5
    lt = LinearTransform(ctx, m)
    assert len(lt.diagonals) == 2
    assert lt.rotation_count() <= 2
    hints = make_hints(fhe, lt)
    z = fhe.random_values(5)
    ct = ctx.encrypt_values(fhe.sk, z)
    out = lt.apply(ct, hints)
    assert np.max(np.abs(ctx.decrypt(fhe.sk, out) - m @ z)) < 1e-3


def test_permutation_matrix(fhe):
    ctx = fhe.ctx
    n = fhe.slots
    m = np.roll(np.eye(n), 3, axis=1)  # left-rotation by 3 as a matrix
    lt = LinearTransform(ctx, m)
    hints = make_hints(fhe, lt)
    z = fhe.random_values(6)
    ct = ctx.encrypt_values(fhe.sk, z)
    out = lt.apply(ct, hints)
    assert np.max(np.abs(ctx.decrypt(fhe.sk, out) - np.roll(z, -3))) < 1e-3


def test_bsgs_rotation_count_scales_with_sqrt(fhe):
    n = fhe.slots
    rng = np.random.default_rng(7)
    m = rng.normal(size=(n, n)) / n
    lt = LinearTransform(fhe.ctx, m)
    # Dense matrix: D = n diagonals; BSGS must use far fewer than n rots.
    assert lt.rotation_count() < n / 2
    assert lt.rotation_count() >= int(np.sqrt(n))


def test_baby_steps_override(fhe):
    n = fhe.slots
    rng = np.random.default_rng(8)
    m = rng.normal(size=(n, n)) / n
    plain = LinearTransform(fhe.ctx, m, baby_steps=n)
    assert len(plain.groups) == 1  # no giant steps at all
    with pytest.raises(ValueError):
        LinearTransform(fhe.ctx, m, baby_steps=3)


def test_result_scale_targeting(fhe):
    n = fhe.slots
    m = np.eye(n) * 0.5
    lt = LinearTransform(fhe.ctx, m)
    z = fhe.random_values(9)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    target = 2.0**27
    out = lt.apply(ct, {}, result_scale=target)
    assert out.scale == target
    assert np.max(np.abs(fhe.ctx.decrypt(fhe.sk, out) - 0.5 * z)) < 1e-3


def test_shape_validation(fhe):
    with pytest.raises(ValueError):
        LinearTransform(fhe.ctx, np.ones((4, 4)))
    with pytest.raises(ValueError):
        LinearTransform(fhe.ctx, np.zeros((fhe.slots, fhe.slots)))


def test_real_linear_transform_with_conjugation(fhe):
    """z -> Re(z) needs the conjugated branch; exactly CoeffToSlot's shape."""
    ctx, sk = fhe.ctx, fhe.sk
    lt = RealLinearTransform(ctx, lambda z: z.real.astype(np.complex128))
    assert lt.needs_conjugation()
    hints = make_hints(fhe, lt)
    z = fhe.random_values(10)
    ct = ctx.encrypt_values(sk, z)
    out = lt.apply(ct, hints, conj_hint=fhe.conj)
    assert np.max(np.abs(ctx.decrypt(sk, out) - z.real)) < 1e-3


def test_real_linear_requires_conj_hint(fhe):
    lt = RealLinearTransform(fhe.ctx, lambda z: np.conj(z))
    z = fhe.random_values(11)
    ct = fhe.ctx.encrypt_values(fhe.sk, z)
    with pytest.raises(ValueError, match="conjugation"):
        lt.apply(ct, {})


def test_real_linear_pure_complex_part_skips_conj(fhe):
    n = fhe.slots
    rng = np.random.default_rng(12)
    m = rng.normal(size=(n, n)) / n
    lt = RealLinearTransform(fhe.ctx, lambda z: m @ z)
    assert not lt.needs_conjugation()
    assert lt.b_part is None
