"""Prime search and primitive roots: the NTT-friendliness substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.primes import (
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 97, 7919, 2**31 - 1, 999999937]
KNOWN_COMPOSITES = [1, 0, 4, 9, 15, 91, 561, 1105, 2**31, 999999938]


def test_is_prime_known_primes():
    for p in KNOWN_PRIMES:
        assert is_prime(p), p


def test_is_prime_known_composites():
    for c in KNOWN_COMPOSITES:
        assert not is_prime(c), c


def test_is_prime_carmichael_numbers():
    # Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
    for c in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
        assert not is_prime(c), c


@given(st.integers(min_value=2, max_value=10_000))
@settings(max_examples=200)
def test_is_prime_matches_trial_division(n):
    by_trial = n >= 2 and all(n % d for d in range(2, int(n**0.5) + 1))
    assert is_prime(n) == by_trial


def test_find_ntt_primes_congruence_and_width():
    primes = find_ntt_primes(10, 28, 1024)
    assert len(primes) == len(set(primes)) == 10
    for q in primes:
        assert is_prime(q)
        assert q % (2 * 1024) == 1
        assert 2**27 < q < 2**28


def test_find_ntt_primes_descending():
    primes = find_ntt_primes(5, 28, 512)
    assert primes == sorted(primes, reverse=True)


def test_find_ntt_primes_deep_chain_exists():
    # The paper's constraint: 2*Lmax = 120 28-bit moduli must exist for the
    # largest rings it targets (Sec. 5.5).  Verify for a smaller ring here
    # (the 64K-ring search is exercised in the analysis benchmarks).
    primes = find_ntt_primes(120, 28, 4096)
    assert len(primes) == 120


def test_find_ntt_primes_exhaustion_raises():
    # 12-bit primes congruent 1 mod 2048 barely exist.
    with pytest.raises(ValueError, match="NTT-friendly"):
        find_ntt_primes(50, 12, 1024)


def test_find_ntt_primes_input_validation():
    with pytest.raises(ValueError):
        find_ntt_primes(0, 28, 1024)
    with pytest.raises(ValueError):
        find_ntt_primes(1, 28, 1000)  # not a power of two
    with pytest.raises(ValueError):
        find_ntt_primes(1, 70, 1024)  # too wide for uint64 arithmetic


def test_primitive_root_generates_group():
    q = find_ntt_primes(1, 20, 256)[0]
    g = primitive_root(q)
    seen = set()
    x = 1
    for _ in range(q - 1):
        x = x * g % q
        seen.add(x)
    assert len(seen) == q - 1


def test_root_of_unity_order():
    n = 512
    q = find_ntt_primes(1, 28, n)[0]
    psi = root_of_unity(q, 2 * n)
    assert pow(psi, 2 * n, q) == 1
    assert pow(psi, n, q) == q - 1  # psi^N = -1: the negacyclic property


def test_root_of_unity_requires_divisibility():
    with pytest.raises(ValueError):
        root_of_unity(17, 32)  # 32 does not divide 16
