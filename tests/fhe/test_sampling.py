"""Samplers: secrets, errors, and the seeded-hint expansion (KSHGen)."""

import numpy as np
import pytest

from repro.fhe.poly import EVAL
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis
from repro.fhe.sampling import (
    gaussian_error,
    seeded_uniform_poly,
    ternary_secret,
)

BASIS = RnsBasis(find_ntt_primes(3, 28, 64))


def test_dense_ternary_range():
    rng = np.random.default_rng(0)
    s = ternary_secret(4096, rng)
    assert set(np.unique(s)) <= {-1, 0, 1}
    # dense: roughly 2/3 nonzero
    assert 0.5 < np.mean(s != 0) < 0.8


def test_sparse_ternary_hamming_weight():
    rng = np.random.default_rng(1)
    s = ternary_secret(1024, rng, hamming_weight=64)
    assert np.sum(s != 0) == 64
    assert set(np.unique(s[s != 0])) <= {-1, 1}


def test_sparse_hamming_validation():
    rng = np.random.default_rng(2)
    with pytest.raises(ValueError):
        ternary_secret(64, rng, hamming_weight=0)
    with pytest.raises(ValueError):
        ternary_secret(64, rng, hamming_weight=65)


def test_gaussian_error_statistics():
    rng = np.random.default_rng(3)
    e = gaussian_error(100_000, rng, sigma=3.2)
    assert abs(np.std(e) - 3.2) < 0.1
    assert abs(np.mean(e)) < 0.1
    assert np.max(np.abs(e)) < 32  # ~10 sigma tail bound


def test_seeded_uniform_determinism():
    a = seeded_uniform_poly(BASIS, 64, seed=12345, stream=0)
    b = seeded_uniform_poly(BASIS, 64, seed=12345, stream=0)
    assert np.array_equal(a.data, b.data)
    assert a.domain == EVAL


def test_seeded_uniform_stream_separation():
    a = seeded_uniform_poly(BASIS, 64, seed=12345, stream=0)
    b = seeded_uniform_poly(BASIS, 64, seed=12345, stream=1)
    c = seeded_uniform_poly(BASIS, 64, seed=54321, stream=0)
    assert not np.array_equal(a.data, b.data)
    assert not np.array_equal(a.data, c.data)


def test_seeded_uniform_in_range():
    p = seeded_uniform_poly(BASIS, 256, seed=7, stream=3)
    for i, q in enumerate(BASIS):
        assert p.data[i].max() < q
    # Uniformity smoke check: mean near q/2.
    for i, q in enumerate(BASIS):
        assert abs(float(p.data[i].mean()) / q - 0.5) < 0.1
