"""Hoisted rotations: one ModUp shared across many rotations."""

import numpy as np
import pytest

from repro.fhe.hoisting import HoistedRotator, hoisted_rotations, hoisting_savings


def test_hoisted_rotation_matches_plain(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(31)
    ct = ctx.encrypt_values(sk, z)
    plan = {s: ctx.rotation_hint(sk, s) for s in (1, 3, 7)}
    outs = hoisted_rotations(ctx, ct, plan)
    for steps, out in outs.items():
        want = np.roll(z, -steps)
        got = ctx.decrypt(sk, out)
        assert np.max(np.abs(got - want)) < 1e-3, steps
        # And agrees with the unhoisted path.
        plain = ctx.decrypt(sk, ctx.rotate(ct, steps, plan[steps]))
        assert np.max(np.abs(got - plain)) < 1e-3, steps


def test_hoisting_empty_plan(fhe):
    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(32))
    assert hoisted_rotations(fhe.ctx, ct, {}) == {}


def test_hoisted_rotator_reuses_decomposition(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    ct = ctx.encrypt_values(sk, fhe.random_values(33))
    rotator = HoistedRotator(ctx, ct, alpha=ctx.params.alpha)
    digits_before = [d.data.copy() for d in rotator.raised_digits]
    rotator.rotate(1, ctx.rotation_hint(sk, 1))
    rotator.rotate(2, ctx.rotation_hint(sk, 2))
    # The shared decomposition is never mutated by rotations.
    for before, after in zip(digits_before, rotator.raised_digits):
        assert np.array_equal(before, after.data)


def test_hoisting_savings_formula():
    # 1-digit at L=60: 6L per rotation vs (5L + 2*alpha) + amortized L.
    ratio = hoisting_savings(60, 1, rotations=16)
    assert 1.1 < ratio < 1.3
    # Savings grow with the number of rotations sharing the hoist.
    assert hoisting_savings(60, 1, 32) > hoisting_savings(60, 1, 2)
