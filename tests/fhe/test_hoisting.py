"""Hoisted rotations: one ModUp shared across many rotations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ChipConfig
from repro.core.cost import (
    boosted_keyswitch_cost,
    hoist_modup_cost,
    hoisted_rotate_keyswitch_cost,
)
from repro.fhe.hoisting import HoistedRotator, hoisted_rotations, hoisting_savings
from repro.reliability.errors import ParameterError


def test_hoisted_rotation_matches_plain(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    z = fhe.random_values(31)
    ct = ctx.encrypt_values(sk, z)
    plan = {s: ctx.rotation_hint(sk, s) for s in (1, 3, 7)}
    outs = hoisted_rotations(ctx, ct, plan)
    for steps, out in outs.items():
        want = np.roll(z, -steps)
        got = ctx.decrypt(sk, out)
        assert np.max(np.abs(got - want)) < 1e-3, steps
        # And agrees with the unhoisted path.
        plain = ctx.decrypt(sk, ctx.rotate(ct, steps, plan[steps]))
        assert np.max(np.abs(got - plain)) < 1e-3, steps


def test_hoisting_empty_plan(fhe):
    ct = fhe.ctx.encrypt_values(fhe.sk, fhe.random_values(32))
    assert hoisted_rotations(fhe.ctx, ct, {}) == {}


def test_hoisted_rotator_reuses_decomposition(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    ct = ctx.encrypt_values(sk, fhe.random_values(33))
    rotator = HoistedRotator(ctx, ct, alpha=ctx.params.alpha)
    digits_before = [d.data.copy() for d in rotator.raised_digits]
    rotator.rotate(1, ctx.rotation_hint(sk, 1))
    rotator.rotate(2, ctx.rotation_hint(sk, 2))
    # The shared decomposition is never mutated by rotations.
    for before, after in zip(digits_before, rotator.raised_digits):
        assert np.array_equal(before, after.data)


_CFG = ChipConfig()


def _ntt_passes(cost) -> float:
    """NTT elements of one op / N = the number of full NTT passes."""
    return cost.fu_elements.get("ntt", 0.0)


@settings(max_examples=200, deadline=None)
@given(level=st.integers(2, 60), digits=st.integers(1, 4),
       rotations=st.integers(1, 64))
def test_hoisting_savings_matches_cost_model(level, digits, rotations):
    """The docstring's closed form IS the cost model, for swept (L, t, k).

    ``hoisting_savings`` promises ``separate = k*(L + tL + 2a + 2L)`` and
    ``hoisted = (L + tL) + k*(2a + 2L)`` NTT passes; check both against
    the cost model's NTT element counts (per N) rather than trusting two
    independently maintained formulas to agree at a single point.
    """
    digits = min(digits, level)
    n = 1024
    alpha = -(-level // digits)
    fused = _ntt_passes(boosted_keyswitch_cost(_CFG, n, level, digits)) / n
    hoist = _ntt_passes(hoist_modup_cost(_CFG, n, level, digits)) / n
    per_rot = _ntt_passes(
        hoisted_rotate_keyswitch_cost(_CFG, n, level, digits)) / n
    assert fused == level + digits * level + 2 * alpha + 2 * level
    assert hoist == level + digits * level
    assert per_rot == 2 * alpha + 2 * level
    separate = rotations * fused
    hoisted = hoist + rotations * per_rot
    assert hoisting_savings(level, digits, rotations) == pytest.approx(
        separate / hoisted)


@settings(max_examples=100, deadline=None)
@given(level=st.integers(2, 60), digits=st.integers(1, 4))
def test_hoisted_split_is_exact_complement(level, digits):
    """hoist_modup + hoisted remainder == fused keyswitch, field by field.

    This is the k = 1 break-even property the compiler pass relies on:
    a singleton group costs exactly the same hoisted as fused, so the
    rewrite can never pessimize.
    """
    digits = min(digits, level)
    n = 1024
    fused = boosted_keyswitch_cost(_CFG, n, level, digits)
    split = hoist_modup_cost(_CFG, n, level, digits)
    split.merge(hoisted_rotate_keyswitch_cost(_CFG, n, level, digits))
    assert split.fu_elements == fused.fu_elements
    assert split.port_stream_elements == pytest.approx(
        fused.port_stream_elements)
    assert split.network_words == pytest.approx(fused.network_words)
    assert split.scalar_mults == fused.scalar_mults
    assert split.scalar_adds == fused.scalar_adds
    assert split.hint_words == fused.hint_words
    assert split.kshgen_elements == fused.kshgen_elements


def test_hoisting_savings_growth():
    # Savings grow with the number of rotations sharing the hoist and
    # approach the 6L/4L = 1.5 asymptote for 1-digit keyswitching.
    assert hoisting_savings(60, 1, 32) > hoisting_savings(60, 1, 2)
    assert hoisting_savings(60, 1, 1) == pytest.approx(1.0)
    assert 1.4 < hoisting_savings(60, 1, 512) < 1.5


def test_hoisted_rotator_rejects_bad_alpha(fhe):
    ctx, sk = fhe.ctx, fhe.sk
    ct = ctx.encrypt_values(sk, fhe.random_values(34))
    with pytest.raises(ParameterError):
        HoistedRotator(ctx, ct, alpha=0)
    with pytest.raises(ParameterError):
        HoistedRotator(ctx, ct, alpha=len(ctx.aux_basis) + 1)
    # The full special basis is the largest *valid* alpha.
    rotator = HoistedRotator(ctx, ct, alpha=len(ctx.aux_basis))
    got = ctx.decrypt(sk, rotator.rotate(1, fhe.rot1))
    want = ctx.decrypt(sk, ctx.rotate(ct, 1, fhe.rot1))
    assert np.max(np.abs(got - want)) < 1e-3
