"""Negacyclic NTT: roundtrip, linearity, convolution against the oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.ntt import (
    NttContext,
    bit_reverse_permutation,
    naive_negacyclic_convolution,
)
from repro.fhe.primes import find_ntt_primes


@pytest.fixture(scope="module")
def ctx64():
    q = find_ntt_primes(1, 28, 64)[0]
    return NttContext.get(q, 64)


def _rand(ctx, seed=0, shape=None):
    rng = np.random.default_rng(seed)
    shape = (ctx.degree,) if shape is None else shape
    return rng.integers(0, ctx.modulus, size=shape, dtype=np.uint64)


def test_bit_reverse_permutation_involution():
    for n in (2, 8, 64, 256):
        rev = bit_reverse_permutation(n)
        assert np.array_equal(rev[rev], np.arange(n))


def test_bit_reverse_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        bit_reverse_permutation(12)


def test_roundtrip(ctx64):
    a = _rand(ctx64)
    assert np.array_equal(ctx64.inverse(ctx64.forward(a)), a)
    assert np.array_equal(ctx64.forward(ctx64.inverse(a)), a)


def test_roundtrip_batched(ctx64):
    a = _rand(ctx64, shape=(5, 64))
    back = ctx64.inverse(ctx64.forward(a))
    assert np.array_equal(back, a)


def test_forward_is_linear(ctx64):
    q = np.uint64(ctx64.modulus)
    a, b = _rand(ctx64, 1), _rand(ctx64, 2)
    lhs = ctx64.forward((a + b) % q)
    rhs = (ctx64.forward(a) + ctx64.forward(b)) % q
    assert np.array_equal(lhs, rhs)


def test_convolution_matches_schoolbook(ctx64):
    a, b = _rand(ctx64, 3), _rand(ctx64, 4)
    got = ctx64.negacyclic_convolution(a, b)
    want = naive_negacyclic_convolution(a, b, ctx64.modulus)
    assert np.array_equal(got, want)


def test_negacyclic_wraparound_sign(ctx64):
    # x^(N-1) * x = x^N = -1 in the negacyclic ring.
    n, q = ctx64.degree, ctx64.modulus
    a = np.zeros(n, dtype=np.uint64)
    b = np.zeros(n, dtype=np.uint64)
    a[n - 1] = 1
    b[1] = 1
    prod = ctx64.negacyclic_convolution(a, b)
    want = np.zeros(n, dtype=np.uint64)
    want[0] = q - 1
    assert np.array_equal(prod, want)


def test_constant_polynomial_transform(ctx64):
    # NTT of the constant 1 is all-ones (evaluations of 1 everywhere).
    one = np.zeros(ctx64.degree, dtype=np.uint64)
    one[0] = 1
    assert np.all(ctx64.forward(one) == 1)


def test_context_cache_returns_same_instance():
    q = find_ntt_primes(1, 28, 32)[0]
    assert NttContext.get(q, 32) is NttContext.get(q, 32)


def test_modulus_width_guard():
    with pytest.raises(ValueError):
        NttContext((1 << 32) + 15, 64)  # would overflow uint64 butterflies


@given(st.integers(min_value=0, max_value=2**28 - 1),
       st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
@settings(max_examples=30, deadline=None)
def test_single_coefficient_products(value, i, j):
    """Property: (v x^i) * (x^j) = +-v x^((i+j) mod N) with negacyclic sign."""
    q = find_ntt_primes(1, 28, 64)[0]
    ctx = NttContext.get(q, 64)
    v = value % q
    a = np.zeros(64, dtype=np.uint64)
    b = np.zeros(64, dtype=np.uint64)
    a[i] = v
    b[j] = 1
    prod = ctx.negacyclic_convolution(a, b)
    k = (i + j) % 64
    sign_flip = i + j >= 64
    want = (q - v) % q if sign_flip else v
    assert prod[k] == want
    prod[k] = 0
    assert not prod.any()
