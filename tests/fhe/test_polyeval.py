"""Paterson-Stockmeyer polynomial evaluation on ciphertexts."""

import numpy as np
import pytest

from repro.fhe.polyeval import (
    add_any,
    align_levels,
    evaluate_chebyshev,
    evaluate_polynomial,
    power_ladder,
)


def run_poly(fix, coeffs, z=None, seed=0, mag=0.5):
    ctx, sk = fix.ctx, fix.sk
    if z is None:
        z = fix.random_values(seed, magnitude=mag)
    ct = ctx.encrypt_values(sk, z)
    out = evaluate_polynomial(ctx, ct, coeffs, fix.relin)
    want = np.polynomial.polynomial.polyval(z, np.asarray(coeffs))
    return np.max(np.abs(ctx.decrypt(sk, out) - want)), out


def test_linear(fhe_deep):
    err, out = run_poly(fhe_deep, [0.5, 2.0])
    assert err < 1e-3
    assert out.level == fhe_deep.ctx.params.max_level - 1


def test_linear_without_constant(fhe_deep):
    err, _ = run_poly(fhe_deep, [0.0, -1.5])
    assert err < 1e-3


def test_quadratic(fhe_deep):
    err, _ = run_poly(fhe_deep, [1.0, -2.0, 0.5])
    assert err < 1e-3


def test_cubic_with_complex_coeffs(fhe_deep):
    err, _ = run_poly(fhe_deep, [0.1j, 1.0, -0.3 + 0.2j, 0.7])
    assert err < 1e-3


def test_degree7(fhe_deep):
    coeffs = [0.2, -0.5, 0.3, 0.1, -0.2, 0.05, 0.08, -0.04]
    err, _ = run_poly(fhe_deep, coeffs)
    assert err < 1e-3


def test_degree15_depth_is_logarithmic(fhe_deep):
    rng = np.random.default_rng(1)
    coeffs = rng.normal(size=16) * (0.5 ** np.arange(16))
    err, out = run_poly(fhe_deep, coeffs.tolist())
    assert err < 1e-2
    # log-depth: degree 15 must cost ~log2(15)+2 levels, not 15.
    used = fhe_deep.ctx.params.max_level - out.level
    assert used <= 7


def test_sparse_polynomial(fhe_deep):
    # x^4 + 1: whole chunks are empty or constant-only.
    err, _ = run_poly(fhe_deep, [1.0, 0, 0, 0, 0.5])
    assert err < 1e-3


def test_monomial_only_high_chunk(fhe_deep):
    # x^6 alone: top chunk has a single term, low chunk empty.
    err, _ = run_poly(fhe_deep, [0, 0, 0, 0, 0, 0, 0.3], mag=0.6)
    assert err < 1e-3


def test_constant_rejected(fhe_deep):
    z = fhe_deep.random_values(2)
    ct = fhe_deep.ctx.encrypt_values(fhe_deep.sk, z)
    with pytest.raises(ValueError):
        evaluate_polynomial(fhe_deep.ctx, ct, [1.0], fhe_deep.relin)
    with pytest.raises(ValueError):
        evaluate_polynomial(fhe_deep.ctx, ct, [1.0, 0.0], fhe_deep.relin)


def test_power_ladder_values(fhe_deep):
    ctx, sk = fhe_deep.ctx, fhe_deep.sk
    z = fhe_deep.random_values(3, magnitude=0.8)
    ct = ctx.encrypt_values(sk, z)
    powers = power_ladder(ctx, ct, 4, fhe_deep.relin)
    for k in range(1, 5):
        err = np.max(np.abs(ctx.decrypt(sk, powers[k]) - z**k))
        assert err < 1e-3, k


def test_add_any_none_handling(fhe_deep):
    ctx = fhe_deep.ctx
    z = fhe_deep.random_values(4)
    ct = ctx.encrypt_values(fhe_deep.sk, z)
    assert add_any(ctx, None, None) is None
    assert add_any(ctx, ct, None) is ct
    assert add_any(ctx, None, ct) is ct


def test_align_levels(fhe_deep):
    ctx = fhe_deep.ctx
    z = fhe_deep.random_values(5)
    a = ctx.encrypt_values(fhe_deep.sk, z)
    b = ctx.encrypt_values(fhe_deep.sk, z, level=4)
    a2, b2 = align_levels(ctx, a, b)
    assert a2.level == b2.level == 4


def test_chebyshev_matches_numpy(fhe_deep):
    ctx, sk = fhe_deep.ctx, fhe_deep.sk
    rng = np.random.default_rng(6)
    z = rng.uniform(-1, 1, size=fhe_deep.slots)  # Chebyshev domain
    cheb = [0.1, 0.5, -0.3, 0.2]
    ct = ctx.encrypt_values(sk, z)
    out = evaluate_chebyshev(ctx, ct, cheb, fhe_deep.relin)
    want = np.polynomial.chebyshev.chebval(z, np.asarray(cheb))
    assert np.max(np.abs(ctx.decrypt(sk, out) - want)) < 1e-3


def test_relu_style_approximation(fhe_deep):
    """Degree-3 'activation' as the LSTM/LoLa benchmarks use (Sec. 8)."""
    ctx, sk = fhe_deep.ctx, fhe_deep.sk
    rng = np.random.default_rng(7)
    z = rng.uniform(-1, 1, size=fhe_deep.slots)
    # smooth sigmoid-ish polynomial approximation
    coeffs = [0.5, 0.25, 0.0, -1.0 / 48]
    ct = ctx.encrypt_values(sk, z)
    out = evaluate_polynomial(ctx, ct, coeffs, fhe_deep.relin)
    want = np.polynomial.polynomial.polyval(z, np.asarray(coeffs))
    assert np.max(np.abs(ctx.decrypt(sk, out) - want)) < 1e-3
