"""Pod campaign: reproducibility, gates, and baseline drift detection.

The full 520-event campaign is CI's pod smoke job
(``python -m repro.pod --campaign --check``); these tests run a scaled
campaign twice for bit-reproducibility and exercise the gate logic.
"""

import json

import pytest

from repro.pod.campaign import check_against_baseline, run_pod_campaign

EVENTS = 16  # small but alternates both sites and hits a stubborn trial


@pytest.fixture(scope="module")
def result():
    return run_pod_campaign(seed=5, events=EVENTS, chips=3, rounds=4)


def test_campaign_meets_absolute_gates(result):
    assert result.events >= EVENTS
    for site, s in result.sites.items():
        assert s.injected > 0, f"site {site} never exercised"
        assert s.detection_rate == 1.0
    assert result.wrong_answers == 0
    assert result.unrecovered == 0
    assert result.false_positives == 0
    # Coverage: faults landed on >= 2 distinct links and chips.
    assert result.distinct_links >= 2
    assert result.distinct_chips_failed >= 2


def test_campaign_is_bit_reproducible(result):
    again = run_pod_campaign(seed=5, events=EVENTS, chips=3, rounds=4)
    a, b = result.to_json(), again.to_json()
    assert a == b


def test_baseline_check_detects_drift(result, tmp_path):
    own = tmp_path / "own.json"
    own.write_text(json.dumps(result.to_json()))
    assert check_against_baseline(result, own) == []
    # Any drifted integer is a reported problem.
    drifted = dict(result.to_json())
    drifted["migrations"] += 1
    drifted["sites"] = dict(drifted["sites"])
    own.write_text(json.dumps(drifted))
    problems = check_against_baseline(result, own)
    assert any("migrations" in p for p in problems)


def test_absolute_gates_hold_even_with_matching_baseline(result, tmp_path):
    """A baseline that itself encodes a wrong answer cannot launder the
    campaign: the absolute gates are appended regardless."""
    bad = dict(result.to_json())
    bad["wrong_answers"] = 3
    own = tmp_path / "bad.json"
    own.write_text(json.dumps(bad))
    problems = check_against_baseline(result, own)
    # Our result is clean, so only the mismatch is reported - but a
    # result *with* wrong answers is reported even when baselines agree.
    assert any("wrong_answers" in p for p in problems)
