"""Link cost model: algebraic identities of the ring interconnect."""

import pytest

from repro.core.config import ChipConfig
from repro.pod import LinkModel, PodConfig
from repro.reliability.errors import ConfigError

CFG = ChipConfig()


def test_words_per_cycle_follows_link_bandwidth():
    slow = LinkModel(CFG, PodConfig(link_gbps=50.0))
    fast = LinkModel(CFG, PodConfig(link_gbps=200.0))
    assert fast.words_per_cycle == pytest.approx(4 * slow.words_per_cycle)
    # 100 GB/s at 1 GHz is 100 bytes/cycle -> words scale by word size.
    link = LinkModel(CFG, PodConfig(link_gbps=100.0))
    assert link.words_per_cycle == pytest.approx(
        100e9 / CFG.clock_hz / CFG.bytes_per_word)


def test_transfer_cycles_is_latency_plus_serialization():
    pod = PodConfig(link_latency_cycles=500.0)
    link = LinkModel(CFG, pod)
    assert link.transfer_cycles(0.0) == 0.0  # nothing to move, no cost
    w = 1e6
    assert link.transfer_cycles(w) == pytest.approx(
        500.0 + w / link.words_per_cycle)
    assert link.transfer_cycles(w, hops=3) == pytest.approx(
        3 * 500.0 + w / link.words_per_cycle)


@pytest.mark.parametrize("k", [2, 4, 8])
def test_ring_all_reduce_volume(k):
    """Ring all-reduce moves 2(k-1)/k words per chip send port."""
    link = LinkModel(CFG, PodConfig(chips=k))
    w = 4096.0
    assert link.all_reduce_words(w, k) == pytest.approx(2 * (k - 1) / k * w)
    # Latency term: 2(k-1) hops of link latency plus serialization.
    cycles = link.all_reduce_cycles(w, k)
    assert cycles == pytest.approx(
        2 * (k - 1) * link.pod.link_latency_cycles
        + link.all_reduce_words(w, k) / link.words_per_cycle)


def test_ring_hops_shorter_way_around():
    """Distance on the bidirectional ring is the shorter arc; the
    wraparound leg (last chip back to chip 0) is one hop, not K-1."""
    assert LinkModel.ring_hops(0, 7, 8) == 1   # wraparound leg
    assert LinkModel.ring_hops(7, 0, 8) == 1   # symmetric
    assert LinkModel.ring_hops(0, 4, 8) == 4   # antipode
    assert LinkModel.ring_hops(1, 6, 8) == 3   # 1->0->7->6 backwards
    assert LinkModel.ring_hops(2, 2, 8) == 0
    assert LinkModel.ring_hops(0, 1, 2) == 1
    assert LinkModel.ring_hops(0, 0, 1) == 0   # degenerate single chip


@pytest.mark.parametrize("k", [2, 3, 5, 8])
def test_ring_hops_is_a_metric(k):
    for a in range(k):
        for b in range(k):
            d = LinkModel.ring_hops(a, b, k)
            assert 0 <= d <= k // 2
            assert d == LinkModel.ring_hops(b, a, k)
            assert (d == 0) == (a == b)


def test_all_reduce_degenerates_at_one_chip():
    link = LinkModel(CFG, PodConfig(chips=1))
    assert link.all_reduce_words(4096.0, 1) == 0.0


def test_pod_config_validation():
    with pytest.raises(ConfigError):
        PodConfig(chips=0)
    with pytest.raises(ConfigError):
        PodConfig(link_gbps=-1.0)
    with pytest.raises(ConfigError):
        PodConfig(strategy="tensor")
    assert PodConfig(chips=4, strategy="model").descriptor() == "4xmodel"
