"""PodExecutor fault recovery: migration, retransmit, escalation.

Every test compares against a fault-free reference run of the same
plan - the recovery contract is *bit-exact* equivalence, not
approximate agreement.
"""

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext, CkksParams
from repro.pod import PodConfig, PodExecutor, Transfer
from repro.reliability import guards
from repro.reliability.errors import (
    ChipFailure,
    InterconnectError,
    ParameterError,
)
from repro.reliability.faults import CHIP, LINK, FaultInjector

CHIPS = 3
ROUNDS = 4


@pytest.fixture(scope="module")
def pod_fixture():
    params = CkksParams(degree=64, max_level=4, digits=1,
                        secret_hamming=8, seed=99)
    ctx = CkksContext(params,
                      policy=guards.ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    rot = ctx.rotation_hint(sk, 1)
    rng = np.random.default_rng(99)
    initial = {
        c: {f"v{c}": ctx.seal(ctx.encrypt_values(
            sk, 0.5 * rng.standard_normal(params.slots)))}
        for c in range(CHIPS)
    }
    return ctx, rot, initial


def make_step(c, r, rot):
    def step(ctx, st):
        v = st[f"v{c}"]
        v = ctx.rotate(v, 1, rot) if r % 2 == 0 else ctx.add(v, v)
        rx = st.get("rx")
        if rx is not None:
            v = ctx.add(v, rx)
        st[f"v{c}"] = v
    return step


def build(ctx, rot, initial, injector=None, pod=None):
    pod = pod or PodConfig(chips=CHIPS, seed=7)
    plans = {c: [(f"s{c}.{r}", make_step(c, r, rot))
                 for r in range(ROUNDS)] for c in range(CHIPS)}
    transfers = {r: [Transfer(src=r % CHIPS, dst=(r + 1) % CHIPS,
                              name=f"v{r % CHIPS}", rename="rx")]
                 for r in range(ROUNDS - 1)}
    return PodExecutor(ctx, pod, plans, initial, transfers=transfers,
                       injector=injector)


def states_equal(a, b):
    for c in range(CHIPS):
        x, y = a[c][f"v{c}"], b[c][f"v{c}"]
        if not (np.array_equal(x.c0.data, y.c0.data)
                and np.array_equal(x.c1.data, y.c1.data)):
            return False
    return True


@pytest.fixture(scope="module")
def reference(pod_fixture):
    ctx, rot, initial = pod_fixture
    return build(ctx, rot, initial).run()


def test_clean_run_is_deterministic(pod_fixture, reference):
    ctx, rot, initial = pod_fixture
    again = build(ctx, rot, initial).run()
    assert states_equal(again, reference)


@pytest.mark.parametrize("skip", range(CHIPS * ROUNDS - 2))
def test_chip_failstop_recovers_bit_exact(pod_fixture, reference, skip):
    """A chip lost at any point migrates and replays to the same bits."""
    ctx, rot, initial = pod_fixture
    inj = FaultInjector(seed=5)
    inj.arm(CHIP, skip=skip)
    ex = build(ctx, rot, initial, injector=inj)
    final = ex.run()
    assert ex.stats.chip_failures == 1
    assert ex.stats.migrations >= 1
    assert len(ex.dead) == 1
    assert states_equal(final, reference)


def test_link_corruption_detected_and_retransmitted(pod_fixture, reference):
    ctx, rot, initial = pod_fixture
    inj = FaultInjector(seed=5)
    inj.arm(LINK, skip=1)
    ex = build(ctx, rot, initial, injector=inj)
    final = ex.run()
    assert ex.stats.link_faults_detected == 1
    assert ex.stats.retransmits == 1
    assert ex.stats.backoff_s > 0
    assert states_equal(final, reference)


def test_stubborn_link_fault_exhausts_then_succeeds(pod_fixture, reference):
    """A corruption burst one shy of the budget still recovers."""
    ctx, rot, initial = pod_fixture
    pod = PodConfig(chips=CHIPS, seed=7, link_retries=3)
    inj = FaultInjector(seed=5)
    inj.arm(LINK, skip=0, count=3)
    ex = build(ctx, rot, initial, injector=inj, pod=pod)
    final = ex.run()
    assert ex.stats.link_faults_detected == 3
    assert ex.stats.retransmits == 3
    assert states_equal(final, reference)


def test_link_budget_exhaustion_escalates_typed(pod_fixture):
    ctx, rot, initial = pod_fixture
    pod = PodConfig(chips=CHIPS, seed=7, link_retries=2)
    inj = FaultInjector(seed=5)
    inj.arm(LINK, skip=0, count=3)  # every attempt corrupted
    ex = build(ctx, rot, initial, injector=inj, pod=pod)
    with pytest.raises(InterconnectError):
        ex.run()


def test_losing_every_chip_raises_chipfailure(pod_fixture):
    ctx, rot, initial = pod_fixture
    inj = FaultInjector(seed=5)
    ex = build(ctx, rot, initial, injector=inj)
    ex._checkpoint_all()  # run() does this before any step
    # Kill all chips by hand; the next failure has nowhere to migrate.
    ex._fail_chip(0, 0)
    ex._fail_chip(1, 0)
    with pytest.raises(ChipFailure):
        ex._fail_chip(2, 0)


def test_transfer_of_missing_value_is_parameter_error(pod_fixture):
    ctx, rot, initial = pod_fixture
    ex = build(ctx, rot, initial)
    with pytest.raises(ParameterError):
        ex._transfer(Transfer(src=0, dst=1, name="nonexistent"))


def test_plan_outside_pod_rejected(pod_fixture):
    ctx, rot, initial = pod_fixture
    with pytest.raises(ParameterError):
        PodExecutor(ctx, PodConfig(chips=2), {5: []}, initial)
