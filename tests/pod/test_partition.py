"""Partitioner invariants: conservation, stitching, balance.

The load-bearing property is *conservation*: the shards' ``op_indices``
are a disjoint cover of the source program - no op dropped, no op
duplicated (except the deliberate stitched INPUT/OUTPUT legs, which are
recorded separately and tagged ``pod-cut``).  Checked exhaustively on
the deep benchmarks and property-based on random DAGs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.dsl import FheBuilder
from repro.compiler.hoisting import hoist_rotations
from repro.core.config import ChipConfig
from repro.ir import HOIST_MODUP, INPUT, OUTPUT
from repro.obs import collector as obs
from repro.pod import (DATA_PARALLEL, LinkModel, MODEL_PARALLEL, PodConfig,
                       partition)
from repro.reliability.validate import validate_program
from repro.workloads import benchmark

CFG = ChipConfig()


def random_program(draw_ops: list[tuple[str, int, int]],
                   inputs: int) -> "Program":
    """A valid random DAG from a hypothesis-drawn op script."""
    b = FheBuilder("hyp", degree=256, max_level=6)
    values = [b.input(f"x{i}", level=4) for i in range(inputs)]
    for kind, a, c in draw_ops:
        va = values[a % len(values)]
        if kind == "add":
            values.append(b.add(va, values[c % len(values)]))
        elif kind == "rotate":
            values.append(b.rotate(va, steps=1 + c % 7))
        else:  # square keeps the DAG single-operand but drops a level
            if va.level >= 2:
                values.append(b.square(va))
    b.output(values[-1])
    return b.build()


def assert_conservation(program, part):
    """Shards' op_indices are a disjoint, complete, ordered cover."""
    seen = []
    for shard in part.shards:
        assert list(shard.op_indices) == sorted(shard.op_indices)
        seen.extend(shard.op_indices)
    assert sorted(seen) == list(range(len(program.ops)))
    assert len(seen) == len(set(seen)), "an op landed on two shards"


def assert_stitching(program, part):
    """Every non-original op is a tagged pod-cut INPUT/OUTPUT that the
    shard records; everything else is the original op, verbatim."""
    for shard in part.shards:
        extra = [op for op in shard.program.ops if op.tag == "pod-cut"]
        kept = [op for op in shard.program.ops if op.tag != "pod-cut"]
        assert kept == [program.ops[i] for i in shard.op_indices]
        for op in extra:
            assert op.kind in (INPUT, OUTPUT)
            if op.kind == INPUT:
                assert op.result in shard.stitched_inputs
            else:
                assert op.operands[0] in shard.stitched_outputs


@pytest.mark.parametrize("name", ["logreg", "resnet20"])
@pytest.mark.parametrize("chips", [1, 2, 3, 4, 8])
def test_model_parallel_benchmarks_conserve_and_validate(name, chips):
    program = benchmark(name)
    pod = PodConfig(chips=chips, strategy=MODEL_PARALLEL)
    part = partition(program, CFG, pod)
    assert part.chips == chips
    assert_conservation(program, part)
    assert_stitching(program, part)
    for shard in part.shards:
        if shard.program.ops:
            validate_program(shard.program, CFG)
    # Every cut edge crosses shards forward (contiguous cut => the
    # producer's chunk precedes the consumer's) at its true ring
    # distance.
    for e in part.edges:
        assert e.src < e.dst
        assert e.words > 0
        assert e.hops == LinkModel.ring_hops(e.src, e.dst, chips)
        assert e.hops >= 1


def test_data_parallel_is_mirrored():
    program = benchmark("logreg")
    part = partition(program, CFG, PodConfig(chips=4))
    assert part.strategy == DATA_PARALLEL
    assert not part.edges
    for shard in part.shards:
        assert shard.program is program
        assert len(shard.op_indices) == len(program.ops)
        assert shard.batch_share == pytest.approx(0.25)
    assert sum(s.batch_share for s in part.shards) == pytest.approx(1.0)


def test_boundary_never_splits_hoist_group():
    """A cut directly after a hoist_modup would put the raised digit
    object on the wire; the partitioner must shift past it."""
    program = benchmark("resnet20")
    for chips in (2, 3, 4, 8):
        part = partition(program, CFG,
                         PodConfig(chips=chips, strategy=MODEL_PARALLEL))
        for shard in part.shards[:-1]:
            if shard.op_indices:
                last = program.ops[shard.op_indices[-1]]
                assert last.kind != HOIST_MODUP


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "rotate", "square"]),
                  st.integers(0, 63), st.integers(0, 63)),
        min_size=1, max_size=40),
    inputs=st.integers(1, 4),
    chips=st.integers(1, 6),
    strategy=st.sampled_from([DATA_PARALLEL, MODEL_PARALLEL]),
    hoist=st.booleans(),
)
def test_partition_conservation_property(ops, inputs, chips, strategy,
                                         hoist):
    """Union of shards == program; no op duplicated except the
    deliberate stitched legs; no boundary splits a hoist group - for
    whichever cutter (greedy or min-cut) wins the simulator gate
    (satellite property test)."""
    program = random_program(ops, inputs)
    if hoist:
        # Hoisted programs carry HOIST_MODUP groups the cutter must
        # never split (the raised digit object cannot cross the wire).
        program = hoist_rotations(program, CFG)
    pod = PodConfig(chips=chips, strategy=strategy)
    part = partition(program, CFG, pod)
    if strategy == DATA_PARALLEL:
        for shard in part.shards:
            assert list(shard.op_indices) == list(range(len(program.ops)))
        assert sum(s.batch_share for s in part.shards) == pytest.approx(1.0)
        return
    assert_conservation(program, part)
    assert_stitching(program, part)
    for shard in part.shards:
        if shard.program.ops:
            validate_program(shard.program, CFG)
    # Edge accounting: shard cut words reconcile with the edge list,
    # and every edge carries its real ring distance.
    for c, shard in enumerate(part.shards):
        in_w = sum(e.words for e in part.edges if e.dst == c)
        out_w = sum(e.words for e in part.edges if e.src == c)
        assert shard.cut_in_words == pytest.approx(in_w)
        assert shard.cut_out_words == pytest.approx(out_w)
    for e in part.edges:
        assert e.hops == LinkModel.ring_hops(e.src, e.dst, chips)
    # No cut directly after a hoist_modup, whichever cutter won.
    for shard in part.shards[:-1]:
        if shard.op_indices:
            assert program.ops[shard.op_indices[-1]].kind != HOIST_MODUP


def test_mincut_gate_counters_and_never_pessimizes():
    """The min-cut candidate is adopted only when the simulator says it
    wins; either way the gate leaves an audit trail in the
    ``compiler.mincut.*`` counters."""
    from repro.pod.simulator import stage_results

    program = benchmark("packed_bootstrap")
    pod = PodConfig(chips=4, strategy=MODEL_PARALLEL)
    with obs.collecting() as c:
        part = partition(program, CFG, pod)
    considered = c.counters.get("compiler.mincut.considered", 0)
    applied = c.counters.get("compiler.mincut.applied", 0)
    rejected = c.counters.get("compiler.mincut.rejected", 0)
    assert considered == 1
    assert applied + rejected == considered
    # packed_bootstrap is where min-cut pays off (the greedy balance
    # point pushes a fat ciphertext onto the wire).
    assert applied == 1
    assert c.counters.get("compiler.mincut.cycles_saved", 0) > 0
    # Never-pessimize: the adopted partition prices no worse than the
    # greedy bounds under the exact cost model the pod simulator uses.
    from repro.pod.partition import _cut_points, _partition_model

    greedy = _partition_model(program, CFG, pod, pod.chips,
                              bounds=_cut_points(program, CFG, pod.chips))
    win = max(r.cycles for r in stage_results(part, CFG, pod))
    base = max(r.cycles for r in stage_results(greedy, CFG, pod))
    assert win <= base
