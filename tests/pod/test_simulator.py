"""simulate_pod: scaling shape, degraded mode, stream accounting."""

import pytest

from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.obs import collector as obs
from repro.pod import MODEL_PARALLEL, PodConfig, simulate_pod
from repro.reliability.errors import ChipFailure, ConfigError
from repro.workloads import benchmark

CFG = ChipConfig()


@pytest.fixture(scope="module")
def logreg():
    return benchmark("logreg")


@pytest.fixture(scope="module")
def single(logreg):
    return simulate(logreg, CFG)


def test_one_chip_pod_matches_single_chip(logreg, single):
    for strategy in ("data", "model"):
        r = simulate_pod(logreg, CFG, PodConfig(chips=1, strategy=strategy))
        assert r.cycles_per_batch == pytest.approx(single.cycles)
        assert r.link_words == 0.0
        assert r.speedup(single) == pytest.approx(1.0)


def test_data_parallel_scales_with_all_reduce_tax(logreg, single):
    r = simulate_pod(logreg, CFG, PodConfig(chips=4))
    # Near-linear: the only tax is the output all-reduce.
    assert 3.5 < r.speedup(single) <= 4.0 + 1e-9
    assert r.link_words > 0
    # Latency does not improve (replicas run the whole program).
    assert r.batch_cycles >= single.cycles


def test_model_parallel_pipeline_semantics(logreg, single):
    r = simulate_pod(logreg, CFG,
                     PodConfig(chips=4, strategy=MODEL_PARALLEL))
    stage_cycles = [res.cycles for res in r.chip_results.values()]
    assert r.batch_cycles == pytest.approx(sum(stage_cycles))
    assert r.cycles_per_batch == pytest.approx(max(stage_cycles))
    # Cut traffic shows up in the shard's traffic dict via extra_streams.
    assert any("link_out" in res.traffic_words
               or "link_in" in res.traffic_words
               for res in r.chip_results.values())


def test_degraded_pod_repartitions_over_survivors(logreg, single):
    pod = PodConfig(chips=4)
    clean = simulate_pod(logreg, CFG, pod)
    degraded = simulate_pod(logreg, CFG, pod, failed_chips=(2,))
    assert degraded.degraded
    assert degraded.alive == (0, 1, 3)
    assert degraded.failed == (2,)
    # Three survivors: throughput lands between 2- and 4-chip pods.
    assert degraded.cycles_per_batch > clean.cycles_per_batch
    assert degraded.speedup(single) == pytest.approx(3.0, rel=0.2)


def test_all_chips_failed_raises(logreg):
    with pytest.raises(ChipFailure):
        simulate_pod(logreg, CFG, PodConfig(chips=2), failed_chips=(0, 1))
    with pytest.raises(ConfigError):
        simulate_pod(logreg, CFG, PodConfig(chips=2), failed_chips=(5,))


def test_pod_counters_and_chip_tagged_events(logreg):
    with obs.collecting() as c:
        simulate_pod(logreg, CFG, PodConfig(chips=2))
    assert c.counters.get("pod.simulations") == 1
    assert c.counters.get("pod.link_words", 0) > 0
    chips = {e.chip for e in c.op_events if e.chip is not None}
    assert chips == {0, 1}
