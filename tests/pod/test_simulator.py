"""simulate_pod: scaling shape, degraded mode, stream accounting."""

import pytest

from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.obs import collector as obs
from repro.pod import MODEL_PARALLEL, PodConfig, simulate_pod
from repro.reliability.errors import ChipFailure, ConfigError
from repro.workloads import benchmark

CFG = ChipConfig()


@pytest.fixture(scope="module")
def logreg():
    return benchmark("logreg")


@pytest.fixture(scope="module")
def single(logreg):
    return simulate(logreg, CFG)


def test_one_chip_pod_matches_single_chip(logreg, single):
    for strategy in ("data", "model"):
        r = simulate_pod(logreg, CFG, PodConfig(chips=1, strategy=strategy))
        assert r.cycles_per_batch == pytest.approx(single.cycles)
        assert r.link_words == 0.0
        assert r.speedup(single) == pytest.approx(1.0)


def test_data_parallel_scales_with_all_reduce_tax(logreg, single):
    r = simulate_pod(logreg, CFG, PodConfig(chips=4))
    # Near-linear: the only tax is the output all-reduce.
    assert 3.5 < r.speedup(single) <= 4.0 + 1e-9
    assert r.link_words > 0
    # Latency does not improve (replicas run the whole program).
    assert r.batch_cycles >= single.cycles


def test_model_parallel_pipeline_semantics(logreg, single):
    r = simulate_pod(logreg, CFG,
                     PodConfig(chips=4, strategy=MODEL_PARALLEL))
    results = list(r.chip_results.values())
    # Fill latency walks an empty pipeline: nothing hides the
    # transfers, so the batch pays the *serialized* stage cycles.
    assert r.batch_cycles == pytest.approx(
        sum(res.serialized_cycles for res in results))
    # Steady state is the slowest *overlapped* stage.
    assert r.cycles_per_batch == pytest.approx(
        max(res.cycles for res in results))
    assert r.serialized_cycles_per_batch == pytest.approx(
        max(res.serialized_cycles for res in results))
    # Cut traffic shows up in the shard's traffic dict via the overlap
    # streams (double-buffered per-direction ports).
    assert any("link_out" in res.traffic_words
               or "link_in" in res.traffic_words
               for res in r.chip_results.values())
    # Micro-batch makespan: fill plus one beat per extra batch.
    assert r.pipeline_cycles(0) == 0.0
    assert r.pipeline_cycles(1) == pytest.approx(r.batch_cycles)
    assert r.pipeline_cycles(5) == pytest.approx(
        r.batch_cycles + 4 * r.cycles_per_batch)


def test_model_parallel_overlap_hides_communication():
    """packed_bootstrap cuts are link-heavy: the overlapped steady
    state must beat the serialized model, with the gap accounted."""
    program = benchmark("packed_bootstrap")
    r = simulate_pod(program, CFG,
                     PodConfig(chips=4, strategy=MODEL_PARALLEL))
    assert r.overlap_hidden_cycles > 0
    assert r.cycles_per_batch < r.serialized_cycles_per_batch
    # Hop-weighted port traffic can only exceed the logical cut volume.
    assert r.payload_words > 0
    assert r.link_words >= r.payload_words
    # Overlap buys throughput, never first-batch latency.
    assert r.batch_cycles >= r.cycles_per_batch


def test_degraded_pod_repartitions_over_survivors(logreg, single):
    pod = PodConfig(chips=4)
    clean = simulate_pod(logreg, CFG, pod)
    degraded = simulate_pod(logreg, CFG, pod, failed_chips=(2,))
    assert degraded.degraded
    assert degraded.alive == (0, 1, 3)
    assert degraded.failed == (2,)
    # Three survivors: throughput lands between 2- and 4-chip pods.
    assert degraded.cycles_per_batch > clean.cycles_per_batch
    assert degraded.speedup(single) == pytest.approx(3.0, rel=0.2)


def test_all_chips_failed_raises(logreg):
    with pytest.raises(ChipFailure):
        simulate_pod(logreg, CFG, PodConfig(chips=2), failed_chips=(0, 1))
    with pytest.raises(ConfigError):
        simulate_pod(logreg, CFG, PodConfig(chips=2), failed_chips=(5,))


def test_pod_counters_and_chip_tagged_events(logreg):
    with obs.collecting() as c:
        simulate_pod(logreg, CFG, PodConfig(chips=2))
    assert c.counters.get("pod.simulations") == 1
    assert c.counters.get("pod.link_words", 0) > 0
    chips = {e.chip for e in c.op_events if e.chip is not None}
    assert chips == {0, 1}
