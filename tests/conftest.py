"""Shared fixtures: CKKS contexts are expensive, so they are session-scoped.

Tests must not mutate fixture state (ciphertexts are fine - operations are
functional and return new objects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.fhe.ckks import CkksContext, CkksParams, SecretKey
from repro.fhe.keyswitch import KeySwitchHint


@dataclass
class FheFixture:
    """A context with generated keys and commonly needed hints."""

    ctx: CkksContext
    sk: SecretKey
    relin: KeySwitchHint
    rot1: KeySwitchHint
    conj: KeySwitchHint

    @property
    def slots(self) -> int:
        return self.ctx.params.slots

    def random_values(self, seed: int = 0, magnitude: float = 0.5) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return magnitude * (
            rng.normal(size=self.slots) + 1j * rng.normal(size=self.slots)
        )


def _build(params: CkksParams) -> FheFixture:
    ctx = CkksContext(params)
    sk = ctx.keygen()
    return FheFixture(
        ctx=ctx,
        sk=sk,
        relin=ctx.relin_hint(sk),
        rot1=ctx.rotation_hint(sk, 1),
        conj=ctx.conjugation_hint(sk),
    )


@pytest.fixture(scope="session")
def fhe() -> FheFixture:
    """Default small context: N=512, 6 levels, 1-digit keyswitching."""
    return _build(CkksParams(degree=512, max_level=6, digits=1, seed=7))


@pytest.fixture(scope="session")
def fhe_2digit() -> FheFixture:
    """2-digit boosted keyswitching (Sec. 3.1 hint/expansion tradeoff)."""
    return _build(CkksParams(degree=512, max_level=6, digits=2, seed=8))


@pytest.fixture(scope="session")
def fhe_3digit() -> FheFixture:
    return _build(CkksParams(degree=256, max_level=6, digits=3, seed=9))


@pytest.fixture(scope="session")
def fhe_deep() -> FheFixture:
    """Deeper chain for polynomial evaluation / linear transform tests."""
    return _build(CkksParams(degree=256, max_level=12, digits=1, seed=10))
