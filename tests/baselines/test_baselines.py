"""F1+ and CPU baselines: configuration and qualitative behavior."""

import pytest

from repro.baselines import CpuModel, cpu_seconds, f1plus_config
from repro.core import ChipConfig, simulate
from repro.workloads import benchmark


def test_f1plus_configuration():
    f1 = f1plus_config()
    assert f1.lanes == 32 * 256
    assert f1.lane_groups == 32
    assert not f1.crb and not f1.chaining and not f1.kshgen
    assert not f1.fixed_network
    # Raw throughput: 2x CraterLake's NTT, ~2.4x its mul/add (Sec. 8).
    cl = ChipConfig()
    assert f1.ntt_units * f1.lanes == 2 * cl.ntt_units * cl.lanes
    ratio = (f1.mul_units * f1.lanes) / (cl.mul_units * cl.lanes)
    assert 2.0 < ratio < 3.0


def test_f1plus_network_is_57tbps_peak():
    f1 = f1plus_config()
    peak = (f1.network_words_per_cycle_factor * f1.lanes
            * f1.bytes_per_word * f1.clock_hz / 1e12)
    assert 56 < peak < 59


def test_f1plus_loses_big_on_deep_wins_nothing_on_shallow():
    f1 = f1plus_config()
    cl = ChipConfig()
    deep = benchmark("packed_bootstrap")
    shallow = benchmark("lola_mnist_uw")
    deep_ratio = simulate(deep, f1).cycles / simulate(deep, cl).cycles
    shallow_ratio = simulate(shallow, f1).cycles / simulate(shallow, cl).cycles
    assert deep_ratio > 5
    assert shallow_ratio < 2.5
    assert deep_ratio > 3 * shallow_ratio


def test_cpu_model_calibration_anchor():
    """The single fitted constant reproduces the paper's packed
    bootstrapping CPU time (17.2 s) within ~30%."""
    seconds = cpu_seconds(benchmark("packed_bootstrap"))
    assert 10 < seconds < 23


def test_cpu_scaling_emerges_from_op_counts():
    packed = cpu_seconds(benchmark("packed_bootstrap"))
    unpacked = cpu_seconds(benchmark("unpacked_bootstrap"))
    # Paper: 17.2 s vs 0.877 s - a ~20x gap driven purely by op counts.
    assert 8 < packed / unpacked < 80


def test_cpu_deep_vs_shallow_ordering():
    resnet = cpu_seconds(benchmark("resnet20"))
    mnist = cpu_seconds(benchmark("lola_mnist_uw"))
    assert resnet > 1000 * mnist  # 23 min vs ~ms-scale on the paper's CPU


def test_cpu_model_parameters():
    model = CpuModel(modmuls_per_second=1e9)
    slow = model.seconds(benchmark("unpacked_bootstrap"))
    fast = cpu_seconds(benchmark("unpacked_bootstrap"))
    assert slow > 5 * fast
