"""The observability layer (repro.obs): ISSUE acceptance assertions.

(a) disabled tracing records nothing and the no-op helpers are safe;
(b) a simulated run emits one event per IR op whose critical-path
    cycles telescope exactly to ``SimResult.cycles``;
(c) the Chrome-trace export round-trips through json and carries the
    ``ph``/``ts``/``dur`` keys Perfetto requires.
"""

import json

import pytest

from repro import ChipConfig, benchmark, f1plus_config, obs, simulate
from repro.obs import export
from repro.obs.collector import OpEvent


@pytest.fixture
def program():
    return benchmark("lola_mnist_uw")


# -- (a) disabled tracing ---------------------------------------------------

def test_disabled_tracing_records_nothing(program):
    assert not obs.is_enabled()
    assert obs.active() is None

    # All helpers must be safe no-ops with tracing off.
    obs.count("nope", 7)
    with obs.span("nope"):
        pass
    obs.emit_op(OpEvent(index=0, kind="add", result="x", level=1))

    with obs.collecting() as c:
        pass  # nothing instrumented ran inside
    assert c.counters == {}
    assert c.spans == []
    assert c.op_events == []

    # The events above went nowhere: a fresh collector after a disabled
    # simulate sees only what runs inside its scope.
    simulate(program, ChipConfig())  # traced? no - no collector active
    with obs.collecting() as c:
        pass
    assert c.op_events == []


def test_collecting_restores_previous_state(program):
    with obs.collecting() as outer:
        simulate(program, ChipConfig())
        with obs.collecting() as inner:
            pass
        assert inner.op_events == []
        assert obs.active() is outer
    assert obs.active() is None
    assert len(outer.op_events) == len(program.ops)


def test_tracing_does_not_change_results(program):
    baseline = simulate(program, ChipConfig())
    with obs.collecting():
        traced = simulate(program, ChipConfig())
    assert traced.cycles == baseline.cycles
    assert traced.traffic_words == baseline.traffic_words


# -- (b) one event per op; cycles reconcile ---------------------------------

@pytest.mark.parametrize("cfg_factory", [ChipConfig, f1plus_config],
                         ids=["craterlake", "f1plus"])
def test_one_event_per_op_and_cycles_telescope(program, cfg_factory):
    cfg = cfg_factory()
    with obs.collecting() as c:
        result = simulate(program, cfg)

    assert len(c.op_events) == len(program.ops)
    assert [e.index for e in c.op_events] == list(range(len(program.ops)))
    assert [e.kind for e in c.op_events] == [op.kind for op in program.ops]

    total = c.total_op_cycles()
    assert total == pytest.approx(result.cycles, rel=1e-9)
    # Per-op pieces are internally consistent.
    for e in c.op_events:
        assert e.cycles >= 0
        assert e.compute_cycles >= 0
        assert e.mem_cycles >= 0
        assert e.stall_cycles >= 0
    assert c.counters["sim.ops"] == len(program.ops)


def test_simulator_counters(program):
    with obs.collecting() as c:
        simulate(program, ChipConfig())
    by_kind = {
        kind: sum(1 for op in program.ops if op.kind == kind)
        for kind in {op.kind for op in program.ops}
    }
    for kind, n in by_kind.items():
        assert c.counters[f"sim.ops.{kind}"] == n


# -- (c) Chrome-trace JSON --------------------------------------------------

def test_chrome_trace_round_trips(program, tmp_path):
    cfg = ChipConfig()
    with obs.collecting() as c:
        simulate(program, cfg)

    path = tmp_path / "trace.json"
    export.write_chrome_trace(c, str(path), clock_hz=cfg.clock_hz)
    loaded = json.loads(path.read_text())

    events = loaded["traceEvents"]
    assert events, "trace must not be empty"
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "expected complete ('X') events"
    for e in slices:
        assert {"ph", "ts", "dur", "pid", "tid", "name"} <= set(e)
        assert e["ts"] >= 0
        assert e["dur"] > 0
    # The HBM stream lane plus per-FU-class compute lanes are present
    # (every simulated compute slice lands on a class lane; FU_TID is the
    # fallback for events without per-class data).
    tids = {e["tid"] for e in slices if e["pid"] == export.SIM_PID}
    assert export.HBM_TID in tids
    class_tids = tids - {export.FU_TID, export.HBM_TID}
    assert class_tids, "expected per-FU-class compute lanes"
    assert class_tids <= set(export.FU_CLASS_TIDS.values())
    # Keyswitching exercises NTT and mul units, so both lanes must split out.
    assert export.FU_CLASS_TIDS["ntt"] in class_tids
    assert export.FU_CLASS_TIDS["mul"] in class_tids
    # Thread-name metadata is what makes Perfetto label the lanes.
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "thread_name" for e in metas)


def test_wall_clock_spans_and_report():
    from repro import CkksContext, CkksParams

    with obs.collecting() as c:
        ctx = CkksContext(CkksParams(degree=64, max_level=3, seed=7))
        sk = ctx.keygen()
        ct = ctx.encrypt_values(sk, [0.5])
        ctx.decrypt(sk, ctx.add(ct, ct))

    assert c.counters["fhe.ntt.forward"] >= 1
    calls, secs = c.span_totals()["ntt.forward"]
    assert calls == c.counters["fhe.ntt.forward"]
    assert secs > 0

    report = export.top_report(c)
    assert "ntt.forward" in report
    csv = export.counters_csv(c)
    assert csv.splitlines()[0] == "counter,value"
    assert any(line.startswith("fhe.ntt.forward,") for line in csv.splitlines())


def test_compiler_counters_via_ordering():
    from repro.compiler import order_for_reuse

    program = benchmark("lola_mnist_uw")
    with obs.collecting() as c:
        ordered = order_for_reuse(program)
    assert len(ordered.ops) == len(program.ops)
    picks = (c.counters.get("compiler.reorder.reuse_picks", 0)
             + c.counters.get("compiler.reorder.program_order_picks", 0))
    assert picks == len(program.ops)
    assert "compiler.order_for_reuse" in c.span_totals()


def test_gauges_last_write_wins_and_export():
    from repro.obs import export

    with obs.collecting() as c:
        obs.gauge("serve.queue_depth", 3.0)
        obs.gauge("serve.queue_depth", 7.0)   # overwrites, not accumulates
        obs.gauge("serve.qps", 1234.5)
    assert c.gauges == {"serve.queue_depth": 7.0, "serve.qps": 1234.5}
    report = export.top_report(c)
    assert "Gauges" in report and "serve.qps" in report
    csv = export.gauges_csv(c)
    assert "serve.queue_depth,7" in csv
    # Disabled: gauge() is a no-op, like count().
    obs.gauge("ignored", 1.0)
