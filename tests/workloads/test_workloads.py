"""Workload generators: structure and paper-anchored properties."""

import pytest

from repro.ir import INPUT, KEYSWITCH_KINDS, MULT, ROTATE
from repro.workloads import (
    ALL_BENCHMARKS,
    DEEP_BENCHMARKS,
    SHALLOW_BENCHMARKS,
    benchmark,
    multiplication_chain,
    wide_multiply_graph,
)
from repro.workloads.bootstrap import BootstrapPlan, plan_for


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_benchmarks_build(name):
    prog = benchmark(name)
    assert len(prog) > 20
    assert prog.keyswitch_count() > 0
    assert prog.count(INPUT) >= 1


def test_unknown_benchmark():
    with pytest.raises(KeyError):
        benchmark("nope")


def test_deep_benchmarks_bootstrap():
    for name in DEEP_BENCHMARKS:
        prog = benchmark(name)
        boot_ops = [op for op in prog.ops if op.tag == "bootstrap"]
        assert boot_ops, name
        assert prog.max_live_level() >= 50, name


def test_shallow_benchmarks_do_not_bootstrap():
    for name in SHALLOW_BENCHMARKS:
        if name == "unpacked_bootstrap":
            continue
        prog = benchmark(name)
        assert not any(op.tag == "bootstrap" for op in prog.ops), name
        assert prog.max_live_level() <= 8, name


def test_lstm_bootstrap_count():
    """Paper: ~50 bootstrappings per LSTM inference."""
    prog = benchmark("lstm")
    starts = 0
    prev = ""
    for op in prog.ops:
        if op.tag == "bootstrap" and prev != "bootstrap":
            starts += 1
        prev = op.tag
    assert 40 <= starts <= 60, starts


def test_mnist_encrypted_weights_heavier():
    uw = benchmark("lola_mnist_uw")
    ew = benchmark("lola_mnist_ew")
    assert ew.count(MULT) > uw.count(MULT)
    assert ew.count(INPUT) > uw.count(INPUT)  # weights arrive encrypted


def test_plan_level_accounting():
    plan = plan_for(80)
    assert plan.top_level == 57
    assert plan.levels_consumed == 35  # Fig. 2: bootstrap consumes 35
    assert plan.usable_levels == 22    # leaving 22 for the application
    assert plan.keyswitch_count() > 100


def test_plan_consuming_whole_chain_rejected():
    plan = BootstrapPlan(top_level=20)
    with pytest.raises(ValueError):
        _ = plan.usable_levels


def test_128bit_plan_shallower():
    p80, p128 = plan_for(80), plan_for(128)
    assert p128.top_level < p80.top_level
    assert p128.usable_levels < p80.usable_levels


def test_200bit_requires_large_ring():
    with pytest.raises(ValueError, match="128K"):
        plan_for(200, degree=65536)
    assert plan_for(200, degree=131072).top_level >= 50


def test_synthetic_chain_bootstraps_between_mults():
    prog = multiplication_chain(total_mults=60, max_level=45)
    assert prog.count(MULT) >= 60
    assert any(op.tag == "bootstrap" for op in prog.ops)


def test_synthetic_wide_amortizes():
    chain = multiplication_chain(total_mults=40, max_level=57)
    wide = wide_multiply_graph(levels=40, width=100, max_level=57)
    boot = lambda p: sum(
        1 for op in p.ops
        if op.tag == "bootstrap" and op.kind in KEYSWITCH_KINDS
    )
    # Same multiplicative depth, but wide does ~100x the useful multiplies
    # per bootstrap keyswitch.
    assert wide.count(MULT) > 50 * chain.count(MULT) / 2
    assert boot(wide) == boot(chain)


def test_security_parameter_reaches_workloads():
    p80 = benchmark("packed_bootstrap", security=80)
    p128 = benchmark("packed_bootstrap", security=128)
    # 128-bit refreshes a smaller budget per bootstrap => more work total.
    assert p128.keyswitch_count() > p80.keyswitch_count()
    assert max(op.digits for op in p128.ops) > max(op.digits for op in p80.ops)
