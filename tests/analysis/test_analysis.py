"""Analytic models: Table 1 formulas, Fig. 3/4 curves, report helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ciphertext_size_sweep,
    format_table,
    gmean,
    optimal_point,
)
from repro.analysis.opcounts import (
    boosted_keyswitch_ops,
    crossover_level,
    keyswitch_footprint_curve,
    standard_keyswitch_ops,
)


def test_table1_exact_formulas_at_60():
    b = boosted_keyswitch_ops(60)
    s = standard_keyswitch_ops(60)
    assert (b.mult, b.add, b.ntt) == (11040, 10920, 360)
    assert (s.mult, s.add, s.ntt) == (7200, 7200, 3600)


@given(st.integers(min_value=1, max_value=80))
@settings(max_examples=40, deadline=None)
def test_table1_formulas_property(level):
    b = boosted_keyswitch_ops(level)
    assert b.mult == 3 * level**2 + 4 * level
    assert b.add == 3 * level**2 + 2 * level
    assert b.ntt == 6 * level
    s = standard_keyswitch_ops(level)
    assert s.ntt == level**2


def test_hint_bytes_paper_anchors():
    b = boosted_keyswitch_ops(60)
    s = standard_keyswitch_ops(60)
    assert 50e6 < b.hint_bytes(65536) < 56e6       # 52.5 MB
    assert 1.5e9 < s.hint_bytes(65536) < 1.8e9     # 1.7 GB
    assert b.hint_bytes(65536, seeded=True) == b.hint_bytes(65536) / 2


def test_footprint_curve_monotone():
    levels, std, boost = keyswitch_footprint_curve(60)
    assert all(b2 >= b1 for b1, b2 in zip(boost, boost[1:]))
    assert all(s2 >= s1 for s1, s2 in zip(std, std[1:]))
    assert std[-1] > 20 * boost[-1]


def test_crossover_is_moderate():
    assert 5 <= crossover_level() <= 20


def test_sweep_rejects_tiny_chains():
    # Chains too small for packed bootstrapping are silently skipped.
    points = ciphertext_size_sweep(levels=[20, 40, 57])
    assert all(p.max_level >= 40 for p in points) or len(points) < 3


def test_optimal_point_selects_minimum():
    points = ciphertext_size_sweep(levels=[36, 48, 57])
    best = optimal_point(points, "mults_per_op_wide")
    assert best.mults_per_op_wide == min(p.mults_per_op_wide for p in points)


def test_gmean():
    assert abs(gmean([2, 8]) - 4.0) < 1e-9
    assert abs(gmean([5]) - 5.0) < 1e-9
    with pytest.raises(ValueError):
        gmean([])
    with pytest.raises(ValueError):
        gmean([1.0, -2.0])


def test_format_table():
    text = format_table(["a", "bee"], [[1, 2.5], ["x", 0.001]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "bee" in lines[1]
    assert len({len(l) for l in lines[1:]}) <= 2  # aligned columns
