"""Sec. 10's HE-MPC comparison arithmetic."""

from repro.analysis.hemmpc import (
    client_refresh_seconds,
    compare_refresh,
    narrow_input_savings,
)


def test_paper_refresh_numbers():
    cmp = compare_refresh()
    # >13 MB on 100 Mbps: over a second per refresh.
    assert cmp.network_seconds > 1.0
    # vs 3.9 ms bootstrapping: the paper quotes 256x.
    assert 200 < cmp.advantage < 320


def test_faster_links_shrink_but_dont_close_the_gap():
    gigabit = compare_refresh(link_mbps=1000.0)
    assert gigabit.advantage < compare_refresh().advantage
    assert gigabit.advantage > 20  # still more than an order of magnitude


def test_refresh_seconds_scale_with_size():
    assert client_refresh_seconds(26.0) == 2 * client_refresh_seconds(13.0)


def test_narrow_input_savings():
    # 32-bit instead of 1,500-bit coefficients: ~47x cheaper for clients.
    assert 40 < narrow_input_savings() < 50
