"""Admission control properties: the queue bound, conservation, typing.

The hypothesis properties drive the server with adversarial request
streams (no pumping between submits - worst case for the queue) and
assert the two bookkeeping invariants the campaign later reconciles at
scale: the queue never exceeds its bound, and admitted + shed always
equals offered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.errors import (
    CircuitOpen,
    ConfigError,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
    ReproError,
)
from repro.serve import ServeConfig, Server
from repro.serve.request import EXPIRED

TYPED = (Overloaded, DeadlineExceeded, CircuitOpen, ParameterError)


def small_cfg(**kw):
    base = dict(queue_depth=6, batch_window_s=1e-4, seed=7)
    base.update(kw)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def shared_server():
    """One CKKS-initialized server reused by cheap admission tests."""
    return Server(small_cfg())


def _drain(server):
    server.queue.clear()
    server.chip_free_at = server.clock.now()


# -- typed rejections ---------------------------------------------------------

def test_queue_full_sheds_with_overloaded(shared_server):
    s = shared_server
    _drain(s)
    for i in range(s.cfg.queue_depth):
        s.submit("t0", "logreg", np.zeros(16))
    with pytest.raises(Overloaded):
        s.submit("t0", "logreg", np.zeros(16))
    assert len(s.queue) == s.cfg.queue_depth
    _drain(s)


def test_infeasible_deadline_sheds_with_deadline_exceeded(shared_server):
    s = shared_server
    _drain(s)
    with pytest.raises(DeadlineExceeded):
        s.submit("t0", "logreg", np.zeros(16), deadline_s=1e-9)


def test_invalid_payloads_raise_parameter_error(shared_server):
    s = shared_server
    _drain(s)
    bad = [np.full(16, np.nan),              # non-finite
           np.zeros(7),                      # wrong length
           np.full(16, 1e6),                 # over the magnitude limit
           "not numbers"]                    # not numeric at all
    # One tenant per probe: three strikes would (correctly) open the
    # breaker and turn the fourth rejection into CircuitOpen instead.
    for i, payload in enumerate(bad):
        with pytest.raises(ParameterError):
            s.submit(f"bad-{i}", "logreg", payload)
    with pytest.raises(ParameterError):
        s.submit("bad-kind", "nosuchkind", np.zeros(16))
    with pytest.raises(ParameterError):
        s.submit("bad-deadline", "logreg", np.zeros(16), deadline_s=-1.0)


def test_typed_errors_subclass_repro_error():
    for err in TYPED:
        assert issubclass(err, ReproError)


def test_breaker_quarantines_only_the_poison_tenant(shared_server):
    s = shared_server
    _drain(s)
    for _ in range(s.cfg.breaker_threshold):
        with pytest.raises(ParameterError):
            s.submit("poison", "logreg", np.full(16, np.nan))
    with pytest.raises(CircuitOpen):
        s.submit("poison", "logreg", np.zeros(16))
    # Another tenant is untouched.
    s.submit("honest", "logreg", np.zeros(16))
    # After the cooldown, the probe is admitted and (being valid)
    # closes the breaker at validation.
    s.clock.advance(s.cfg.breaker_cooldown_s * 1.01)
    s.submit("poison", "logreg", np.zeros(16))
    assert s.breakers["poison"].state == "closed"
    _drain(s)


def test_expired_requests_are_cancelled_not_dispatched():
    s = Server(small_cfg())
    s.submit("t0", "logreg", np.zeros(16), deadline_s=1e-3)
    s.clock.advance(2e-3)
    assert not s.pump()                     # nothing left to dispatch
    assert [r.status for r in s.responses] == [EXPIRED]
    assert s.tally["expired"] == 1


# -- hypothesis properties ----------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3),          # tenant
                          st.booleans(),              # lstm?
                          st.integers(0, 3)),         # payload flavour
                min_size=1, max_size=40))
def test_queue_never_exceeds_bound_and_books_balance(stream):
    """Adversarial submit storm: bound holds, conservation holds."""
    s = Server(small_cfg())
    for tenant, lstm, flavour in stream:
        payload = {0: np.zeros(16),
                   1: np.ones(16),
                   2: np.full(16, np.nan),
                   3: np.zeros(7)}[flavour]
        kind = "lstm" if lstm else "logreg"
        try:
            s.submit(f"t{tenant}", kind, payload)
        except TYPED:
            pass
        assert len(s.queue) <= s.cfg.queue_depth
        assert s.max_queue_seen <= s.cfg.queue_depth
        assert s.tally["offered"] == (s.tally["admitted"]
                                      + s.tally["shed"])
    shed_reasons = sum(v for k, v in s.tally.items()
                       if k.startswith("shed."))
    assert shed_reasons == s.tally["shed"]


@settings(max_examples=10, deadline=None)
@given(depth=st.integers(1, 5), extra=st.integers(1, 10))
def test_overload_shed_is_exact(depth, extra):
    """Exactly queue_depth admissions; everything past the bound sheds."""
    s = Server(small_cfg(queue_depth=depth))
    outcomes = []
    for i in range(depth + extra):
        try:
            s.submit("t0", "logreg", np.zeros(16))
            outcomes.append("admitted")
        except Overloaded:
            outcomes.append("shed")
    assert outcomes == ["admitted"] * depth + ["shed"] * extra
    assert s.tally["shed.overload"] == extra


# -- config validation --------------------------------------------------------

@pytest.mark.parametrize("bad", [
    dict(queue_depth=0),
    dict(default_deadline_s=0.0),
    dict(degree=100),                  # not a power of two
    dict(block_slots=3),               # not a power of two
    dict(block_slots=256),             # exceeds the slot count
    dict(max_batch=0),
    dict(max_batch=100),               # exceeds block capacity
    dict(max_level=4),                 # lstm would end at level 1: wrap
    dict(batch_window_s=-1e-3),
    dict(degrade_watermark=0.0),
    dict(degrade_watermark=1.5),
    dict(max_retries=-1),
    dict(backoff_base_s=-1.0),
    dict(backoff_jitter=1.0),
    dict(breaker_threshold=0),
    dict(breaker_cooldown_s=-1.0),
    dict(checkpoint_every=0),
])
def test_validate_config_rejects_nonsense(bad):
    with pytest.raises(ConfigError):
        ServeConfig(**bad)


def test_with_revalidates():
    cfg = ServeConfig()
    assert cfg.with_(queue_depth=8).queue_depth == 8
    with pytest.raises(ConfigError):
        cfg.with_(queue_depth=0)
