"""Cross-tenant packing: per-tenant correctness through real CKKS.

The load-bearing property of the serving layer: N tenants share one
ciphertext, and each gets exactly its own answer back.  Checked two
ways - against the numpy slot reference (approximate: CKKS is
approximate about values), and *bit-exactly* between a packed batch and
a differently-ordered packed batch of the same tenant (determinism is
checked elsewhere; isolation is checked here by perturbing neighbours).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.errors import ParameterError
from repro.serve import ServeConfig, Server
from repro.serve.packing import SlotPacker
from repro.serve.request import Request
from repro.workloads.serving import (
    SERVE_KINDS,
    rotation_strides,
    slot_reference,
)


@pytest.fixture(scope="module")
def server():
    return Server(ServeConfig(seed=13))


def _complete_batch(server, kind, payloads):
    """Submit payloads as one batch; return per-tenant values."""
    server.queue.clear()
    server.chip_free_at = server.clock.now()
    n_before = len(server.responses)
    for i, p in enumerate(payloads):
        server.submit(f"t{i}", kind, p)
    server.clock.advance(server.cfg.batch_window_s)
    assert server.pump()
    new = server.responses[n_before:]
    assert all(r.ok for r in new)
    return [r.value for r in new]


# -- packer mechanics ---------------------------------------------------------

def test_pack_layout_and_unpack_roundtrip():
    packer = SlotPacker(slots=128, block_slots=16, max_batch=8,
                        payload_limit=8.0)
    reqs = [Request(id=i, tenant=f"t{i}", kind="logreg",
                    payload=np.full(16, float(i)), submitted=0.0,
                    deadline=1.0) for i in range(3)]
    vec, layout = packer.pack(reqs)
    assert vec.shape == (128,)
    assert np.all(vec[:16] == 0.0) and np.all(vec[16:32] == 1.0)
    assert np.all(vec[48:] == 0.0)          # unused blocks stay zero
    assert layout.occupancy == 3
    assert [layout.readout_slot(i) for i in range(3)] == [0, 16, 32]
    decoded = np.arange(128).astype(complex)
    assert packer.unpack(decoded, layout) == [0.0, 16.0, 32.0]


def test_pack_rejects_empty_and_oversized():
    packer = SlotPacker(slots=128, block_slots=16, max_batch=2,
                        payload_limit=8.0)
    with pytest.raises(ParameterError):
        packer.pack([])
    reqs = [Request(id=i, tenant="t", kind="logreg",
                    payload=np.zeros(16), submitted=0.0, deadline=1.0)
            for i in range(3)]
    with pytest.raises(ParameterError):
        packer.pack(reqs)


def test_rotation_strides_shape():
    assert rotation_strides(16) == [8, 4, 2, 1]
    assert rotation_strides(2) == [1]
    with pytest.raises(ParameterError):
        rotation_strides(12)


# -- per-tenant correctness through real CKKS ---------------------------------

@pytest.mark.parametrize("kind", SERVE_KINDS)
def test_every_tenant_matches_the_slot_reference(server, kind):
    rng = np.random.default_rng(99)
    payloads = [rng.uniform(-1, 1, 16) for _ in range(8)]
    values = _complete_batch(server, kind, payloads)
    vec = np.concatenate(payloads)
    ref = slot_reference(kind, vec, server.weights, 16)
    for i, v in enumerate(values):
        assert abs(v - ref[i * 16]) < 1e-3


@pytest.mark.parametrize("kind", SERVE_KINDS)
def test_tenant_isolation_under_neighbour_perturbation(server, kind):
    """Changing every OTHER tenant's payload leaves a tenant's answer
    unchanged up to CKKS encoding noise - the packing never leaks."""
    rng = np.random.default_rng(7)
    mine = rng.uniform(-1, 1, 16)
    neighbours_a = [rng.uniform(-1, 1, 16) for _ in range(7)]
    neighbours_b = [rng.uniform(-1, 1, 16) for _ in range(7)]
    va = _complete_batch(server, kind, [mine] + neighbours_a)[0]
    vb = _complete_batch(server, kind, [mine] + neighbours_b)[0]
    # The CKKS encoder is a global transform, so neighbours shift the
    # answer at the noise floor - but never at workload magnitude.
    assert abs(va - vb) < 1e-3


@settings(max_examples=6, deadline=None)
@given(data=st.data(),
       occupancy=st.integers(1, 8),
       kind=st.sampled_from(SERVE_KINDS))
def test_random_mixes_match_reference(server, data, occupancy, kind):
    seed = data.draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    payloads = [rng.uniform(-1, 1, 16) for _ in range(occupancy)]
    values = _complete_batch(server, kind, payloads)
    vec = np.zeros(server.cfg.slots)
    for i, p in enumerate(payloads):
        vec[i * 16:(i + 1) * 16] = p
    ref = slot_reference(kind, vec, server.weights, 16)
    assert len(values) == occupancy
    for i, v in enumerate(values):
        assert abs(v - ref[i * 16]) < 1e-3


def test_same_seed_servers_decrypt_bit_exactly():
    """Two fresh servers from the same seed produce bit-identical
    values for the same batch: encryption randomness is seeded per
    context and the pipeline is deterministic.  (Re-encrypting on ONE
    server draws fresh randomness, so that comparison is only
    noise-close - determinism lives in the seed.)"""
    rng = np.random.default_rng(3)
    payloads = [rng.uniform(-1, 1, 16) for _ in range(4)]
    cfg = ServeConfig(seed=31)
    va = _complete_batch(Server(cfg), "logreg", payloads)
    vb = _complete_batch(Server(cfg), "logreg", payloads)
    assert va == vb
