"""The serving campaign end to end: determinism, invariants, faults.

These run a scaled-down campaign (fewer requests than the CLI default)
so the whole file stays in unit-test budget; the full 500-request
campaign runs in CI's serve smoke job against the committed baseline.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs import collector as obs
from repro.serve import ServeConfig
from repro.serve.clock import VirtualClock
from repro.serve.loadgen import (
    STUBBORN,
    LoadSpec,
    _FaultPlanner,
    check_against_baseline,
    run_campaign,
)
from repro.serve.request import COMPLETED
from repro.serve.server import Server

BASELINE = Path(__file__).parent / "baseline.json"


def small_spec(**kw):
    base = dict(requests=60, qps=120000.0, seed=5)
    base.update(kw)
    return LoadSpec(**base)


@pytest.fixture(scope="module")
def result():
    return run_campaign(small_spec(),
                        ServeConfig(seed=5, verify_responses=True))


def test_campaign_invariants_hold(result):
    # run_campaign() already reconciled (it asserts); spot-check the
    # headline numbers here so a silent reconcile regression is loud.
    assert result.offered == 60
    assert result.offered == result.admitted + result.shed_total
    assert result.admitted == (result.completed + result.expired
                               + result.failed)
    assert result.wrong_answers == 0
    assert result.max_queue_seen <= result.cfg.queue_depth
    assert result.completed > 0


def test_campaign_exercises_faults_and_recovers(result):
    assert result.injected_total > 0
    # Every injected fault either recovered (in-executor or via a
    # serve-level retry) or is accounted as a typed failure.
    assert result.failed == 0 or result.retries > 0
    assert result.faults_recovered + result.retries > 0


def test_campaign_is_bit_reproducible_from_its_seed():
    a = run_campaign(small_spec(), ServeConfig(seed=5,
                                               verify_responses=True))
    b = run_campaign(small_spec(), ServeConfig(seed=5,
                                               verify_responses=True))
    assert a.to_json() == b.to_json()
    assert a.p50_ms == b.p50_ms and a.p99_ms == b.p99_ms


def test_different_seed_changes_the_run():
    a = run_campaign(small_spec(), ServeConfig(seed=5,
                                               verify_responses=True))
    b = run_campaign(small_spec(seed=6), ServeConfig(seed=6,
                                                     verify_responses=True))
    assert a.to_json() != b.to_json()


def test_counters_match_tallies_exactly(result):
    for key in ("offered", "admitted", "completed", "retries"):
        assert result.counters.get(f"serve.{key}", 0.0) \
            == getattr(result, key)


def test_baseline_check_detects_drift(result):
    baseline = json.loads(BASELINE.read_text())
    # The committed baseline is the CLI-default campaign, not this
    # scaled-down one - so checking against it must report drift.
    problems = check_against_baseline(result, BASELINE)
    assert problems
    # And a result checked against its own emitted baseline passes.
    own = Path(str(BASELINE) + ".tmp")
    try:
        own.write_text(json.dumps(result.to_json()))
        assert check_against_baseline(result, own) == []
    finally:
        own.unlink()
    assert baseline["wrong_answers"] == 0
    assert baseline["failed"] == 0


def test_stubborn_faults_defeat_executor_but_not_serve():
    """A STUBBORN fault exhausts in-executor recovery; the serve-level
    retry (fresh executor, clean steps) then completes the batch."""
    spec = small_spec(requests=24, fault_rate=1.0, stubborn_fraction=1.0,
                      poison_tenant=None, qps=1000.0)
    res = run_campaign(spec, ServeConfig(seed=5, verify_responses=True))
    assert res.retries > 0              # executor was defeated
    assert res.failed == 0              # serve retries absorbed it all
    assert res.wrong_answers == 0
    assert STUBBORN > ServeConfig().executor_retries \
        + ServeConfig().executor_restarts


def test_fault_planner_is_deterministic():
    from repro.reliability.faults import FaultInjector
    spec = small_spec(fault_rate=0.5)
    a = _FaultPlanner(spec, FaultInjector(seed=1))
    b = _FaultPlanner(spec, FaultInjector(seed=1))
    steps = [(f"reduce/rot{i}", lambda c, s: None) for i in range(6)]
    for batch_id in range(20):
        a(batch_id, 0, steps)
        b(batch_id, 0, steps)
    assert a.plans == b.plans


def test_campaign_with_external_collector_keeps_it_open():
    collector = obs.enable()
    try:
        run_campaign(small_spec(requests=10, fault_rate=0.0,
                                poison_tenant=None),
                     ServeConfig(seed=5))
        assert obs.is_enabled()
        assert collector.counters.get("serve.offered") == 10.0
    finally:
        obs.disable()


def test_virtual_clock_only_no_wallclock_in_serve():
    """The whole serve package must run on the injectable clock: any
    time.time()/perf_counter/sleep import would break determinism."""
    import ast

    import repro.serve as pkg
    forbidden = {"time", "sleep", "perf_counter", "monotonic",
                 "now", "utcnow"}
    clock_owners = {"time", "datetime", "date"}
    root = Path(pkg.__file__).parent
    for path in root.glob("*.py"):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (isinstance(fn, ast.Attribute)
                    and fn.attr in forbidden
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in clock_owners):
                raise AssertionError(
                    f"{path.name}:{node.lineno} calls "
                    f"{fn.value.id}.{fn.attr}() - serve code must use "
                    "the injectable VirtualClock")


def test_backoff_is_exponential_with_bounded_jitter():
    cfg = ServeConfig(seed=5)
    srv = Server(cfg, clock=VirtualClock())
    pauses = [srv._backoff(k) for k in range(1, 4)]
    for k, pause in enumerate(pauses, start=1):
        nominal = cfg.backoff_base_s * cfg.backoff_factor ** (k - 1)
        assert nominal * (1 - cfg.backoff_jitter) <= pause \
            <= nominal * (1 + cfg.backoff_jitter)
    # Exponential growth dominates the jitter band.
    assert pauses[2] > pauses[0]


def test_degradation_halves_batches_under_backlog():
    cfg = ServeConfig(seed=5, queue_depth=8, degrade_watermark=0.5)
    srv = Server(cfg)
    for i in range(8):                   # at the watermark: degraded
        srv.submit(f"t{i}", "logreg", np.zeros(16))
    assert srv.pump()
    assert srv.batches[0].degraded
    assert srv.batches[0].requests
    assert len(srv.batches[0].requests) \
        == cfg.max_batch // cfg.degrade_batch_divisor
    assert srv.tally["degraded_dispatches"] == 1
