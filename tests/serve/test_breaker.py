"""Circuit breaker state machine: transitions, probes, isolation."""

import pytest

from repro.reliability.errors import ParameterError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def test_closed_allows_and_counts_nothing():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    assert br.state == CLOSED
    for t in range(5):
        assert br.allow(float(t))
    assert br.stats.rejections == 0


def test_opens_after_threshold_consecutive_failures():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    assert not br.record_failure(0.0)
    assert not br.record_failure(0.1)
    assert br.state == CLOSED
    assert br.record_failure(0.2)       # third consecutive: opens
    assert br.state == OPEN
    assert not br.allow(0.5)            # still cooling down
    assert br.stats.rejections == 1


def test_success_resets_the_consecutive_count():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    br.record_failure(0.0)
    br.record_failure(0.1)
    br.record_success()                 # streak broken
    br.record_failure(0.2)
    br.record_failure(0.3)
    assert br.state == CLOSED           # 2 < threshold again


def test_half_open_admits_exactly_one_probe():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    assert br.state == OPEN
    assert not br.allow(0.5)            # before cooldown
    assert br.allow(1.5)                # cooldown elapsed: the probe
    assert br.state == HALF_OPEN and br.probing
    assert not br.allow(1.6)            # second request while probing
    assert br.stats.probes == 1


def test_probe_success_closes_probe_failure_reopens():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    assert br.allow(1.5)
    br.record_success()
    assert br.state == CLOSED

    br.record_failure(2.0)              # threshold 1: straight open
    assert br.allow(3.5)                # probe again
    assert br.record_failure(3.6)       # probe fails: reopen
    assert br.state == OPEN
    assert br.opened_at == 3.6          # fresh cooldown from the failure
    assert not br.allow(4.5)
    assert br.allow(4.7)


def test_next_probe_at():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=2.0)
    assert br.next_probe_at() == float("inf")
    br.record_failure(1.0)
    assert br.next_probe_at() == 3.0


def test_breakers_are_per_tenant_state():
    a = CircuitBreaker("a", threshold=1, cooldown_s=1.0)
    b = CircuitBreaker("b", threshold=1, cooldown_s=1.0)
    a.record_failure(0.0)
    assert a.state == OPEN and b.state == CLOSED
    assert b.allow(0.1)


def test_rejects_nonsense_parameters():
    with pytest.raises(ParameterError):
        CircuitBreaker("t", threshold=0)
    with pytest.raises(ParameterError):
        CircuitBreaker("t", cooldown_s=-1.0)
