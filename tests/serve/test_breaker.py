"""Circuit breaker state machine: transitions, probes, isolation."""

import pytest

from repro.reliability.errors import ParameterError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def test_closed_allows_and_counts_nothing():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    assert br.state == CLOSED
    for t in range(5):
        assert br.allow(float(t))
    assert br.stats.rejections == 0


def test_opens_after_threshold_consecutive_failures():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    assert not br.record_failure(0.0)
    assert not br.record_failure(0.1)
    assert br.state == CLOSED
    assert br.record_failure(0.2)       # third consecutive: opens
    assert br.state == OPEN
    assert not br.allow(0.5)            # still cooling down
    assert br.stats.rejections == 1


def test_success_resets_the_consecutive_count():
    br = CircuitBreaker("t0", threshold=3, cooldown_s=1.0)
    br.record_failure(0.0)
    br.record_failure(0.1)
    br.record_success()                 # streak broken
    br.record_failure(0.2)
    br.record_failure(0.3)
    assert br.state == CLOSED           # 2 < threshold again


def test_half_open_admits_exactly_one_probe():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    assert br.state == OPEN
    assert not br.allow(0.5)            # before cooldown
    assert br.allow(1.5)                # cooldown elapsed: the probe
    assert br.state == HALF_OPEN and br.probing
    assert not br.allow(1.6)            # second request while probing
    assert br.stats.probes == 1


def test_probe_success_closes_probe_failure_reopens():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    assert br.allow(1.5)
    br.record_success()
    assert br.state == CLOSED

    br.record_failure(2.0)              # threshold 1: straight open
    assert br.allow(3.5)                # probe again
    assert br.record_failure(3.6)       # probe fails: reopen
    assert br.state == OPEN
    assert br.opened_at == 3.6          # fresh cooldown from the failure
    assert not br.allow(4.5)
    assert br.allow(4.7)


def test_next_probe_at():
    br = CircuitBreaker("t0", threshold=1, cooldown_s=2.0)
    assert br.next_probe_at() == float("inf")
    br.record_failure(1.0)
    assert br.next_probe_at() == 3.0


def test_breakers_are_per_tenant_state():
    a = CircuitBreaker("a", threshold=1, cooldown_s=1.0)
    b = CircuitBreaker("b", threshold=1, cooldown_s=1.0)
    a.record_failure(0.0)
    assert a.state == OPEN and b.state == CLOSED
    assert b.allow(0.1)


def test_rejects_nonsense_parameters():
    with pytest.raises(ParameterError):
        CircuitBreaker("t", threshold=0)
    with pytest.raises(ParameterError):
        CircuitBreaker("t", cooldown_s=-1.0)


# -- HALF_OPEN edge cases (probe concurrency and reopen accounting) ---------

def _opened(threshold=2, cooldown=1.0, at=0.0) -> CircuitBreaker:
    br = CircuitBreaker("t", threshold=threshold, cooldown_s=cooldown)
    for _ in range(threshold):
        br.record_failure(at)
    assert br.state == OPEN
    return br


def test_probe_in_flight_rejects_concurrent_arrivals():
    """While the one probe slot is claimed, every further arrival in the
    same half-open window is rejected and counted - a bad tenant gets at
    most one speculative slot per cooldown."""
    br = _opened(cooldown=1.0, at=0.0)
    assert br.allow(1.0)                 # claims the probe slot
    assert br.probing
    probes_before = br.stats.probes
    rejections_before = br.stats.rejections
    for i in range(5):                   # concurrent arrivals pile in
        assert not br.allow(1.0 + i * 1e-4)
    assert br.stats.probes == probes_before       # no second probe
    assert br.stats.rejections == rejections_before + 5
    assert br.probing                    # slot still held by the probe


def test_probe_failure_reopens_and_counts_a_fresh_open():
    """A failed probe goes straight back to OPEN: opens increments,
    the cooldown restarts from the failure time, and the *next* window
    admits exactly one new probe."""
    br = _opened(cooldown=1.0, at=0.0)
    assert br.stats.opens == 1
    assert br.allow(1.0)                 # probe window 1
    assert br.record_failure(1.5)        # probe fails -> reopen
    assert br.state == OPEN
    assert br.stats.opens == 2
    assert not br.probe_inflight
    # Cooldown restarted at the failure, not the original open.
    assert br.next_probe_at() == 2.5
    assert not br.allow(2.4)             # still cooling down
    assert br.allow(2.5)                 # probe window 2
    assert br.stats.probes == 2


def test_probe_success_closes_and_releases_the_slot():
    br = _opened(cooldown=1.0, at=0.0)
    assert br.allow(1.0)
    br.record_success()
    assert br.state == CLOSED
    assert not br.probe_inflight
    assert br.consecutive_failures == 0
    # Closed again: arrivals flow without touching the probe counter.
    probes = br.stats.probes
    assert br.allow(1.1) and br.allow(1.2)
    assert br.stats.probes == probes


def test_half_open_entry_resets_stale_probe_flag():
    """OPEN -> HALF_OPEN clears probe_inflight even if a previous
    half-open window left it set (reopen path already clears it; this
    pins the allow()-side reset too)."""
    br = _opened(cooldown=1.0, at=0.0)
    assert br.allow(1.0)                 # half-open, slot claimed
    br.record_failure(1.0)               # reopen at t=1
    assert br.allow(2.0)                 # new window admits a new probe
    assert br.probing
