"""Pod-backed serving: lane dispatch, fail_chip degradation, typed
capacity shedding, and the ETA retry-budget fix.
"""

import numpy as np
import pytest

from repro.pod import PodConfig
from repro.reliability.errors import (
    ChipFailure,
    DeadlineExceeded,
    ParameterError,
)
from repro.serve import ServeConfig, Server


def cfg(**kw):
    base = dict(queue_depth=8, batch_window_s=1e-4, seed=11)
    base.update(kw)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def pod_server():
    return Server(cfg(queue_depth=32), pod=PodConfig(chips=3))


# -- ETA retry budget (satellite fix) ---------------------------------------

def test_retry_budget_formula():
    c = cfg(max_retries=2, backoff_base_s=1e-4, backoff_factor=2.0,
            backoff_jitter=0.25)
    # Ceiling pause = base * factor**(retries-1) * (1 + jitter).
    assert c.retry_budget_s() == pytest.approx(2 * 1e-4 * 2.0 * 1.25)
    assert cfg(admission_retry_budget=0.0).retry_budget_s() == 0.0
    assert cfg(max_retries=0).retry_budget_s() == 0.0


def test_eta_includes_retry_budget():
    """A deadline that only fits the optimistic (no-fault) ETA is shed
    at admission: the feasibility check now budgets for every retry
    pausing at the backoff ceiling."""
    s = Server(cfg())
    optimistic = s._eta("logreg", 0.0) - s.cfg.retry_budget_s()
    assert s.cfg.retry_budget_s() > 0
    # Between the optimistic and budgeted ETA: must be shed now.
    tight = optimistic + 0.5 * s.cfg.retry_budget_s()
    with pytest.raises(DeadlineExceeded):
        s.submit("t0", "logreg", np.zeros(16), deadline_s=tight)
    assert s.tally["shed.deadline"] == 1
    # Past the budgeted ETA: admitted.
    s.submit("t0", "logreg", np.zeros(16),
             deadline_s=s._eta("logreg", 0.0) * 1.01)
    assert s.tally["admitted"] == 1


def test_budget_knob_restores_optimistic_admission():
    s = Server(cfg(admission_retry_budget=0.0))
    base = Server(cfg())
    tight = base._eta("logreg", 0.0) - 0.5 * base.cfg.retry_budget_s()
    s.submit("t0", "logreg", np.zeros(16), deadline_s=tight)
    assert s.tally["admitted"] == 1


# -- pod lane dispatch --------------------------------------------------------

def test_batches_fan_out_across_lanes(pod_server):
    s = pod_server
    s.queue.clear()
    for k in s.alive:
        s.chips_free_at[k] = s.clock.now()
    # Two same-kind batches dispatched back to back at the same instant
    # land on two different lanes (earliest-free, id-tiebroken).
    for i in range(2 * s.cfg.max_batch):
        s.submit(f"t{i}", "logreg", np.zeros(16), deadline_s=1.0)
    assert s.pump() and s.pump()
    lanes = [b.chip for b in s.batches[-2:]]
    assert lanes[0] != lanes[1]


def test_fail_chip_shrinks_capacity_and_eta():
    s = Server(cfg(), pod=PodConfig(chips=2))
    s.submit("t0", "logreg", np.zeros(16), deadline_s=1.0)
    eta_full = s._eta("logreg", s.clock.now())
    s.fail_chip(1)
    eta_degraded = s._eta("logreg", s.clock.now())
    assert eta_degraded > eta_full  # backlog drains over fewer lanes
    assert s.tally["pod.chip_failures"] == 1
    with pytest.raises(ParameterError):
        s.fail_chip(1)  # already dead


def test_empty_pod_sheds_typed(pod_server=None):
    s = Server(cfg(), pod=PodConfig(chips=1))
    s.fail_chip(0)
    with pytest.raises(ChipFailure):
        s.submit("t0", "logreg", np.zeros(16), deadline_s=1.0)
    assert s.tally["shed.capacity"] == 1
    assert s.tally["offered"] == 1
    # next_wake never spins on a dead pod.
    assert s.chip_free_at == float("inf")


def test_single_chip_server_is_lane_zero():
    s = Server(cfg())
    assert s.chips_free_at == [0.0]
    s.chip_free_at = 1.5  # setter used by older tests/tools
    assert s.chips_free_at == [1.5]
    assert s.chip_free_at == 1.5


# -- model-parallel pod: one pipelined logical lane ---------------------------

def model_server(chips=4, **kw):
    return Server(cfg(queue_depth=64, **kw),
                  pod=PodConfig(chips=chips, strategy="model"))


def test_model_pod_is_one_pipelined_lane():
    s = model_server()
    assert len(s.chips_free_at) == 1  # the pipeline is one logical lane
    fill = s.service_seconds("logreg", s.cfg.max_batch)
    beat = s.throughput_seconds("logreg", s.cfg.max_batch)
    assert 0 < beat < fill  # micro-batches stream behind each other
    for i in range(2 * s.cfg.max_batch):
        s.submit(f"t{i}", "logreg", np.zeros(16), deadline_s=10.0)
    assert s.pump()
    done1 = max(r.completed_at for r in s.responses)
    overhead = done1 - fill
    # The lane frees after one steady-state beat, while the batch
    # itself completes only at the fill latency: the next batch can
    # enter the pipeline while this one is still draining.
    assert s.chips_free_at[0] == pytest.approx(beat + overhead)
    assert s.chips_free_at[0] < done1
    s.clock.advance(s.chips_free_at[0] - s.clock.now())
    assert s.pump()  # second batch dispatches mid-flight of the first
    done2 = max(r.completed_at for r in s.responses)
    assert done2 == pytest.approx(s.clock.now() + fill + overhead)
    # Chip-seconds are charged at pipeline occupancy, not fill.
    assert s.busy_s == pytest.approx(2 * (beat + overhead))


def test_model_pod_fail_chip_recuts_pipeline():
    s = model_server(chips=4)
    beat_clean = s.throughput_seconds("logreg", s.cfg.max_batch)
    s.fail_chip(2)
    assert s.tally["pod.chip_failures"] == 1
    # Cached service times are invalidated; the recut over 3 survivors
    # has a slower (or equal) beat.
    beat_degraded = s.throughput_seconds("logreg", s.cfg.max_batch)
    assert beat_degraded >= beat_clean
    with pytest.raises(ParameterError):
        s.fail_chip(2)  # already dead
    with pytest.raises(ParameterError):
        s.fail_chip(7)  # outside the pod


def test_model_pod_all_chips_dead_sheds_typed():
    s = model_server(chips=2)
    s.fail_chip(0)
    s.fail_chip(1)
    assert not s.alive
    with pytest.raises(ChipFailure):
        s.submit("t0", "logreg", np.zeros(16), deadline_s=1.0)
    assert s.tally["shed.capacity"] == 1
