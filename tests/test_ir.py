"""Shared IR: validation and program statistics."""

import pytest

from repro.ir import (
    ADD,
    INPUT,
    KEYSWITCH_KINDS,
    MULT,
    PMULT,
    RESCALE,
    ROTATE,
    HomOp,
    Program,
)


def test_homop_validation():
    with pytest.raises(ValueError, match="kind"):
        HomOp(kind="bogus", level=1, result="r")
    with pytest.raises(ValueError, match="level"):
        HomOp(kind=ADD, level=0, result="r")
    with pytest.raises(ValueError, match="hint"):
        HomOp(kind=MULT, level=1, result="r")
    with pytest.raises(ValueError, match="digits"):
        HomOp(kind=MULT, level=1, result="r", hint_id="h", digits=0)
    with pytest.raises(ValueError, match="repeat"):
        HomOp(kind=ADD, level=1, result="r", repeat=0)
    with pytest.raises(ValueError, match="batch"):
        HomOp(kind=RESCALE, level=1, result="r", repeat=2)
    with pytest.raises(ValueError, match="batch"):
        HomOp(kind=INPUT, level=1, result="r", repeat=2)


def test_keyswitch_kinds():
    assert MULT in KEYSWITCH_KINDS and ROTATE in KEYSWITCH_KINDS
    assert PMULT not in KEYSWITCH_KINDS


def test_program_validation():
    with pytest.raises(ValueError):
        Program(name="p", degree=1000, max_level=5)
    prog = Program(name="p", degree=1024, max_level=5)
    with pytest.raises(ValueError, match="exceeds"):
        prog.append(HomOp(kind=ADD, level=6, result="r"))


def test_program_statistics():
    prog = Program(name="p", degree=1024, max_level=10)
    prog.append(HomOp(kind=INPUT, level=10, result="x"))
    prog.append(HomOp(kind=MULT, level=10, result="y", operands=("x", "x"),
                      hint_id="relin", tag="phase1"))
    prog.append(HomOp(kind=ROTATE, level=9, result="z", operands=("y",),
                      hint_id="rot1", tag="phase2"))
    assert len(prog) == 3
    assert prog.count(MULT) == 1
    assert prog.keyswitch_count() == 2
    assert prog.distinct_hints() == {"relin", "rot1"}
    assert prog.max_live_level() == 10
    assert prog.phase_names() == ["phase1", "phase2"]
