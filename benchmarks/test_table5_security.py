"""Table 5: performance at 128-bit and 200-bit security targets."""

from conftest import emit

from repro.analysis import format_table, gmean
from repro.core import ChipConfig
from repro.workloads import DEEP_BENCHMARKS

PAPER = {  # slowdown vs 80-bit: (128-bit, 200-bit @ N=128K)
    "resnet20": (1.29, 2.36),
    "logreg": (1.02, 1.03),
    "lstm": (1.62, 4.32),
    "packed_bootstrap": (1.62, 4.35),
}


def _run_security(runs):
    big_chip = ChipConfig.craterlake_128k()
    out = {}
    for name in DEEP_BENCHMARKS:
        base = runs.run(name).milliseconds
        s128 = runs.run(name, security=128).milliseconds
        s200 = runs.run(name, big_chip, security=200,
                        degree=131072).milliseconds
        out[name] = {"base": base, "128": s128 / base, "200": s200 / base}
    return out


def test_table5_security(benchmark, runs):
    results = benchmark.pedantic(_run_security, args=(runs,), rounds=1,
                                 iterations=1)
    rows = []
    for name, r in results.items():
        p = PAPER[name]
        rows.append([name, f"{r['base']:.2f}", f"{r['128']:.2f}",
                     f"{p[0]:.2f}", f"{r['200']:.2f}", f"{p[1]:.2f}"])
    g128 = gmean(r["128"] for r in results.values())
    g200 = gmean(r["200"] for r in results.values())
    rows.append(["gmean", "", f"{g128:.2f}", "1.36", f"{g200:.2f}", "2.60"])
    emit("table5_security", format_table(
        ["benchmark", "80-bit ms", "128-bit x", "paper", "200-bit x",
         "paper"], rows,
        title="Table 5 reproduction: slowdown at higher security levels",
    ))

    # Shape criteria: 128-bit costs a modest gmean slowdown (paper 1.36x,
    # worst case 1.62x); 200-bit costs clearly more (paper gmean 2.60x).
    assert 1.0 <= g128 < 2.6, g128
    assert g200 > g128
    assert 1.6 < g200 < 5.2, g200
    # Benchmarks slow with the security target (a small speedup is
    # tolerated where the workload adapts its activation depth to the
    # shorter 128-bit chain, trading work for precision as [48] does).
    for name, r in results.items():
        assert r["128"] >= 0.85, name
        assert r["200"] >= r["128"] * 0.9, name


def test_table5_200bit_needs_larger_ring(benchmark, runs):
    """Sec. 9.4: deep chains at 200-bit do not fit N=64K."""
    import pytest

    def attempt():
        with pytest.raises(ValueError, match="128K"):
            runs.program("packed_bootstrap", security=200, degree=None)
        return True
    assert benchmark.pedantic(attempt, rounds=1, iterations=1)
