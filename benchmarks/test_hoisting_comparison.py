"""Hoisted vs unhoisted schedules on the rotation-heavy benchmarks.

Not a paper table: this is the regression artifact for the compiler's
rotation-hoisting pass (`repro.compiler.hoisting`).  For each deep
benchmark it simulates the fused stream, the hoisted stream, and the
full pipeline (hoisted + register-pressure scheduling,
`repro.compiler.ordering.order_for_pressure`) on CraterLake and reports
cycles, the savings, and how many ModUps the pass eliminated.  The
nightly run archives the table next to the Table 3 results so pass
regressions show up as a shrinking savings column.
"""

from conftest import emit

from repro.analysis import format_table
from repro.compiler import hoist_rotations, order_for_pressure
from repro.core import simulate
from repro.obs import collector as obs
from repro.workloads import DEEP_BENCHMARKS


def _compare(runs):
    table = {}
    for name in DEEP_BENCHMARKS:
        program = runs.program(name)
        with obs.collecting() as c:
            hoisted = hoist_rotations(program, runs.craterlake)
        base = runs.run(name)
        fast = simulate(hoisted, runs.craterlake)
        combined = simulate(order_for_pressure(hoisted, runs.craterlake),
                            runs.craterlake)
        table[name] = {
            "base_cycles": base.cycles,
            "hoisted_cycles": fast.cycles,
            "combined_cycles": combined.cycles,
            "savings": (base.cycles - combined.cycles) / base.cycles,
            "groups": c.counters.get("compiler.hoist.hoisted_groups", 0),
            "modups_saved": c.counters.get("compiler.hoist.modups_saved", 0),
        }
    return table


def test_hoisting_comparison(benchmark, runs):
    results = benchmark.pedantic(_compare, args=(runs,), rounds=1,
                                 iterations=1)
    rows = [
        [name, f"{r['base_cycles']:,.0f}", f"{r['hoisted_cycles']:,.0f}",
         f"{r['combined_cycles']:,.0f}", f"{r['savings']:+.1%}",
         int(r["groups"]), int(r["modups_saved"])]
        for name, r in results.items()
    ]
    emit("hoisting_comparison", format_table(
        ["benchmark", "fused cycles", "hoisted cycles",
         "hoisted+pressure cycles", "savings", "groups", "modups saved"],
        rows, title="Rotation hoisting: fused vs hoisted schedules",
    ))

    # Neither pass pessimizes any benchmark (profitability gates) ...
    for name, r in results.items():
        assert r["hoisted_cycles"] <= r["base_cycles"], name
        assert r["combined_cycles"] <= r["hoisted_cycles"], name
    # ... and on the hoisting-heavy bootstrapping workload it must keep
    # delivering the acceptance-level win.
    assert results["packed_bootstrap"]["savings"] >= 0.10
    assert results["packed_bootstrap"]["groups"] == 7
