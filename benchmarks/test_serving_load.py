"""Serving-load sweep: tail latency and shedding vs offered qps.

Not a paper table: this is the regression artifact for the serving
front-end (`repro.serve`, docs/SERVING.md).  It sweeps offered load
from well under chip capacity to well past it and reports, per point,
what the front-end did with the excess: p50/p99 latency, shed
breakdown (overload / infeasible deadline / breaker / invalid),
degraded dispatches, serve-level retries, and chip utilization.  A
paired no-fault run at the saturation point isolates the cost of the
fault-tolerance machinery itself.

Acceptance criteria (shape, not absolute numbers):

* zero wrong answers and zero typed failures at every point - overload
  changes *who gets served*, never the correctness of the answers;
* total load shed is monotone in offered qps, and the overload/deadline
  shed reasons only appear once the chip saturates;
* under saturation the queue rides its bound without ever exceeding it,
  and degradation (smaller, eager batches) engages before shedding;
* the faulted run completes exactly as many correct answers per
  admitted request as the clean run - faults cost latency, not answers.

Every point is bit-reproducible from its seed (campaign property,
enforced in tests/serve/); the nightly artifact therefore only moves
when serving behavior actually changes.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis import format_table
from repro.serve import LoadSpec, ServeConfig, run_campaign

# The sweep brackets chip capacity: the top point's arrivals outrun
# service by enough to fill the depth-64 queue inside a 200-request
# burst, so every shed reason appears.  Fewer requests per point than
# the CLI default keeps the whole sweep in nightly budget.
QPS_POINTS = (50_000.0, 150_000.0, 600_000.0, 2_400_000.0)
REQUESTS = 200


def _point(qps: float, fault_rate: float, seed: int = 2022):
    spec = LoadSpec(requests=REQUESTS, qps=qps, fault_rate=fault_rate,
                    seed=seed)
    cfg = ServeConfig(seed=seed, verify_responses=True)
    return run_campaign(spec, cfg)


def _sweep():
    points = [(qps, _point(qps, fault_rate=0.15)) for qps in QPS_POINTS]
    clean = _point(QPS_POINTS[-1], fault_rate=0.0)
    return points, clean


def test_serving_load_sweep(benchmark):
    points, clean = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for qps, r in points:
        rows.append([
            f"{qps / 1e3:.0f}k", r.admitted, r.completed,
            r.shed.get("overload", 0), r.shed.get("deadline", 0),
            r.shed.get("breaker", 0) + r.shed.get("invalid", 0),
            r.degraded_dispatches, r.retries,
            f"{r.p50_ms:.3f}", f"{r.p99_ms:.3f}",
            f"{r.utilization:.0%}",
        ])
    table = format_table(
        ["offered qps", "admitted", "completed", "shed:over",
         "shed:ddl", "shed:tenant", "degraded", "retries",
         "p50 ms", "p99 ms", "chip util"],
        rows,
        title=f"Serving load sweep ({REQUESTS} requests/point, "
              "fault_rate=0.15, seed=2022)")

    fr = points[-1][1]
    comparison = format_table(
        [f"run @{QPS_POINTS[-1] / 1e3:.0f}k qps", "completed", "retries",
         "faults recovered", "p99 ms"],
        [["faulted", fr.completed, fr.retries, fr.faults_recovered,
          f"{fr.p99_ms:.3f}"],
         ["clean", clean.completed, clean.retries,
          clean.faults_recovered, f"{clean.p99_ms:.3f}"]],
        title="Fault-tolerance overhead at saturation")
    emit("serving_load", table + "\n\n" + comparison)

    # -- shape criteria -------------------------------------------------
    for qps, r in points:
        assert r.wrong_answers == 0, (qps, r.wrong_answers)
        assert r.failed == 0, (qps, r.failed)
        assert r.max_queue_seen <= r.cfg.queue_depth
        assert r.offered == r.admitted + r.shed_total

    shed_totals = [r.shed_total for _, r in points]
    assert shed_totals == sorted(shed_totals), shed_totals

    light, saturated = points[0][1], points[-1][1]
    # Light load: no capacity-driven shedding (tenant-driven shedding -
    # the poison tenant's breaker - is load-independent and stays).
    assert light.shed.get("overload", 0) == 0
    assert saturated.shed.get("overload", 0) > 0
    assert saturated.degraded_dispatches > 0
    # Overload does NOT blow up the survivors' tail: admission control
    # sheds the infeasible traffic, so completed requests still meet
    # their deadlines (p99 of completions is bounded by the deadline
    # range by construction - late completions are counted as expired).
    assert saturated.p99_ms / 1e3 <= fr.spec.deadline_hi_s * 1.01

    # Faults cost retries and tail latency, never answers.
    assert fr.retries > 0 and clean.retries == 0
    assert fr.wrong_answers == 0 and clean.wrong_answers == 0
