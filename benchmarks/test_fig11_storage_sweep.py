"""Fig. 11: performance vs on-chip register-file capacity (100-350 MB)."""

from conftest import emit

from repro.analysis import format_table, gmean
from repro.workloads import DEEP_BENCHMARKS, SHALLOW_BENCHMARKS

SIZES_MB = (100, 150, 200, 256, 300, 350)


def _sweep(runs):
    table = {}
    for name in DEEP_BENCHMARKS + ("lola_mnist_uw",):
        base = runs.run(name).milliseconds
        table[name] = {
            mb: base / runs.run(
                name, runs.craterlake.with_register_file(mb)
            ).milliseconds
            for mb in SIZES_MB
        }
    return table


def test_fig11_storage_sweep(benchmark, runs):
    speedups = benchmark.pedantic(_sweep, args=(runs,), rounds=1,
                                  iterations=1)
    rows = [
        [name, *(f"{speedups[name][mb]:.2f}" for mb in SIZES_MB)]
        for name in speedups
    ]
    emit("fig11_storage_sweep", format_table(
        ["benchmark"] + [f"{mb} MB" for mb in SIZES_MB], rows,
        title="Fig. 11 reproduction: speedup vs on-chip storage "
              "(normalized to 256 MB)",
    ))

    # Deep benchmarks suffer badly below 256 MB (paper: up to 5.5x).
    deep_at_100 = [speedups[n][100] for n in DEEP_BENCHMARKS]
    assert min(deep_at_100) < 0.75
    assert any(s < 0.55 for s in deep_at_100)
    # Monotone improvement with capacity for deep benchmarks.
    for name in DEEP_BENCHMARKS:
        seq = [speedups[name][mb] for mb in SIZES_MB]
        assert all(b >= a - 1e-9 for a, b in zip(seq, seq[1:])), name
    # Diminishing returns past 256 MB: no deep benchmark gains more than
    # ~1.6x from 256 -> 350 MB (paper: only P-Bootstrap reaches ~1.5x).
    for name in DEEP_BENCHMARKS:
        assert speedups[name][350] < 1.6, name
    # Shallow benchmarks are insensitive to storage size.
    for mb in SIZES_MB:
        assert abs(speedups["lola_mnist_uw"][mb] - 1.0) < 0.1
