"""Table 1: operation counts, boosted vs standard keyswitching."""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.opcounts import (
    boosted_keyswitch_ops,
    standard_keyswitch_ops,
)


def _build_table():
    level = 60
    b = boosted_keyswitch_ops(level)
    s = standard_keyswitch_ops(level)
    rows = [
        ["Mult", f"3L^2 + 4L = {b.crb_mult} + {b.mult - b.crb_mult}",
         f"2L^2 = {s.mult}"],
        ["Add", f"3L^2 + 2L = {b.crb_mult} + {b.add - b.crb_mult}",
         f"2L^2 = {s.add}"],
        ["NTT", f"6L = {b.ntt}", f"L^2 = {s.ntt}"],
        ["Hint residues", f"{b.hint_residues} (2 ciphertexts)",
         f"{s.hint_residues}"],
    ]
    return b, s, format_table(
        ["Op", "Boosted keyswitching", "Standard"], rows,
        title="Table 1 reproduction: op counts per keyswitch at L=60",
    )


def test_table1_opcounts(benchmark):
    (b, s, table) = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    emit("table1_opcounts", table)
    # Paper's exact L=60 numbers.
    assert b.mult == 10800 + 240
    assert b.add == 10800 + 120
    assert b.ntt == 360
    assert s.mult == s.add == 7200
    assert s.ntt == 3600
    # The headline: boosted trades ~50% more mult/add for 10x fewer NTTs.
    assert s.ntt / b.ntt == 10.0
    assert 1.3 < b.mult / s.mult < 1.7
    # Hints: 2 ciphertexts (4L residues) vs 2L^2 residues.
    assert b.hint_residues == 4 * 60
    assert s.hint_residues == 2 * 60 * 60
