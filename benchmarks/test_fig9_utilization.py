"""Fig. 9: functional-unit and off-chip-bandwidth utilization."""

from conftest import emit

from repro.analysis import format_table
from repro.workloads import ALL_BENCHMARKS, DEEP_BENCHMARKS


def _collect(runs):
    return {
        name: (runs.run(name).fu_utilization(),
               runs.run(name).bandwidth_utilization)
        for name in ALL_BENCHMARKS
    }


def test_fig9_utilization(benchmark, runs):
    util = benchmark.pedantic(_collect, args=(runs,), rounds=1, iterations=1)
    rows = [[n, f"{fu * 100:.0f}%", f"{bw * 100:.0f}%"]
            for n, (fu, bw) in util.items()]
    emit("fig9_utilization", format_table(
        ["benchmark", "FU util", "BW util"], rows,
        title="Fig. 9 reproduction: FU and memory-bandwidth utilization",
    ))

    # Balanced system: deep benchmarks keep both resources busy.
    for name in DEEP_BENCHMARKS:
        fu, bw = util[name]
        assert fu > 0.25, name          # paper: ~35-55% on deep
        assert bw > 0.30, name          # paper: ~30-70%
        assert max(fu, bw) > 0.4, name  # something is being used hard
    # No benchmark exceeds the physical bounds.
    for name, (fu, bw) in util.items():
        assert 0 <= fu <= 1 and 0 <= bw <= 1


def test_fig9_f1plus_utilization_collapses(benchmark, runs):
    """Sec. 9.2: F1+'s average FU utilization on deep benchmarks is ~10%
    (inadequate FU mix, no CRB)."""
    def collect():
        return {
            n: runs.run(n, runs.f1plus).fu_utilization()
            for n in DEEP_BENCHMARKS
        }
    f1_util = benchmark.pedantic(collect, rounds=1, iterations=1)
    for name in DEEP_BENCHMARKS:
        cl_util = runs.run(name).fu_utilization()
        assert f1_util[name] < 0.2, name
        assert f1_util[name] < cl_util, name
