"""Table 2: area breakdown of CraterLake by component."""

from conftest import emit

from repro.analysis import format_table
from repro.core import ChipConfig, area_breakdown, scaled_5nm, total_area
from repro.core.area import total_fu_area

# Paper per-unit figures expanded to the full FU complement (2x NTT,
# 5x Mul, 5x Add), which is what makes the paper's 'Total FUs' row 240.5
# and the chip total 472.3.
PAPER_AREAS = {
    "CRB FU": 158.8,
    "NTT FU": 2 * 28.1,
    "Automorphism FU": 9.0,
    "KSHGen FU": 3.3,
    "Multiply FU": 5 * 2.2,
    "Add FU": 5 * 0.8,
    "Register file": 192.0,
    "On-chip interconnect": 10.0,
    "Mem PHYs": 29.8,
}
PAPER_TOTAL = 472.3


def test_table2_area(benchmark):
    breakdown = benchmark.pedantic(area_breakdown, rounds=1, iterations=1)
    rows = [[k, f"{v:.1f}", f"{PAPER_AREAS[k]:.1f}"] for k, v in breakdown.items()]
    rows.append(["Total", f"{sum(breakdown.values()):.1f}", f"{PAPER_TOTAL:.1f}"])
    emit("table2_area", format_table(
        ["Component", "model mm^2", "paper mm^2"], rows,
        title="Table 2 reproduction: area breakdown (14/12nm)",
    ))
    for component, paper in PAPER_AREAS.items():
        assert abs(breakdown[component] - paper) < 0.2, component
    assert abs(total_area() - PAPER_TOTAL) < 3.0
    # Structural claims: FUs ~51% of area, RF ~41%, CRB the largest FU.
    assert 0.48 < total_fu_area() / total_area() < 0.54
    assert 0.38 < breakdown["Register file"] / total_area() < 0.44
    assert breakdown["CRB FU"] == max(
        breakdown[k] for k in PAPER_AREAS if k.endswith("FU")
    )


def test_table2_crossbar_network_area(benchmark):
    """Sec. 8: the crossbar network is 16x the fixed permutation network."""
    cfg = ChipConfig().with_crossbar_network()
    breakdown = benchmark.pedantic(area_breakdown, args=(cfg,),
                                   rounds=1, iterations=1)
    assert breakdown["On-chip interconnect"] == 16 * 10.0
    # F1+'s total lands near the paper's 636 mm^2 once its network is paid.
    assert total_area(cfg) > total_area() + 140


def test_table2_5nm_projection(benchmark):
    proj = benchmark.pedantic(scaled_5nm, rounds=1, iterations=1)
    # Sec. 7: ~157 mm^2 and ~146 W on TSMC 5nm.
    assert abs(proj["area_mm2"] - 157.0) < 3.0
    assert abs(proj["peak_power_w"] - 146.0) < 2.0


def test_table2_128k_variant_cost(benchmark):
    """Sec. 9.4: native N=128K support adds <6% of chip area."""
    base = total_area()
    big = benchmark.pedantic(
        total_area, args=(ChipConfig.craterlake_128k(),), rounds=1,
        iterations=1)
    extra = big - base
    assert 0 < extra < 0.08 * base
