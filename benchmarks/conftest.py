"""Shared infrastructure for the evaluation harness.

Every table and figure of the paper's evaluation (Sec. 9) has one
benchmark file that regenerates it.  Simulation runs are cached at session
scope (Table 3, Fig. 9 and Fig. 10 share the same runs, exactly as in the
paper), printed as text tables, and written to ``benchmarks/results/``.

Absolute numbers are not expected to match the paper (our substrate is a
calibrated model, not the authors' RTL + testbed); the assertions encode
the *shape* criteria from DESIGN.md: orderings, approximate ratio bands,
and crossover locations.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.baselines import CpuModel, f1plus_config
from repro.core import ChipConfig, simulate
from repro.core.simulator import SimResult
from repro.obs import collector as obs
from repro.obs import export as obs_export
from repro.workloads import ALL_BENCHMARKS, DEEP_BENCHMARKS, benchmark

RESULTS_DIR = Path(__file__).parent / "results"

# Paper's Table 3 (execution time in ms and speedups) for reference columns.
PAPER_TABLE3 = {
    "resnet20": {"cl_ms": 249.45, "f1plus_x": 10.8, "cpu_x": 5519},
    "logreg": {"cl_ms": 119.52, "f1plus_x": 5.34, "cpu_x": 2978},
    "lstm": {"cl_ms": 138.00, "f1plus_x": 18.6, "cpu_x": 6225},
    "packed_bootstrap": {"cl_ms": 3.91, "f1plus_x": 14.9, "cpu_x": 4398},
    "unpacked_bootstrap": {"cl_ms": 0.10, "f1plus_x": 2.04, "cpu_x": 8612},
    "lola_cifar": {"cl_ms": 50.50, "f1plus_x": 1.86, "cpu_x": 3695},
    "lola_mnist_uw": {"cl_ms": 0.14, "f1plus_x": 0.97, "cpu_x": 4152},
    "lola_mnist_ew": {"cl_ms": 0.24, "f1plus_x": 0.88, "cpu_x": 5621},
}


class EvaluationRuns:
    """Lazily built, session-cached simulation results."""

    def __init__(self):
        self.craterlake = ChipConfig()
        self.f1plus = f1plus_config()
        self.cpu = CpuModel()
        self._programs = {}
        self._runs: dict[tuple, SimResult] = {}
        self._cpu_seconds: dict[tuple, float] = {}

    def program(self, name: str, security: int = 80, degree=None):
        key = (name, security, degree)
        if key not in self._programs:
            self._programs[key] = benchmark(name, security=security,
                                            degree=degree)
        return self._programs[key]

    def run(self, name: str, cfg: ChipConfig | None = None,
            security: int = 80, degree=None) -> SimResult:
        cfg = cfg or self.craterlake
        key = (name, cfg.name, cfg.register_file_mb, security, degree)
        if key not in self._runs:
            self._runs[key] = simulate(
                self.program(name, security, degree), cfg
            )
        return self._runs[key]

    def cpu_seconds(self, name: str, security: int = 80) -> float:
        key = (name, security)
        if key not in self._cpu_seconds:
            self._cpu_seconds[key] = self.cpu.seconds(
                self.program(name, security)
            )
        return self._cpu_seconds[key]


@pytest.fixture(scope="session")
def runs() -> EvaluationRuns:
    return EvaluationRuns()


@pytest.fixture(scope="session", autouse=True)
def _obs_csv_dump():
    """Opt-in observability dump for the whole evaluation session.

    Set ``REPRO_OBS_CSV=1`` to trace every simulation/compile in the
    session and write aggregated counters and wall-clock spans to
    ``benchmarks/results/obs_counters.csv`` / ``obs_spans.csv``.  Off by
    default: tracing also records one OpEvent per simulated op, which is
    pure overhead for a normal benchmark run.
    """
    if not os.environ.get("REPRO_OBS_CSV"):
        yield
        return
    with obs.collecting() as c:
        yield
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_counters.csv").write_text(
        obs_export.counters_csv(c) + "\n")
    (RESULTS_DIR / "obs_spans.csv").write_text(
        obs_export.spans_csv(c) + "\n")


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{text}\n", file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
