"""Repeated-inference compile amortization on the deep benchmarks.

Not a paper table: this is the regression artifact for the compile
cache (`repro.compiler.cache`, docs/COMPILER.md).  The serving pattern
it models is compile-once/run-many: the first request pays the full
lowering pipeline (hoisting + simulator-gated pressure scheduling -
seconds on the deep benchmarks), every later request for the same
(program, config, flags) should pay only a fingerprint lookup.

For each deep benchmark the table reports the first (cold) compile,
a memory-tier hit, and a disk-tier hit from a fresh cache instance on
a fresh program object (a "new process": no LRU entry, no memoized
fingerprint token), and pins the acceptance criteria:

* the repeated-inference (memory-tier) path is >= 20x faster than the
  cold compile on every deep benchmark;
* every tier returns the bit-identical lowered schedule, and
  simulating hit vs cold yields bit-identical ``SimResult.cycles``.

The disk-tier column is informational: for the biggest programs it
also clears 20x, but ``packed_bootstrap`` compiles in ~0.1 s, so one
npz load + seal verification is a smaller (though still real) win.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis import format_table
from repro.compiler.cache import CompileCache, compile_program
from repro.core import ChipConfig, simulate
from repro.workloads import DEEP_BENCHMARKS
from repro.workloads import benchmark as build_benchmark


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _measure(cache_dir):
    cfg = ChipConfig()
    table = {}
    for name in DEEP_BENCHMARKS:
        program = build_benchmark(name)
        cache = CompileCache(cache_dir / name)
        cold, t_cold = _timed(
            lambda: compile_program(program, cfg, cache=cache))
        mem, t_mem = _timed(
            lambda: compile_program(program, cfg, cache=cache))
        # A "new process": fresh cache over the same directory, fresh
        # program object (re-canonicalizes + re-fingerprints from scratch).
        disk, t_disk = _timed(lambda: compile_program(
            build_benchmark(name), cfg, cache=CompileCache(cache_dir / name)))
        table[name] = {
            "ops": len(program.ops),
            "t_cold": t_cold, "t_mem": t_mem, "t_disk": t_disk,
            "identical": cold == mem == disk,
            "cold_cycles": simulate(cold, cfg).cycles,
            "mem_cycles": simulate(mem, cfg).cycles,
            "stats": dict(cache.stats),
        }
    return table


def test_compile_cache_amortization(benchmark, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("compile-cache")
    results = benchmark.pedantic(_measure, args=(cache_dir,), rounds=1,
                                 iterations=1)
    rows = [
        [name, r["ops"], f"{r['t_cold']:.3f}", f"{r['t_mem'] * 1e3:.2f}",
         f"{r['t_cold'] / r['t_mem']:,.0f}x", f"{r['t_disk'] * 1e3:.2f}",
         f"{r['t_cold'] / r['t_disk']:,.0f}x",
         "yes" if r["identical"] else "NO"]
        for name, r in results.items()
    ]
    emit("compile_cache", format_table(
        ["benchmark", "ops", "cold compile (s)", "memory hit (ms)",
         "speedup", "disk hit (ms)", "disk speedup", "bit-identical"],
        rows, title="Compile cache: cold vs cached lowering (CraterLake)",
    ))

    for name, r in results.items():
        # The repeated-inference path: >= 20x on every deep benchmark.
        assert r["t_cold"] / r["t_mem"] >= 20, (name, r["t_cold"], r["t_mem"])
        # Hits are bit-identical substitutes for the cold compile.
        assert r["identical"], name
        assert r["mem_cycles"] == r["cold_cycles"], name
        assert r["stats"]["miss"] == 1 and r["stats"]["hit"] == 1, name
