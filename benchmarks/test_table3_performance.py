"""Table 3: CraterLake vs F1+ vs CPU on the full benchmark suite.

The headline results of the paper: deep gmean speedups of 11.2x over F1+
and 4,611x over the CPU; near-parity with F1+ on shallow benchmarks.
"""

from conftest import PAPER_TABLE3, emit

from repro.analysis import format_table, gmean
from repro.workloads import ALL_BENCHMARKS, DEEP_BENCHMARKS, SHALLOW_BENCHMARKS


def _run_all(runs):
    table = {}
    for name in ALL_BENCHMARKS:
        cl = runs.run(name)
        f1 = runs.run(name, runs.f1plus)
        cpu_s = runs.cpu_seconds(name)
        table[name] = {
            "cl_ms": cl.milliseconds,
            "f1plus_x": f1.milliseconds / cl.milliseconds,
            "cpu_x": cpu_s / cl.seconds,
        }
    return table


def test_table3_performance(benchmark, runs):
    results = benchmark.pedantic(_run_all, args=(runs,), rounds=1,
                                 iterations=1)
    rows = []
    for name in ALL_BENCHMARKS:
        r, p = results[name], PAPER_TABLE3[name]
        rows.append([
            name, f"{r['cl_ms']:.2f}", f"{p['cl_ms']:.2f}",
            f"{r['f1plus_x']:.1f}", f"{p['f1plus_x']:.1f}",
            f"{r['cpu_x']:.0f}", f"{p['cpu_x']:.0f}",
        ])
    deep_f1 = gmean(results[n]["f1plus_x"] for n in DEEP_BENCHMARKS)
    deep_cpu = gmean(results[n]["cpu_x"] for n in DEEP_BENCHMARKS)
    shallow_f1 = gmean(results[n]["f1plus_x"] for n in SHALLOW_BENCHMARKS)
    rows.append(["deep gmean", "", "", f"{deep_f1:.1f}", "11.2",
                 f"{deep_cpu:.0f}", "4611"])
    rows.append(["shallow gmean", "", "", f"{shallow_f1:.2f}", "1.34", "", ""])
    emit("table3_performance", format_table(
        ["benchmark", "CL ms", "paper", "vs F1+", "paper", "vs CPU", "paper"],
        rows, title="Table 3 reproduction: execution time and speedups",
    ))

    # Headline shape criteria (DESIGN.md): deep gmean over F1+ within ~2x
    # of the paper's 11.2x, CPU gmean within ~2x of 4,611x.
    assert 5.6 < deep_f1 < 22.4, deep_f1
    assert 2300 < deep_cpu < 9300, deep_cpu
    # Shallow: F1+ and CraterLake are comparable (paper gmean 1.34x); our
    # band allows up to ~2.5x but must stay far below the deep gap.
    assert shallow_f1 < 3.0
    assert deep_f1 > 3 * shallow_f1
    # Per-benchmark execution times within ~2.5x of the paper's.
    for name in ALL_BENCHMARKS:
        ratio = results[name]["cl_ms"] / PAPER_TABLE3[name]["cl_ms"]
        assert 0.4 < ratio < 2.5, (name, ratio)
    # Real-time ResNet: the paper's flagship claim (<= ~250 ms/inference
    # vs tens of minutes on CPU).
    assert results["resnet20"]["cl_ms"] < 400
    assert results["resnet20"]["cpu_x"] > 1000


def test_table3_deep_vs_shallow_contrast(benchmark, runs):
    """Prior accelerators are 'efficient only on shallow computations':
    every deep benchmark beats F1+ by more than every shallow one."""
    results = benchmark.pedantic(_run_all, args=(runs,), rounds=1,
                                 iterations=1)
    worst_deep = min(results[n]["f1plus_x"] for n in DEEP_BENCHMARKS)
    best_shallow = max(results[n]["f1plus_x"] for n in SHALLOW_BENCHMARKS)
    assert worst_deep > best_shallow
