"""Pod throughput scaling: 1/2/4/8 chips, data vs model parallel.

Not a paper table: the paper's CraterLake is one chip.  This is the
regression artifact for the pod layer (`repro.pod`, docs/POD.md): per
deep benchmark and pod size, steady-state throughput speedup over a
single unsharded chip, clean and with one chip fail-stopped (N-1
degraded operation), plus the per-batch interconnect volume.

Acceptance criteria (shape, not absolute numbers):

* data-parallel scales near-linearly - its only tax is the output
  all-reduce, which is tiny next to a deep benchmark's compute;
* model-parallel never beats data-parallel at equal chip count (the
  pipeline is balance-limited and pays cut traffic), but still scales;
* N-1 degraded data-parallel throughput lands between the (K-1)- and
  K-chip clean points - losing a chip costs one chip's worth, never
  more; model-parallel stays within the surviving-chip fraction of its
  own clean point (its pipeline balance is non-monotonic in K);
* model-parallel latency (``clean_batch_cycles``, the serialized
  pipeline fill) is never better than its steady-state beat times the
  stage count - overlap buys throughput, not first-batch latency;
* everything is deterministic: the table only moves when the
  partitioner, the interconnect model, or the simulator changes.

On top of the shape checks, the absolute ``scaling_gate`` runs over the
full row set: 8-chip model-parallel packed_bootstrap must hold >= 3.0x,
and every data-parallel row must be bit-identical to the pre-overlap
serialized all-reduce model (recomputed here explicitly).
"""

from __future__ import annotations

from conftest import emit

from repro.pod.scaling import (CHIP_SWEEP, scaling_gate, scaling_rows,
                               scaling_table)
from repro.workloads import DEEP_BENCHMARKS


def test_pod_scaling_table(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    emit("pod_scaling", scaling_table(rows))

    by_key = {(r["benchmark"], r["chips"], r["strategy"]): r for r in rows}
    for name in DEEP_BENCHMARKS:
        for chips in CHIP_SWEEP:
            data = by_key[(name, chips, "data")]
            model = by_key[(name, chips, "model")]
            # Data-parallel: near-linear (>= 85% efficiency).
            assert data["clean_speedup"] >= 0.85 * chips, (name, chips)
            assert data["clean_speedup"] <= chips * (1 + 1e-9)
            # Model-parallel scales but never beats mirrored replicas.
            assert model["clean_speedup"] <= data["clean_speedup"] + 1e-9
            if chips > 1:
                assert model["clean_speedup"] > 1.0, (name, chips)
                # N-1 data-parallel: between the (K-1)- and K-chip
                # clean points - losing a chip costs one chip's worth.
                smaller = by_key[(name, chips // 2, "data")]
                assert data["degraded_speedup"] < data["clean_speedup"]
                assert data["degraded_speedup"] >= 0.9 \
                    * smaller["clean_speedup"], (name, chips)
                # N-1 model-parallel: the pipeline is balance-limited
                # and non-monotonic in K (packed_bootstrap's big hoist
                # groups cap the cut), so anchor to its own clean point
                # scaled by the surviving-chip fraction.  Equality is
                # legal: when the same hoist-group-capped bottleneck
                # stage survives the recut (packed_bootstrap at 8
                # chips), losing a chip costs nothing at steady state.
                assert model["degraded_speedup"] <= model["clean_speedup"]
                assert model["degraded_speedup"] >= 0.8 \
                    * model["clean_speedup"] * (chips - 1) / chips, \
                    (name, chips)
                # The interconnect is busier in model-parallel cuts.
                assert model["link_words"] >= data["link_words"], name
                # Overlap buys throughput, never first-batch latency:
                # the serialized fill walks every stage end to end.
                assert model["clean_batch_cycles"] \
                    >= model["clean_cycles_per_batch"] - 1e-9, name

    # Absolute acceptance gates over the full sweep (same checks the
    # pod-smoke CI job runs standalone for packed_bootstrap).
    problems = scaling_gate(rows)
    assert not problems, problems
