"""Fig. 4: footprint and compute of standard vs boosted keyswitching vs L."""

from conftest import emit

from repro.analysis import format_table
from repro.analysis.opcounts import (
    boosted_keyswitch_ops,
    crossover_level,
    keyswitch_compute_curve,
    keyswitch_footprint_curve,
    standard_keyswitch_ops,
)


def _build_curves():
    levels, std_gb, boost_gb = keyswitch_footprint_curve(60)
    _, std_mul, boost_mul = keyswitch_compute_curve(60)
    rows = [
        [l, f"{s:.3f}", f"{b:.4f}", f"{sm:.2f}", f"{bm:.2f}"]
        for l, s, b, sm, bm in zip(
            levels[9::10], std_gb[9::10], boost_gb[9::10],
            std_mul[9::10], boost_mul[9::10],
        )
    ]
    table = format_table(
        ["L", "std hint GB", "boosted hint GB",
         "std mults 1e9", "boosted mults 1e9"],
        rows, title="Fig. 4 reproduction: keyswitching scaling vs L (N=64K)",
    )
    return levels, std_gb, boost_gb, std_mul, boost_mul, table


def test_fig4_keyswitch_scaling(benchmark):
    levels, std_gb, boost_gb, std_mul, boost_mul, table = benchmark.pedantic(
        _build_curves, rounds=1, iterations=1)
    emit("fig4_keyswitch_scaling", table)

    # Paper anchor: at N=64K, L=60 the standard hint is ~1.7 GB while the
    # boosted hint is ~52.5 MB (Sec. 3).
    assert 1.5 < std_gb[-1] < 1.9
    assert 0.050 < boost_gb[-1] < 0.058
    # Footprint grows quadratically for standard, linearly for boosted.
    assert std_gb[-1] / std_gb[29] > 3.5   # ~(60/30)^2
    assert 1.8 < boost_gb[-1] / boost_gb[29] < 2.2
    # Compute: similar at small L, diverging at large L (Fig. 4 right).
    assert std_mul[2] < boost_mul[2]       # standard wins when L is tiny
    assert std_mul[-1] > 1.5 * boost_mul[-1]
    # Crossover where boosted becomes cheaper in raw multiplies.
    assert 5 <= crossover_level() <= 20


def test_fig4_multi_digit_hint_growth(benchmark):
    """Sec. 3.1: the t-digit hint takes t+1 ciphertexts' worth of space."""
    def build():
        return [boosted_keyswitch_ops(60, t).hint_residues for t in (1, 2, 3, 4)]
    residues = benchmark.pedantic(build, rounds=1, iterations=1)
    ct = 2 * 60  # residues per ciphertext at L=60
    for t, r in zip((1, 2, 3, 4), residues):
        assert abs(r / ct - (t + 1)) < 0.2, (t, r)
