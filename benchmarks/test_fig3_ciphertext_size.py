"""Fig. 3: cost per homomorphic multiply vs maximum ciphertext size."""

from conftest import emit

from repro.analysis import (
    ciphertext_size_sweep,
    format_table,
    optimal_point,
)


def _sweep():
    return ciphertext_size_sweep(levels=list(range(30, 63, 3)))


def test_fig3_ciphertext_size(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        [p.max_level, f"{p.ciphertext_mb:.1f}", p.usable_levels,
         f"{p.mults_per_op_chain / 1e6:.0f}", f"{p.mults_per_op_wide / 1e6:.0f}"]
        for p in points
    ]
    table = format_table(
        ["L_max", "ct MB", "usable", "chain Mmults/op", "wide Mmults/op"],
        rows,
        title="Fig. 3 reproduction: cost per multiply vs max ciphertext size",
    )
    emit("fig3_ciphertext_size", table)

    chain_opt = optimal_point(points, "mults_per_op_chain")
    wide_opt = optimal_point(points, "mults_per_op_wide")
    # Paper: both optima fall in a narrow 20-26 MB band (Sec. 2.3).
    assert 18.0 <= chain_opt.ciphertext_mb <= 27.0, chain_opt
    assert 17.0 <= wide_opt.ciphertext_mb <= 27.0, wide_opt
    # Left cliff: small ciphertexts leave so little usable budget that the
    # chain cost blows up (>1.5x the optimum already at ~13 MB).
    smallest = points[0]
    assert smallest.mults_per_op_chain > 1.5 * chain_opt.mults_per_op_chain
    # The wide graph amortizes bootstrapping ~100x better than the chain.
    mid = points[len(points) // 2]
    assert mid.mults_per_op_chain > 20 * mid.mults_per_op_wide
    # Prior accelerators topped out at ~2 MB ciphertexts - far left of the
    # optimum (the motivating claim of Sec. 2.3).
    assert chain_opt.ciphertext_mb > 10 * 2.0
