"""Table 4: slowdowns without KSHGen, CRB/chaining, or the fixed network."""

from conftest import emit

from repro.analysis import format_table, gmean
from repro.workloads import DEEP_BENCHMARKS, SHALLOW_BENCHMARKS

PAPER = {  # (KSHGen, CRB/chain, Network) slowdowns
    "resnet20": (2.0, 20.0, 1.7),
    "logreg": (1.3, 8.8, 1.2),
    "lstm": (2.5, 34.5, 1.3),
    "packed_bootstrap": (2.0, 27.4, 1.3),
    "lola_mnist_uw": (1.1, 1.3, 1.5),
}


def _ablate(runs):
    cfg = runs.craterlake
    configs = {
        "KSHGen": cfg.without_kshgen(),
        "CRB/chain": cfg.without_crb_chaining(),
        "Network": cfg.with_crossbar_network(),
    }
    out = {}
    for name in DEEP_BENCHMARKS + ("lola_mnist_uw",):
        base = runs.run(name).milliseconds
        out[name] = {
            label: runs.run(name, c).milliseconds / base
            for label, c in configs.items()
        }
    return out


def test_table4_ablations(benchmark, runs):
    slowdowns = benchmark.pedantic(_ablate, args=(runs,), rounds=1,
                                   iterations=1)
    rows = []
    for name, s in slowdowns.items():
        p = PAPER[name]
        rows.append([name, f"{s['KSHGen']:.1f}", f"{p[0]:.1f}",
                     f"{s['CRB/chain']:.1f}", f"{p[1]:.1f}",
                     f"{s['Network']:.1f}", f"{p[2]:.1f}"])
    emit("table4_ablations", format_table(
        ["benchmark", "no KSHGen", "paper", "no CRB/chain", "paper",
         "crossbar net", "paper"], rows,
        title="Table 4 reproduction: slowdown without each feature",
    ))

    deep = {k: v for k, v in slowdowns.items() if k in DEEP_BENCHMARKS}
    ksh = gmean(v["KSHGen"] for v in deep.values())
    crb = gmean(v["CRB/chain"] for v in deep.values())
    net = gmean(v["Network"] for v in deep.values())
    # Paper deep gmeans: 1.9x / 20.2x / 1.3x.  Shape bands:
    assert 1.2 < ksh < 3.0, ksh
    assert crb > 8.0, crb            # CRB+chaining is the dominant feature
    assert 1.1 < net < 2.0, net
    # Ordering: CRB >> KSHGen ~ Network.
    assert crb > 3 * ksh and crb > 3 * net
    # Shallow benchmarks barely care about KSHGen/CRB (low L).
    assert slowdowns["lola_mnist_uw"]["KSHGen"] < 1.5
    assert slowdowns["lola_mnist_uw"]["CRB/chain"] < 3.0


def test_table4_no_crb_worse_than_f1plus(benchmark, runs):
    """Sec. 9.3: without CRB/chaining, CraterLake falls behind even F1+,
    because F1+ at least has more raw NTT/multiply throughput."""
    def run():
        name = "packed_bootstrap"
        no_crb = runs.run(name, runs.craterlake.without_crb_chaining())
        f1 = runs.run(name, runs.f1plus)
        return no_crb.milliseconds, f1.milliseconds
    no_crb_ms, f1_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert no_crb_ms > f1_ms
