"""Limb-batched FHE kernel speedups vs the per-limb reference oracles.

Not a paper table: this is the regression artifact for the vectorized
CKKS hot path (``BatchedNttContext``, ``batch_rescale``,
``mod_down_pair``, the EVAL-domain automorphism).  Each row times the
batched kernel against the per-limb/per-poly oracle that the
differential suite (tests/fhe/test_batched_kernels.py) proves it
bit-exact against, on the same data in the same process, and reports
the machine-relative speedup.  The nightly run archives the table so a
refactor that silently reintroduces per-limb Python loops shows up as a
collapsing ratio column; tests/fhe/test_perf_gate.py enforces hard
floors on the same ratios in tier-1 CI.

For the suite-level effect of the batching PR (58.6 s -> ~10 s for
``pytest tests/fhe``), see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.analysis import format_table
from repro.fhe.keyswitch import mod_down, mod_down_pair
from repro.fhe.ntt import BatchedNttContext, NttContext
from repro.fhe.poly import EVAL, RnsPoly, batch_rescale
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis

DEGREE, LIMBS, AUX = 4096, 8, 4


def _best_of(fn, reps=3, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _measure():
    primes = tuple(find_ntt_primes(LIMBS + AUX, 30, DEGREE))
    basis = RnsBasis(primes[:LIMBS])
    aux = RnsBasis(primes[LIMBS:])
    target = basis.extend(aux)
    rng = np.random.default_rng(7)
    data = np.stack([
        rng.integers(0, q, DEGREE, dtype=np.uint64) for q in basis
    ])
    batched = BatchedNttContext.get(basis.moduli, DEGREE)
    limbs = [NttContext.get(q, DEGREE) for q in basis.moduli]
    poly = RnsPoly(basis, data, EVAL)
    pair = [poly, RnsPoly(basis, data * np.uint64(3) % basis.moduli_col, EVAL)]
    wide = [
        RnsPoly(target, np.stack([
            rng.integers(0, q, DEGREE, dtype=np.uint64) for q in target
        ]), EVAL)
        for _ in range(2)
    ]

    rows = {}

    def add(name, reference, batched_fn):
        ref_t = _best_of(reference)
        bat_t = _best_of(batched_fn)
        rows[name] = (ref_t * 1e3, bat_t * 1e3, ref_t / bat_t)

    add("forward NTT (all limbs)",
        lambda: [c._forward(data[i]) for i, c in enumerate(limbs)],
        lambda: batched._forward(data))
    add("inverse NTT (all limbs)",
        lambda: [c._inverse(data[i]) for i, c in enumerate(limbs)],
        lambda: batched._inverse(data))
    add("rescale (ciphertext pair)",
        lambda: [p.rescale() for p in pair],
        lambda: batch_rescale(pair))
    add("ModDown (ciphertext pair)",
        lambda: (mod_down(wide[0], basis, aux), mod_down(wide[1], basis, aux)),
        lambda: mod_down_pair(wide[0], wide[1], basis, aux))
    add("automorphism (EVAL domain)",
        lambda: poly.to_coeff().automorphism(5).to_eval(),
        lambda: poly.automorphism(5))
    return rows


def test_fhe_speedup():
    results = _measure()
    table_rows = [
        [name, f"{ref:.2f}", f"{bat:.2f}", f"{ratio:.2f}x"]
        for name, (ref, bat, ratio) in results.items()
    ]
    emit("fhe_speedup", format_table(
        ["kernel", "per-limb oracle ms", "batched ms", "speedup"],
        table_rows,
        title=(f"Limb-batched CKKS kernels vs per-limb oracles "
               f"(N={DEGREE}, L={LIMBS}, best-of timing)"),
    ))
    # Batching never loses to the per-limb loop it replaced.
    for name, (_, _, ratio) in results.items():
        assert ratio > 1.0, f"{name}: batched kernel slower than oracle"
