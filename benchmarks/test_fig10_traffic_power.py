"""Fig. 10: off-chip traffic breakdown (a) and average power (b)."""

from conftest import emit

from repro.analysis import format_table
from repro.core.energy import average_power, energy_breakdown
from repro.workloads import ALL_BENCHMARKS, DEEP_BENCHMARKS, SHALLOW_BENCHMARKS

# Paper's Fig. 10 totals: (traffic, average power) per benchmark.
PAPER_TRAFFIC_GB = {
    "resnet20": 73, "logreg": 69, "lstm": 62, "packed_bootstrap": 2,
    "unpacked_bootstrap": 0.060, "lola_cifar": 8,
    "lola_mnist_uw": 0.055, "lola_mnist_ew": 0.122,
}
PAPER_POWER_W = {
    "resnet20": 279, "logreg": 212, "lstm": 317, "packed_bootstrap": 248,
    "unpacked_bootstrap": 122, "lola_cifar": 218,
    "lola_mnist_uw": 81, "lola_mnist_ew": 98,
}


def test_fig10a_traffic_breakdown(benchmark, runs):
    def collect():
        return {n: runs.run(n) for n in ALL_BENCHMARKS}
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, res in results.items():
        t = res.traffic_words
        total = res.total_traffic_bytes / 1e9
        bpw = res.bytes_per_word
        rows.append([
            name, f"{total:.2f}", f"{PAPER_TRAFFIC_GB[name]:.2f}",
            f"{t['ksh'] * bpw / 1e9:.2f}", f"{t['inputs'] * bpw / 1e9:.2f}",
            f"{t['interm_load'] * bpw / 1e9:.2f}",
            f"{t['interm_store'] * bpw / 1e9:.2f}",
        ])
    emit("fig10a_traffic", format_table(
        ["benchmark", "total GB", "paper GB", "KSH", "inputs",
         "interm ld", "interm st"], rows,
        title="Fig. 10a reproduction: off-chip traffic breakdown",
    ))

    # Deep benchmarks move tens of GB; totals within ~2.5x of the paper.
    for name in DEEP_BENCHMARKS:
        total = results[name].total_traffic_bytes / 1e9
        assert 0.4 < total / PAPER_TRAFFIC_GB[name] < 2.5, name
    # KSHs dominate bootstrapping traffic (Sec. 9.2).
    pb = results["packed_bootstrap"].traffic_words
    assert pb["ksh"] > 0.5 * sum(pb.values())
    # Shallow footprints fit on chip: no intermediate eviction traffic.
    for name in SHALLOW_BENCHMARKS:
        t = results[name].traffic_words
        assert t["interm_load"] == 0, name


def test_fig10b_power_breakdown(benchmark, runs):
    def collect():
        out = {}
        for name in ALL_BENCHMARKS:
            res = runs.run(name)
            out[name] = (energy_breakdown(res), average_power(res))
        return out
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, (brk, watts) in results.items():
        total = sum(brk.values())
        rows.append([
            name, f"{watts:.0f}", f"{PAPER_POWER_W[name]:.0f}",
            *(f"{100 * brk[k] / total:.0f}%" for k in
              ("Func Units", "Reg Files", "NoC", "HBM")),
        ])
    emit("fig10b_power", format_table(
        ["benchmark", "avg W", "paper W", "FUs", "RF", "NoC", "HBM"],
        rows, title="Fig. 10b reproduction: average power breakdown",
    ))

    for name, (brk, watts) in results.items():
        # Power stays within the 320 W envelope.
        assert watts < 330, (name, watts)
        # FUs dominate (50-80% in the paper).
        total = sum(brk.values())
        assert brk["Func Units"] / total > 0.35, name
    # Deep benchmarks draw more power than the light shallow ones.
    deep_avg = sum(results[n][1] for n in DEEP_BENCHMARKS) / 4
    mnist_avg = (results["lola_mnist_uw"][1] + results["lola_mnist_ew"][1]) / 2
    assert deep_avg > 1.5 * mnist_avg
