"""Eviction/traffic regression table for the memory-aware scheduler.

Not a paper table: this is the nightly artifact for the
register-pressure scheduling pass (`repro.compiler.ordering`) and the
simulator's dead-dropping + lookahead orchestration.  For each deep
benchmark it walks the compile pipeline - program order, hoisted,
hoisted + pressure-scheduled - and reports critical-path cycles, Belady
evictions, dead drops, writeback traffic and exposed stall cycles, plus
the prefetch hits a depth-2 lookahead window achieves at neutral cost.
The ROADMAP's "~1.9k evictions on packed_bootstrap" open item is pinned
here: regressions show up as the evictions column climbing back toward
the seed.
"""

from conftest import emit

from repro.analysis import format_table
from repro.compiler import hoist_rotations, order_for_pressure
from repro.core import simulate
from repro.workloads import DEEP_BENCHMARKS

# Traced seed values (plain program order, no dead-dropping) recorded
# when the ROADMAP item was opened; the acceptance bar is >= 30% under
# the eviction seed on packed_bootstrap.
SEED_EVICTIONS = {"packed_bootstrap": 1926}


def _compare(runs):
    table = {}
    for name in DEEP_BENCHMARKS:
        program = runs.program(name)
        hoisted = hoist_rotations(program, runs.craterlake)
        final = order_for_pressure(hoisted, runs.craterlake)
        stages = {
            "program order": runs.run(name),
            "hoisted": simulate(hoisted, runs.craterlake),
            "hoisted+pressure": simulate(final, runs.craterlake),
        }
        pf2 = simulate(final, runs.craterlake.with_prefetch_depth(2))
        table[name] = (stages, pf2)
    return table


def test_scheduler_comparison(benchmark, runs):
    results = benchmark.pedantic(_compare, args=(runs,), rounds=1,
                                 iterations=1)
    rows = []
    for name, (stages, pf2) in results.items():
        for label, r in stages.items():
            rows.append([
                name, label, f"{r.cycles:,.0f}", r.rf_evictions,
                r.dead_drops, f"{r.traffic_words['interm_store']:,.0f}",
                f"{r.stall_cycles:,.0f}",
                pf2.prefetch_hits if label == "hoisted+pressure" else "",
            ])
    emit("scheduler_comparison", format_table(
        ["benchmark", "schedule", "cycles", "evictions", "dead drops",
         "interm store (words)", "stall cycles", "pf2 hits"],
        rows, title="Memory-aware scheduling: evictions, traffic, stalls",
    ))

    for name, (stages, pf2) in results.items():
        base = stages["program order"]
        hoisted = stages["hoisted"]
        final = stages["hoisted+pressure"]
        # The pressure pass is simulator-gated: never worse than its
        # input in cycles or writeback traffic, on any workload.
        assert final.cycles <= hoisted.cycles, name
        assert (final.traffic_words["interm_store"]
                <= hoisted.traffic_words["interm_store"]), name
        # Dead-dropping means dead values stop surfacing as victims.
        assert final.dead_drops > 0, name
        assert final.rf_evictions <= base.rf_evictions, name
        # Depth-2 lookahead is cycle-neutral and observably prefetching.
        assert pf2.cycles == final.cycles, name
        assert pf2.prefetch_hits > 0, name
    # The acceptance bar: >= 30% under the traced seed on the ROADMAP's
    # flagged workload (dead-dropping alone lands far below it).
    final_pb = results["packed_bootstrap"][0]["hoisted+pressure"]
    assert final_pb.rf_evictions <= SEED_EVICTIONS["packed_bootstrap"] * 0.7
