"""Legacy shim so `pip install -e .` works without network access.

The environment this repo targets has no `wheel` package installed, so the
PEP 517 editable path is unavailable; setuptools' classic develop install
needs this file.
"""

from setuptools import setup

setup()
