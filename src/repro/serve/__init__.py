"""`repro.serve`: fault-tolerant multi-tenant serving for the FHE chip.

The layer cake, bottom-up: `repro.fhe` computes, `repro.core` prices,
`repro.compiler` lowers (once, cached), `repro.reliability` detects and
recovers - and this package turns all of that into a *service*: a
bounded admission queue with typed load shedding, per-request deadlines
under earliest-deadline-first dispatch, cross-tenant slot packing into
shared ciphertexts, per-tenant circuit breakers, and serve-level retries
with jittered exponential backoff when a chip fault defeats in-executor
recovery.  Everything runs on an injectable virtual clock, so the whole
front-end is a deterministic discrete-event simulation: campaigns are
bit-reproducible from their seed.

Entry points: :class:`Server` (one front-end over one simulated chip),
:func:`run_campaign` (the seeded end-to-end audit), and
``python -m repro.serve --campaign`` on the command line.  See
docs/SERVING.md for the request lifecycle and metric reference.
"""

from repro.serve.breaker import BreakerStats, CircuitBreaker
from repro.serve.clock import VirtualClock
from repro.serve.config import ServeConfig
from repro.serve.loadgen import (
    CampaignResult,
    LoadSpec,
    check_against_baseline,
    run_campaign,
)
from repro.serve.packing import BatchLayout, SlotPacker
from repro.serve.request import (
    COMPLETED,
    EXPIRED,
    FAILED,
    OUTCOMES,
    SHED,
    SHED_REASONS,
    BatchRecord,
    Request,
    Response,
)
from repro.serve.server import Server

__all__ = [
    "BatchLayout",
    "BatchRecord",
    "BreakerStats",
    "CampaignResult",
    "CircuitBreaker",
    "COMPLETED",
    "EXPIRED",
    "FAILED",
    "LoadSpec",
    "OUTCOMES",
    "Request",
    "Response",
    "Server",
    "ServeConfig",
    "SHED",
    "SHED_REASONS",
    "SlotPacker",
    "VirtualClock",
    "check_against_baseline",
    "run_campaign",
]
