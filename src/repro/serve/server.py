"""The serving front-end: admission, EDF dispatch, retries, degradation.

One :class:`Server` owns the CKKS context, the compiled-schedule cache,
the bounded request queue, the per-tenant circuit breakers and the
(simulated) chip.  Its contract, end to end:

* **Admission** (:meth:`Server.submit`) is where every cheap rejection
  happens, in strict order: breaker -> payload validity -> deadline
  feasibility -> queue bound.  Each rejection is a *typed* error
  (:class:`CircuitOpen`, :class:`ParameterError`,
  :class:`DeadlineExceeded`, :class:`Overloaded`) and a counted shed
  reason; nothing invalid or hopeless ever occupies a queue slot.
* **Dispatch** (:meth:`Server.pump`) is earliest-deadline-first over the
  queue: the most urgent request picks the batch's workload kind, then
  same-kind requests fill the ciphertext in deadline order.  Requests
  whose deadline lapsed while queued are cancelled (counted
  ``serve.expired``) before any batch forms - the chip never burns
  cycles on an answer nobody can use.
* **Degradation before shedding**: past a backlog watermark the server
  stops waiting out the batch window and halves the packing target.
  Smaller batches genuinely cost less in-model (the weight plaintexts
  stream per occupied block), so latency flattens while throughput
  dips - and only when that is not enough does admission shed.
* **Execution** runs the batch's functional CKKS steps under a
  :class:`~repro.reliability.recovery.RecoveringExecutor` with the full
  PR 2/3 detection stack armed (hint verify, NTT checksums, the RF
  eviction sweep).  Transient chip faults are absorbed by checkpoint
  replay; faults that defeat the executor surface as
  ``UnrecoverableFaultError`` and trigger serve-level retries with
  exponential backoff + seeded jitter, on a *fresh* executor from the
  batch's master snapshot.  Chip faults are shared-fate: they never
  count against any tenant's breaker.
* **Accounting** is exact and virtual-clock-only: every batch's service
  time comes from the chip simulator (compiled once per (kind,
  occupancy) through the PR 6 compile cache, then reused), per-phase
  cycles from ``SimResult.tag_cycles``, and per-request chip seconds
  are the batch's share divided by occupancy.  The obs counters this
  module emits reconcile exactly against the server's own tallies -
  the campaign asserts it.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.cache import compile_program
from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.obs import collector as obs
from repro.reliability import guards
from repro.reliability.errors import (
    ChipFailure,
    CircuitOpen,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
    UnrecoverableFaultError,
)
from repro.reliability.recovery import (
    RecoveringExecutor,
    RecoveryPolicy,
    RingBufferStore,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.clock import VirtualClock
from repro.serve.config import ServeConfig
from repro.serve.packing import SlotPacker
from repro.serve.request import (
    COMPLETED,
    EXPIRED,
    FAILED,
    SHED,
    SHED_BREAKER,
    SHED_CAPACITY,
    SHED_DEADLINE,
    SHED_INVALID,
    SHED_OVERLOAD,
    BatchRecord,
    Request,
    Response,
)
from repro.workloads.serving import (
    build_steps,
    check_kind,
    rotation_strides,
    serving_program,
    serving_weights,
    step_cycle_costs,
)


class Server:
    """One serving front-end over one simulated chip - or, with a
    :class:`~repro.pod.config.PodConfig`, over a pod of them.

    A *data-parallel* pod is K independent lanes: batches dispatch onto
    the earliest-free alive chip, :meth:`fail_chip` degrades capacity
    (N-1 ETAs, typed shedding once empty).  A *model-parallel* pod is
    **one logical lane with pipelined occupancy**: a batch's latency is
    the pod's fill time (:attr:`~repro.pod.simulator.PodResult.
    batch_cycles`), but the lane frees after one steady-state beat
    (``cycles_per_batch`` - the slowest overlapped stage), so
    back-to-back batches stream through the pipeline and serving
    throughput reflects the overlap win.  :meth:`fail_chip` on a model
    pod repartitions the pipeline over the survivors (service times are
    re-simulated); the last chip's death empties the lane set."""

    def __init__(self, cfg: ServeConfig | None = None,
                 clock: VirtualClock | None = None,
                 chip: ChipConfig | None = None,
                 cache=True, fault_factory=None, pod=None):
        from repro.fhe.ckks import CkksContext, CkksParams

        self.cfg = cfg or ServeConfig()
        self.clock = clock or VirtualClock()
        self.chip = chip or ChipConfig()
        # Optional repro.pod.PodConfig: batches dispatch onto the
        # earliest-free alive chip (data-parallel lanes; each batch is
        # one ciphertext, so a lane is a whole chip) or, model-parallel,
        # onto one pipelined pod lane.  None = the single-chip server of
        # PR 7, bit-for-bit.
        self.pod = pod
        self._model_pod = pod is not None and pod.strategy == "model"
        self.cache = cache          # compile-cache handle (PR 6 semantics)
        # Hook for fault campaigns: fault_factory(batch_id, attempt,
        # steps) -> steps, free to wrap step fns and arm the injector.
        self.fault_factory = fault_factory
        self._rng = np.random.default_rng(self.cfg.seed + 7)  # jitter only

        # -- real CKKS substrate (shared by every batch) -------------------
        c = self.cfg
        params = CkksParams(degree=c.degree, max_level=c.max_level,
                            digits=1,
                            secret_hamming=max(8, c.degree // 16),
                            seed=c.seed)
        self.ctx = CkksContext(
            params, policy=guards.ReliabilityPolicy(checksums=True))
        self.sk = self.ctx.keygen()
        self.hints = {s: self.ctx.rotation_hint(self.sk, s)
                      for s in rotation_strides(c.block_slots)}
        self.weights = serving_weights(c.seed + 1, c.slots, c.block_slots)
        self.packer = SlotPacker(c.slots, c.block_slots, c.max_batch,
                                 c.payload_limit)
        self._steps = {}            # kind -> functional step list
        self._step_cycles = {}      # kind -> per-step cycle prices
        self._service = {}          # (kind, occupancy) -> (seconds, tags)

        # -- serving state -------------------------------------------------
        self.queue: list[Request] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self.responses: list[Response] = []
        self.batches: list[BatchRecord] = []
        # A model-parallel pod is a single logical lane (the pipeline);
        # its physical chips are tracked in pod_failed, not in `alive`.
        lanes = 1 if (pod is None or self._model_pod) else pod.chips
        self.chips_free_at = [0.0] * lanes  # per-lane residency
        self.alive: set[int] = set(range(lanes))
        self.pod_failed: set[int] = set()   # model pod: dead physical chips
        self.busy_s = 0.0           # chip seconds actually occupied
        self.phase_seconds: dict[str, float] = {}  # tag -> chip seconds
        self._next_request_id = 0
        self.max_queue_seen = 0

        # Tallies mirrored into obs counters; the campaign reconciles
        # the two exactly, so every mutation must count both or neither.
        self.tally = {
            "offered": 0, "admitted": 0, "shed": 0, "completed": 0,
            "expired": 0, "failed": 0, "retries": 0, "dispatches": 0,
            "degraded_dispatches": 0, "faults_recovered": 0,
            "verify_mismatches": 0,
            "shed.overload": 0, "shed.deadline": 0, "shed.breaker": 0,
            "shed.invalid": 0, "shed.capacity": 0,
            "pod.chip_failures": 0,
        }

    # -- small helpers -----------------------------------------------------

    @property
    def chip_free_at(self) -> float:
        """Earliest virtual time any alive chip frees up (``inf`` once
        the pod has lost every chip)."""
        if not self.alive:
            return float("inf")
        return min(self.chips_free_at[k] for k in self.alive)

    @chip_free_at.setter
    def chip_free_at(self, t: float) -> None:
        """Set the earliest-free alive lane (single-chip: lane 0)."""
        lane = (min(self.alive, key=lambda k: (self.chips_free_at[k], k))
                if self.alive else 0)
        self.chips_free_at[lane] = t

    def fail_chip(self, chip: int) -> None:
        """Fail-stop one pod chip: it takes no further batches.

        Admission immediately recomputes ETAs against the surviving
        capacity (fewer lanes -> slower drain -> earlier deadline
        sheds); once the last chip is gone every submit sheds with a
        typed :class:`ChipFailure`.  The serving layer has no shard
        state to migrate - each batch lives on exactly one chip - so
        N-1 degradation here is purely a capacity event.
        """
        if self._model_pod:
            # Pipelined pod lane: the chip is a *stage host*, not a
            # lane.  The survivors repartition (degraded N-1 pipeline),
            # so every memoized service time is stale - drop the cache
            # and re-simulate on demand; the lane itself only dies with
            # the last chip.
            if chip in self.pod_failed or not 0 <= chip < self.pod.chips:
                raise ParameterError(
                    "cannot fail a chip that is not alive", chip=chip,
                    alive=sorted(set(range(self.pod.chips))
                                 - self.pod_failed))
            self.pod_failed.add(chip)
            self._count("pod.chip_failures")
            if len(self.pod_failed) == self.pod.chips:
                self.alive.discard(0)
            else:
                self._service.clear()
            obs.gauge("serve.pod.alive",
                      float(self.pod.chips - len(self.pod_failed)))
            return
        if chip not in self.alive:
            raise ParameterError("cannot fail a chip that is not alive",
                                 chip=chip, alive=sorted(self.alive))
        self.alive.discard(chip)
        self._count("pod.chip_failures")
        obs.gauge("serve.pod.alive", float(len(self.alive)))

    def _count(self, key: str, n: int = 1) -> None:
        self.tally[key] += n
        obs.count(f"serve.{key}", n)

    def _breaker(self, tenant: str) -> CircuitBreaker:
        br = self.breakers.get(tenant)
        if br is None:
            br = self.breakers[tenant] = CircuitBreaker(
                tenant, self.cfg.breaker_threshold,
                self.cfg.breaker_cooldown_s)
        return br

    def _shed(self, reason: str) -> None:
        self._count("shed")
        self._count(f"shed.{reason}")

    def _steps_for(self, kind: str):
        if kind not in self._steps:
            steps = build_steps(self.ctx, self.hints, self.weights, kind,
                                self.cfg.block_slots)
            self._steps[kind] = steps
            self._step_cycles[kind] = step_cycle_costs(
                steps, self.cfg.degree, self.cfg.max_level, self.chip)
        return self._steps[kind]

    def service_seconds(self, kind: str, occupancy: int) -> float:
        """Clean (fault-free) service *latency* of one batch.

        Compiled through the content-addressed compile cache and
        simulated once per (kind, occupancy); every later batch of the
        same shape reuses the memoized schedule - compile-once,
        run-many.  Runs under ``obs.paused()`` so internal compiler and
        simulator counters do not pollute the serving metrics the
        campaign reconciles.  On a model-parallel pod this is the
        pipeline *fill* time (the batch walks every stage); the lane's
        steady-state occupancy is :meth:`throughput_seconds`.
        """
        key = (kind, occupancy)
        if key not in self._service:
            c = self.cfg
            with obs.paused():
                prog = serving_program(kind, c.degree, c.max_level,
                                       c.block_slots, occupancy)
                if self._model_pod:
                    from repro.pod.simulator import simulate_pod

                    res = simulate_pod(
                        prog, self.chip, self.pod,
                        failed_chips=tuple(sorted(self.pod_failed)),
                        cache=self.cache or None)
                    tags: dict[str, float] = {}
                    for stage in res.chip_results.values():
                        for tag, cyc in stage.tag_cycles.items():
                            tags[tag] = tags.get(tag, 0.0) + cyc
                    self._service[key] = (res.batch_seconds,
                                          res.seconds_per_batch, tags)
                else:
                    compiled = compile_program(prog, self.chip,
                                               cache=self.cache)
                    sim = simulate(compiled, self.chip)
                    seconds = sim.cycles / self.chip.clock_hz
                    self._service[key] = (seconds, seconds,
                                          dict(sim.tag_cycles))
        return self._service[key][0]

    def throughput_seconds(self, kind: str, occupancy: int) -> float:
        """Steady-state lane occupancy of one batch: equals
        :meth:`service_seconds` on a single chip or a data-parallel
        lane; the slowest overlapped pipeline stage on a model-parallel
        pod (each dispatched batch holds the lane for one pipeline beat,
        not the whole fill)."""
        self.service_seconds(kind, occupancy)
        return self._service[(kind, occupancy)][1]

    def _tag_seconds(self, kind: str, occupancy: int) -> dict[str, float]:
        self.service_seconds(kind, occupancy)
        tags = self._service[(kind, occupancy)][2]
        hz = self.chip.clock_hz
        return {tag: cyc / hz for tag, cyc in tags.items()}

    # -- admission ---------------------------------------------------------

    def submit(self, tenant: str, kind: str, payload,
               deadline_s: float | None = None) -> Request:
        """Admit one request or raise the typed rejection.

        Rejection order is cheapest-first and every path is counted:
        breaker (no validation spent on a quarantined tenant), payload
        validity (tenant-attributable - feeds the breaker), deadline
        feasibility (an ETA no better than the deadline is shed *now*,
        not discovered at dispatch), then the hard queue bound.
        """
        now = self.clock.now()
        self._count("offered")
        br = self._breaker(tenant)
        if not br.allow(now):
            self._shed(SHED_BREAKER)
            raise CircuitOpen(
                "tenant breaker is open", tenant=tenant,
                next_probe_at=br.next_probe_at())
        probe = br.probing
        try:
            if deadline_s is not None and deadline_s <= 0:
                raise ParameterError("deadline must be positive",
                                     deadline_s=deadline_s)
            check_kind(kind)
            vec = self.packer.validate_payload(payload)
        except ParameterError:
            # Tenant-attributable garbage: counts toward the breaker.
            br.record_failure(now)
            self._shed(SHED_INVALID)
            raise
        if probe:
            # The probe's question is "does this tenant send valid
            # traffic again?" - answered right here at validation, so
            # the breaker closes without waiting on chip execution
            # (whose failures are shared-fate, not tenant signal).
            br.record_success()

        if not self.alive:
            # The pod lost its last chip: nothing can ever execute, so
            # shedding here is the only honest answer.
            self._shed(SHED_CAPACITY)
            raise ChipFailure("pod has no alive chips; request shed",
                              tenant=tenant, chips=len(self.chips_free_at))

        deadline = now + (deadline_s if deadline_s is not None
                          else self.cfg.default_deadline_s)
        eta = self._eta(kind, now)
        if now + self.cfg.admission_slack * eta > deadline:
            self._shed(SHED_DEADLINE)
            raise DeadlineExceeded(
                "deadline infeasible at admission", tenant=tenant,
                eta_s=eta, deadline_s=deadline - now)
        if len(self.queue) >= self.cfg.queue_depth:
            self._shed(SHED_OVERLOAD)
            raise Overloaded("request queue is at depth",
                             queue_depth=self.cfg.queue_depth)

        req = Request(id=self._next_request_id, tenant=tenant, kind=kind,
                      payload=vec, submitted=now, deadline=deadline,
                      probe=probe)
        self._next_request_id += 1
        self.queue.append(req)
        self.max_queue_seen = max(self.max_queue_seen, len(self.queue))
        self._count("admitted")
        obs.gauge("serve.queue_depth", float(len(self.queue)))
        return req

    def _eta(self, kind: str, now: float) -> float:
        """Time-to-answer estimate for a request admitted at ``now``:
        current chip residency, the backlog drained at full batches
        across every alive chip, one batch window, its own batch's
        service time, and the worst-case retry/backoff budget.

        The retry budget term is what makes the feasibility check
        honest under faults: without it a request admitted with exactly
        service-time slack expires the moment its batch retries once -
        chip time burned for an answer nobody can use.
        """
        busy = max(0.0, self.chip_free_at - now)
        lanes = max(1, len(self.alive))
        # The backlog drains at the lane's *throughput* (one pipeline
        # beat per batch on a model pod); the request's own batch then
        # pays the full service latency (pipeline fill).
        drain = (len(self.queue) / self.cfg.max_batch) \
            * self.throughput_seconds(kind, self.cfg.max_batch) / lanes
        return (busy + drain + self.cfg.batch_window_s
                + self.service_seconds(kind, 1)
                + self.cfg.retry_budget_s())

    # -- dispatch ----------------------------------------------------------

    def pump(self) -> bool:
        """Run one dispatch decision at the current virtual time.

        Returns True when a batch was dispatched (callers loop until the
        server goes quiescent).  Safe to call any time; does nothing
        while the chip is busy or the queue is empty.
        """
        now = self.clock.now()
        self._expire_queued(now)
        if not self.queue or self.chip_free_at > now:
            return False

        backlog = len(self.queue)
        degraded = backlog >= self.cfg.degrade_watermark \
            * self.cfg.queue_depth
        target = self.cfg.max_batch
        if degraded:
            target = max(1, target // self.cfg.degrade_batch_divisor)

        # EDF: the most urgent request picks the batch's kind, then
        # same-kind requests fill the ciphertext in deadline order.
        order = sorted(self.queue, key=lambda r: (r.deadline, r.id))
        kind = order[0].kind
        batch = [r for r in order if r.kind == kind][:target]

        if (not degraded and len(batch) < target
                and now < order[0].submitted + self.cfg.batch_window_s):
            return False  # hold for the window; next_wake() covers it
        for r in batch:
            self.queue.remove(r)
        obs.gauge("serve.queue_depth", float(len(self.queue)))
        self._execute_batch(batch, kind, degraded, now)
        return True

    def _expire_queued(self, now: float) -> None:
        """Cancel queued requests whose deadline already lapsed."""
        expired = [r for r in self.queue if r.deadline <= now]
        for r in expired:
            self.queue.remove(r)
            self._finish(Response(request=r, status=EXPIRED,
                                  error="DeadlineExceeded",
                                  completed_at=now))
        if expired:
            obs.gauge("serve.queue_depth", float(len(self.queue)))

    def next_wake(self, now: float) -> float:
        """Earliest virtual time strictly after ``now`` at which pump()
        could act: the chip freeing up, a batch window expiring, or a
        queued deadline lapsing (expiry sweep).  ``inf`` when only a new
        arrival could change anything."""
        if not self.queue:
            return float("inf")
        candidates = [
            self.chip_free_at,
            min(r.submitted for r in self.queue) + self.cfg.batch_window_s,
            min(r.deadline for r in self.queue),
        ]
        future = [t for t in candidates if t > now]
        return min(future) if future else float("inf")

    # -- execution ---------------------------------------------------------

    def _execute_batch(self, batch: list[Request], kind: str,
                       degraded: bool, t0: float) -> None:
        """Encrypt once, run under recovery, retry at serve level."""
        c = self.cfg
        occupancy = len(batch)
        record = BatchRecord(batch_id=len(self.batches), kind=kind,
                             requests=list(batch), dispatched_at=t0,
                             degraded=degraded)
        record.cache_hit = (kind, occupancy) in self._service
        service_s = self.service_seconds(kind, occupancy)
        steady_s = self.throughput_seconds(kind, occupancy)
        steps = self._steps_for(kind)

        vec, layout = self.packer.pack(batch)
        master = self.ctx.encrypt_values(self.sk, vec)

        # `duration` is the batch's wall latency (fill time per attempt
        # on a model pod); `occupancy_s` is how long the lane stays
        # claimed (one pipeline beat per attempt) - identical floats on
        # a single chip or data-parallel lane, where service == steady.
        duration = 0.0
        occupancy_s = 0.0
        state = stats = None
        retries = faults_recovered = 0
        last_error = "UnrecoverableFaultError"
        for attempt in range(c.max_retries + 1):
            run_steps = steps
            if self.fault_factory is not None:
                run_steps = self.fault_factory(record.batch_id, attempt,
                                               steps)
            duration += service_s
            occupancy_s += steady_s
            try:
                state, stats = self._run_attempt(run_steps, kind, master)
                faults_recovered += stats.detections
                overhead = self._overhead_s(stats)
                duration += overhead
                occupancy_s += overhead
                if c.verify_responses \
                        and not self._verify(state, kind, master):
                    # A fault slipped past every in-executor detector
                    # (e.g. a limb flip right before a pmult, whose
                    # fresh reseal launders the corruption).  The clean
                    # replay is the court of last resort: treat the
                    # attempt as faulted and retry.  The replay itself
                    # costs a clean service pass of chip time.
                    self._count("verify_mismatches")
                    duration += service_s
                    occupancy_s += steady_s
                    state = None
                    last_error = "FaultDetectedError"
            except UnrecoverableFaultError:
                # The attempt's executor stats are lost with the raise;
                # its chip time (service_s) is already in `duration`.
                state = None
                last_error = "UnrecoverableFaultError"
            if state is not None:
                break
            if attempt < c.max_retries:
                retries += 1
                self._count("retries")
                pause = self._backoff(attempt + 1)
                duration += pause
                occupancy_s += pause
                obs.count("serve.backoff_s", pause)

        completed_at = t0 + duration
        # Earliest-free alive lane takes the batch (id-tiebroken so the
        # schedule is deterministic); single-chip servers have lane 0.
        # A pipelined pod lane frees after its occupancy, which is
        # earlier than the batch's completion - the next batch streams
        # in behind this one.
        lane = min(self.alive, key=lambda k: (self.chips_free_at[k], k))
        self.chips_free_at[lane] = t0 + occupancy_s
        record.chip = lane
        self.busy_s += occupancy_s
        record.service_s = service_s * (retries + 1)
        record.overhead_s = duration - record.service_s
        record.retries = retries
        for tag, sec in self._tag_seconds(kind, occupancy).items():
            self.phase_seconds[tag] = \
                self.phase_seconds.get(tag, 0.0) + sec * (retries + 1)

        self._count("dispatches")
        if degraded:
            self._count("degraded_dispatches")
        if faults_recovered:
            self._count("faults_recovered", faults_recovered)
        self.batches.append(record)

        if state is None:
            # Every retry exhausted: the whole batch fails, typed.
            for i, req in enumerate(batch):
                self._finish(Response(
                    request=req, status=FAILED,
                    error=last_error,
                    completed_at=completed_at, retries=retries,
                    faults_recovered=faults_recovered,
                    batch_id=record.batch_id, batch_occupancy=occupancy,
                    chip_seconds=occupancy_s / occupancy))
            return

        decoded = self.ctx.decrypt(self.sk, state["x"])
        values = self.packer.unpack(decoded, layout)
        for i, req in enumerate(batch):
            if completed_at > req.deadline:
                # Dispatched in time, finished late (retries/backoff):
                # the answer exists but the deadline contract is missed.
                self._finish(Response(
                    request=req, status=EXPIRED, error="DeadlineExceeded",
                    completed_at=completed_at, retries=retries,
                    faults_recovered=faults_recovered,
                    batch_id=record.batch_id, batch_occupancy=occupancy,
                    chip_seconds=occupancy_s / occupancy))
                continue
            self._finish(Response(
                request=req, status=COMPLETED, value=values[i],
                completed_at=completed_at, retries=retries,
                faults_recovered=faults_recovered,
                batch_id=record.batch_id, batch_occupancy=occupancy,
                chip_seconds=occupancy_s / occupancy))

    def _run_attempt(self, run_steps, kind: str, master):
        """One executor run from the batch's master ciphertext."""
        c = self.cfg
        policy = RecoveryPolicy(
            checkpoint_every=c.checkpoint_every,
            max_retries=c.executor_retries,
            max_restarts=c.executor_restarts,
            backoff_base_s=c.backoff_base_s,
            backoff_factor=c.backoff_factor,
            backoff_jitter=c.backoff_jitter)
        pauses: list[float] = []
        exe = RecoveringExecutor(
            self.ctx, policy, store=RingBufferStore(4), cfg=self.chip,
            step_cycles=self._step_cycles[kind],
            sleep=pauses.append,  # virtual: charged to batch duration
            rng=self._rng)

        def evict_sweep():
            if exe.state is None:
                return
            for name, ct in exe.state.items():
                self.ctx.verify_integrity(ct, f"rf evictee {name!r}")

        integ = guards.IntegrityConfig(verify_hints=True, ntt_checksum=True,
                                       boundary_hook=evict_sweep)
        state = {"x": master.copy(), "base": master.copy()}
        with guards.integrity(integ):
            return exe.run(run_steps, state)

    def _overhead_s(self, stats) -> float:
        """Executor resilience cost in (virtual) seconds."""
        return (stats.overhead_cycles / self.chip.clock_hz
                + stats.backoff_seconds)

    def _backoff(self, retry: int) -> float:
        pause = self.cfg.backoff_base_s \
            * self.cfg.backoff_factor ** max(0, retry - 1)
        if self.cfg.backoff_jitter:
            pause *= 1.0 + self.cfg.backoff_jitter \
                * (2.0 * self._rng.random() - 1.0)
        return pause

    def _verify(self, state, kind: str, master) -> bool:
        """Clean replay from the master ciphertext, compared bit-exactly.

        The recovery contract says a replayed program is bit-identical
        to a fault-free run; this is the serving layer holding it to
        that - the campaign's zero-wrong-answers check.
        """
        exe = RecoveringExecutor(
            self.ctx, RecoveryPolicy(checkpoint_every=len(self._steps[kind])
                                     + 1),
            store=RingBufferStore(2), cfg=self.chip)
        clean = {"x": master.copy(), "base": master.copy()}
        with obs.paused():
            clean, _ = exe.run(self._steps[kind], clean)
        got, want = state["x"], clean["x"]
        return (np.array_equal(got.c0.data, want.c0.data)
                and np.array_equal(got.c1.data, want.c1.data))

    def _finish(self, resp: Response) -> None:
        self.responses.append(resp)
        self._count(resp.status if resp.status != SHED else "shed")

    # -- end-of-run summary -------------------------------------------------

    def utilization(self, elapsed_s: float) -> float:
        return self.busy_s / elapsed_s if elapsed_s > 0 else 0.0

    def latencies(self) -> list[float]:
        return sorted(r.latency_s for r in self.responses if r.ok)
