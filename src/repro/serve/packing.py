"""Cross-tenant slot packing: N queries in one ciphertext.

CraterLake-class chips amortize their cost by batching: one CKKS
ciphertext at N=65536 carries 32K slots, far more than one query needs.
The serving front-end therefore packs up to ``max_batch`` tenant queries
into a single ciphertext, one ``block_slots``-wide block per query, and
runs the workload *once* over the shared vector.  Per-tenant results
come back out at the block-start readout slots (see
:mod:`repro.workloads.serving` for why those slots never mix tenants).

Payload validation lives here too, on purpose: the packer is the last
gate before a tenant's numbers enter a *shared* ciphertext, and the
CKKS encoder is a global transform - one tenant's NaN or 1e30 outlier
destroys every co-packed tenant's slots, not just its own.  Invalid
payloads are therefore rejected at admission with
:class:`~repro.reliability.errors.ParameterError` (tenant-attributable:
they count against that tenant's circuit breaker), and the packer can
assume every vector it packs is already clean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reliability.errors import ParameterError
from repro.serve.request import Request


@dataclass
class BatchLayout:
    """Where each request of one batch lives in the shared ciphertext."""

    requests: list[Request]
    block_slots: int

    @property
    def occupancy(self) -> int:
        return len(self.requests)

    def readout_slot(self, i: int) -> int:
        return i * self.block_slots


class SlotPacker:
    """Packs validated tenant payloads into one slot vector."""

    def __init__(self, slots: int, block_slots: int, max_batch: int,
                 payload_limit: float):
        self.slots = slots
        self.block_slots = block_slots
        self.max_batch = max_batch
        self.payload_limit = payload_limit

    # -- admission-side validation (tenant-attributable on failure) --------

    def validate_payload(self, payload) -> np.ndarray:
        """Return the payload as a clean float vector or raise
        :class:`ParameterError` describing exactly what was wrong."""
        try:
            vec = np.asarray(payload, dtype=float).reshape(-1)
        except (TypeError, ValueError) as exc:
            raise ParameterError("payload is not numeric",
                                 detail=str(exc)) from None
        if vec.size != self.block_slots:
            raise ParameterError(
                "payload length must equal the tenant block size",
                got=int(vec.size), expected=self.block_slots)
        if not np.all(np.isfinite(vec)):
            raise ParameterError(
                "payload contains non-finite values; a NaN/inf in one "
                "tenant's block corrupts every co-packed tenant",
                bad=int(np.sum(~np.isfinite(vec))))
        peak = float(np.max(np.abs(vec))) if vec.size else 0.0
        if peak > self.payload_limit:
            raise ParameterError(
                "payload magnitude exceeds the admission limit",
                peak=peak, limit=self.payload_limit)
        return vec

    # -- pack / unpack -----------------------------------------------------

    def pack(self, requests: list[Request]) -> tuple[np.ndarray, BatchLayout]:
        """One slot vector with request i's payload in block i.

        Unused blocks stay zero - they contribute nothing to any cyclic
        reduction window that crosses into them.
        """
        if not requests:
            raise ParameterError("cannot pack an empty batch")
        if len(requests) > self.max_batch:
            raise ParameterError("batch exceeds packing capacity",
                                 got=len(requests), max_batch=self.max_batch)
        vec = np.zeros(self.slots)
        for i, req in enumerate(requests):
            lo = i * self.block_slots
            vec[lo:lo + self.block_slots] = req.payload
        return vec, BatchLayout(list(requests), self.block_slots)

    def unpack(self, decoded: np.ndarray, layout: BatchLayout) -> list[float]:
        """Per-request scores from the decrypted slot vector.

        Request i's answer is the real part of its block-start slot -
        the one slot whose reduction window is exactly its own block.
        """
        return [float(np.real(decoded[layout.readout_slot(i)]))
                for i in range(layout.occupancy)]
