"""Seeded load generation and the serving fault campaign.

The campaign is the serving layer's end-to-end proof, the same role the
recovery campaign plays one layer down: drive a :class:`Server` with a
seeded open-loop arrival process (Poisson inter-arrivals, a tenant mix,
a kind mix, per-request deadlines), arm chip faults on a seeded subset
of batches, let one tenant send poison payloads, and then *audit*:

* zero wrong answers - every completed response matches the numpy slot
  reference (and, with ``verify_responses``, a bit-exact clean replay);
* every injected fault either recovered (in-executor replay or a
  serve-level retry) or surfaced as a typed failure - never silence;
* the queue never exceeded its bound, and the terminal-outcome tallies
  reconcile exactly against the obs counters
  (``offered == admitted + shed``, ``admitted == completed + expired +
  failed``);
* the whole run is bit-reproducible from its seed (asserted by running
  it twice in tests, and by the committed baseline in CI).

Everything runs on virtual time: two machines produce the same
timeline, latencies and report for the same spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs import collector as obs
from repro.reliability import faults as _faults
from repro.reliability.errors import (
    CircuitOpen,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
)
from repro.serve.clock import VirtualClock
from repro.serve.config import ServeConfig
from repro.serve.request import COMPLETED, EXPIRED, FAILED
from repro.serve.server import Server
from repro.workloads.serving import SERVE_KINDS, slot_reference

# Fault persistence tiers (corruptions the fault re-applies on replay):
# TRANSIENT is absorbed by the executor's checkpoint ladder; STUBBORN
# (one more firing than retries+restarts tolerate) defeats the executor
# and forces a serve-level retry on a fresh one.
TRANSIENT = 1
STUBBORN = 4


@dataclass
class LoadSpec:
    """One campaign's offered load, all of it seeded."""

    requests: int = 500
    qps: float = 300000.0
    tenants: int = 8
    lstm_fraction: float = 0.35
    deadline_lo_s: float = 4e-3
    deadline_hi_s: float = 1.2e-2
    # A slice of latency-critical traffic with deadlines comparable to
    # one batch's service time: under backlog these are correctly shed
    # at admission (DeadlineExceeded) instead of wasting a queue slot.
    tight_fraction: float = 0.12
    tight_lo_s: float = 6e-5
    tight_hi_s: float = 2.5e-4
    # One tenant sends garbage (NaNs / oversized values) at this rate -
    # the breaker's diet.  None disables.
    poison_tenant: str | None = "t7"
    poison_fraction: float = 0.5
    # Fraction of dispatched batches that get a fault armed, cycling
    # through the four sites; this fraction of *those* are stubborn
    # (defeat the executor, forcing a serve-level retry).
    fault_rate: float = 0.15
    stubborn_fraction: float = 0.3
    seed: int = 2022


@dataclass
class CampaignResult:
    """Everything the serving campaign measured (and must reconcile)."""

    spec: LoadSpec
    cfg: ServeConfig
    offered: int = 0
    admitted: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    expired: int = 0
    failed: int = 0
    retries: int = 0
    dispatches: int = 0
    degraded_dispatches: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    faults_recovered: int = 0
    breaker_opens: int = 0
    wrong_answers: int = 0
    max_queue_seen: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    elapsed_s: float = 0.0
    utilization: float = 0.0
    achieved_qps: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def injected_total(self) -> int:
        return sum(self.faults_injected.values())

    def report(self) -> str:
        from repro.analysis.report import format_table

        outcome_rows = [
            ["completed", self.completed],
            ["expired", self.expired],
            ["failed (typed)", self.failed],
            *[[f"shed.{k}", v] for k, v in sorted(self.shed.items())],
        ]
        table = format_table(
            ["outcome", "requests"], outcome_rows,
            title=f"Serving campaign (seed={self.spec.seed}, "
                  f"{self.offered} offered @ {self.spec.qps:.0f} qps, "
                  f"{self.spec.tenants} tenants)")
        lines = [
            table, "",
            f"latency: p50={self.p50_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"mean={self.mean_ms:.3f}ms over {self.completed} completions",
            f"chip: {self.utilization:.1%} utilized, "
            f"{self.dispatches} dispatches "
            f"({self.degraded_dispatches} degraded), "
            f"achieved {self.achieved_qps:.0f} qps "
            f"in {self.elapsed_s * 1e3:.1f}ms virtual",
            f"faults: {self.injected_total} injected "
            f"({', '.join(f'{k}:{v}' for k, v in sorted(self.faults_injected.items()))}), "
            f"{self.faults_recovered} recovered in-executor, "
            f"{self.retries} serve-level retries, "
            f"{self.failed} typed failures",
            f"tenants: {self.breaker_opens} breaker opens; "
            f"queue peaked at {self.max_queue_seen}/{self.cfg.queue_depth}",
            f"wrong answers: {self.wrong_answers}",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "spec": {
                "requests": self.spec.requests, "qps": self.spec.qps,
                "tenants": self.spec.tenants,
                "lstm_fraction": self.spec.lstm_fraction,
                "fault_rate": self.spec.fault_rate,
                "stubborn_fraction": self.spec.stubborn_fraction,
                "poison_fraction": self.spec.poison_fraction,
                "seed": self.spec.seed,
            },
            "cfg": {
                "degree": self.cfg.degree,
                "block_slots": self.cfg.block_slots,
                "max_batch": self.cfg.max_batch,
                "queue_depth": self.cfg.queue_depth,
            },
            "offered": self.offered, "admitted": self.admitted,
            "shed": dict(sorted(self.shed.items())),
            "completed": self.completed, "expired": self.expired,
            "failed": self.failed, "retries": self.retries,
            "dispatches": self.dispatches,
            "degraded_dispatches": self.degraded_dispatches,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "faults_recovered": self.faults_recovered,
            "breaker_opens": self.breaker_opens,
            "wrong_answers": self.wrong_answers,
            "max_queue_seen": self.max_queue_seen,
            "p50_ms": round(self.p50_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
        }


class _FaultPlanner:
    """Deterministic per-batch fault plan, armed via step wrapping.

    For each new batch id the planner draws (faulty?, site, step,
    persistence) from its own rng - independent of arrival randomness,
    so the fault schedule is stable under load-spec tweaks.  Faults fire
    only on serve attempt 0: the serve-level retry (fresh executor,
    clean steps) must then succeed, which is exactly the property the
    campaign wants to exercise.
    """

    def __init__(self, spec: LoadSpec, injector: _faults.FaultInjector):
        self.spec = spec
        self.injector = injector
        self.rng = np.random.default_rng(spec.seed + 101)
        self.plans: dict[int, tuple[str, int, int] | None] = {}
        self.injected: dict[str, int] = dict.fromkeys(_faults.SITES, 0)
        self._site_cursor = 0

    def _plan_for(self, batch_id: int, n_steps: int):
        if batch_id not in self.plans:
            if self.rng.random() >= self.spec.fault_rate:
                self.plans[batch_id] = None
            else:
                site = _faults.SITES[self._site_cursor % len(_faults.SITES)]
                self._site_cursor += 1
                step = int(self.rng.integers(n_steps))
                persist = (STUBBORN
                           if self.rng.random() < self.spec.stubborn_fraction
                           else TRANSIENT)
                self.plans[batch_id] = (site, step, persist)
        return self.plans[batch_id]

    def __call__(self, batch_id: int, attempt: int, steps):
        plan = self._plan_for(batch_id, len(steps))
        if plan is None or attempt > 0:
            return steps
        site, step_idx, persist = plan
        if site in (_faults.NTT, _faults.HBM):
            # Keyswitch-internal sites need a rotate to fire in; snap to
            # the nearest reduction step.
            rot_steps = [i for i, (name, _) in enumerate(steps)
                         if name.startswith("reduce")]
            step_idx = min(rot_steps, key=lambda i: abs(i - step_idx))
        fired = [0]
        injector = self.injector
        name, fn = steps[step_idx]

        def with_fault(ctx_, state_):
            if fired[0] < persist:
                fired[0] += 1
                self.injected[site] += 1
                if site in (_faults.LIMB, _faults.RF):
                    target = (state_["x"] if site == _faults.LIMB
                              else state_["base"])
                    half = target.c0 if fired[0] % 2 else target.c1
                    injector.arm(site)
                    injector.maybe_corrupt(site, half.data)
                else:
                    injector.arm(site, skip=0)
            fn(ctx_, state_)

        out = list(steps)
        out[step_idx] = (name, with_fault)
        return out

    def sweep_unfired(self) -> None:
        """Drop arms whose opportunity never came (aborted runs)."""
        for site in _faults.SITES:
            self.injector._armed.pop(site, None)


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def run_campaign(spec: LoadSpec | None = None,
                 cfg: ServeConfig | None = None) -> CampaignResult:
    """Drive one seeded serving campaign end to end; see module docs."""
    spec = spec or LoadSpec()
    cfg = cfg or ServeConfig(seed=spec.seed, verify_responses=True)

    own_collector = not obs.is_enabled()
    collector = obs.enable() if own_collector else obs.active()
    collector.meta.update({"campaign": "serving", "seed": spec.seed,
                           "requests": spec.requests, "qps": spec.qps,
                           "tenants": spec.tenants})

    injector = _faults.FaultInjector(seed=spec.seed + 1)
    planner = _FaultPlanner(spec, injector)
    clock = VirtualClock()
    server = Server(cfg, clock=clock,
                    fault_factory=planner if spec.fault_rate > 0 else None)

    rng = np.random.default_rng(spec.seed)
    submitted = 0
    t_next = rng.exponential(1.0 / spec.qps)

    def one_arrival():
        tenant = f"t{int(rng.integers(spec.tenants))}"
        kind = SERVE_KINDS[1] if rng.random() < spec.lstm_fraction \
            else SERVE_KINDS[0]
        payload = rng.uniform(-1.0, 1.0, cfg.block_slots)
        if (spec.poison_tenant is not None
                and tenant == spec.poison_tenant
                and rng.random() < spec.poison_fraction):
            # Garbage in one of two flavours; both tenant-attributable.
            if rng.random() < 0.5:
                payload[int(rng.integers(cfg.block_slots))] = np.nan
            else:
                payload = payload * (cfg.payload_limit * 10.0)
        if rng.random() < spec.tight_fraction:
            deadline = float(rng.uniform(spec.tight_lo_s, spec.tight_hi_s))
        else:
            deadline = float(rng.uniform(spec.deadline_lo_s,
                                         spec.deadline_hi_s))
        try:
            server.submit(tenant, kind, payload, deadline_s=deadline)
        except (Overloaded, DeadlineExceeded, CircuitOpen,
                ParameterError):
            pass  # typed + counted by the server; nothing else to do

    with _faults.injecting(injector):
        while submitted < spec.requests or server.queue:
            wake = server.next_wake(clock.now())
            if submitted < spec.requests and t_next <= wake:
                clock.advance_to(t_next)
                one_arrival()
                submitted += 1
                t_next = clock.now() + rng.exponential(1.0 / spec.qps)
            elif wake != float("inf"):
                clock.advance_to(wake)
            else:
                break  # queue empty, all arrivals in: quiescent
            while server.pump():
                planner.sweep_unfired()

    elapsed = max(clock.now(), server.chip_free_at)

    # -- audit: wrong answers vs the numpy slot reference -------------------
    wrong = 0
    tol = 1e-3
    by_batch = {b.batch_id: b for b in server.batches}
    for resp in server.responses:
        if resp.status != COMPLETED:
            continue
        batch = by_batch[resp.batch_id]
        vec, layout = server.packer.pack(batch.requests)
        ref = slot_reference(batch.kind, vec, server.weights,
                             cfg.block_slots)
        i = batch.requests.index(resp.request)
        if abs(resp.value - ref[layout.readout_slot(i)]) > tol:
            wrong += 1

    # -- assemble + reconcile ----------------------------------------------
    t = server.tally
    result = CampaignResult(
        spec=spec, cfg=cfg,
        offered=t["offered"], admitted=t["admitted"],
        shed={k.split(".", 1)[1]: v for k, v in t.items()
              if k.startswith("shed.")},
        completed=t["completed"], expired=t["expired"],
        failed=t["failed"], retries=t["retries"],
        dispatches=t["dispatches"],
        degraded_dispatches=t["degraded_dispatches"],
        faults_injected={k: v for k, v in planner.injected.items() if v},
        faults_recovered=t["faults_recovered"],
        breaker_opens=sum(br.stats.opens
                          for br in server.breakers.values()),
        wrong_answers=wrong,
        max_queue_seen=server.max_queue_seen,
        elapsed_s=elapsed,
        utilization=server.utilization(elapsed),
        phase_seconds=dict(server.phase_seconds),
    )
    lat = server.latencies()
    result.p50_ms = _percentile(lat, 0.50) * 1e3
    result.p99_ms = _percentile(lat, 0.99) * 1e3
    result.mean_ms = (sum(lat) / len(lat) * 1e3) if lat else 0.0
    result.achieved_qps = (result.completed / elapsed) if elapsed else 0.0
    obs.gauge("serve.qps", result.achieved_qps)
    obs.gauge("serve.utilization", result.utilization)
    result.counters = {k: v for k, v in collector.counters.items()
                       if k.startswith("serve.")}
    if own_collector:
        obs.disable()

    reconcile(result, server)
    return result


def reconcile(result: CampaignResult, server: Server) -> None:
    """Assert the campaign's core invariants; raises AssertionError.

    This is deliberately assert-based (not logged-and-ignored): a
    serving layer whose own books do not balance has a bug, and the
    campaign exists to catch it.
    """
    t = server.tally
    c = result.counters
    # Tallies and obs counters agree key-for-key.
    for key, val in t.items():
        counted = c.get(f"serve.{key}", 0.0)
        assert counted == val, (
            f"obs counter serve.{key}={counted} != tally {val}")
    # Conservation: every offered request has exactly one terminal state.
    assert result.offered == result.admitted + result.shed_total
    assert result.admitted == (result.completed + result.expired
                               + result.failed)
    # The queue bound held, always.
    assert result.max_queue_seen <= server.cfg.queue_depth
    # Correctness: nothing completed with a wrong answer.
    assert result.wrong_answers == 0, (
        f"{result.wrong_answers} completed responses deviate from the "
        "slot reference")


def check_against_baseline(result: CampaignResult, path) -> list[str]:
    """Compare a campaign result against a committed baseline.

    Integer fields must match exactly (the campaign is bit-reproducible
    from its seed); latency floats get a small relative tolerance for
    cross-platform libm drift.  Returns human-readable regressions
    (empty == pass).
    """
    baseline = json.loads(open(path).read())
    got = result.to_json()
    problems = []
    for key, want in baseline.items():
        if key in ("spec", "cfg"):
            for k2, w2 in want.items():
                if got[key].get(k2) != w2:
                    problems.append(
                        f"{key}.{k2}: baseline {w2} != run {got[key].get(k2)}"
                        " (campaign parameters drifted)")
        elif isinstance(want, float):
            g = float(got[key])
            if abs(g - want) > max(1e-9, 5e-3 * abs(want)):
                problems.append(f"{key}: baseline {want} != run {g}")
        elif got[key] != want:
            problems.append(f"{key}: baseline {want!r} != run {got[key]!r}")
    return problems
