"""Serving front-end configuration and its pre-flight validation.

One frozen dataclass holds every robustness knob of `repro.serve`:
capacity (queue depth, packing geometry), deadlines, the degradation
ladder, retry/backoff, and the per-tenant circuit breaker.  Construction
runs :func:`repro.reliability.validate.validate_config`, which
recognizes serve configs structurally and rejects nonsense (zero queue
depth, negative deadline, a block that does not tile the slot count)
with :class:`~repro.reliability.errors.ConfigError` before a single
request is accepted - the same fail-in-microseconds contract the chip
simulator gives (program, ChipConfig) pairings.

The defaults describe a small-but-real instance: N=256 (128 slots),
16-slot tenant blocks, so 8 tenants share one ciphertext.  Production
geometry is the same code at N=65536: 32K slots / 256-slot logreg query
blocks = 128 tenants per ciphertext; everything here scales with the
``degree``/``block_slots`` ratio, the functional CKKS layer is just too
slow at full N for unit-test turnaround.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.reliability.validate import validate_config


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one serving front-end instance."""

    # -- CKKS / packing geometry ------------------------------------------
    degree: int = 256            # ring degree N of the shared ciphertext
    max_level: int = 5           # levels; the deepest kind (lstm) consumes
    #                              3 and must still END at level >= 2: at
    #                              level 1 the single remaining modulus
    #                              roughly equals the scale, so the
    #                              representable range collapses to ~0.5
    #                              and real workload values silently wrap
    block_slots: int = 16        # slots one tenant query occupies
    max_batch: int = 8           # tenant queries packed per ciphertext
    seed: int = 2022             # keys, weights, jitter - everything

    # -- admission control / load shedding --------------------------------
    queue_depth: int = 64        # bound on queued requests (hard)
    default_deadline_s: float = 5e-3   # deadline when the client sets none
    admission_slack: float = 1.0 # scale on the wait estimate used by the
    #                              deadline-feasibility check (>1 sheds
    #                              earlier, <1 gambles on the estimate)

    # -- batching / graceful degradation ----------------------------------
    batch_window_s: float = 2e-4 # max wait for a batch to fill
    degrade_watermark: float = 0.5   # backlog fraction of queue_depth at
    #                              which the server degrades: it stops
    #                              waiting for full batches and halves the
    #                              packing target, trading throughput for
    #                              bounded latency *before* shedding
    degrade_batch_divisor: int = 2

    # -- retries / faults --------------------------------------------------
    max_retries: int = 2         # serve-level batch re-executions
    backoff_base_s: float = 1e-4
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    admission_retry_budget: float = 1.0  # fraction of the worst-case
    #                              retry/backoff budget folded into the
    #                              admission ETA.  1.0 = a request is only
    #                              admitted if its deadline survives every
    #                              retry pausing at the backoff ceiling;
    #                              0.0 restores the old optimistic ETA
    #                              that shed *after* burning chip time
    checkpoint_every: int = 2    # RecoveringExecutor checkpoint cadence
    executor_retries: int = 1    # in-executor checkpoint replays
    executor_restarts: int = 1   # in-executor full restarts

    # -- per-tenant circuit breaker ---------------------------------------
    breaker_threshold: int = 3   # consecutive failures before opening
    breaker_cooldown_s: float = 2e-2  # open -> half-open probe delay

    # -- verification ------------------------------------------------------
    verify_responses: bool = False  # clean-replay every completed batch
    #                              and compare decrypted slots bit-exactly
    #                              (the campaign's 0-wrong-answer check)

    # -- payload sanity (tenant-attributable) ------------------------------
    payload_limit: float = 8.0   # max |value| accepted at admission

    def __post_init__(self):
        validate_config(self)

    @property
    def slots(self) -> int:
        return self.degree // 2

    @property
    def capacity(self) -> int:
        """Tenant blocks one ciphertext can carry."""
        return self.slots // self.block_slots

    def retry_budget_s(self) -> float:
        """Worst-case serve-level backoff a faulted batch accumulates.

        ``max_retries`` pauses, each bounded by the *ceiling* pause (the
        last retry's exponential step at full positive jitter), scaled
        by ``admission_retry_budget``.  The admission ETA folds this in
        so a request whose deadline only holds if nothing ever faults is
        shed up front instead of expiring after occupying the chip.
        """
        ceiling = self.backoff_base_s \
            * self.backoff_factor ** max(0, self.max_retries - 1) \
            * (1.0 + self.backoff_jitter)
        return self.admission_retry_budget * self.max_retries * ceiling

    def with_(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)
