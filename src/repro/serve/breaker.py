"""Per-tenant circuit breaker: closed -> open -> half-open -> closed.

The breaker is the serving layer's tenant-isolation mechanism: chip
faults are *shared-fate* (handled by retry/recovery and never blamed on
a tenant), but a tenant that keeps submitting garbage - oversized
values, NaNs, wrong-length payloads - burns admission work and, if it
ever reached a shared ciphertext, would poison every co-packed tenant
through the encoder's global transform.  So tenant-attributable failures
are tracked per tenant, and after ``threshold`` *consecutive* failures
the tenant's breaker opens: its traffic is rejected at admission with
:class:`~repro.reliability.errors.CircuitOpen` (cheap, no queue slot, no
chip cycles) while everyone else's service is untouched.

After ``cooldown_s`` of virtual time the breaker half-opens and admits
exactly one probe request; the probe's outcome decides - success closes
the breaker (and resets the failure count), failure re-opens it for a
fresh cooldown.  While a probe is in flight, further requests are still
rejected: one bad tenant gets at most one speculative slot per cooldown.

The breaker never reads a clock itself; every transition takes ``now``
from the caller (the server's virtual clock), keeping this module pure
state-machine and trivially unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import collector as obs
from repro.reliability.errors import ParameterError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"
STATES = (CLOSED, OPEN, HALF_OPEN)


@dataclass
class BreakerStats:
    """Transition counts for one tenant's breaker."""

    failures: int = 0          # total recorded failures
    successes: int = 0
    opens: int = 0             # CLOSED/HALF_OPEN -> OPEN transitions
    probes: int = 0            # half-open probes admitted
    rejections: int = 0        # requests refused while OPEN/probing


class CircuitBreaker:
    """One tenant's failure-isolation state machine."""

    def __init__(self, tenant: str, threshold: int = 3,
                 cooldown_s: float = 1e-2):
        if threshold < 1:
            raise ParameterError("breaker threshold must be >= 1",
                                 threshold=threshold)
        if cooldown_s < 0:
            raise ParameterError("breaker cooldown cannot be negative",
                                 cooldown_s=cooldown_s)
        self.tenant = tenant
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_inflight = False
        self.stats = BreakerStats()

    # -- admission-side query ---------------------------------------------

    def allow(self, now: float) -> bool:
        """May a request from this tenant be admitted at ``now``?

        Returns True either because the breaker is CLOSED or because the
        cooldown has elapsed and this call claims the half-open probe
        slot (the caller must mark the admitted request as the probe and
        later resolve it via :meth:`record_success` /
        :meth:`record_failure`).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now - self.opened_at >= self.cooldown_s:
            self.state = HALF_OPEN
            self.probe_inflight = False
        if self.state == HALF_OPEN and not self.probe_inflight:
            self.probe_inflight = True
            self.stats.probes += 1
            obs.count("serve.breaker.probes")
            return True
        self.stats.rejections += 1
        return False

    @property
    def probing(self) -> bool:
        return self.state == HALF_OPEN and self.probe_inflight

    def next_probe_at(self) -> float:
        """Virtual time the next probe becomes admissible (inf if the
        breaker is closed - nothing to wait for)."""
        if self.state == OPEN:
            return self.opened_at + self.cooldown_s
        return float("inf") if self.state == CLOSED else self.opened_at

    # -- outcome-side transitions -----------------------------------------

    def record_success(self) -> None:
        self.stats.successes += 1
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.probe_inflight = False
            obs.count("serve.breaker.closed")

    def record_failure(self, now: float) -> bool:
        """Record a tenant-attributable failure; returns True when this
        failure opened (or re-opened) the breaker."""
        self.stats.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: straight back to OPEN, fresh cooldown.
            self._open(now)
            return True
        if self.state == CLOSED \
                and self.consecutive_failures >= self.threshold:
            self._open(now)
            return True
        return False

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.opened_at = now
        self.probe_inflight = False
        self.stats.opens += 1
        obs.count("serve.breaker.opens")

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.tenant!r}, {self.state}, "
                f"fails={self.consecutive_failures}/{self.threshold})")
