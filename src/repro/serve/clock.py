"""Injectable virtual time for the serving front-end.

Every time-dependent decision in `repro.serve` - deadlines, queue
waits, breaker cooldowns, backoff pauses, qps accounting - reads one
:class:`VirtualClock` instance instead of ``time.time()``.  That single
indirection is what makes a serving campaign a *deterministic discrete-
event simulation*: the load generator advances the clock to the next
arrival or dispatch, the chip's simulated service time advances it
through execution, and two runs from the same seed produce bit-identical
timelines, latencies and metrics.  Nothing in the serve package may call
wall-clock functions (asserted by a test grepping the package source).

The clock is monotonic by construction: :meth:`advance` rejects negative
deltas and :meth:`advance_to` is a no-op for past timestamps, so buggy
callers cannot rewind history and corrupt latency accounting.
"""

from __future__ import annotations

from repro.reliability.errors import ParameterError


class VirtualClock:
    """Monotonic simulated time in (virtual) seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ParameterError("virtual time cannot move backwards",
                                 dt=dt)
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op if ``t`` is in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def sleep(self, dt: float) -> None:
        """Blocking-sleep equivalent: just advances the clock.

        Passed as the ``sleep`` hook to
        :class:`repro.reliability.recovery.RecoveringExecutor` so retry
        backoff is charged to the request's virtual latency instead of
        stalling the test process.
        """
        self.advance(dt)

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f}s)"
