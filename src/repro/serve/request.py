"""Request/response types and the terminal-outcome taxonomy.

A request's life is a straight line through typed states:

    submit -> [shed]                       admission rejected it
           -> queued -> [expired]          deadline lapsed in queue
                     -> dispatched -> [completed]   decrypted answer
                                   -> [failed]      faults exhausted
                                                    every retry

Every terminal state is counted exactly once (``serve.admitted ==
completed + expired + failed`` after a drain; ``serve.offered ==
admitted + shed`` always), which is what lets the campaign reconcile
its report against the obs counters to the last request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Terminal request states (Response.status).
COMPLETED = "completed"
EXPIRED = "expired"
FAILED = "failed"
SHED = "shed"
OUTCOMES = (COMPLETED, EXPIRED, FAILED, SHED)

# Shed sub-reasons (serve.shed.<reason> counters).
SHED_OVERLOAD = "overload"
SHED_DEADLINE = "deadline"
SHED_BREAKER = "breaker"
SHED_INVALID = "invalid"
SHED_CAPACITY = "capacity"   # pod lost every chip; nothing can execute
SHED_REASONS = (SHED_OVERLOAD, SHED_DEADLINE, SHED_BREAKER, SHED_INVALID,
                SHED_CAPACITY)


@dataclass
class Request:
    """One tenant query, admitted and queued."""

    id: int
    tenant: str
    kind: str                  # workload kind ("logreg" / "lstm")
    payload: np.ndarray        # block_slots client values (already valid)
    submitted: float           # virtual time of admission
    deadline: float            # absolute virtual time
    probe: bool = False        # half-open breaker probe request

    def slack(self, now: float) -> float:
        return self.deadline - now


@dataclass
class Response:
    """The terminal outcome of one request."""

    request: Request
    status: str                       # one of OUTCOMES
    value: float | None = None        # decrypted score (completed only)
    error: str | None = None          # typed-error class name otherwise
    completed_at: float = 0.0         # virtual time the outcome was fixed
    retries: int = 0                  # serve-level batch re-executions
    faults_recovered: int = 0         # executor detections replayed away
    batch_id: int = -1                # which dispatch carried it (-1: none)
    batch_occupancy: int = 0          # requests packed in that ciphertext
    chip_seconds: float = 0.0         # this request's share of chip time

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.request.submitted

    @property
    def ok(self) -> bool:
        return self.status == COMPLETED


@dataclass
class BatchRecord:
    """Bookkeeping for one dispatched ciphertext batch (observability)."""

    batch_id: int
    kind: str
    requests: list[Request] = field(default_factory=list)
    dispatched_at: float = 0.0
    service_s: float = 0.0       # clean service time (compiled schedule)
    overhead_s: float = 0.0      # checkpoint/replay + backoff time
    retries: int = 0
    degraded: bool = False
    cache_hit: bool = False
    chip: int = 0                # pod chip the batch executed on
