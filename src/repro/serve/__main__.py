"""CLI for the serving front-end: ``python -m repro.serve --campaign``.

Runs the seeded fault campaign (see `repro.serve.loadgen`), prints its
report, and optionally regression-checks the result against a committed
baseline (``--check``), exactly like the reliability campaign CLI: CI
runs ``--campaign --check`` as the serving smoke gate, and a failing
check exits non-zero with the list of drifted fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.serve.config import ServeConfig
from repro.serve.loadgen import LoadSpec, check_against_baseline, run_campaign

DEFAULT_BASELINE = Path(__file__).resolve().parents[3] \
    / "tests" / "serve" / "baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant FHE serving campaign")
    parser.add_argument("--campaign", action="store_true",
                        help="run the seeded serving fault campaign")
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--qps", type=float, default=300000.0)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--fault-rate", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--check", nargs="?", const=str(DEFAULT_BASELINE),
                        metavar="BASELINE",
                        help="compare against a baseline JSON "
                             "(default: tests/serve/baseline.json)")
    parser.add_argument("--emit-baseline", metavar="PATH",
                        help="write this run's result as a new baseline")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result instead "
                             "of the report")
    args = parser.parse_args(argv)

    if not args.campaign:
        parser.print_help()
        return 2

    spec = LoadSpec(requests=args.requests, qps=args.qps,
                    tenants=args.tenants, fault_rate=args.fault_rate,
                    seed=args.seed)
    cfg = ServeConfig(seed=args.seed, verify_responses=True)
    result = run_campaign(spec, cfg)

    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.report())

    if args.emit_baseline:
        Path(args.emit_baseline).write_text(
            json.dumps(result.to_json(), indent=2) + "\n")
        print(f"baseline written to {args.emit_baseline}")

    if args.check:
        problems = check_against_baseline(result, args.check)
        if problems:
            print(f"\nBASELINE CHECK FAILED ({len(problems)} regressions):")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"\nbaseline check passed ({args.check})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
