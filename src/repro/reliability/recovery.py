"""Checkpoint/replay recovery: detected faults become resumed computation.

PR 2's detection substrate (per-limb checksums, hint verification, NTT
transform checksums) turns silent corruption into
:class:`~repro.reliability.errors.FaultDetectedError` - but a deep
bootstrapped program that *aborts* on every transient still wastes
minutes of work.  This module closes the loop: sealed ciphertext state is
snapshotted at schedule boundaries, and a :class:`RecoveringExecutor`
rolls a faulted program back to the last valid checkpoint, replays only
the affected ops, and escalates (older checkpoint -> full restart ->
:class:`UnrecoverableFaultError`) when replay keeps failing.

Layering: this package sits *below* the fhe layer, so everything touching
:class:`~repro.fhe.ckks.Ciphertext` does deferred imports, mirroring
`repro.reliability.faults`.

Three pieces:

* **Snapshots** (:class:`CiphertextSnapshot`, :class:`Checkpoint`) -
  deep copies of the RNS limbs plus every piece of live bookkeeping
  (scale, basis moduli, NoiseBudget, integrity seals).  Checkpoint
  creation verifies each entry's seal first, so a corrupted ciphertext
  can never be enshrined as a rollback target; restoration re-verifies,
  so a checkpoint corrupted *at rest* is itself detected and skipped.
* **Stores** (:class:`RingBufferStore`, :class:`DiskStore`) - where
  checkpoints live: a bounded in-memory ring for long-running programs,
  or ``.npz`` + JSON sidecar files for cross-process resume.
* **The executor** (:class:`RecoveryPolicy`, :class:`RecoveringExecutor`)
  - runs a list of named steps over a dict of named ciphertexts,
  checkpointing every ``checkpoint_every`` steps and recovering from
  ``FaultDetectedError`` per the policy.  Replay is deterministic: the
  homomorphic ops between checkpoints use no randomness, so a clean
  replay is bit-identical to a clean first execution (asserted by the
  recovery campaign against fault-free references).

Checkpoint and replay cost is threaded into the cycle model: a
checkpoint writes ``2*L*N`` residue words through the HBM stream
(:func:`checkpoint_cycles`), replayed steps re-pay their compute cycles,
and both are accumulated into :class:`RecoveryStats` and emitted as obs
counters (``reliability.recovery.*``) so the overhead of resilience is
measurable, not assumed.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import collector as obs
from repro.reliability.checksums import limb_checksums
from repro.reliability.errors import (
    FaultDetectedError,
    ParameterError,
    UnrecoverableFaultError,
)


# -- ciphertext snapshots ----------------------------------------------------


@dataclass
class CiphertextSnapshot:
    """Everything needed to rebuild one sealed ciphertext bit-for-bit."""

    moduli: tuple[int, ...]
    data0: np.ndarray  # (L, N) uint64 residue copy of c0
    data1: np.ndarray
    domain0: str
    domain1: str
    scale: float
    budget_noise_bits: float | None = None  # NoiseBudget state, if threaded
    budget_sigma: float | None = None
    budget_mod_bits: int | None = None
    checksums0: np.ndarray | None = None  # per-limb seals at snapshot time
    checksums1: np.ndarray | None = None

    def size_words(self) -> int:
        return int(self.data0.size + self.data1.size)

    def restore(self):
        """Materialize a fresh :class:`~repro.fhe.ckks.Ciphertext`.

        Verifies the snapshot's own seals before handing the data out, so
        a checkpoint corrupted at rest raises ``FaultDetectedError``
        instead of becoming a poisoned rollback target.
        """
        from repro.fhe.ckks import Ciphertext  # deferred: fhe imports us
        from repro.fhe.poly import RnsPoly
        from repro.fhe.rns import RnsBasis

        basis = RnsBasis(self.moduli)
        data0 = self.data0.copy()
        data1 = self.data1.copy()
        if self.checksums0 is not None:
            current0 = limb_checksums(data0, self.moduli)
            current1 = limb_checksums(data1, self.moduli)
            if (not np.array_equal(current0, self.checksums0)
                    or not np.array_equal(current1, self.checksums1)):
                obs.count("reliability.recovery.bad_checkpoint")
                raise FaultDetectedError(
                    "checkpoint failed its own seal on restore; the "
                    "snapshot was corrupted at rest",
                )
        ct = Ciphertext(
            RnsPoly(basis, data0, self.domain0),
            RnsPoly(basis, data1, self.domain1),
            self.scale,
        )
        if self.budget_noise_bits is not None:
            from repro.fhe.noise import NoiseBudget

            ct.budget = NoiseBudget(
                degree=ct.degree,
                modulus_bits_per_level=self.budget_mod_bits,
                levels=ct.level,
                sigma=self.budget_sigma,
                noise_bits=self.budget_noise_bits,
            )
        if self.checksums0 is not None:
            ct.integrity = (self.checksums0.copy(), self.checksums1.copy())
        return ct


def snapshot_ciphertext(ct) -> CiphertextSnapshot:
    """Deep-copy one ciphertext's limbs and bookkeeping, sealing the copy."""
    checks0 = checks1 = None
    if ct.integrity is not None:
        checks0, checks1 = (ct.integrity[0].copy(), ct.integrity[1].copy())
    else:
        checks0 = limb_checksums(ct.c0.data, ct.c0.basis.moduli)
        checks1 = limb_checksums(ct.c1.data, ct.c1.basis.moduli)
    budget_bits = budget_sigma = budget_mod_bits = None
    if ct.budget is not None:
        budget_bits = ct.budget.noise_bits
        budget_sigma = ct.budget.sigma
        budget_mod_bits = ct.budget.modulus_bits_per_level
    return CiphertextSnapshot(
        moduli=ct.basis.moduli,
        data0=ct.c0.data.copy(), data1=ct.c1.data.copy(),
        domain0=ct.c0.domain, domain1=ct.c1.domain,
        scale=ct.scale,
        budget_noise_bits=budget_bits, budget_sigma=budget_sigma,
        budget_mod_bits=budget_mod_bits,
        checksums0=checks0, checksums1=checks1,
    )


@dataclass
class Checkpoint:
    """Sealed program state at one schedule boundary."""

    step: int                 # next step index to execute after restore
    entries: dict[str, CiphertextSnapshot]
    label: str = ""
    cycles: float = 0.0       # cycle-model cost charged for writing it

    def size_words(self) -> int:
        return sum(s.size_words() for s in self.entries.values())


def take_checkpoint(ctx, state: dict, step: int, label: str = "",
                    verify: bool = True) -> Checkpoint:
    """Snapshot every ciphertext in ``state`` after verifying its seal.

    The verification is what keeps rollback targets trustworthy: a limb
    corrupted *before* the boundary raises ``FaultDetectedError`` here,
    at the checkpoint, and the executor rolls back to the previous valid
    one instead of enshrining poisoned state.
    """
    with obs.span("reliability.recovery.checkpoint", "reliability"):
        obs.count("reliability.recovery.checkpoints")
        entries = {}
        for name, ct in state.items():
            if verify:
                ctx.verify_integrity(ct, f"checkpoint entry {name!r}")
            entries[name] = snapshot_ciphertext(ct)
        return Checkpoint(step=step, entries=entries, label=label)


def restore_checkpoint(ckpt: Checkpoint) -> dict:
    """Materialize every entry; raises if the checkpoint itself is bad."""
    with obs.span("reliability.recovery.restore", "reliability"):
        obs.count("reliability.recovery.restores")
        return {name: snap.restore() for name, snap in ckpt.entries.items()}


def checkpoint_cycles(ckpt: Checkpoint, cfg) -> float:
    """Cycle-model cost of writing ``ckpt`` through the HBM stream."""
    return ckpt.size_words() / cfg.hbm_words_per_cycle


# -- checkpoint stores -------------------------------------------------------


class RingBufferStore:
    """Last-``capacity`` checkpoints in memory; the long-running default."""

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ParameterError("ring buffer needs capacity >= 1",
                                 capacity=capacity)
        self._ring: deque[Checkpoint] = deque(maxlen=capacity)

    def save(self, ckpt: Checkpoint) -> None:
        self._ring.append(ckpt)

    def latest(self) -> Checkpoint | None:
        return self._ring[-1] if self._ring else None

    def drop_latest(self) -> Checkpoint | None:
        """Discard the newest checkpoint (escalation: it may be suspect)."""
        return self._ring.pop() if self._ring else None

    def checkpoints(self) -> list[Checkpoint]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class DiskStore:
    """Checkpoints as ``.npz`` files with a JSON metadata sidecar.

    One file per checkpoint (``<prefix>_<step>.npz``): arrays under
    ``<name>.c0`` / ``<name>.c1`` / ``<name>.sum0`` / ``<name>.sum1``
    keys, scalar bookkeeping in the sidecar.  Loading re-verifies every
    entry's seal, so on-disk corruption is detected, not decrypted.

    Writes follow the payload-then-manifest discipline the compile cache
    uses: both files land under temporary names and are atomically
    renamed, payload first, manifest last.  The manifest's existence is
    the commit point - a crash mid-checkpoint leaves either nothing or a
    manifest-less payload, and :meth:`steps` counts the latter as a
    *stale* checkpoint (``reliability.recovery.stale_checkpoints``)
    instead of handing restore a torn ``.npz``.
    """

    def __init__(self, directory, prefix: str = "ckpt"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix

    def _path(self, step: int) -> Path:
        return self.directory / f"{self.prefix}_{step:06d}.npz"

    def save(self, ckpt: Checkpoint) -> Path:
        arrays = {}
        meta: dict[str, object] = {"step": ckpt.step, "label": ckpt.label,
                                   "cycles": ckpt.cycles, "entries": {}}
        for name, snap in ckpt.entries.items():
            arrays[f"{name}.c0"] = snap.data0
            arrays[f"{name}.c1"] = snap.data1
            arrays[f"{name}.sum0"] = snap.checksums0
            arrays[f"{name}.sum1"] = snap.checksums1
            meta["entries"][name] = {
                "moduli": list(snap.moduli),
                "domain0": snap.domain0, "domain1": snap.domain1,
                "scale": snap.scale,
                "budget_noise_bits": snap.budget_noise_bits,
                "budget_sigma": snap.budget_sigma,
                "budget_mod_bits": snap.budget_mod_bits,
            }
        path = self._path(ckpt.step)
        manifest = path.with_suffix(".json")
        tmp_npz = path.with_suffix(".npz.tmp")
        tmp_json = manifest.with_suffix(".json.tmp")
        with open(tmp_npz, "wb") as fh:  # np.savez would append ".npz"
            np.savez(fh, **arrays)
        os.replace(tmp_npz, path)
        tmp_json.write_text(json.dumps(meta))
        os.replace(tmp_json, manifest)
        return path

    def steps(self) -> list[int]:
        """Committed checkpoint steps (payload *and* manifest present).

        Payloads without a manifest are half-written casualties of a
        crash; they are counted (not loaded, not deleted - post-mortems
        may want them) and excluded, so recovery falls back to the
        newest *complete* checkpoint.
        """
        complete = []
        for p in self.directory.glob(f"{self.prefix}_*.npz"):
            if p.with_suffix(".json").exists():
                complete.append(int(p.stem[len(self.prefix) + 1:]))
            else:
                obs.count("reliability.recovery.stale_checkpoints")
        return sorted(complete)

    def load(self, step: int) -> Checkpoint:
        path = self._path(step)
        meta = json.loads(path.with_suffix(".json").read_text())
        entries = {}
        with np.load(path) as arrays:
            for name, info in meta["entries"].items():
                entries[name] = CiphertextSnapshot(
                    moduli=tuple(info["moduli"]),
                    data0=arrays[f"{name}.c0"],
                    data1=arrays[f"{name}.c1"],
                    domain0=info["domain0"], domain1=info["domain1"],
                    scale=info["scale"],
                    budget_noise_bits=info["budget_noise_bits"],
                    budget_sigma=info["budget_sigma"],
                    budget_mod_bits=info["budget_mod_bits"],
                    checksums0=arrays[f"{name}.sum0"],
                    checksums1=arrays[f"{name}.sum1"],
                )
        return Checkpoint(step=meta["step"], entries=entries,
                          label=meta["label"], cycles=meta["cycles"])

    def latest(self) -> Checkpoint | None:
        steps = self.steps()
        return self.load(steps[-1]) if steps else None

    def drop_latest(self) -> Checkpoint | None:
        steps = self.steps()
        if not steps:
            return None
        ckpt = self.load(steps[-1])
        self._path(steps[-1]).unlink()
        self._path(steps[-1]).with_suffix(".json").unlink()
        return ckpt


# -- recovery policy and executor --------------------------------------------


@dataclass
class RecoveryPolicy:
    """How a program reacts when an integrity check fires mid-run.

    ``checkpoint_every``: steps between checkpoints (the granularity
    knob: smaller means cheaper replays, more checkpoint traffic).
    ``max_retries``: replays from checkpoints before escalating to a full
    restart; each failed retry *discards the newest checkpoint* - if
    replay from a checkpoint keeps faulting, the checkpoint itself is
    suspect, so escalation walks backwards through the ring.
    ``max_restarts``: full-program restarts (from the verified initial
    state) before giving up with :class:`UnrecoverableFaultError`.
    ``backoff_base_s`` / ``backoff_factor``: exponential pause before
    retry k sleeps ``base * factor**(k-1)`` seconds - pointless for
    deterministic replays, essential when the fault source is a flaky
    external resource; 0 disables (the default keeps tests fast).
    ``backoff_jitter``: fractional randomization of each pause (a pause
    of d becomes ``d * (1 + jitter * u)``, u uniform in [-1, 1)), which
    decorrelates retry storms when many executors share a fault domain
    - the serving front-end (`repro.serve`) passes its seeded rng so
    jittered schedules stay reproducible.  Where the pause *happens* is
    the executor's ``sleep`` hook: ``time.sleep`` by default, a virtual
    clock under simulation.
    ``verify_checkpoints``: verify every entry's seal at checkpoint time
    (strongly recommended: an unverified checkpoint taken between a
    corruption and its detection poisons every rollback to it).
    """

    checkpoint_every: int = 4
    max_retries: int = 3
    max_restarts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.0
    verify_checkpoints: bool = True

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ParameterError("checkpoint_every must be >= 1",
                                 checkpoint_every=self.checkpoint_every)
        if self.max_retries < 0 or self.max_restarts < 0:
            raise ParameterError("retry/restart counts must be >= 0",
                                 max_retries=self.max_retries,
                                 max_restarts=self.max_restarts)
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ParameterError("backoff_jitter is a fraction in [0, 1)",
                                 backoff_jitter=self.backoff_jitter)

    def backoff_seconds(self, retry: int, rng=None) -> float:
        if self.backoff_base_s <= 0:
            return 0.0
        pause = self.backoff_base_s * self.backoff_factor ** max(0, retry - 1)
        if self.backoff_jitter and rng is not None:
            pause *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return pause


@dataclass
class RecoveryStats:
    """What resilience cost for one program run."""

    steps: int = 0                # distinct steps completed
    detections: int = 0           # FaultDetectedErrors caught
    rollbacks: int = 0            # checkpoint restores performed
    restarts: int = 0             # full-program restarts
    replayed_ops: int = 0         # step executions beyond the first
    checkpoints_taken: int = 0
    checkpoint_words: float = 0.0
    checkpoint_cycles: float = 0.0
    replay_cycles: float = 0.0
    backoff_seconds: float = 0.0
    recovered: bool = True        # False only when the run raised

    @property
    def overhead_cycles(self) -> float:
        return self.checkpoint_cycles + self.replay_cycles


class RecoveringExecutor:
    """Run named steps over named ciphertexts, recovering from faults.

    ``steps`` is a list of ``(name, fn)`` pairs; each ``fn(ctx, state)``
    mutates the ``state`` dict of ciphertexts in place (pure homomorphic
    ops - no randomness - so replay is deterministic).  ``step_cycles``
    optionally prices each step in simulated cycles so replay overhead
    lands in the cycle model; ``cfg`` (a ChipConfig) prices checkpoint
    writes the same way.

    The escalation ladder on ``FaultDetectedError``:

    1. roll back to the newest stored checkpoint and replay (up to
       ``max_retries`` times, discarding the newest checkpoint after
       each failed attempt - it may itself hold undetected corruption);
    2. restart the whole program from the verified initial snapshot
       (up to ``max_restarts`` times);
    3. raise :class:`UnrecoverableFaultError` carrying the history.
    """

    def __init__(self, ctx, policy: RecoveryPolicy | None = None,
                 store=None, cfg=None,
                 step_cycles: list[float] | None = None,
                 sleep=None, rng=None):
        self.ctx = ctx
        self.policy = policy or RecoveryPolicy()
        self.store = store if store is not None else RingBufferStore()
        self.cfg = cfg
        self.step_cycles = step_cycles
        # Backoff pauses go through this hook: ``time.sleep`` for real
        # deployments, a virtual clock's ``sleep`` under the serving
        # simulation (no wall-clock calls in deterministic campaigns).
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = rng  # jitter source for policy.backoff_seconds
        # Live view of the running program's state dict, for integrity
        # boundary hooks (e.g. the RF eviction sweep) that need to see
        # the current residents mid-keyswitch.
        self.state: dict | None = None

    def _checkpoint(self, state: dict, step: int,
                    stats: RecoveryStats) -> Checkpoint:
        ckpt = take_checkpoint(self.ctx, state, step,
                               label=f"step{step}",
                               verify=self.policy.verify_checkpoints)
        if self.cfg is not None:
            ckpt.cycles = checkpoint_cycles(ckpt, self.cfg)
            stats.checkpoint_cycles += ckpt.cycles
        stats.checkpoints_taken += 1
        stats.checkpoint_words += ckpt.size_words()
        obs.count("reliability.recovery.checkpoint_words",
                  ckpt.size_words())
        self.store.save(ckpt)
        return ckpt

    def _restore(self, ckpt: Checkpoint | None,
                 initial: Checkpoint, stats: RecoveryStats) -> tuple:
        """Restore the newest usable checkpoint, walking back as needed."""
        while ckpt is not None:
            try:
                state = restore_checkpoint(ckpt)
                stats.rollbacks += 1
                obs.count("reliability.recovery.rollbacks")
                return state, ckpt.step
            except FaultDetectedError:
                # The checkpoint itself is damaged: discard, walk back.
                self.store.drop_latest()
                ckpt = self.store.latest()
        state = restore_checkpoint(initial)
        stats.rollbacks += 1
        obs.count("reliability.recovery.rollbacks")
        return state, initial.step

    def run(self, steps, state: dict) -> tuple[dict, RecoveryStats]:
        """Execute ``steps`` over ``state``; returns (final state, stats).

        ``state`` is consumed (the executor works on restored copies
        after any rollback); the returned dict is the surviving state.
        """
        policy = self.policy
        stats = RecoveryStats()
        self.state = state
        initial = take_checkpoint(self.ctx, state, 0, label="initial",
                                  verify=policy.verify_checkpoints)
        executed: set[int] = set()
        # Retries are scoped to the faulting step: earlier steps replaying
        # cleanly after a rollback is expected, not progress against the
        # fault, so only repeated failures *at the same step* escalate.
        fault_counts: dict[int, int] = {}
        i = 0
        total = len(steps)
        while i <= total:
            name = steps[i][0] if i < total else "<output-commit>"
            try:
                if i == total:
                    # Output commit: the final state is about to leave the
                    # recovery domain, so verify every entry's seal - a
                    # fault after the last checkpoint would otherwise
                    # escape undetected into the program's results.
                    for entry_name, ct in state.items():
                        self.ctx.verify_integrity(
                            ct, f"output {entry_name!r}")
                    break
                fn = steps[i][1]
                fn(self.ctx, state)
                if i in executed:
                    stats.replayed_ops += 1
                    obs.count("reliability.recovery.replayed_ops")
                    if self.step_cycles is not None:
                        stats.replay_cycles += self.step_cycles[i]
                else:
                    executed.add(i)
                    stats.steps += 1
                i += 1
                if i < total and i % policy.checkpoint_every == 0:
                    self._checkpoint(state, i, stats)
            except FaultDetectedError as err:
                stats.detections += 1
                obs.count("reliability.recovery.detections")
                retries = fault_counts[i] = fault_counts.get(i, 0) + 1
                if retries <= policy.max_retries:
                    pause = policy.backoff_seconds(retries, self._rng)
                    if pause:
                        stats.backoff_seconds += pause
                        self._sleep(pause)
                    if retries > 1:
                        # The same step faulted again: the newest
                        # checkpoint is suspect; fall back to an older one.
                        self.store.drop_latest()
                    state, i = self._restore(self.store.latest(), initial,
                                             stats)
                    self.state = state
                elif stats.restarts < policy.max_restarts:
                    stats.restarts += 1
                    obs.count("reliability.recovery.restarts")
                    fault_counts.clear()
                    while self.store.drop_latest() is not None:
                        pass
                    state = restore_checkpoint(initial)
                    self.state = state
                    i = 0
                    # Restart replays everything already executed once.
                else:
                    stats.recovered = False
                    obs.count("reliability.recovery.unrecoverable")
                    raise UnrecoverableFaultError(
                        "fault persisted through checkpoint replays and "
                        "full restarts",
                        step=name, step_index=i,
                        detections=stats.detections,
                        restarts=stats.restarts,
                        max_retries=policy.max_retries,
                    ) from err
        return state, stats


# -- recovery-aware fault campaign -------------------------------------------


@dataclass
class RecoverySiteStats:
    """Per-injection-site outcome counts for the recovery campaign."""

    injected: int = 0
    recovered: int = 0    # detected, replayed, final output bit-identical
    aborted: int = 0      # detected but recovery exhausted every escalation
    undetected: int = 0   # no detector fired and the final output is wrong
    benign: int = 0       # no detector fired yet the output is still right
    replayed_ops: int = 0  # total step re-executions across this site's trials

    @property
    def detected(self) -> int:
        return self.recovered + self.aborted

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.detected if self.detected else 0.0

    @property
    def mean_ops_to_recover(self) -> float:
        return self.replayed_ops / self.recovered if self.recovered else 0.0


@dataclass
class RecoveryCampaignResult:
    """What the recovery-aware campaign measured."""

    seed: int
    faults: int
    sites: dict[str, RecoverySiteStats]
    clean_runs: int
    false_positives: int
    ops_per_run: int
    base_cycles_per_run: float     # cycle-model cost of one fault-free run
    checkpoint_cycles: float       # total resilience cost across all trials
    replay_cycles: float
    total_seconds: float
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def injected(self) -> int:
        return sum(s.injected for s in self.sites.values())

    @property
    def detected(self) -> int:
        return sum(s.detected for s in self.sites.values())

    @property
    def recovered(self) -> int:
        return sum(s.recovered for s in self.sites.values())

    @property
    def aborted(self) -> int:
        return sum(s.aborted for s in self.sites.values())

    @property
    def undetected(self) -> int:
        return sum(s.undetected for s in self.sites.values())

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.detected if self.detected else 0.0

    @property
    def overhead_fraction(self) -> float:
        """Resilience cycles over useful (fault-free program) cycles."""
        useful = self.base_cycles_per_run * max(1, self.injected)
        return (self.checkpoint_cycles + self.replay_cycles) / useful

    def report(self) -> str:
        from repro.analysis.report import format_table

        rows = []
        for site, s in self.sites.items():
            rows.append([
                site, s.injected, s.detected, s.recovered, s.aborted,
                s.undetected, f"{s.recovery_rate:.1%}",
                f"{s.mean_ops_to_recover:.1f}",
            ])
        table = format_table(
            ["site", "injected", "detected", "recovered", "aborted",
             "undetected", "rec rate", "ops/rec"],
            rows,
            title=f"Recovery campaign (seed={self.seed}, "
                  f"{self.ops_per_run} ops/run)",
        )
        lines = [
            table,
            "",
            f"totals: {self.recovered} recovered / {self.aborted} aborted / "
            f"{self.undetected} undetected of {self.injected} injected "
            f"({self.recovery_rate:.1%} of detected faults recovered)",
            f"clean runs: {self.clean_runs}, "
            f"{self.false_positives} false positives",
            f"replay overhead: {self.replay_cycles:,.0f} cycles replayed + "
            f"{self.checkpoint_cycles:,.0f} cycles of checkpoint traffic "
            f"({self.overhead_fraction:.2%} of "
            f"{self.base_cycles_per_run * max(1, self.injected):,.0f} "
            "useful cycles)",
            f"wall time: {self.total_seconds:.1f}s",
        ]
        return "\n".join(lines)


def _campaign_steps(rot_hint, ops_per_run: int):
    """Deterministic level-preserving program: alternate rotate and add.

    Rotations hit every detector boundary (operand verify, hint load,
    NTT checksums, the eviction sweep); adds are the quiet stretches
    where corruption can sit undetected until the next boundary -
    exactly the checkpoint-latency case recovery has to handle.
    """
    def rot(ctx, state):
        state["acc"] = ctx.rotate(state["acc"], 1, rot_hint)

    def add(ctx, state):
        state["acc"] = ctx.add(state["acc"], state["base"])

    return [(f"rot{i}" if i % 2 == 0 else f"add{i}", rot if i % 2 == 0
             else add) for i in range(ops_per_run)]


def _step_cycle_costs(steps, degree: int, level: int, cfg) -> list[float]:
    """Price each campaign step with the core cycle model."""
    from repro import ir
    from repro.core.cost import op_cost

    costs = []
    for name, _ in steps:
        kind = ir.ROTATE if name.startswith("rot") else ir.ADD
        op = ir.HomOp(kind=kind, level=level, result="t",
                      operands=("a",) if kind == ir.ROTATE else ("a", "b"),
                      hint_id="h" if kind == ir.ROTATE else None)
        costs.append(op_cost(cfg, op, degree).compute_cycles(cfg))
    return costs


def run_recovery_campaign(seed: int = 2022, faults: int = 1000,
                          degree: int = 128, max_level: int = 4,
                          ops_per_run: int = 8, checkpoint_every: int = 3,
                          clean_runs: int = 8,
                          policy: RecoveryPolicy | None = None,
                          ) -> RecoveryCampaignResult:
    """Inject one seeded fault per trial and measure end-to-end recovery.

    Each trial runs the same ``ops_per_run``-step rotate/add program
    under a :class:`RecoveringExecutor` with one corruption armed at a
    random step: ``limb`` faults hit the working accumulator, ``rf``
    faults a quiet register-file resident, ``ntt``/``hbm`` faults fire
    inside a keyswitch.  The trial's final ciphertext is compared
    bit-for-bit against the fault-free reference; recovered means the
    detectors fired *and* the replayed output matches exactly.

    A clean phase first proves the recovery machinery is inert on
    uncorrupted runs (zero detections, bit-identical output, only
    checkpoint overhead).  Everything flows from ``seed``.
    """
    from repro.core.config import ChipConfig
    from repro.fhe.ckks import CkksContext, CkksParams
    from repro.reliability import faults as _faults
    from repro.reliability import guards

    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    params = CkksParams(degree=degree, max_level=max_level, digits=1,
                        secret_hamming=max(8, degree // 16), seed=seed)
    ctx = CkksContext(params, policy=guards.ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    rot_hint = ctx.rotation_hint(sk, 1)
    cfg = ChipConfig()

    own_collector = not obs.is_enabled()
    collector = obs.enable() if own_collector else obs.active()
    collector.meta.update({"campaign": "recovery", "seed": seed,
                           "faults": faults, "degree": degree,
                           "ops_per_run": ops_per_run,
                           "checkpoint_every": checkpoint_every})

    acc = ctx.encrypt_values(
        sk, 0.5 * rng.standard_normal(params.slots))
    base = ctx.encrypt_values(
        sk, 0.5 * rng.standard_normal(params.slots))
    master = take_checkpoint(ctx, {"acc": acc, "base": base}, 0,
                             label="trial-start")

    steps = _campaign_steps(rot_hint, ops_per_run)
    step_cycles = _step_cycle_costs(steps, degree, max_level, cfg)
    base_cycles = sum(step_cycles)
    policy = policy or RecoveryPolicy(checkpoint_every=checkpoint_every)

    def executor():
        return RecoveringExecutor(ctx, policy, store=RingBufferStore(4),
                                  cfg=cfg, step_cycles=step_cycles)

    def evict_sweep(exe):
        """Keyswitch boundary: verify each RF resident being displaced."""
        def hook():
            if exe.state is None:
                return
            with obs.span("reliability.rf.evict_verify", "reliability"):
                for name, ct in exe.state.items():
                    ctx.verify_integrity(ct, f"rf evictee {name!r}")
        return hook

    def run_once(exe, trial_steps):
        integ = guards.IntegrityConfig(verify_hints=True, ntt_checksum=True,
                                       boundary_hook=evict_sweep(exe))
        with guards.integrity(integ):
            return exe.run(trial_steps, restore_checkpoint(master))

    # -- fault-free reference (and clean-phase false-positive check) --------
    exe = executor()
    state, ref_stats = run_once(exe, steps)
    if ref_stats.detections:
        raise FaultDetectedError(
            "reference run detected faults with no injector installed")
    reference = snapshot_ciphertext(state["acc"])

    false_positives = 0
    for _ in range(clean_runs):
        exe = executor()
        state, stats = run_once(exe, steps)
        if stats.detections or not np.array_equal(
                state["acc"].c0.data, reference.data0):
            false_positives += 1
            obs.count("reliability.recovery.campaign.false_positives")

    # -- injection trials ---------------------------------------------------
    sites = {site: RecoverySiteStats() for site in _faults.SITES}
    checkpoint_cycles = replay_cycles = 0.0
    injector = _faults.FaultInjector(seed=seed + 1)

    with _faults.injecting(injector):
        for trial in range(faults):
            site = _faults.SITES[trial % len(_faults.SITES)]
            stats_site = sites[site]
            fault_step = int(rng.integers(ops_per_run))
            if site in (_faults.NTT, _faults.HBM):
                # Keyswitch-internal faults need a rotate to fire in.
                fault_step -= fault_step % 2
            corrupt_c0 = bool(rng.random() < 0.5)
            skip = int(rng.integers(4)) if site == _faults.NTT else 0
            fired = [False]

            def with_fault(fn, _site=site, _skip=skip, _c0=corrupt_c0):
                def wrapped(ctx_, state_):
                    if not fired[0]:
                        fired[0] = True
                        if _site in (_faults.LIMB, _faults.RF):
                            target = (state_["acc"] if _site == _faults.LIMB
                                      else state_["base"])
                            half = target.c0 if _c0 else target.c1
                            injector.arm(_site)
                            injector.maybe_corrupt(_site, half.data)
                        else:
                            injector.arm(_site, skip=_skip)
                    fn(ctx_, state_)
                return wrapped

            trial_steps = list(steps)
            name, fn = trial_steps[fault_step]
            trial_steps[fault_step] = (name, with_fault(fn))

            exe = executor()
            aborted = False
            injected_before = injector.injected[site]
            try:
                state, stats = run_once(exe, trial_steps)
            except UnrecoverableFaultError:
                aborted = True
                stats = None
            injector._armed.pop(site, None)  # unfired arms are not faults
            if injector.injected[site] == injected_before:
                continue  # the opportunity never arose; not an injection
            stats_site.injected += 1

            if aborted:
                stats_site.aborted += 1
                obs.count(f"reliability.recovery.campaign.aborted.{site}")
                continue
            checkpoint_cycles += stats.checkpoint_cycles
            replay_cycles += stats.replay_cycles
            matches = (np.array_equal(state["acc"].c0.data, reference.data0)
                       and np.array_equal(state["acc"].c1.data,
                                          reference.data1))
            if stats.detections:
                if matches:
                    stats_site.recovered += 1
                    stats_site.replayed_ops += stats.replayed_ops
                    obs.count(
                        f"reliability.recovery.campaign.recovered.{site}")
                else:
                    # Detected but replay converged on a wrong answer:
                    # recovery failed even though it reported success.
                    stats_site.aborted += 1
                    obs.count(
                        f"reliability.recovery.campaign.aborted.{site}")
            elif matches:
                stats_site.benign += 1
            else:
                stats_site.undetected += 1
                obs.count(
                    f"reliability.recovery.campaign.undetected.{site}")

    counters = dict(collector.counters) if collector else {}
    if own_collector:
        obs.disable()

    return RecoveryCampaignResult(
        seed=seed, faults=faults, sites=sites, clean_runs=clean_runs,
        false_positives=false_positives, ops_per_run=ops_per_run,
        base_cycles_per_run=base_cycles,
        checkpoint_cycles=checkpoint_cycles, replay_cycles=replay_cycles,
        total_seconds=time.perf_counter() - t0, counters=counters,
    )
