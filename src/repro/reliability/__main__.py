"""Entry point: ``python -m repro.reliability`` runs the fault campaign.

Preferred over ``python -m repro.reliability.faults`` (which also works)
because executing the submodule directly makes runpy load a second
instance of it alongside the one the fhe hot paths import.
"""

from repro.reliability.faults import main

raise SystemExit(main())
