"""Runtime invariant guards and the per-context reliability policy.

Two pieces live here:

* :class:`ReliabilityPolicy` - per-:class:`~repro.fhe.ckks.CkksContext`
  knobs: strict vs graceful-degradation mode, live noise-budget
  threading, and ciphertext checksum sealing.  The ckks/bootstrap layers
  consult the policy on every ciphertext-consuming op.
* Guard helpers (:func:`check_same_basis`, :func:`check_scale_match`,
  :func:`check_min_level`, ...) - one call per invariant, raising the
  typed error with actionable context.  They are plain functions so the
  fhe hot paths pay a function call, not an abstraction.

A module-level *integrity switch* (like ``repro.obs``'s collector
switch) turns on the checks that live below the context layer: keyswitch
hint-row verification and NTT re-execution spot checks.  It is off by
default, so untraced runs pay a single ``is None`` test.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.reliability.errors import (
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
    ScaleMismatchError,
)

STRICT = "strict"
DEGRADE = "degrade"


@dataclass
class ReliabilityPolicy:
    """How a CkksContext reacts when an invariant is about to break.

    ``mode``:

    * ``"strict"`` (default) - every violated invariant raises its typed
      error; exhausting the modulus chain raises
      :class:`NoiseBudgetExhaustedError` instead of silently producing
      garbage.
    * ``"degrade"`` - the context repairs what it can: a multiply whose
      scale would overflow the live modulus gets a rescale auto-inserted
      first, and an op that needs a level the ciphertext no longer has
      triggers an automatic bootstrap (requires a bootstrapper
      registered via :meth:`CkksContext.set_bootstrapper`).  Every
      repair is counted (``reliability.auto_rescale`` /
      ``reliability.auto_bootstrap``) and spanned so it shows up in
      traces - decryption failure becomes a recoverable, observable
      event.

    ``track_noise`` threads a live :class:`~repro.fhe.noise.NoiseBudget`
    through every ciphertext so headroom is visible (and enforced in
    strict mode) *before* decryption fails.  ``checksums`` seals every
    produced ciphertext with per-limb checksums and verifies operands at
    keyswitch boundaries (see `repro.reliability.checksums`).
    """

    mode: str = STRICT
    track_noise: bool = False
    checksums: bool = False
    # Degradation details: bootstrap whenever an op would need to go
    # below this level, and keep this many headroom bits before deciding
    # a multiply's scale no longer fits the live modulus.
    min_level: int = 1
    headroom_margin_bits: float = 2.0

    def __post_init__(self):
        if self.mode not in (STRICT, DEGRADE):
            raise ParameterError(
                f"unknown reliability mode {self.mode!r}",
                expected=f"{STRICT!r} or {DEGRADE!r}",
            )
        if self.min_level < 1:
            raise ParameterError("min_level must be >= 1",
                                 min_level=self.min_level)

    @property
    def degrade(self) -> bool:
        return self.mode == DEGRADE


# -- invariant guard helpers -------------------------------------------------


def check_same_basis(a, b, op: str) -> None:
    """Operands of a binary ciphertext op must share level and basis."""
    if a.basis != b.basis:
        raise LevelMismatchError(
            f"{op} operands live in different RNS bases; align with "
            "drop_to_level()/mod_drop() first",
            op=op, left_level=a.level, right_level=b.level,
        )


def check_scale_match(a, b, op: str, tolerance: float) -> None:
    """Adding values at diverged scales silently corrupts the sum."""
    if abs(a.scale - b.scale) > tolerance * a.scale:
        raise ScaleMismatchError(
            f"{op} operands have mismatched scales; rescale or re-encode "
            "one of them first",
            op=op, left_scale=f"{a.scale:.6g}", right_scale=f"{b.scale:.6g}",
        )


def check_min_level(ct, needed: int, op: str) -> None:
    """An op that consumes levels needs them to still exist."""
    if ct.level < needed:
        raise NoiseBudgetExhaustedError(
            f"{op} needs level >= {needed} but the ciphertext is at level "
            f"{ct.level}; bootstrap to restore budget (or use a context in "
            "'degrade' mode with a registered bootstrapper)",
            op=op, level=ct.level, needed=needed,
        )


def check_eval_domain(poly, op: str) -> None:
    if poly.domain != "eval":
        raise ParameterError(
            f"{op} requires EVAL-domain input; call to_eval() first",
            op=op, domain=poly.domain,
        )


# -- module-level integrity switch ------------------------------------------


@dataclass
class IntegrityConfig:
    """What the sub-context layers verify while the switch is on.

    ``verify_hints`` checks per-limb checksums of keyswitch-hint rows as
    they are loaded (the HBM-transfer trust boundary);
    ``ntt_checksum`` verifies the end-of-op transform checksum after
    every NTT/iNTT - an O(N) linearity invariant (see
    ``NttContext.verify_transform``) that deterministically catches any
    single corrupted output word, closing the butterfly-fault detection
    gap the re-execution spot check left;
    ``ntt_recheck_every`` re-executes every k-th NTT and compares (a
    double-execution spot check that also covers multi-word corruptions;
    0 disables);
    ``boundary_hook`` is invoked at every keyswitch boundary - the
    natural detection point for register-file residents about to be
    displaced by the keyswitch working set.  Fault campaigns install an
    eviction sweep here that re-verifies each evictee's seal before its
    words would be written back.
    """

    verify_hints: bool = True
    ntt_checksum: bool = True
    ntt_recheck_every: int = 0
    boundary_hook: object | None = None  # callable () -> None
    # Running transform count; the NTT layer increments it so "every k-th"
    # is deterministic per integrity scope, not per process.
    ntt_calls: int = 0


_integrity: IntegrityConfig | None = None


def enable_integrity(config: IntegrityConfig | None = None) -> IntegrityConfig:
    """Turn on sub-context integrity checks; returns the active config."""
    global _integrity
    _integrity = config or IntegrityConfig()
    return _integrity


def disable_integrity() -> IntegrityConfig | None:
    global _integrity
    config, _integrity = _integrity, None
    return config


def integrity_active() -> IntegrityConfig | None:
    """The live integrity config, or None when checks are off."""
    return _integrity


def keyswitch_boundary() -> None:
    """Fire the active config's boundary hook (keyswitch detection point).

    Called by `repro.fhe.keyswitch` after each hint application; a hook
    that finds corruption raises :class:`FaultDetectedError`, which
    propagates out of the consuming homomorphic op.  One ``is None``
    test when integrity checking is off.
    """
    config = _integrity
    if config is not None and config.boundary_hook is not None:
        config.boundary_hook()


@contextmanager
def integrity(config: IntegrityConfig | None = None):
    """Scoped integrity checking; restores the previous state on exit."""
    global _integrity
    previous = _integrity
    _integrity = config or IntegrityConfig()
    try:
        yield _integrity
    finally:
        _integrity = previous
