"""Per-limb modular checksums: cheap corruption detection for RNS data.

An RNS polynomial is a matrix of residue rows ("limbs"); the checksum of
limb i is the sum of its N residue words mod q_i.  Summing uint64 words
whose values are < 2^31 keeps the accumulator exact up to N = 2^33, and a
single corrupted word (any bit flip below the modulus width) changes its
row sum by a nonzero delta mod q_i - so per-word corruption is detected
with certainty, at the cost of one vector add per limb.  This is the
software analogue of the residue-checksum spot checks a hardened
accelerator would run where data crosses a trust boundary: here, at
keyswitch boundaries (`repro.fhe.keyswitch`) and on sealed ciphertexts
(`repro.fhe.ckks` with ``ReliabilityPolicy.checksums``).

The functions take raw ``(L, N)`` residue matrices plus their moduli so
that this module depends on nothing above numpy (the fhe layer imports
it, not the other way around).
"""

from __future__ import annotations

import numpy as np

from repro.obs import collector as obs


def limb_checksums(data: np.ndarray, moduli) -> np.ndarray:
    """Column vector of per-limb checksums: ``sum(row) mod q_i``.

    ``data`` is an (L, N) uint64 residue matrix; ``moduli`` an iterable
    of the L moduli.  Exact for residues < 2^31 and N <= 2^33.
    """
    sums = data.sum(axis=1, dtype=np.uint64)
    q = np.asarray(list(moduli), dtype=np.uint64)
    return sums % q


def mismatched_limbs(data: np.ndarray, moduli,
                     reference: np.ndarray) -> list[int]:
    """Indices of limbs whose current checksum differs from ``reference``."""
    current = limb_checksums(data, moduli)
    return [int(i) for i in np.nonzero(current != reference)[0]]


def verify_limbs(data: np.ndarray, moduli, reference: np.ndarray,
                 what: str = "rns data") -> None:
    """Raise :class:`FaultDetectedError` if any limb checksum mismatches.

    Emits ``reliability.checksum.verified`` / ``.mismatch`` counters so
    fault-injection campaigns can measure detection rates and clean runs
    can prove zero false positives.
    """
    from repro.reliability.errors import FaultDetectedError

    bad = mismatched_limbs(data, moduli, reference)
    if bad:
        obs.count("reliability.checksum.mismatch")
        raise FaultDetectedError(
            f"limb checksum mismatch in {what}", limbs=bad,
        )
    obs.count("reliability.checksum.verified")
