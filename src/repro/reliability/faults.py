"""Deterministic, seeded fault injection and the detection campaign.

ARK and BTS both observe that deep bootstrap pipelines with on-the-fly
data generation make *silent state corruption* the dominant correctness
risk: a single flipped residue word anywhere in the datapath decrypts to
plausible-looking garbage.  This module measures how much of that risk
the cheap defenses in `repro.reliability.checksums` and
`repro.reliability.guards` actually retire.

Four injection sites, mirroring where data lives on a CraterLake-style
chip:

* ``limb``  - residue words of a ciphertext operand (register-file or
  scratch data corrupted at rest, caught by operand checksums verified
  at keyswitch boundaries);
* ``ntt``   - an NTT butterfly output *inside* a keyswitch (a compute
  fault, caught deterministically by the end-of-op transform checksum -
  see ``NttContext.verify_transform``);
* ``rf``    - residue words of a random register-file *resident* (a
  live ciphertext not consumed next; caught by the eviction sweep the
  keyswitch boundary hook runs over the resident pool, modeling
  verify-on-evict of the words the keyswitch working set displaces);
* ``hbm``   - keyswitch-hint rows as they are loaded (a transfer fault,
  caught by hint checksums verified on arrival).

The :class:`FaultInjector` is installed like an obs collector (module
switch, :func:`injecting` scope) and is consulted from the NTT and
keyswitch hot paths; with no injector installed those checks are a
single ``is None`` test.  All randomness flows from one seed, so a
campaign is exactly reproducible.

Run the acceptance campaigns from the command line::

    PYTHONPATH=src python -m repro.reliability --faults 1000
    PYTHONPATH=src python -m repro.reliability --recovery --faults 1000
    PYTHONPATH=src python -m repro.reliability --check

The first exits nonzero unless limb-corruption detection >= 95% and a
clean run produced zero false positives; ``--recovery`` runs the
checkpoint/replay campaign (`repro.reliability.recovery`); ``--check``
reruns both at the parameters pinned in ``tests/reliability/
baseline.json`` and exits nonzero if any site's detection or recovery
rate regressed below the committed baseline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.obs import collector as obs
from repro.reliability import guards
from repro.reliability.checksums import limb_checksums
from repro.reliability.errors import FaultDetectedError, ParameterError

LIMB = "limb"
NTT = "ntt"
RF = "rf"
HBM = "hbm"
SITES = (LIMB, NTT, RF, HBM)

# Pod-level failure domains (`repro.pod`): whole-chip fail-stop and
# interconnect-link corruption.  Kept out of ``SITES`` deliberately -
# the single-chip campaigns round-robin ``SITES`` by trial index, so
# extending that tuple would silently reshuffle every committed
# baseline.  ``ALL_SITES`` is the validation universe.
CHIP = "chip"
LINK = "link"
POD_SITES = (CHIP, LINK)
ALL_SITES = SITES + POD_SITES


class FaultInjector:
    """Seeded single-bit corruptions at configurable per-site rates.

    Two operating modes, usable together:

    * **rate mode** - every call to :meth:`maybe_corrupt` fires with the
      site's configured probability (``rates[site]``);
    * **armed mode** - :meth:`arm` schedules exactly one corruption at
      the site's (skip+1)-th upcoming opportunity, which is what the
      campaign uses to attribute detections to injections one-to-one.

    Corruption flips one uniformly chosen bit (below ``max_bit``) of one
    uniformly chosen word of the target array, in place.
    """

    def __init__(self, seed: int = 2022,
                 rates: dict[str, float] | None = None, max_bit: int = 28):
        for site in (rates or {}):
            if site not in ALL_SITES:
                raise ParameterError(f"unknown fault site {site!r}",
                                     known=ALL_SITES)
        self.rng = np.random.default_rng(seed)
        self.rates = dict.fromkeys(ALL_SITES, 0.0)
        self.rates.update(rates or {})
        self.max_bit = max_bit
        self.injected = dict.fromkeys(ALL_SITES, 0)
        self._armed: dict[str, list[int]] = {}

    def arm(self, site: str, skip: int = 0, count: int = 1) -> None:
        """Schedule corruption at ``site``'s (skip+1)-th opportunity.

        ``count`` > 1 models a *stubborn* fault: the corruption repeats
        for that many consecutive opportunities (e.g. a link that keeps
        flipping bits across retransmits) before the arm clears.
        """
        self._armed[site] = [skip, count]

    @property
    def pending(self) -> bool:
        return bool(self._armed)

    def _armed_fires(self, site: str) -> bool:
        pending = self._armed[site]
        if pending[0] > 0:
            pending[0] -= 1
            return False
        pending[1] -= 1
        if pending[1] <= 0:
            del self._armed[site]
        return True

    def maybe_corrupt(self, site: str, data: np.ndarray) -> bool:
        """Corrupt ``data`` in place if this opportunity fires."""
        if site in self._armed:
            if not self._armed_fires(site):
                return False
        elif not (self.rates[site] and self.rng.random() < self.rates[site]):
            return False
        # Index through unravel_index rather than reshape(-1): reshape
        # returns a *copy* for non-contiguous inputs, which would consume
        # the arm while silently dropping the corruption.  For contiguous
        # arrays this picks the identical word (both use C order).
        word = int(self.rng.integers(data.size))
        bit = np.uint64(1) << np.uint64(self.rng.integers(self.max_bit))
        data[np.unravel_index(word, data.shape)] ^= bit
        self.injected[site] += 1
        obs.count(f"reliability.faults.injected.{site}")
        return True

    def fires(self, site: str) -> bool:
        """Data-less fault opportunity: does ``site`` fire here?

        Same arm/rate semantics as :meth:`maybe_corrupt` but without a
        payload to damage - used for fail-stop events (a pod chip dying
        has no array to flip a bit in, the chip simply stops).
        """
        if site in self._armed:
            if not self._armed_fires(site):
                return False
        elif not (self.rates[site] and self.rng.random() < self.rates[site]):
            return False
        self.injected[site] += 1
        obs.count(f"reliability.faults.injected.{site}")
        return True


# -- module-level switch (same shape as the obs collector) -------------------

_injector: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    global _injector
    _injector = injector
    return injector


def uninstall() -> FaultInjector | None:
    global _injector
    injector, _injector = _injector, None
    return injector


def active_injector() -> FaultInjector | None:
    return _injector


@contextmanager
def injecting(injector: FaultInjector):
    """Scoped installation; restores the previous injector on exit."""
    global _injector
    previous = _injector
    _injector = injector
    try:
        yield injector
    finally:
        _injector = previous


# -- campaign ----------------------------------------------------------------


@dataclass
class SiteStats:
    injected: int = 0
    detected: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.injected if self.injected else 0.0


@dataclass
class CampaignResult:
    """Per-site detection rates plus the cost of the detection machinery."""

    seed: int
    faults: int
    sites: dict[str, SiteStats]
    clean_ops: int
    false_positives: int
    total_seconds: float
    check_seconds: float  # wall time inside checksum/recheck machinery
    counters: dict[str, float] = field(default_factory=dict)

    def detection_rate(self, site: str) -> float:
        return self.sites[site].detection_rate

    @property
    def overhead_fraction(self) -> float:
        return self.check_seconds / self.total_seconds if self.total_seconds else 0.0

    def report(self) -> str:
        from repro.analysis.report import format_table

        rows = [
            [site, s.injected, s.detected, f"{s.detection_rate:.1%}"]
            for site, s in self.sites.items()
        ]
        table = format_table(
            ["site", "injected", "detected", "rate"], rows,
            title=f"Fault-injection campaign (seed={self.seed})",
        )
        lines = [
            table,
            "",
            f"clean run: {self.clean_ops} keyswitch ops, "
            f"{self.false_positives} false positives",
            f"detection overhead: {self.check_seconds * 1e3:.1f} ms of "
            f"{self.total_seconds * 1e3:.1f} ms "
            f"({self.overhead_fraction:.1%} of campaign wall time)",
        ]
        return "\n".join(lines)


_CHECK_SPANS = ("reliability.checksum.seal", "reliability.checksum.verify",
                "reliability.ntt.recheck", "reliability.ntt.checksum",
                "reliability.hint.verify", "reliability.rf.evict_verify")


def _check_seconds(collector) -> float:
    totals = collector.span_totals()
    return sum(totals[name][1] for name in _CHECK_SPANS if name in totals)


def run_campaign(seed: int = 2022, faults: int = 1000, degree: int = 256,
                 max_level: int = 6, pool_size: int = 8, clean_ops: int = 64,
                 ntt_recheck_every: int = 0) -> CampaignResult:
    """Inject ``faults`` seeded corruptions and measure what gets caught.

    Builds one CKKS context with checksum sealing on, a pool of
    ``pool_size`` resident ciphertexts, and one rotation hint; then
    round-robins the four sites, arming exactly one corruption per trial
    and consuming a ciphertext through a keyswitch (the detection
    boundary).  Register-file residents are covered by the eviction
    sweep installed as the keyswitch boundary hook; NTT butterflies by
    the end-of-op transform checksum.  A clean phase first proves the
    detectors are silent on uncorrupted data.

    Everything is driven by ``seed``; two runs with the same arguments
    produce identical numbers.
    """
    # Deferred: the fhe layer imports reliability modules at module level,
    # so the campaign (which needs a live CKKS context) imports it lazily.
    from repro.fhe.ckks import CkksContext, CkksParams

    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    params = CkksParams(degree=degree, max_level=max_level, digits=1,
                        secret_hamming=max(8, degree // 16), seed=seed)
    policy = guards.ReliabilityPolicy(checksums=True)
    ctx = CkksContext(params, policy=policy)
    sk = ctx.keygen()
    rot = ctx.rotation_hint(sk, 1)

    own_collector = not obs.is_enabled()
    collector = obs.enable() if own_collector else obs.active()
    collector.meta.setdefault("campaign", "detection")
    collector.meta.update(seed=seed, faults=faults, degree=degree)

    def fresh(i: int):
        vals = 0.5 * rng.standard_normal(params.slots)
        return ctx.encrypt_values(sk, vals)

    pool = [fresh(i) for i in range(pool_size)]

    def evict_sweep():
        # Keyswitch boundary: its working set displaces the register
        # file, so every resident's words are about to be written back -
        # verify each seal on the way out.
        with obs.span("reliability.rf.evict_verify", "reliability"):
            for resident in pool:
                ctx.verify_integrity(resident, "rf evictee")

    integrity = guards.IntegrityConfig(verify_hints=True, ntt_checksum=True,
                                       ntt_recheck_every=ntt_recheck_every,
                                       boundary_hook=evict_sweep)

    stats = {site: SiteStats() for site in SITES}
    false_positives = 0
    injector = FaultInjector(seed=seed + 1)

    try:
        with guards.integrity(integrity):
            # -- clean phase: the detectors must stay silent ----------------
            for i in range(clean_ops):
                try:
                    ctx.rotate(pool[i % pool_size], 1, rot)
                except FaultDetectedError:
                    false_positives += 1
                    obs.count("reliability.campaign.false_positives")

            # -- injection phase -------------------------------------------
            with injecting(injector):
                for trial in range(faults):
                    site = SITES[trial % len(SITES)]
                    idx = int(rng.integers(pool_size))
                    victim = pool[idx]
                    half = victim.c0 if rng.random() < 0.5 else victim.c1
                    snapshot = half.data.copy()
                    detected = False

                    if site in (LIMB, RF):
                        injector.arm(site)
                        injector.maybe_corrupt(site, half.data)
                        stats[site].injected += 1
                        if site == LIMB:
                            # Corrupted operand consumed at the very next
                            # keyswitch: full operand verification.
                            try:
                                ctx.rotate(victim, 1, rot)
                            except FaultDetectedError:
                                detected = True
                        else:
                            # Corrupted *resident*: some other ciphertext's
                            # keyswitch displaces the register file, and the
                            # boundary hook's eviction sweep checks every
                            # resident's seal on the way out.
                            other = pool[(idx + 1) % pool_size]
                            try:
                                ctx.rotate(other, 1, rot)
                            except FaultDetectedError:
                                detected = True
                    else:
                        # Compute (ntt) / transfer (hbm) faults fire inside
                        # the keyswitch of an otherwise clean rotation.
                        skip = int(rng.integers(8)) if site == NTT else 0
                        injector.arm(site, skip=skip)
                        try:
                            ctx.rotate(victim, 1, rot)
                        except FaultDetectedError:
                            detected = True
                        # The op may offer fewer opportunities than ``skip``;
                        # an unfired arm is not an injection.
                        if injector._armed.pop(site, None) is None:
                            stats[site].injected += 1
                        else:
                            continue

                    if detected:
                        stats[site].detected += 1
                        obs.count(f"reliability.campaign.detected.{site}")
                    else:
                        obs.count(f"reliability.campaign.undetected.{site}")
                    half.data[:] = snapshot  # heal the pool for the next trial
                    ctx.seal(victim)
    finally:
        counters = dict(collector.counters) if collector else {}
        check_s = _check_seconds(collector) if collector else 0.0
        if own_collector:
            obs.disable()

    return CampaignResult(
        seed=seed, faults=faults, sites=stats, clean_ops=clean_ops,
        false_positives=false_positives,
        total_seconds=time.perf_counter() - t0,
        check_seconds=check_s, counters=counters,
    )


DEFAULT_BASELINE = "tests/reliability/baseline.json"


def check_against_baseline(baseline_path) -> int:
    """Rerun both campaigns at the baseline's pinned parameters and fail
    (nonzero) if any site's detection or recovery rate regressed."""
    import json
    from pathlib import Path

    from repro.reliability import recovery as _recovery

    baseline = json.loads(Path(baseline_path).read_text())
    failures = []

    det_base = baseline["detection"]
    det = run_campaign(**det_base["params"])
    print(det.report())
    print()
    if det.false_positives:
        failures.append(f"detection: {det.false_positives} false positives")
    for site, want in det_base["rates"].items():
        got = det.detection_rate(site)
        if got < want:
            failures.append(
                f"detection[{site}]: {got:.1%} < baseline {want:.1%}")

    rec_base = baseline["recovery"]
    rec = _recovery.run_recovery_campaign(**rec_base["params"])
    print(rec.report())
    print()
    if rec.false_positives:
        failures.append(f"recovery: {rec.false_positives} false positives")
    if rec.recovery_rate < rec_base["recovery_rate"]:
        failures.append(f"recovery rate: {rec.recovery_rate:.1%} < baseline "
                        f"{rec_base['recovery_rate']:.1%}")
    for site, want in rec_base.get("detection_rates", {}).items():
        s = rec.sites[site]
        got = s.detected / s.injected if s.injected else 0.0
        if got < want:
            failures.append(
                f"recovery-detection[{site}]: {got:.1%} < baseline {want:.1%}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: detection and recovery rates at or above {baseline_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Seeded fault-injection campaigns over the CKKS "
                    "substrate (detection by default)")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--faults", type=int, default=1000)
    parser.add_argument("--degree", type=int, default=256)
    parser.add_argument("--max-level", type=int, default=6)
    parser.add_argument("--assert-limb-detection", type=float, default=0.95,
                        help="exit nonzero if limb detection falls below this")
    parser.add_argument("--recovery", action="store_true",
                        help="run the checkpoint/replay recovery campaign "
                             "instead of the detection campaign")
    parser.add_argument("--assert-recovery", type=float, default=0.95,
                        help="with --recovery: exit nonzero if the fraction "
                             "of detected faults recovered falls below this")
    parser.add_argument("--check", action="store_true",
                        help="regression-check both campaigns against the "
                             "committed baseline JSON and exit nonzero on "
                             "any rate drop")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON for --check "
                             f"(default: {DEFAULT_BASELINE})")
    args = parser.parse_args(argv)

    if args.check:
        return check_against_baseline(args.baseline)

    if args.recovery:
        from repro.reliability import recovery as _recovery

        result = _recovery.run_recovery_campaign(
            seed=args.seed, faults=args.faults, degree=args.degree,
            max_level=args.max_level)
        print(result.report())
        ok = True
        if result.false_positives:
            print(f"FAIL: {result.false_positives} false positives on "
                  "clean runs")
            ok = False
        if result.recovery_rate < args.assert_recovery:
            print(f"FAIL: recovery rate {result.recovery_rate:.1%} < "
                  f"{args.assert_recovery:.0%}")
            ok = False
        if ok:
            print(f"OK: {result.recovered}/{result.detected} detected "
                  f"faults recovered ({result.recovery_rate:.1%}), "
                  "zero false positives")
        return 0 if ok else 1

    result = run_campaign(seed=args.seed, faults=args.faults,
                          degree=args.degree, max_level=args.max_level)
    print(result.report())

    ok = True
    if result.false_positives:
        print(f"FAIL: {result.false_positives} false positives on clean run")
        ok = False
    limb_rate = result.detection_rate(LIMB)
    if limb_rate < args.assert_limb_detection:
        print(f"FAIL: limb detection {limb_rate:.1%} < "
              f"{args.assert_limb_detection:.0%}")
        ok = False
    if ok:
        print(f"OK: limb detection {limb_rate:.1%}, zero false positives")
    return 0 if ok else 1


if __name__ == "__main__":
    # ``python -m`` executes this file as ``__main__``, a *second* instance
    # of the module; the fhe hot paths consult the canonical one's injector
    # switch, so delegate to it.
    from repro.reliability.faults import main as _canonical_main

    raise SystemExit(_canonical_main())
