"""Pre-flight validation: reject unschedulable configs and broken programs.

`ChipConfig.__post_init__` catches per-field nonsense at construction;
this pass catches what only the config/program *pairing* reveals - a
register file too small to hold one ciphertext, a ring degree above the
chip's native maximum, keyswitch digit counts exceeding an op's level,
operands consumed before anything defines them.  The simulator runs it
before executing a single op, so a bad setup fails in microseconds with
an actionable message instead of deep inside `repro.core.cost` with a
division by zero or a silently wrong cycle count.

All checks are O(ops) and allocation-free; `simulate` calls
:func:`validate_program` unconditionally.
"""

from __future__ import annotations

from repro.reliability.errors import ConfigError, ScheduleError


def validate_config(cfg) -> None:
    """Config-only checks beyond dataclass field validation.

    ``ChipConfig.__post_init__`` already enforces field sanity; this
    hook exists for checks that need derived quantities and for callers
    validating configs built outside the dataclass (tests, sweeps).

    Also accepts a serving config (`repro.serve.config.ServeConfig`,
    recognized structurally by its ``queue_depth`` field) and rejects
    nonsensical serving setups - a zero-depth queue, a non-positive
    deadline, a packing block that does not tile the slot count - with
    the same :class:`ConfigError` family, so one pre-flight entry point
    covers both the chip and the front-end in front of it.
    """
    if hasattr(cfg, "queue_depth"):
        _validate_serve_config(cfg)
        return
    if cfg.hbm_words_per_cycle <= 0:
        raise ConfigError(
            "config has no HBM bandwidth; nothing can stream",
            config=cfg.name, hbm_phys=cfg.hbm_phys,
            gbps_per_phy=cfg.hbm_gbps_per_phy,
        )
    if cfg.register_file_words < 1:
        raise ConfigError(
            "register file rounds to zero words",
            config=cfg.name, register_file_mb=cfg.register_file_mb,
        )


def _validate_serve_config(cfg) -> None:
    """Reject serving configs that cannot possibly serve.

    Structural sanity only (the knobs' value ranges); capacity checks
    that need the CKKS instantiation (block vs slot count) live here too
    because they are pure arithmetic over config fields.
    """
    if cfg.queue_depth < 1:
        raise ConfigError(
            "serve queue depth must be >= 1; a zero-depth queue sheds "
            "every request", queue_depth=cfg.queue_depth)
    if cfg.default_deadline_s <= 0:
        raise ConfigError(
            "default deadline must be positive virtual seconds",
            default_deadline_s=cfg.default_deadline_s)
    if cfg.degree & (cfg.degree - 1) or cfg.degree < 8:
        raise ConfigError("serve degree must be a power of two >= 8",
                          degree=cfg.degree)
    slots = cfg.degree // 2
    if cfg.block_slots < 2 or cfg.block_slots & (cfg.block_slots - 1):
        raise ConfigError(
            "block_slots must be a power of two >= 2 (the rotate-and-"
            "accumulate reduction halves the stride each step)",
            block_slots=cfg.block_slots)
    if cfg.block_slots > slots:
        raise ConfigError(
            "one tenant block cannot exceed the ciphertext slot count",
            block_slots=cfg.block_slots, slots=slots)
    if cfg.max_batch < 1 or cfg.max_batch > slots // cfg.block_slots:
        raise ConfigError(
            "max_batch must fit the ciphertext's block capacity",
            max_batch=cfg.max_batch, capacity=slots // cfg.block_slots)
    if cfg.max_level < 5:
        raise ConfigError(
            "serving workloads need at least 5 levels: the deepest kind "
            "consumes 3 rescales and must still end at level >= 2 - at "
            "level 1 the last modulus roughly equals the scale, leaving "
            "a ~0.5 representable range that real scores silently wrap "
            "around", max_level=cfg.max_level)
    if cfg.batch_window_s < 0:
        raise ConfigError("batch window cannot be negative",
                          batch_window_s=cfg.batch_window_s)
    if not 0.0 < cfg.degrade_watermark <= 1.0:
        raise ConfigError(
            "degrade watermark is a fraction of queue_depth in (0, 1]",
            degrade_watermark=cfg.degrade_watermark)
    if cfg.max_retries < 0:
        raise ConfigError("max_retries must be >= 0",
                          max_retries=cfg.max_retries)
    if cfg.backoff_base_s < 0 or cfg.backoff_factor < 1:
        raise ConfigError(
            "backoff needs base >= 0 and factor >= 1",
            backoff_base_s=cfg.backoff_base_s,
            backoff_factor=cfg.backoff_factor)
    if not 0.0 <= cfg.backoff_jitter < 1.0:
        raise ConfigError("backoff jitter is a fraction in [0, 1)",
                          backoff_jitter=cfg.backoff_jitter)
    if cfg.breaker_threshold < 1:
        raise ConfigError(
            "breaker opens after K >= 1 consecutive failures",
            breaker_threshold=cfg.breaker_threshold)
    if cfg.breaker_cooldown_s < 0:
        raise ConfigError("breaker cooldown cannot be negative",
                          breaker_cooldown_s=cfg.breaker_cooldown_s)
    if cfg.checkpoint_every < 1:
        raise ConfigError("checkpoint_every must be >= 1",
                          checkpoint_every=cfg.checkpoint_every)


def validate_program(program, cfg) -> None:
    """Reject a (program, config) pairing the simulator cannot honor."""
    from repro.core.cost import ciphertext_words
    from repro.ir import HOIST_MODUP, INPUT, KEYSWITCH_KINDS, OUTPUT

    validate_config(cfg)

    if program.degree > cfg.max_degree:
        raise ConfigError(
            f"{program.name} uses N={program.degree}, above {cfg.name}'s "
            f"native maximum {cfg.max_degree}",
            program=program.name, config=cfg.name,
        )

    ct_words = ciphertext_words(program.degree, 1)
    if cfg.register_file_words < ct_words:
        raise ConfigError(
            f"register file ({cfg.register_file_words} words) cannot hold "
            f"even a level-1 ciphertext ({ct_words} words) at "
            f"N={program.degree}; the schedule would thrash every operand",
            program=program.name, config=cfg.name,
        )

    defined: set[str] = set()
    for i, op in enumerate(program.ops):
        if op.level > program.max_level:
            raise ScheduleError(
                f"op {i} ({op.kind}) runs at level {op.level}, above the "
                f"program's declared max {program.max_level}",
                program=program.name, op=i,
            )
        if (op.kind in KEYSWITCH_KINDS or op.kind == HOIST_MODUP) \
                and op.digits > op.level:
            raise ScheduleError(
                f"op {i} ({op.kind}) asks for {op.digits}-digit "
                f"keyswitching at level {op.level}; digits cannot exceed "
                "the live level",
                program=program.name, op=i, digits=op.digits,
                level=op.level,
            )
        if op.kind not in (INPUT,):
            for operand in op.operands:
                if operand not in defined:
                    raise ScheduleError(
                        f"op {i} ({op.kind}) consumes {operand!r} before "
                        "any op defines it; the stream is not in dataflow "
                        "order",
                        program=program.name, op=i, operand=operand,
                    )
        if op.kind != OUTPUT:
            defined.add(op.result)
