"""Pre-flight validation: reject unschedulable configs and broken programs.

`ChipConfig.__post_init__` catches per-field nonsense at construction;
this pass catches what only the config/program *pairing* reveals - a
register file too small to hold one ciphertext, a ring degree above the
chip's native maximum, keyswitch digit counts exceeding an op's level,
operands consumed before anything defines them.  The simulator runs it
before executing a single op, so a bad setup fails in microseconds with
an actionable message instead of deep inside `repro.core.cost` with a
division by zero or a silently wrong cycle count.

All checks are O(ops) and allocation-free; `simulate` calls
:func:`validate_program` unconditionally.
"""

from __future__ import annotations

from repro.reliability.errors import ConfigError, ScheduleError


def validate_config(cfg) -> None:
    """Config-only checks beyond dataclass field validation.

    ``ChipConfig.__post_init__`` already enforces field sanity; this
    hook exists for checks that need derived quantities and for callers
    validating configs built outside the dataclass (tests, sweeps).
    """
    if cfg.hbm_words_per_cycle <= 0:
        raise ConfigError(
            "config has no HBM bandwidth; nothing can stream",
            config=cfg.name, hbm_phys=cfg.hbm_phys,
            gbps_per_phy=cfg.hbm_gbps_per_phy,
        )
    if cfg.register_file_words < 1:
        raise ConfigError(
            "register file rounds to zero words",
            config=cfg.name, register_file_mb=cfg.register_file_mb,
        )


def validate_program(program, cfg) -> None:
    """Reject a (program, config) pairing the simulator cannot honor."""
    from repro.core.cost import ciphertext_words
    from repro.ir import HOIST_MODUP, INPUT, KEYSWITCH_KINDS, OUTPUT

    validate_config(cfg)

    if program.degree > cfg.max_degree:
        raise ConfigError(
            f"{program.name} uses N={program.degree}, above {cfg.name}'s "
            f"native maximum {cfg.max_degree}",
            program=program.name, config=cfg.name,
        )

    ct_words = ciphertext_words(program.degree, 1)
    if cfg.register_file_words < ct_words:
        raise ConfigError(
            f"register file ({cfg.register_file_words} words) cannot hold "
            f"even a level-1 ciphertext ({ct_words} words) at "
            f"N={program.degree}; the schedule would thrash every operand",
            program=program.name, config=cfg.name,
        )

    defined: set[str] = set()
    for i, op in enumerate(program.ops):
        if op.level > program.max_level:
            raise ScheduleError(
                f"op {i} ({op.kind}) runs at level {op.level}, above the "
                f"program's declared max {program.max_level}",
                program=program.name, op=i,
            )
        if (op.kind in KEYSWITCH_KINDS or op.kind == HOIST_MODUP) \
                and op.digits > op.level:
            raise ScheduleError(
                f"op {i} ({op.kind}) asks for {op.digits}-digit "
                f"keyswitching at level {op.level}; digits cannot exceed "
                "the live level",
                program=program.name, op=i, digits=op.digits,
                level=op.level,
            )
        if op.kind not in (INPUT,):
            for operand in op.operands:
                if operand not in defined:
                    raise ScheduleError(
                        f"op {i} ({op.kind}) consumes {operand!r} before "
                        "any op defines it; the stream is not in dataflow "
                        "order",
                        program=program.name, op=i, operand=operand,
                    )
        if op.kind != OUTPUT:
            defined.add(op.result)
