"""Typed exception hierarchy for the whole reproduction.

Every failure the substrate can diagnose raises a subclass of
:class:`ReproError`, so callers can catch one family (``except
ReproError``), one failure class (``except ScaleMismatchError``), or -
because every validation error also subclasses :class:`ValueError` -
keep pre-existing ``except ValueError`` handlers working unchanged.

The taxonomy mirrors where things go wrong in an FHE pipeline:

* :class:`ParameterError` - a static parameter is impossible (degree not
  a power of two, empty RNS basis, digit count out of range).
* :class:`LevelMismatchError` - operands live at different levels / in
  different RNS bases, or an op needs a level the ciphertext lacks.
* :class:`ScaleMismatchError` - CKKS scale bookkeeping violated
  (adding values at diverged scales decrypts to garbage).
* :class:`NoiseBudgetExhaustedError` - the multiplicative budget is
  spent; decryption would fail and only bootstrapping can recover.
* :class:`ScheduleError` - a compiled :class:`~repro.ir.Program` is
  internally inconsistent (undefined operand, digits exceeding level).
* :class:`ConfigError` - a :class:`~repro.core.config.ChipConfig` (or a
  config/program pairing) cannot be simulated.
* :class:`FaultDetectedError` - an integrity check (per-limb checksum,
  NTT re-execution) caught corrupted data.  Subclasses
  :class:`RuntimeError`, not :class:`ValueError`: the inputs were valid,
  the data was damaged in flight.
* :class:`ArtifactError` - a persisted compiler artifact (serialized
  lowered schedule, `repro.compiler.cache`) failed its format-version,
  seal, or structural checks on load.  The compile cache catches this
  internally and degrades to a miss; it surfaces only through the
  explicit ``load_artifact`` API.
* :class:`UnrecoverableFaultError` - checkpoint replay *and* every
  escalation (older checkpoints, full restart) failed to clear a
  detected fault; subclasses :class:`FaultDetectedError`.
* :class:`Overloaded` / :class:`DeadlineExceeded` / :class:`CircuitOpen`
  - the serving front-end's (`repro.serve`) admission-control verdicts:
  the request was *rejected by policy*, not broken.  They subclass only
  :class:`ReproError` (not :class:`ValueError` - the request was
  well-formed, the system chose not to run it) and carry machine-usable
  context (queue depth, deadline slack, breaker state) so clients can
  back off intelligently.

Errors carry an optional ``context`` dict of machine-readable details
(op name, levels, scales) appended to the message, so failures deep in a
workload still say which invariant broke and how to fix it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every diagnosed failure in this repository."""

    def __init__(self, message: str, **context):
        self.context = context
        if context:
            details = ", ".join(f"{k}={v}" for k, v in context.items())
            message = f"{message} [{details}]"
        super().__init__(message)


class ParameterError(ReproError, ValueError):
    """A static parameter is invalid (caught before any computation)."""


class LevelMismatchError(ReproError, ValueError):
    """Operands disagree on level / RNS basis, or a level is unavailable."""


class ScaleMismatchError(ReproError, ValueError):
    """CKKS scales diverged beyond tolerance; the sum would be garbage."""


class NoiseBudgetExhaustedError(ReproError, ValueError):
    """No multiplicative budget left: bootstrap (or re-encrypt) required."""


class ScheduleError(ReproError, ValueError):
    """A compiled Program is not executable as scheduled."""


class ConfigError(ReproError, ValueError):
    """A chip configuration is invalid or cannot run the given program."""


class FaultDetectedError(ReproError, RuntimeError):
    """An integrity check detected corrupted data (not a usage error)."""


class ArtifactError(ReproError, RuntimeError):
    """A persisted compiler artifact is unreadable, sealed wrong, or from
    an incompatible format version.

    Raised by :func:`repro.compiler.cache.load_artifact`; the
    :class:`~repro.compiler.cache.CompileCache` lookup path catches it
    (and any other load-time exception), counts
    ``compiler.cache.invalid``, removes the bad files, and reports a
    miss - on-disk corruption degrades recompilation, never correctness.
    """


class Overloaded(ReproError):
    """The serving front-end shed this request to protect the ones it
    already accepted.

    Raised by :meth:`repro.serve.server.Server.submit` when the bounded
    request queue is at its configured depth: the queue never grows
    without bound, so sustained overload turns into typed rejections the
    client can retry against another replica (or later) instead of into
    unbounded latency for everyone.  Context carries ``queue_depth`` and
    the current backlog.
    """


class DeadlineExceeded(ReproError):
    """A request's deadline cannot be (or was not) met.

    Two sites raise it: admission control, when the estimated queue wait
    plus service time already overruns the deadline (shedding the
    request *before* it wastes chip cycles), and the dispatcher, when a
    queued request's deadline lapses before the chip reaches it (the
    request is cancelled and counted, never executed).  Context carries
    the deadline, the estimate that condemned it, and where it died.
    """


class CircuitOpen(ReproError):
    """The tenant's circuit breaker is open; the request was not queued.

    After ``breaker_threshold`` consecutive tenant-attributable failures
    (malformed payloads, not chip faults) the tenant's breaker opens and
    its traffic is rejected at admission for ``breaker_cooldown_s`` of
    virtual time, isolating a misbehaving tenant from the shared chip.
    A half-open probe readmits one request after the cooldown; its
    outcome closes or re-opens the breaker.  Context carries the breaker
    state and when the next probe is due.
    """


class UnrecoverableFaultError(FaultDetectedError):
    """Recovery exhausted every escalation level and still hit faults.

    Raised by :class:`repro.reliability.recovery.RecoveringExecutor` after
    checkpoint replays *and* full-program restarts all failed.  Subclasses
    :class:`FaultDetectedError` so ``except FaultDetectedError`` handlers
    see it; the context carries the escalation history (retries, restarts,
    the failing step) for post-mortems.
    """


class ChipFailure(ReproError, RuntimeError):
    """A pod chip fail-stopped: it stops responding mid-round.

    Raised by the pod coordinator (`repro.pod.coordinator`) when the
    ``chip`` fault site fires for a chip.  Fail-stop is a *liveness*
    failure, not a data-integrity one, so it subclasses
    :class:`RuntimeError` directly rather than
    :class:`FaultDetectedError`: there is no corrupted value to detect,
    only a missing participant.  The pod recovers by migrating the dead
    chip's shard onto the least-loaded survivor and replaying from the
    last verified pod checkpoint; the error surfaces to callers only
    when the pod is already down to zero survivors.  Context carries the
    chip index and the round it died in.
    """


class InterconnectError(FaultDetectedError):
    """A cross-chip transfer failed its seal check on arrival.

    Raised by the pod interconnect (`repro.pod.coordinator`) when a
    shard-boundary or all-reduce transfer arrives with limb checksums
    that do not match the payload - the ``link`` fault site corrupted it
    in flight.  Subclasses :class:`FaultDetectedError` (damaged data,
    valid inputs), so existing recovery ladders treat it as a detected
    fault.  The receiver never accepts the payload; the sender
    retransmits from its intact copy with seeded backoff, up to the
    pod's ``link_retries`` budget, after which it escalates as
    unrecoverable.  Context carries the link (sender, receiver) and the
    retry count.
    """
