"""Reliability layer: typed errors, invariant guards, fault injection.

CraterLake's headline claim is *unbounded* computation - programs keep
running because bootstrapping restores noise budget before decryption
fails (Sec. 2, Fig. 2).  This package is the software substrate's side
of that bargain: failures are *detected* (typed errors, per-limb
checksums, NTT re-execution spot checks), *reported* (every violation
names the invariant and the values that broke it), and where possible
*recovered from* (graceful-degradation mode auto-inserts rescales and
bootstraps instead of letting decryption fail).

See ``docs/RELIABILITY.md`` for the taxonomy and usage, and run the
fault-injection acceptance campaign with::

    PYTHONPATH=src python -m repro.reliability --faults 1000
"""

from repro.reliability.checksums import (
    limb_checksums,
    mismatched_limbs,
    verify_limbs,
)
from repro.reliability.errors import (
    ArtifactError,
    ConfigError,
    FaultDetectedError,
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
    ReproError,
    ScaleMismatchError,
    ScheduleError,
    UnrecoverableFaultError,
)
from repro.reliability.guards import (
    DEGRADE,
    STRICT,
    IntegrityConfig,
    ReliabilityPolicy,
    integrity,
)
from repro.reliability.validate import validate_config, validate_program

# The faults module is re-exported lazily: importing it from the package
# __init__ would put it in sys.modules before ``python -m
# repro.reliability.faults`` executes it as __main__, which runpy warns
# about (and which would split the injector switch across two instances).
# The recovery module rides the same mechanism so ``import
# repro.reliability`` stays light.
_FAULTS_NAMES = ("CampaignResult", "FaultInjector", "injecting",
                 "run_campaign")
_RECOVERY_NAMES = ("Checkpoint", "CiphertextSnapshot", "DiskStore",
                   "RecoveringExecutor", "RecoveryCampaignResult",
                   "RecoveryPolicy", "RecoveryStats", "RingBufferStore",
                   "run_recovery_campaign", "snapshot_ciphertext",
                   "take_checkpoint", "restore_checkpoint")


def __getattr__(name):
    if name in _FAULTS_NAMES:
        from repro.reliability import faults

        return getattr(faults, name)
    if name in _RECOVERY_NAMES:
        from repro.reliability import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactError",
    "CampaignResult",
    "Checkpoint",
    "CiphertextSnapshot",
    "ConfigError",
    "DEGRADE",
    "DiskStore",
    "FaultDetectedError",
    "FaultInjector",
    "IntegrityConfig",
    "LevelMismatchError",
    "NoiseBudgetExhaustedError",
    "ParameterError",
    "RecoveringExecutor",
    "RecoveryCampaignResult",
    "RecoveryPolicy",
    "RecoveryStats",
    "ReliabilityPolicy",
    "ReproError",
    "RingBufferStore",
    "STRICT",
    "ScaleMismatchError",
    "ScheduleError",
    "UnrecoverableFaultError",
    "injecting",
    "integrity",
    "limb_checksums",
    "mismatched_limbs",
    "restore_checkpoint",
    "run_campaign",
    "run_recovery_campaign",
    "snapshot_ciphertext",
    "take_checkpoint",
    "validate_config",
    "validate_program",
    "verify_limbs",
]
