"""CraterLake (ISCA 2022) reproduction.

Three layers, mirroring how the paper was evaluated:

* ``repro.fhe`` - a working CKKS FHE library (encrypt, compute, rotate,
  bootstrap) implementing every algorithm the accelerator speeds up,
  including boosted t-digit keyswitching and fully packed bootstrapping.
* ``repro.core`` - the CraterLake machine model: chip configurations,
  per-op costs, a cycle-level simulator with Belady-managed on-chip
  storage, area/power models, and functional models of the novel units
  (CRB, KSHGen, transpose network, vector chaining).
* ``repro.compiler`` / ``repro.workloads`` / ``repro.baselines`` /
  ``repro.analysis`` - the DSL and kernels that build the paper's
  benchmark programs, the F1+ and CPU comparison systems, and the
  analytic models behind the figures.

Two cross-cutting substrates: ``repro.obs`` (tracing/counters, see
docs/TRACING.md) and ``repro.reliability`` (typed errors, invariant
guards, graceful degradation, fault injection - docs/RELIABILITY.md).

Quick start::

    from repro import CkksContext, CkksParams, ChipConfig, simulate, benchmark

    # Functional FHE
    ctx = CkksContext(CkksParams(degree=512, max_level=6))
    sk = ctx.keygen()
    ct = ctx.encrypt_values(sk, [0.5, -0.25])
    print(ctx.decrypt(sk, ctx.add(ct, ct))[:2])

    # Performance model
    result = simulate(benchmark("packed_bootstrap"), ChipConfig())
    print(f"{result.milliseconds:.2f} ms")
"""

from repro.baselines import CpuModel, cpu_seconds, f1plus_config
from repro.compiler import CompileCache, compile_program
from repro.core import (
    ChipConfig,
    SimResult,
    area_breakdown,
    average_power,
    energy_breakdown,
    simulate,
    total_area,
)
from repro.fhe import (
    Bootstrapper,
    Ciphertext,
    CkksContext,
    CkksParams,
    SecretKey,
)
from repro.ir import HomOp, Program
from repro.reliability import ReliabilityPolicy, ReproError
from repro.workloads import ALL_BENCHMARKS, DEEP_BENCHMARKS, benchmark
from repro import obs, reliability

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS",
    "DEEP_BENCHMARKS",
    "Bootstrapper",
    "ChipConfig",
    "Ciphertext",
    "CompileCache",
    "CkksContext",
    "CkksParams",
    "CpuModel",
    "HomOp",
    "Program",
    "ReliabilityPolicy",
    "ReproError",
    "SecretKey",
    "SimResult",
    "area_breakdown",
    "average_power",
    "benchmark",
    "compile_program",
    "cpu_seconds",
    "energy_breakdown",
    "f1plus_config",
    "obs",
    "reliability",
    "simulate",
    "total_area",
]
