"""Energy/power model: the activity-based accounting behind Fig. 10b.

The paper derives per-activity energies from synthesized components and
reports average power per benchmark (Fig. 10b), within a 320 W envelope,
with FUs consuming 50-80% and deep benchmarks drawing more than shallow
ones.  We model energy as

    E = mults * E_MUL + adds * E_ADD + RF bytes * E_RF
        + network words * E_NOC + HBM bytes * E_HBM + static power * time

The constants below are representative 14/12nm numbers chosen so the
default configuration reproduces the paper's power envelope and breakdown
shape (calibration documented in EXPERIMENTS.md): a pipelined 28-bit
modular multiplier lands in the low picojoules, SRAM and HBM follow
published per-byte energies [58].
"""

from __future__ import annotations

from repro.core.config import ChipConfig
from repro.core.simulator import SimResult

E_MUL_PJ = 1.3        # 28-bit modular multiply (Sec. 5.5 optimized design)
E_ADD_PJ = 0.12       # 28-bit modular add
E_RF_PJ_PER_BYTE = 0.35   # banked SRAM register file access
E_NOC_PJ_PER_WORD = 0.7   # transpose-network word hop
E_HBM_PJ_PER_BYTE = 7.0   # HBM2E access energy [58]
STATIC_POWER_W = 40.0     # clock tree + leakage floor


def energy_breakdown(result: SimResult,
                     cfg: ChipConfig = ChipConfig()) -> dict[str, float]:
    """Joules per component group for one simulated run (Fig. 10b bars)."""
    seconds = result.seconds
    fu_j = (result.scalar_mults * E_MUL_PJ
            + result.scalar_adds * E_ADD_PJ) * 1e-12
    # Register file traffic: the port streams that actually reached the RF.
    port_elements = result.port_stream_elements
    if cfg.chaining:
        from repro.core.cost import CHAINING_PORT_REDUCTION

        port_elements /= CHAINING_PORT_REDUCTION
    rf_j = port_elements * cfg.bytes_per_word * E_RF_PJ_PER_BYTE * 1e-12
    noc_j = result.network_words * E_NOC_PJ_PER_WORD * 1e-12
    hbm_j = result.total_traffic_bytes * E_HBM_PJ_PER_BYTE * 1e-12
    static_j = STATIC_POWER_W * seconds
    return {
        "Func Units": fu_j + static_j * 0.5,
        "Reg Files": rf_j + static_j * 0.25,
        "NoC": noc_j + static_j * 0.05,
        "HBM": hbm_j + static_j * 0.2,
    }


def average_power(result: SimResult,
                  cfg: ChipConfig = ChipConfig()) -> float:
    """Average watts over the run; must stay within the 320 W envelope."""
    total_j = sum(energy_breakdown(result, cfg).values())
    return total_j / result.seconds if result.seconds else 0.0


def performance_per_joule(result: SimResult,
                          cfg: ChipConfig = ChipConfig()) -> float:
    """1 / energy: the paper's Sec. 9.2 efficiency metric (relative use)."""
    total_j = sum(energy_breakdown(result, cfg).values())
    return 1.0 / total_j if total_j else float("inf")
