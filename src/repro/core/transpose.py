"""Functional model of the two-level distributed transpose (Sec. 5.3, Fig. 7).

NTTs and automorphisms are the only operations with dependencies across
vector elements; F1 showed they reduce to transposes of an EG x EG matrix.
CraterLake distributes that matrix's rows round-robin across its G lane
groups and decomposes the transpose into

1. a *local* block-level transpose inside every lane group (each group
   holds one row of every G x G block), and
2. a *fixed permutation* exchange between groups (group i sends to group j
   exactly the j-th columns of its 1 x G sub-blocks) - wires and registers
   only, no switches.

This module executes both steps explicitly on numpy data so the
decomposition can be verified against a plain matrix transpose, and counts
the words each step moves (the 4E words/cycle budget of Sec. 4.2).
"""

from __future__ import annotations

import numpy as np
from repro.reliability.errors import ConfigError, ParameterError


class TransposeNetwork:
    """A G-lane-group transpose engine for EG x EG matrices."""

    def __init__(self, group_width: int, groups: int):
        if group_width % groups:
            raise ConfigError("group width must be divisible by group count")
        self.eg = group_width     # E_G: matrix dimension (= lanes per group)
        self.g = groups

    # -- data distribution --------------------------------------------------

    def distribute(self, matrix: np.ndarray) -> list[np.ndarray]:
        """Round-robin rows across lane groups (Fig. 7, step 0)."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.eg, self.eg):
            raise ParameterError(f"matrix must be {self.eg}x{self.eg}")
        return [matrix[i::self.g].copy() for i in range(self.g)]

    def collect(self, shards: list[np.ndarray]) -> np.ndarray:
        out = np.empty((self.eg, self.eg), dtype=shards[0].dtype)
        for i, shard in enumerate(shards):
            out[i::self.g] = shard
        return out

    # -- the two steps --------------------------------------------------------

    def local_block_transpose(self, shard: np.ndarray) -> np.ndarray:
        """Step 1: transpose the (EG/G x EG/G) *block matrix* locally.

        A shard holds rows (i, i+G, i+2G, ...): one row of every G x G
        block.  Viewing it as an (EG/G) x (EG/G) grid of 1 x G sub-blocks,
        this permutes the sub-blocks like a matrix transpose - entirely
        within the lane group (F1-style transpose unit).
        """
        rows, cols = shard.shape
        blocks_per_side = self.eg // self.g
        grid = shard.reshape(blocks_per_side, blocks_per_side, self.g)
        return grid.transpose(1, 0, 2).reshape(rows, cols)

    def fixed_permutation_exchange(self, shards: list[np.ndarray]):
        """Step 2: transpose all G x G blocks via the fixed permutation.

        Group i holds row i of each block and must end holding column i.
        The exchange is static: group i sends element column j (of every
        sub-block) to group j.  Returns (new_shards, words_moved), where
        words_moved counts elements that crossed between distinct groups.
        """
        blocks_per_side = self.eg // self.g
        out = [np.empty_like(s) for s in shards]
        moved = 0
        for i, shard in enumerate(shards):
            grid = shard.reshape(blocks_per_side, blocks_per_side, self.g)
            for j in range(self.g):
                # Element j of every sub-block travels from group i to j.
                out[j].reshape(blocks_per_side, blocks_per_side, self.g)[
                    :, :, i] = grid[:, :, j]
                if i != j:
                    moved += blocks_per_side * blocks_per_side
        return out, moved

    # -- end-to-end ------------------------------------------------------------

    def transpose(self, matrix: np.ndarray):
        """Full two-level transpose; returns (matrix^T, words exchanged)."""
        shards = self.distribute(matrix)
        shards = [self.local_block_transpose(s) for s in shards]
        shards, moved = self.fixed_permutation_exchange(shards)
        return self.collect(shards), moved

    def exchange_words(self) -> int:
        """Words crossing lane groups per transpose: N * (G-1)/G."""
        return self.eg * self.eg * (self.g - 1) // self.g

    def permutation_map(self) -> dict[tuple[int, int], tuple[int, int]]:
        """The static wiring: (src group, lane slot) -> (dst group, slot).

        Having no dependence on data or configuration is what lets the
        hardware realize it with wires and pipeline registers alone.
        """
        blocks_per_side = self.eg // self.g
        mapping = {}
        for i in range(self.g):
            for b in range(blocks_per_side * blocks_per_side):
                for j in range(self.g):
                    mapping[(i, b * self.g + j)] = (j, b * self.g + i)
        return mapping
