"""Vector chaining: FU pipelines that bypass the register file (Sec. 5.4).

CraterLake's FUs would need ~24 register-file ports to run concurrently
through the RF; the 256 MB RF affords 12.  Chaining connects FU outputs
directly to downstream FU inputs (like Cray-1 chaining, but chained values
are never written back), so a whole keyswitching stage occupies few ports.
Fig. 8's homomorphic-multiply pipeline chains 10 FUs with 5 reads and 1
write.

This module describes the chainable pipelines, computes their port usage,
and validates a configuration against the machine's port budget - the
check behind the claim that four pipeline templates (plus variants) cover
keyswitching with a 3.5x traffic reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.reliability.errors import ConfigError

# Register-file streams each FU needs when it is NOT chained.
FU_INPUT_STREAMS = {"ntt": 1, "intt": 1, "aut": 1, "mul": 2, "add": 2,
                    "crb": 1, "kshgen": 0}


@dataclass(frozen=True)
class PipelineStage:
    fu: str
    # Inputs satisfied by the previous stage's output arrive over chain
    # wires; the rest come from the register file.
    chained_inputs: int = 0

    def __post_init__(self):
        if self.fu not in FU_INPUT_STREAMS:
            raise ConfigError(f"unknown FU {self.fu!r}")
        if self.chained_inputs > FU_INPUT_STREAMS[self.fu]:
            raise ConfigError(f"{self.fu} has no {self.chained_inputs} inputs")


@dataclass
class Pipeline:
    """An ordered chain of FU stages ending in one RF write."""

    name: str
    stages: list[PipelineStage] = field(default_factory=list)

    def read_ports(self) -> int:
        return sum(
            FU_INPUT_STREAMS[s.fu] - s.chained_inputs for s in self.stages
        )

    def write_ports(self) -> int:
        return 1  # only the final value is written back

    def ports(self) -> int:
        return self.read_ports() + self.write_ports()

    def unchained_ports(self) -> int:
        """Ports if every stage read and wrote the register file."""
        return sum(FU_INPUT_STREAMS[s.fu] + 1 for s in self.stages)

    def port_reduction(self) -> float:
        return self.unchained_ports() / self.ports()


def keyswitch_pipelines() -> list[Pipeline]:
    """The pipeline templates covering boosted keyswitching (Sec. 6).

    The compiler lowers each keyswitch to a sequence of up to five such
    chained pipelines; the multiply pipeline below is Fig. 8's example.
    """
    return [
        Pipeline("modup", [
            PipelineStage("intt"),
            PipelineStage("crb", chained_inputs=1),
            PipelineStage("ntt", chained_inputs=1),
        ]),
        Pipeline("hint-multiply", [          # Fig. 8's 10-FU pipeline core
            PipelineStage("mul"),            # p00 = a0 * b0
            PipelineStage("add", chained_inputs=1),
            PipelineStage("mul", chained_inputs=1),  # x KSH0 (from KSHGen)
            PipelineStage("kshgen"),
            PipelineStage("mul", chained_inputs=2),  # x KSH1 (seeded half)
            PipelineStage("add", chained_inputs=1),
        ]),
        Pipeline("moddown", [
            PipelineStage("intt"),
            PipelineStage("crb", chained_inputs=1),
            PipelineStage("ntt", chained_inputs=1),
            PipelineStage("mul", chained_inputs=1),  # x P^-1
            PipelineStage("add", chained_inputs=1),  # fold into output
        ]),
        Pipeline("rescale", [
            PipelineStage("intt"),
            PipelineStage("ntt", chained_inputs=1),
            PipelineStage("mul", chained_inputs=1),
            PipelineStage("add", chained_inputs=1),
        ]),
    ]


def validate_port_budget(pipelines: list[Pipeline], rf_ports: int = 12,
                         concurrent: int = 2) -> bool:
    """Can ``concurrent`` pipelines run against the RF's port budget?

    CraterLake overlaps a compute pipeline with a staging/drain stream;
    without chaining the same pipelines need far more than 12 ports, which
    is Table 4's CRB/chain ablation in miniature.
    """
    worst = sorted((p.ports() for p in pipelines), reverse=True)
    return sum(worst[:concurrent]) <= rf_ports
