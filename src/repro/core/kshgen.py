"""Functional model of the KSHGen unit (Sec. 5.2).

Half of every keyswitch hint is uniformly pseudorandom, so CraterLake
regenerates it from a seed instead of storing/fetching it.  The unit
samples random bits from a cryptographic PRNG and rejection-samples values
uniform modulo each (28-bit) prime.  Rejection has variable throughput,
which clashes with static scheduling; the paper's two mitigations are both
modeled here:

1. sample *extra* random bits per word, shrinking rejection probability
   (a value of ``bits`` rejects with probability < q-dependent 2^-(bits-28));
2. a small (16-deep) output buffer per lane hides residual rejections, and
   it refills between hints.

:meth:`KshGenUnit.generate` produces the values; :meth:`stall_cycles`
simulates the buffered pipeline cycle by cycle to show stalls are
negligible at the paper's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.reliability.errors import ParameterError

BUFFER_DEPTH = 16  # words per lane (Sec. 5.2)


@dataclass
class KshGenStats:
    words: int
    rejections: int
    stall_cycles: int

    @property
    def rejection_rate(self) -> float:
        return self.rejections / max(1, self.words + self.rejections)


class KshGenUnit:
    """Seeded uniform sampling with rejection, as the hardware does it.

    ``extra_bits`` is how many bits beyond the modulus width each draw
    uses: a draw is the top slice of a (28+extra)-bit random word reduced
    by rejection - accept iff the draw < q * 2^extra ... equivalently we
    draw uniformly in [0, 2^(28+extra)) and accept the value modulo-free
    when it falls below the largest multiple of q.
    """

    def __init__(self, modulus: int, seed: int = 0, extra_bits: int = 4,
                 buffer_depth: int = BUFFER_DEPTH,
                 attempts_per_cycle: int = 2):
        if modulus >= 1 << 31:
            raise ParameterError("modulus must be below 2^31")
        self.modulus = modulus
        self.extra_bits = extra_bits
        self.buffer_depth = buffer_depth
        # The PRNG datapath is wider than one word per cycle, so the
        # sampler can attempt several draws per consumed word - rejection
        # then only causes transient dips that the buffer absorbs.
        self.attempts_per_cycle = attempts_per_cycle
        self.width = modulus.bit_length() + extra_bits
        # Largest multiple of q below 2^width: the acceptance region.
        self.limit = (1 << self.width) // modulus * modulus
        self._rng = np.random.Generator(np.random.Philox(seed))

    @property
    def rejection_probability(self) -> float:
        """P(draw rejected) = 1 - limit / 2^width < 2^-extra_bits."""
        return 1.0 - self.limit / (1 << self.width)

    def generate(self, count: int) -> tuple[np.ndarray, KshGenStats]:
        """Produce ``count`` uniform values mod q via rejection sampling."""
        out = np.empty(count, dtype=np.uint64)
        produced = 0
        rejections = 0
        while produced < count:
            need = count - produced
            draws = self._rng.integers(0, 1 << self.width,
                                       size=int(need * 1.1) + 8,
                                       dtype=np.uint64)
            accepted = draws[draws < self.limit] % np.uint64(self.modulus)
            rejections += len(draws) - len(
                draws[draws < np.uint64(self.limit)]
            )
            take = min(len(accepted), need)
            out[produced:produced + take] = accepted[:take]
            produced += take
        return out, KshGenStats(words=count, rejections=rejections,
                                stall_cycles=0)

    def stall_cycles(self, cycles: int, seed: int = 1) -> KshGenStats:
        """Simulate the buffered pipeline for ``cycles`` consume cycles.

        Each cycle the sampler attempts one draw (accepted with probability
        1 - p_reject) into the buffer and the consumer pops one word.  The
        buffer starts full (it refills between hints).  Returns how many
        consumer cycles stalled on an empty buffer - negligible at the
        default extra_bits, which is the unit's design point.
        """
        rng = np.random.default_rng(seed)
        successes = rng.binomial(self.attempts_per_cycle,
                                 1.0 - self.rejection_probability,
                                 size=cycles)
        fill = self.buffer_depth
        stalls = 0
        rejections = 0
        for produced in successes:
            rejections += self.attempts_per_cycle - int(produced)
            fill = min(self.buffer_depth, fill + int(produced))
            if fill > 0:
                fill -= 1
            else:
                stalls += 1
        return KshGenStats(words=cycles - stalls, rejections=rejections,
                           stall_cycles=stalls)


def seed_is_schedulable(modulus: int, seed: int, words: int,
                        extra_bits: int = 4) -> bool:
    """Software-side seed vetting (Sec. 5.2): since the compiler controls
    seeds, it can test and skip the rare ones that would under-produce at
    speed for a given hint length."""
    unit = KshGenUnit(modulus, seed=seed, extra_bits=extra_bits)
    stats = unit.stall_cycles(words, seed=seed)
    return stats.stall_cycles == 0
