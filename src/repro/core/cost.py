"""Per-operation cost functions for CraterLake-style machines.

Costs are expressed in *elements processed per FU class* so that the same
formulas serve CraterLake and the (wider, clustered) F1+ baseline: a
machine config turns elements into cycles by dividing by its per-class
capacity (units x lanes).

The keyswitching formulas implement Listing 1 generalized to t digits and
reproduce Table 1's operation counts:

    boosted:  NTT passes = 6L (+ digit terms), CRB MACs = 3L^2,
              other multiplies = 4L + O(L)
    standard: NTT passes = L^2, multiplies = 2L^2, adds = 2L^2

Register-file pressure is modeled as stream counts (2 reads + 1 write per
un-chained vector op; NTT/automorphism are 1R+1W); vector chaining divides
total port traffic by the paper's measured 3.5x (Sec. 5.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import CROSSBAR_TRAFFIC_FACTOR, ChipConfig
from repro.ir import (
    ADD,
    CONJUGATE,
    HOIST_MODUP,
    INPUT,
    MULT,
    OUTPUT,
    PMULT,
    RESCALE,
    ROTATE,
    ROTATE_HOISTED,
    HomOp,
)
from repro.reliability.errors import ScheduleError

CHAINING_PORT_REDUCTION = 3.5  # Sec. 5.4: measured RF traffic reduction

# Streams (ports occupied while the op's vector flows) per FU class.
_STREAMS = {"ntt": 2, "aut": 2, "mul": 3, "add": 3, "crb": 2, "kshgen": 1}


@dataclass
class OpCost:
    """Element counts for one homomorphic op on one machine.

    ``fu_elements`` maps FU class -> elements to process; ``port_streams``
    counts register-file stream-elements; ``network_words`` covers the
    inter-lane-group transpose traffic; scalar counts feed the CPU model
    and the energy model.
    """

    fu_elements: dict[str, float] = field(default_factory=dict)
    port_stream_elements: float = 0.0
    network_words: float = 0.0
    scalar_mults: float = 0.0
    scalar_adds: float = 0.0
    hint_words: float = 0.0       # stored hint size (what memory must supply)
    kshgen_elements: float = 0.0  # pseudorandom elements generated on-chip

    def add_fu(self, cls: str, elements: float) -> None:
        """Charge ``elements`` (scalar residue elements, not cycles) to FU
        class ``cls``, plus the implied register-file stream elements."""
        self.fu_elements[cls] = self.fu_elements.get(cls, 0.0) + elements
        self.port_stream_elements += _STREAMS[cls] * elements

    def merge(self, other: "OpCost") -> None:
        """Accumulate another op's element/word counts into this one."""
        for cls, el in other.fu_elements.items():
            self.fu_elements[cls] = self.fu_elements.get(cls, 0.0) + el
        self.port_stream_elements += other.port_stream_elements
        self.network_words += other.network_words
        self.scalar_mults += other.scalar_mults
        self.scalar_adds += other.scalar_adds
        self.hint_words += other.hint_words
        self.kshgen_elements += other.kshgen_elements

    def compute_cycles(self, cfg: ChipConfig) -> float:
        """Convert element counts to *cycles* on ``cfg``: the max over
        FU classes, RF ports and the network of elements / per-cycle
        capacity (the limiting resource)."""
        times = []
        for cls, elements in self.fu_elements.items():
            capacity = _class_capacity(cfg, cls)
            if capacity > 0:
                times.append(elements / capacity)
        port_elements = self.port_stream_elements
        if cfg.chaining:
            port_elements /= CHAINING_PORT_REDUCTION
        port_width = cfg.rf_port_width or cfg.lanes
        times.append(port_elements / (cfg.rf_ports * port_width))
        if self.network_words:
            times.append(self.network_words / cfg.network_words_per_cycle)
        return max(times) if times else 0.0


def _class_capacity(cfg: ChipConfig, cls: str) -> float:
    """Elements per cycle FU class ``cls`` can absorb (units x lanes)."""
    units = {
        "ntt": cfg.ntt_units,
        "mul": cfg.mul_units,
        "add": cfg.add_units,
        "aut": cfg.aut_units,
        "crb": 1 if cfg.crb else 0,
        "kshgen": 1 if cfg.kshgen else 0,
    }[cls]
    return units * cfg.lanes


def _ntt_scalar_mults(degree: int) -> float:
    """Scalar multiplies in one NTT pass: (N/2) log2 N butterflies."""
    return degree / 2 * math.log2(degree)


def boosted_keyswitch_cost(cfg: ChipConfig, degree: int, level: int,
                           digits: int) -> OpCost:
    """Element/word cost (an :class:`OpCost`, *not* cycles) of one boosted
    keyswitch: Listing 1 generalized to t digits (Sec. 3, Sec. 3.1).

    The input's L residues are split into t digits of alpha = ceil(L/t)
    primes; each digit is base-converted (CRB) onto the L + alpha target
    residues, NTT'd, multiplied against the hint, accumulated, and the
    result ModDown'd back to L residues.
    """
    n = degree
    ell = level
    alpha = -(-ell // digits)
    raised = ell + alpha
    cost = OpCost()

    # Line 2: INTT of the input's L residues.
    cost.add_fu("ntt", ell * n)
    # Line 3 (ModUp): CRB streams each digit's residues once; every MAC
    # pipeline accumulates one destination residue.
    crb_in = ell                       # total input residues streamed
    crb_macs_up = ell * ell            # t * (alpha * L) = L^2 MACs
    # Line 4: NTT the newly produced residues (L per digit).
    cost.add_fu("ntt", digits * ell * n)
    # Lines 5-6: multiply against both hint halves and accumulate.
    hint_rows = digits * raised
    cost.add_fu("mul", 2 * hint_rows * n)
    if digits > 1:
        cost.add_fu("add", 2 * (digits - 1) * raised * n)
    # Lines 7-9 (ModDown), for both outputs: INTT the alpha special
    # residues, CRB them back onto L residues, NTT the corrections.
    cost.add_fu("ntt", 2 * alpha * n)
    crb_in += 2 * alpha
    crb_macs_down = 2 * alpha * ell
    cost.add_fu("ntt", 2 * ell * n)
    # Line 10: subtract correction and scale by P^-1.
    cost.add_fu("add", 2 * ell * n)
    cost.add_fu("mul", 2 * ell * n)

    crb_macs = crb_macs_up + crb_macs_down
    if cfg.crb:
        cost.add_fu("crb", crb_in * n)
    else:
        # Ablation: MACs execute as individual vector mul+add ops through
        # the register file - the port-pressure wall of Sec. 2.5.
        cost.add_fu("mul", crb_macs * n)
        cost.add_fu("add", crb_macs * n)

    # Pseudorandom hint half: generated on the fly or fetched.
    a_half_words = hint_rows * n
    if cfg.kshgen:
        cost.add_fu("kshgen", a_half_words)
        cost.kshgen_elements += a_half_words
        cost.hint_words += a_half_words          # stored b half only
    else:
        cost.hint_words += 2 * a_half_words      # both halves from memory

    # Every NTT/INTT pass crosses the transpose network once.
    ntt_passes = ell + digits * ell + 2 * alpha + 2 * ell
    cost.network_words += ntt_passes * n
    if not cfg.fixed_network:
        cost.network_words *= CROSSBAR_TRAFFIC_FACTOR

    cost.scalar_mults += (
        crb_macs * n + (2 * hint_rows + 2 * ell) * n
        + ntt_passes * _ntt_scalar_mults(n)
    )
    cost.scalar_adds += (
        crb_macs * n + (2 * (digits - 1) * raised + 2 * ell) * n
        + ntt_passes * _ntt_scalar_mults(n)
    )
    return cost


def hoist_modup_cost(cfg: ChipConfig, degree: int, level: int,
                     digits: int) -> OpCost:
    """Element/word cost of the *shared* ModUp of a hoisted rotation group
    (Halevi-Shoup hoisting; `repro.compiler.hoisting`).

    Exactly the input-raising prefix of :func:`boosted_keyswitch_cost`
    (lines 2-4 of Listing 1): INTT the L residues, CRB every digit onto
    the L + alpha target residues, NTT the newly produced residues.  The
    raised digits stay register-file-resident in the EVAL domain, so each
    :data:`~repro.ir.ROTATE_HOISTED` consumer pays only the remainder
    (:func:`hoisted_rotate_keyswitch_cost`); for one rotation the two
    parts merge back to ``boosted_keyswitch_cost`` field by field.
    """
    n = degree
    ell = level
    cost = OpCost()
    # Line 2: INTT of the input's L residues.
    cost.add_fu("ntt", ell * n)
    # Line 3 (ModUp): CRB streams each digit's residues once.
    crb_in = ell
    crb_macs = ell * ell
    # Line 4: NTT the newly produced residues (L per digit).
    cost.add_fu("ntt", digits * ell * n)
    if cfg.crb:
        cost.add_fu("crb", crb_in * n)
    else:
        cost.add_fu("mul", crb_macs * n)
        cost.add_fu("add", crb_macs * n)
    ntt_passes = ell + digits * ell
    cost.network_words += ntt_passes * n
    if not cfg.fixed_network:
        cost.network_words *= CROSSBAR_TRAFFIC_FACTOR
    cost.scalar_mults += crb_macs * n + ntt_passes * _ntt_scalar_mults(n)
    cost.scalar_adds += crb_macs * n + ntt_passes * _ntt_scalar_mults(n)
    return cost


def hoisted_rotate_keyswitch_cost(cfg: ChipConfig, degree: int, level: int,
                                  digits: int) -> OpCost:
    """Per-rotation remainder of a hoisted keyswitch: hint multiply,
    accumulate, ModDown (lines 5-10 of Listing 1).

    The rotation's automorphism is *not* applied to the t(L + alpha)
    raised rows: the evaluation key is stored/generated pre-permuted
    (b halves permuted at rest in HBM, a halves emitted in permuted
    order by the KSH generator - both free), the raised digits are
    multiplied against it unpermuted, and one automorphism over the
    accumulated output pair (charged by :func:`op_cost`'s
    ROTATE_HOISTED branch, 2L rows - the same as an unhoisted rotate)
    finishes the rotation.  Complementary to :func:`hoist_modup_cost`:
    merging the two reproduces ``boosted_keyswitch_cost`` exactly, so a
    hoisted singleton is break-even by construction.

    When the hoisting pass batches same-hint rotations into one op
    (``repeat > 1``), the KSHGen charge below is *not* scaled with the
    batch (see :func:`op_cost`): each generated a-half row is broadcast
    to every batch member's multipliers in the same pass, so the
    generator runs once per hint, not once per rotation.
    """
    n = degree
    ell = level
    alpha = -(-ell // digits)
    raised = ell + alpha
    cost = OpCost()
    # Lines 5-6: multiply against both hint halves and accumulate.
    hint_rows = digits * raised
    cost.add_fu("mul", 2 * hint_rows * n)
    if digits > 1:
        cost.add_fu("add", 2 * (digits - 1) * raised * n)
    # Lines 7-9 (ModDown), for both outputs.
    cost.add_fu("ntt", 2 * alpha * n)
    crb_in = 2 * alpha
    crb_macs = 2 * alpha * ell
    cost.add_fu("ntt", 2 * ell * n)
    # Line 10: subtract correction and scale by P^-1.
    cost.add_fu("add", 2 * ell * n)
    cost.add_fu("mul", 2 * ell * n)
    if cfg.crb:
        cost.add_fu("crb", crb_in * n)
    else:
        cost.add_fu("mul", crb_macs * n)
        cost.add_fu("add", crb_macs * n)

    a_half_words = hint_rows * n
    if cfg.kshgen:
        cost.add_fu("kshgen", a_half_words)
        cost.kshgen_elements += a_half_words
        cost.hint_words += a_half_words
    else:
        cost.hint_words += 2 * a_half_words

    ntt_passes = 2 * alpha + 2 * ell
    cost.network_words += ntt_passes * n
    if not cfg.fixed_network:
        cost.network_words *= CROSSBAR_TRAFFIC_FACTOR

    cost.scalar_mults += (
        crb_macs * n + (2 * hint_rows + 2 * ell) * n
        + ntt_passes * _ntt_scalar_mults(n)
    )
    cost.scalar_adds += (
        crb_macs * n + (2 * (digits - 1) * raised + 2 * ell) * n
        + ntt_passes * _ntt_scalar_mults(n)
    )
    return cost


def standard_keyswitch_cost(cfg: ChipConfig, degree: int, level: int) -> OpCost:
    """Element/word cost of one standard (per-prime, BV) keyswitch, the
    algorithm F1 is built around.

    Each of the L residues is its own digit, base-converted to all L primes
    (an exact lift: INTT + L NTTs), giving the L^2 NTT / 2L^2 mult / 2L^2
    add counts of Table 1 and a hint of 2L^2 residue polynomials.
    """
    n = degree
    ell = level
    cost = OpCost()
    cost.add_fu("ntt", ell * ell * n)            # Table 1: L^2 NTTs
    cost.add_fu("mul", 2 * ell * ell * n)        # 2L^2 multiplies
    cost.add_fu("add", 2 * ell * ell * n)        # 2L^2 adds
    # F1's datapath was co-designed for this algorithm: its NTT outputs
    # feed the hint multipliers directly, so the mul/add streams mostly
    # bypass the register file (unlike boosted keyswitching's simple-op
    # storm, which F1 has no forwarding paths for).
    cost.port_stream_elements *= 0.4
    cost.hint_words += 2 * ell * ell * n         # F1 stores full hints
    cost.network_words += ell * ell * n
    if not cfg.fixed_network:
        cost.network_words *= CROSSBAR_TRAFFIC_FACTOR
    cost.scalar_mults += 2 * ell**2 * n + ell**2 * _ntt_scalar_mults(n)
    cost.scalar_adds += 2 * ell**2 * n + ell**2 * _ntt_scalar_mults(n)
    return cost


def keyswitch_cost(cfg: ChipConfig, degree: int, level: int,
                   digits: int) -> OpCost:
    """Element/word cost of a keyswitch under the machine's algorithm
    policy.

    CraterLake always runs boosted keyswitching; F1+-style machines
    (``crb=False``) get whichever algorithm is cheaper at this level -
    the paper gives F1+ the best algorithm per level (Sec. 8).  'Cheaper'
    weighs compute *and* the hint fetch: standard keyswitching's O(L^2)
    hints dominate past small L, which is exactly why it stops scaling.
    """
    boosted = boosted_keyswitch_cost(cfg, degree, level, digits)
    if cfg.crb:
        return boosted
    standard = standard_keyswitch_cost(cfg, degree, level)

    def total(cost: OpCost) -> float:
        # Hints are typically applied several times while resident, so the
        # fetch amortizes; 8x is a conservative reuse estimate, and with it
        # the standard/boosted crossover lands at L ~ 14 as in the paper.
        amortized_hint = cost.hint_words / (8 * cfg.hbm_words_per_cycle)
        return cost.compute_cycles(cfg) + amortized_hint

    if total(standard) <= total(boosted):
        return standard
    return boosted


def rescale_cost(cfg: ChipConfig, degree: int, level: int) -> OpCost:
    """Element/word cost of a rescale: INTT the last residue of both
    ciphertext polynomials, re-NTT the correction onto the remaining L-1
    residues, subtract and scale."""
    n = degree
    ell = level
    cost = OpCost()
    cost.add_fu("ntt", 2 * ell * n)
    cost.add_fu("mul", 2 * (ell - 1) * n)
    cost.add_fu("add", 2 * (ell - 1) * n)
    cost.network_words += 2 * ell * n
    if not cfg.fixed_network:
        cost.network_words *= CROSSBAR_TRAFFIC_FACTOR
    cost.scalar_mults += 2 * (ell - 1) * n + 2 * ell * _ntt_scalar_mults(n)
    cost.scalar_adds += 2 * (ell - 1) * n + 2 * ell * _ntt_scalar_mults(n)
    return cost


def op_cost(cfg: ChipConfig, op: HomOp, degree: int) -> OpCost:
    """Total cost of one homomorphic op on ``cfg``: FU/port/network
    counts in *elements*, hint and network fields in *words*; convert to
    cycles with :meth:`OpCost.compute_cycles`.

    Batched ops (``repeat > 1``) scale every stream by the batch size
    except the shared hint fetch - and, for ROTATE_HOISTED, the KSHGen
    charge: same-hint hoisted rotations are batched by the hoisting
    pass precisely so each generated a-half row is broadcast to all
    batch members in one pass instead of being regenerated per member.
    """
    n = degree
    ell = op.level
    cost = OpCost()
    if op.kind == MULT:
        # Four partial products, two accumulations, relinearize d2.
        cost.add_fu("mul", 4 * ell * n)
        cost.add_fu("add", 2 * ell * n)
        cost.merge(keyswitch_cost(cfg, n, ell, op.digits))
        cost.add_fu("add", 2 * ell * n)  # fold keyswitch output into (d0, d1)
        cost.scalar_mults += 4 * ell * n
        cost.scalar_adds += 4 * ell * n
    elif op.kind in (ROTATE, CONJUGATE):
        cost.add_fu("aut", 2 * ell * n)
        # Each automorphism pass needs two transposes (Sec. 4.2).
        extra_net = 2 * 2 * ell * n
        cost.network_words += (
            extra_net * (CROSSBAR_TRAFFIC_FACTOR if not cfg.fixed_network else 1)
        )
        cost.merge(keyswitch_cost(cfg, n, ell, op.digits))
        cost.add_fu("add", ell * n)
        cost.scalar_adds += ell * n
    elif op.kind == HOIST_MODUP:
        cost.merge(hoist_modup_cost(cfg, n, ell, op.digits))
    elif op.kind == ROTATE_HOISTED:
        # Automorphism over the accumulated output pair only (the raised
        # digits meet a pre-permuted hint; see
        # hoisted_rotate_keyswitch_cost): 2L rows, as for a plain rotate.
        cost.add_fu("aut", 2 * ell * n)
        extra_net = 2 * 2 * ell * n
        cost.network_words += (
            extra_net * (CROSSBAR_TRAFFIC_FACTOR if not cfg.fixed_network else 1)
        )
        cost.merge(hoisted_rotate_keyswitch_cost(cfg, n, ell, op.digits))
        cost.add_fu("add", ell * n)
        cost.scalar_adds += ell * n
    elif op.kind == PMULT:
        cost.add_fu("mul", 2 * ell * n)
        cost.scalar_mults += 2 * ell * n
    elif op.kind == ADD:
        cost.add_fu("add", 2 * ell * n)
        cost.scalar_adds += 2 * ell * n
    elif op.kind == RESCALE:
        cost.merge(rescale_cost(cfg, n, ell))
    elif op.kind in (INPUT, OUTPUT):
        pass  # pure data movement; the simulator charges the traffic
    else:
        raise ScheduleError(f"no cost model for op kind {op.kind!r}")
    if op.repeat > 1:
        scale = op.repeat
        # Hoisted batches share the generated a half (broadcast in one
        # pass), so their KSHGen stream does not grow with the batch.
        shared_gen = op.kind == ROTATE_HOISTED
        cost.fu_elements = {
            k: v * (1 if shared_gen and k == "kshgen" else scale)
            for k, v in cost.fu_elements.items()
        }
        cost.port_stream_elements *= scale
        cost.network_words *= scale
        cost.scalar_mults *= scale
        cost.scalar_adds *= scale
        if not shared_gen:
            cost.kshgen_elements *= scale
        # hint_words intentionally NOT scaled: batched ops share one hint.
    return cost


# Chained-pipeline depth per op kind: how many dependent FU stages a value
# traverses (keyswitching ops run the full Listing-1 pipeline; hoisted
# rotations split it into the ModUp prefix and the multiply/ModDown rest).
_PIPELINE_DEPTH = {MULT: 10, ROTATE: 10, CONJUGATE: 10, PMULT: 2, ADD: 1,
                   RESCALE: 3, HOIST_MODUP: 4, ROTATE_HOISTED: 6}


def op_latency(cfg: ChipConfig, op: HomOp, degree: int) -> float:
    """Pipeline-fill latency in *cycles* exposed when ops execute one at
    a time (zero for machines that overlap independent ops)."""
    if not cfg.serial_execution:
        return 0.0
    depth = _PIPELINE_DEPTH.get(op.kind, 0)
    return depth * (cfg.passes(degree) + cfg.fu_stage_latency)


def ciphertext_words(degree: int, level: int) -> int:
    """Residue *words* in a level-L ciphertext (2 polynomials x N x L);
    multiply by ``cfg.bytes_per_word`` for bytes."""
    return 2 * degree * level


def plaintext_words(degree: int, level: int) -> int:
    """Residue *words* in a packed plaintext (1 polynomial x N x L)."""
    return degree * level


def raised_words(degree: int, level: int, digits: int) -> int:
    """Residue *words* in a hoisted ModUp's raised digits: t digit
    polynomials of L + alpha residues each (alpha = ceil(L/t)), the
    object a ``hoist_modup`` produces and its ``rotate_hoisted``
    consumers keep register-file-resident."""
    alpha = -(-level // digits)
    return digits * (level + alpha) * degree
