"""Functional model of the Change-RNS-Base (CRB) unit (Sec. 5.1, Fig. 6).

The CRB spatially unrolls changeRNSBase's inner loop: up to 60 parallel
multiply-accumulate pipelines, one per destination residue.  Every input
residue polynomial is broadcast to all pipelines; pipeline j multiplies it
by the constant C[src][j] and accumulates into its residue-polynomial
buffer.  Double buffering lets one conversion's output drain while the
next one's input streams.

This model computes real outputs (verified against
``RnsBasis.convert_approx`` in tests) and accounts for cycles, MACs and
utilization - the unit streams an L-residue input in L * N/E cycles
regardless of destination count, which is what makes keyswitching O(L) on
CraterLake (Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.reliability.errors import ConfigError, ParameterError


@dataclass
class CrbRun:
    cycles: int
    macs: int
    pipelines_used: int
    pipelines_total: int

    @property
    def utilization(self) -> float:
        return self.pipelines_used / self.pipelines_total


class CrbUnit:
    """A bank of MAC pipelines with per-destination accumulator buffers."""

    def __init__(self, lanes: int = 2048, pipelines: int = 60):
        self.lanes = lanes
        self.pipelines = pipelines
        self._buffers: np.ndarray | None = None
        self._staged: np.ndarray | None = None  # double buffer

    def convert(
        self,
        scaled_inputs: np.ndarray,
        constants: np.ndarray,
        dest_moduli,
    ) -> tuple[np.ndarray, CrbRun]:
        """Run one changeRNSBase: (L_src, N) inputs -> (L_dst, N) outputs.

        ``scaled_inputs`` must already carry the (Q/q_i)^-1 factors (the
        scaling pass runs on the regular multipliers upstream, which is how
        Listing 1 stages the computation).  ``constants[src, dst]`` is
        (Q/q_src) mod p_dst, the value parked in each pipeline's constant
        register.
        """
        l_src, degree = scaled_inputs.shape
        l_dst = len(dest_moduli)
        if l_dst > self.pipelines:
            raise ConfigError(
                f"{l_dst} destination residues exceed {self.pipelines} "
                "pipelines; ciphertext larger than the unit's design point"
            )
        if constants.shape != (l_src, l_dst):
            raise ParameterError("constant matrix shape mismatch")
        moduli = np.asarray(dest_moduli, dtype=np.uint64)
        acc = np.zeros((l_dst, degree), dtype=np.uint64)
        # Broadcast loop: one pass per input residue; all pipelines MAC.
        for src in range(l_src):
            row = scaled_inputs[src]
            for dst in range(l_dst):
                q = moduli[dst]
                acc[dst] = (acc[dst] + row % q * (constants[src, dst] % q)
                            % q) % q
        # Double buffering: outputs move to the drain buffer.
        self._staged, self._buffers = acc, None
        cycles = l_src * max(1, degree // self.lanes)
        return acc, CrbRun(
            cycles=cycles,
            macs=l_src * l_dst * degree,
            pipelines_used=l_dst,
            pipelines_total=self.pipelines,
        )

    def buffer_megabytes(self, degree: int = 65536,
                         bytes_per_word: float = 3.5) -> float:
        """Total accumulator storage: 2 (double buffering) x 60 pipelines
        x N words = 26.25 MB at N=64K (Sec. 5.1)."""
        return 2 * self.pipelines * degree * bytes_per_word / 2**20
