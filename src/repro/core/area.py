"""Area model: reproduces Table 2 and the scaling variants of Sec. 7/9.4.

The per-component areas are the paper's synthesis results in a commercial
14/12nm process (Table 2); the model scales them with configuration knobs
(FU counts, register file size, CRB sizing, network style) so the ablation
and sweep configurations report meaningful areas too:

* the CRB scales with its pipeline count and buffer capacity (Sec. 5.1:
  60 pipelines, 26.25 MB of buffers, 158.8 mm^2);
* the register file scales linearly at 0.75 mm^2/MB (192 mm^2 / 256 MB);
* a crossbar network costs 16x the fixed permutation network (Sec. 8:
  160 mm^2 vs 10 mm^2);
* the N=128K variant doubles CRB buffers and adds an NTT butterfly stage
  for ~27.4 mm^2 extra (Sec. 9.4).

``scaled_5nm`` applies the published logic/SRAM scaling factors the paper
cites [69] to land at its quoted 157 mm^2 / 146 W on TSMC 5nm.
"""

from __future__ import annotations

from repro.core.config import ChipConfig

# Table 2, 14/12nm (mm^2); FU figures are per unit (the table's 'Total
# FUs' row sums CRB + 2xNTT + Aut + KSHGen + 5xMul + 5xAdd to ~240.5).
CRB_AREA = 158.8
NTT_AREA = 28.1           # per unit
AUT_AREA = 9.0
KSHGEN_AREA = 3.3
MUL_AREA = 2.2            # per unit
ADD_AREA = 0.8            # per unit
RF_AREA_PER_MB = 192.0 / 256.0
FIXED_NETWORK_AREA = 10.0
CROSSBAR_NETWORK_AREA = 160.0   # 16x the fixed network (Sec. 8)
HBM_PHY_AREA = 14.9       # per PHY (2 PHYs = 29.8)

# Sec. 9.4: supporting N=128K natively (CRB buffers 26.25 -> 52.5 MB plus
# one extra NTT butterfly stage) adds 27.4 mm^2.
N128K_EXTRA_AREA = 27.4

# Published 14nm -> 5nm scaling [69]: the paper quotes 472 -> 157 mm^2 and
# 320 -> 146 W.
AREA_SCALE_5NM = 157.0 / 474.1
POWER_SCALE_5NM = 146.0 / 320.0


def area_breakdown(cfg: ChipConfig = ChipConfig()) -> dict[str, float]:
    """Per-component area (mm^2) for a configuration; Table 2 layout."""
    import math

    reference_lanes = 2048
    lane_scale = cfg.lanes / reference_lanes
    degree_doublings = max(0.0, math.log2(cfg.max_degree / 65536))
    crb = 0.0
    if cfg.crb:
        crb = CRB_AREA * (cfg.crb_pipelines / 60.0) * lane_scale
        # Supporting larger N doubles only the CRB *buffers* (26.25 MB per
        # doubling), not its multipliers: +~24 mm^2 per doubling.
        crb += 24.0 * degree_doublings
    ntt = NTT_AREA * cfg.ntt_units * lane_scale
    # One extra butterfly stage per doubling of N (~1.7 mm^2 per unit).
    ntt += 1.7 * cfg.ntt_units * degree_doublings
    breakdown = {
        "CRB FU": crb,
        "NTT FU": ntt,
        "Automorphism FU": AUT_AREA * cfg.aut_units * lane_scale,
        "KSHGen FU": KSHGEN_AREA * (1 if cfg.kshgen else 0) * lane_scale,
        "Multiply FU": MUL_AREA * cfg.mul_units * lane_scale,
        "Add FU": ADD_AREA * cfg.add_units * lane_scale,
        "Register file": RF_AREA_PER_MB * cfg.register_file_mb,
        "On-chip interconnect": (
            FIXED_NETWORK_AREA if cfg.fixed_network else CROSSBAR_NETWORK_AREA
        ) * lane_scale,
        "Mem PHYs": HBM_PHY_AREA * cfg.hbm_phys,
    }
    return breakdown


def total_fu_area(cfg: ChipConfig = ChipConfig()) -> float:
    b = area_breakdown(cfg)
    return sum(
        b[k] for k in ("CRB FU", "NTT FU", "Automorphism FU", "KSHGen FU",
                       "Multiply FU", "Add FU")
    )


def total_area(cfg: ChipConfig = ChipConfig()) -> float:
    """Total chip area in mm^2 (Table 2: 472.3 for the default config)."""
    return sum(area_breakdown(cfg).values())


def scaled_5nm(cfg: ChipConfig = ChipConfig()) -> dict[str, float]:
    """Area/power projection to TSMC 5nm (Sec. 7: ~157 mm^2, ~146 W)."""
    return {
        "area_mm2": total_area(cfg) * AREA_SCALE_5NM,
        "peak_power_w": 320.0 * POWER_SCALE_5NM,
    }
