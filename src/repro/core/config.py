"""Chip configurations: CraterLake, its ablations, and scaled variants.

All Sec. 7 implementation parameters live here, as do the feature flags the
Table 4 ablation study toggles and the N=128K variant of Sec. 9.4.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.reliability.errors import ConfigError


@dataclass(frozen=True)
class ChipConfig:
    """Static description of a CraterLake-style chip.

    The defaults are the paper's configuration (Sec. 7): 2,048 lanes in 8
    groups at 1 GHz, a 256 MB single-level register file with 12 effective
    ports, 2 HBM2E PHYs at 512 GB/s each, and the FU mix of Fig. 5
    (1 CRB, 2 NTT, 1 automorphism, 1 KSHGen, 5 multipliers, 5 adders).
    """

    name: str = "CraterLake"
    lanes: int = 2048                 # E
    lane_groups: int = 8              # G
    clock_ghz: float = 1.0
    register_file_mb: float = 256.0
    rf_ports: int = 12                # effective R/W ports (element-partitioned)
    rf_port_width: int | None = None  # elements per port; None = full width
    hbm_phys: int = 2
    hbm_gbps_per_phy: float = 512.0
    bytes_per_word: float = 3.5       # 28-bit residues, packed
    ntt_units: int = 2
    mul_units: int = 5
    add_units: int = 5
    aut_units: int = 1
    crb_pipelines: int = 60           # CRB sized for Lmax=60 (Sec. 5.1)
    max_degree: int = 65536           # largest native vector length N
    # Transpose network: total bandwidth 4E words/cycle (Sec. 4.2).
    network_words_per_cycle_factor: int = 4
    # Fraction of peak the network sustains on FHE's all-to-all patterns:
    # the fixed permutation network achieves peak by construction; a
    # switched crossbar suffers arbitration/congestion losses.
    network_efficiency: float = 1.0

    # Pipeline latency: a chained FU pipeline's fill time per dependent
    # op.  CraterLake dedicates the whole chip to one homomorphic op at a
    # time (Sec. 4.3), so dependent-op latency is exposed; multicore
    # designs like F1+ overlap independent ops instead (serial_execution
    # False) at the price of extra operand footprint.
    fu_stage_latency: int = 150
    serial_execution: bool = True

    # Decoupled data orchestration lookahead (Sec. 6): how many ops ahead
    # of the compute head the memory stream may fetch operands, reserving
    # them in the register file under Belady next-use.  Depth 1 is the
    # classic recurrence (an op's data streams only once the compute head
    # reaches it); deeper windows hide operand latency behind earlier
    # ops' compute at the price of earlier RF residency.
    prefetch_depth: int = 1

    # Feature flags (Table 4 ablations + Sec. 9.4 variant)
    kshgen: bool = True               # generate half of each KSH on the fly
    crb: bool = True                  # CRB unit present
    chaining: bool = True             # vector chaining of FU pipelines
    fixed_network: bool = True        # False: F1-style crossbar + residue tiling

    def __post_init__(self):
        if self.lane_groups < 1:
            raise ConfigError("need at least one lane group",
                              lane_groups=self.lane_groups)
        if self.lanes % self.lane_groups:
            raise ConfigError("lanes must divide evenly into lane groups",
                              lanes=self.lanes, lane_groups=self.lane_groups)
        if self.max_degree & (self.max_degree - 1):
            raise ConfigError("max_degree must be a power of two",
                              max_degree=self.max_degree)
        if self.lanes & (self.lanes - 1):
            raise ConfigError("lanes must be a power of two",
                              lanes=self.lanes)
        if self.clock_ghz <= 0:
            raise ConfigError("clock must be positive",
                              clock_ghz=self.clock_ghz)
        if self.hbm_phys < 1 or self.hbm_gbps_per_phy <= 0:
            raise ConfigError(
                "config has no HBM bandwidth; nothing can stream",
                hbm_phys=self.hbm_phys,
                gbps_per_phy=self.hbm_gbps_per_phy,
            )
        if self.register_file_mb <= 0:
            raise ConfigError("register file must have positive capacity",
                              register_file_mb=self.register_file_mb)
        if self.rf_ports < 1:
            raise ConfigError("register file needs at least one port",
                              rf_ports=self.rf_ports)
        if self.bytes_per_word <= 0:
            raise ConfigError("bytes_per_word must be positive",
                              bytes_per_word=self.bytes_per_word)
        for attr in ("ntt_units", "mul_units", "add_units", "aut_units",
                     "crb_pipelines"):
            if getattr(self, attr) < 1:
                raise ConfigError(f"{attr} must be >= 1",
                                  **{attr: getattr(self, attr)})
        if self.prefetch_depth < 1:
            raise ConfigError(
                "prefetch window must cover at least the current op",
                prefetch_depth=self.prefetch_depth,
            )

    # -- derived quantities --------------------------------------------------

    @property
    def group_lanes(self) -> int:
        """Lanes per group (E_G = 256 in the paper)."""
        return self.lanes // self.lane_groups

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def hbm_bytes_per_cycle(self) -> float:
        total_gbps = self.hbm_phys * self.hbm_gbps_per_phy
        return total_gbps * 1e9 / self.clock_hz

    @property
    def hbm_words_per_cycle(self) -> float:
        return self.hbm_bytes_per_cycle / self.bytes_per_word

    @property
    def register_file_words(self) -> int:
        return int(self.register_file_mb * 2**20 / self.bytes_per_word)

    @property
    def network_words_per_cycle(self) -> float:
        """Sustained inter-lane-group bandwidth (peak 4E words/cycle =
        29 TB/s for CraterLake, Sec. 4.3)."""
        return (self.network_words_per_cycle_factor * self.lanes
                * self.network_efficiency)

    def passes(self, degree: int) -> int:
        """Cycles for one residue polynomial to stream through an FU."""
        return max(1, degree // self.lanes)

    def cache_key(self) -> dict:
        """The fields the compile cache fingerprints (every knob except
        ``name``).

        ``name`` is a display label: two configs differing only in name
        produce identical costs, gate decisions, and therefore identical
        lowered schedules, so `repro.compiler.cache.fingerprint` treats
        them as the same machine.  Every other field feeds the cost
        model, the simulator, or a pass gate and so invalidates cached
        artifacts when changed.  See docs/COMPILER.md.
        """
        key = asdict(self)
        del key["name"]
        return key

    # -- named configurations -------------------------------------------------

    @classmethod
    def craterlake(cls, **overrides) -> "ChipConfig":
        return cls(**overrides)

    @classmethod
    def craterlake_128k(cls) -> "ChipConfig":
        """Sec. 9.4: native N=128K support (CRB buffers doubled, extra NTT
        butterfly stage); ~27.4 mm^2 of additional area."""
        return cls(name="CraterLake-128K", max_degree=131072)

    def without_kshgen(self) -> "ChipConfig":
        """Table 4 'KSHGen' column: full hints stored in and fetched from
        memory."""
        return replace(self, name=f"{self.name}-noKSHGen", kshgen=False)

    def without_crb_chaining(self) -> "ChipConfig":
        """Table 4 'CRB/chain' column: changeRNSBase runs on the plain
        mul/add FUs through the register file, bounded by its ports."""
        return replace(
            self, name=f"{self.name}-noCRB", crb=False, chaining=False
        )

    def with_crossbar_network(self) -> "ChipConfig":
        """Table 4 'Network' column: F1+'s crossbar and residue-polynomial
        tiling.  The tiling moves 2.4x more words per homomorphic op
        (Sec. 4.3); the crossbar has 2x the peak bandwidth (57 TB/s, at
        16x the area) but sustains well under peak on all-to-all
        patterns."""
        return replace(
            self, name=f"{self.name}-crossbar", fixed_network=False,
            network_words_per_cycle_factor=8, network_efficiency=0.55,
        )

    def with_register_file(self, megabytes: float) -> "ChipConfig":
        """Fig. 11's on-chip storage sweep."""
        return replace(
            self, name=f"{self.name}-{megabytes:g}MB",
            register_file_mb=megabytes,
        )

    def with_prefetch_depth(self, depth: int) -> "ChipConfig":
        """Data-orchestration lookahead sweep: stream operands for up to
        ``depth`` ops ahead of the compute head."""
        return replace(
            self, name=f"{self.name}-pf{depth}", prefetch_depth=depth,
        )

# Traffic multiplier of residue-polynomial tiling vs CraterLake's
# polynomial tiling (Sec. 4.3: "incurs over 2.4x more traffic").
CROSSBAR_TRAFFIC_FACTOR = 2.4
