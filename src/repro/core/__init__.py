"""The CraterLake accelerator model: the paper's primary contribution.

A cycle-level performance model of the 2,048-lane vector uniprocessor
(Sec. 4-5): chip configurations (including the Table 4 ablations and the
N=128K variant of Sec. 9.4), per-operation functional-unit cost functions,
a static-schedule simulator with Belady-managed on-chip storage and
decoupled data orchestration, the area/power models behind Table 2 and
Fig. 10b, and functional models of the novel hardware pieces: the CRB unit,
the KSHGen rejection-sampling pipeline, the two-level transpose network,
and vector chaining's register-file port accounting.
"""

from repro.core.config import ChipConfig
from repro.core.cost import OpCost, op_cost, keyswitch_cost
from repro.core.simulator import SimResult, simulate
from repro.core.area import area_breakdown, total_area, scaled_5nm
from repro.core.energy import energy_breakdown, average_power

__all__ = [
    "ChipConfig",
    "OpCost",
    "op_cost",
    "keyswitch_cost",
    "SimResult",
    "simulate",
    "area_breakdown",
    "total_area",
    "scaled_5nm",
    "energy_breakdown",
    "average_power",
]
