"""Static cycle-level simulator for CraterLake-style machines.

Executes a :class:`repro.ir.Program` against a :class:`ChipConfig`,
modeling

* per-op compute time as the limiting resource among FU classes, register
  file ports (with vector chaining's reduction) and the transpose network
  (`repro.core.cost`);
* the single-level register file as a Belady-MIN-managed store of
  ciphertexts, plaintexts and keyswitch hints - the compiler's eviction
  policy (Sec. 6);
* HBM as a bandwidth-limited stream, overlapped with compute through
  decoupled data orchestration: memory for op i+1 proceeds while op i
  computes, which is the two-clock recurrence below.

Outputs match what the paper's evaluation reports: execution time, FU and
bandwidth utilization (Fig. 9), off-chip traffic split into KSH / inputs /
intermediate loads / stores (Fig. 10a), and activity counts the energy
model converts into the Fig. 10b power breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig
from repro.core.cost import (
    OpCost,
    ciphertext_words,
    op_cost,
    op_latency,
    plaintext_words,
    raised_words,
)
from repro.ir import HOIST_MODUP, INPUT, OUTPUT, ROTATE_HOISTED, Program
from repro.obs import collector as obs
from repro.reliability.validate import validate_program

# Object categories for traffic accounting (Fig. 10a).
KSH = "ksh"
INPUTS = "inputs"
INTERM = "interm"


@dataclass
class SimResult:
    """Everything the evaluation needs from one simulated run."""

    name: str
    config_name: str
    cycles: float
    compute_cycles: float
    mem_cycles: float
    fu_busy_cycles: dict[str, float]
    traffic_words: dict[str, float]  # ksh / inputs / interm_load / interm_store
    scalar_mults: float
    scalar_adds: float
    kshgen_words: float
    network_words: float
    clock_hz: float
    bytes_per_word: float
    fu_units: dict[str, int] = field(default_factory=dict)
    port_stream_elements: float = 0.0
    rf_capacity_words: int = 0
    peak_resident_words: float = 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def total_traffic_bytes(self) -> float:
        return sum(self.traffic_words.values()) * self.bytes_per_word

    @property
    def bandwidth_utilization(self) -> float:
        return min(1.0, self.mem_cycles / self.cycles) if self.cycles else 0.0

    def fu_utilization(self) -> float:
        """Average busy fraction across the chip's FUs (Fig. 9 metric):
        per-class busy cycles weighted by how many units each class has
        (CraterLake: CRB, 2 NTT, Aut, KSHGen, 5 Mul, 5 Add = 15 FUs)."""
        if not self.cycles or not self.fu_units:
            return 0.0
        busy = sum(
            cycles * self.fu_units.get(cls, 1)
            for cls, cycles in self.fu_busy_cycles.items()
        )
        total_units = sum(self.fu_units.values())
        return min(1.0, busy / (total_units * self.cycles))


@dataclass
class _Resident:
    words: float
    category: str
    dirty: bool
    next_use: float  # op index of next use; inf if none


class _RegisterFile:
    """Belady-MIN managed on-chip storage (the compiler's plan, Sec. 6)."""

    def __init__(self, capacity_words: float):
        self.capacity = capacity_words
        self.objects: dict[str, _Resident] = {}
        self.used = 0.0
        self.peak = 0.0

    def lookup(self, obj: str) -> _Resident | None:
        return self.objects.get(obj)

    def insert(self, obj: str, words: float, category: str, dirty: bool,
               next_use: float) -> list[tuple[str, _Resident]]:
        """Make obj resident; returns evicted (name, record) pairs."""
        evicted = []
        if words > self.capacity:
            # Operand larger than the register file: it streams through;
            # model as transient residency (no eviction bookkeeping).
            return evicted
        while self.used + words > self.capacity:
            victim = max(
                self.objects, key=lambda o: (self.objects[o].next_use,
                                             -self.objects[o].words)
            )
            record = self.objects.pop(victim)
            self.used -= record.words
            evicted.append((victim, record))
        self.objects[obj] = _Resident(words, category, dirty, next_use)
        self.used += words
        self.peak = max(self.peak, self.used)
        return evicted

    def drop(self, obj: str) -> None:
        record = self.objects.pop(obj, None)
        if record is not None:
            self.used -= record.words


def _next_use_table(program: Program) -> list[dict[str, int]]:
    """next_use[i][obj] = first op index > i that touches obj (else inf)."""
    last: dict[str, float] = {}
    table: list[dict[str, float]] = [dict() for _ in program.ops]
    for i in range(len(program.ops) - 1, -1, -1):
        op = program.ops[i]
        touched = list(op.operands)
        if op.hint_id:
            touched.append(op.hint_id)
        if op.plaintext_id:
            touched.append(op.plaintext_id)
        touched.append(op.result)
        entry = {}
        for obj in touched:
            entry[obj] = last.get(obj, float("inf"))
        table[i] = entry
        for obj in touched:
            last[obj] = i
    return table


def simulate(program: Program, cfg: ChipConfig,
             checkpoint_every: int = 0) -> SimResult:
    """Run ``program`` on machine ``cfg``; see module docstring.

    ``checkpoint_every`` > 0 models checkpointed execution (the recovery
    layer's schedule-boundary snapshots, `repro.reliability.recovery`):
    after every k-th compute op, the live intermediate state - all dirty
    ciphertext residents - is written back through the HBM stream.  The
    extra traffic lands under a ``"ckpt"`` key (present only when
    enabled, so uncheckpointed results keep their exact shape) and
    advances the memory clock, making the resilience bandwidth cost
    visible in the same units as Fig. 10a's traffic split.
    """
    validate_program(program, cfg)
    n = program.degree
    rf = _RegisterFile(cfg.register_file_words)
    next_use = _next_use_table(program)

    fu_busy: dict[str, float] = {}
    prev_result: str | None = None
    traffic = {KSH: 0.0, INPUTS: 0.0, "interm_load": 0.0, "interm_store": 0.0}
    if checkpoint_every:
        traffic["ckpt"] = 0.0
    compute_ops = 0
    totals = OpCost()
    mem_clock = 0.0
    comp_clock = 0.0
    words_per_cycle = cfg.hbm_words_per_cycle

    # Per-op Belady victim count, for the observability layer; fetch() and
    # the result-allocation loop increment it, the op loop resets it.
    evicted = [0]

    def fetch(obj: str, words: float, category: str, dirty: bool,
              uses_at: float) -> float:
        """Ensure obj is resident; return words moved from memory."""
        record = rf.lookup(obj)
        if record is not None:
            record.next_use = uses_at
            return 0.0
        moved = words
        if category == KSH:
            traffic[KSH] += words
        elif category == INPUTS:
            traffic[INPUTS] += words
        else:
            traffic["interm_load"] += words
        for _, victim in rf.insert(obj, words, category, dirty, uses_at):
            evicted[0] += 1
            if victim.dirty and victim.next_use != float("inf"):
                traffic["interm_store"] += victim.words
                moved += victim.words
        return moved

    tr = obs.active()

    def record(op, index: int, crit_before: float, mem_before: float,
               compute_start: float, compute_cycles: float,
               stall: float, mem_words: float,
               fu_cycles: dict[str, float] | None = None) -> None:
        """Emit one OpEvent; ``cycles`` is the critical-path advance, so
        the events telescope exactly to the final cycle count."""
        tr.emit_op(obs.OpEvent(
            index=index, kind=op.kind, result=op.result, level=op.level,
            tag=op.tag,
            cycles=max(comp_clock, mem_clock) - crit_before,
            compute_start=compute_start, compute_cycles=compute_cycles,
            mem_start=mem_before, mem_cycles=mem_clock - mem_before,
            stall_cycles=stall, mem_words=mem_words, evictions=evicted[0],
            fu_cycles=dict(fu_cycles) if fu_cycles else {},
        ))
        tr.count("sim.ops")
        tr.count(f"sim.ops.{op.kind}")
        if evicted[0]:
            tr.count("sim.rf_evictions", evicted[0])

    for i, op in enumerate(program.ops):
        uses = next_use[i]
        mem_words = 0.0
        evicted[0] = 0
        crit_before = max(comp_clock, mem_clock)
        mem_before = mem_clock

        if op.kind == INPUT:
            # Client/weight data arriving from memory on first touch.
            words = ciphertext_words(n, op.level)
            mem_words += fetch(op.result, words, INPUTS, False,
                               uses.get(op.result, float("inf")))
            mem_clock += mem_words / words_per_cycle
            if tr is not None:
                record(op, i, crit_before, mem_before, comp_clock, 0.0,
                       0.0, mem_words)
            continue
        if op.kind == OUTPUT:
            words = ciphertext_words(n, op.level)
            traffic["interm_store"] += words
            mem_clock += words / words_per_cycle
            for operand in op.operands:
                rf.drop(operand)
            if tr is not None:
                record(op, i, crit_before, mem_before, comp_clock, 0.0,
                       0.0, words)
            continue

        cost = op_cost(cfg, op, n)
        totals.merge(cost)

        # Operand residency.  A rotate_hoisted's first operand is the
        # shared raised-digit object (t digits of L + alpha residues, a
        # hoist_modup result), not a 2-polynomial ciphertext.
        for slot, operand in enumerate(op.operands):
            if op.kind == ROTATE_HOISTED and slot == 0:
                words = raised_words(n, op.level, op.digits)
            else:
                words = ciphertext_words(n, op.level)
            mem_words += fetch(operand, words, INTERM, True, uses[operand])
        if op.plaintext_id is not None:
            words = (2 * n if op.compact_pt
                     else plaintext_words(n, op.level)) * op.repeat
            mem_words += fetch(op.plaintext_id, words, INPUTS, False,
                               uses[op.plaintext_id])
        if op.hint_id is not None and cost.hint_words:
            mem_words += fetch(op.hint_id, cost.hint_words, KSH, False,
                               uses[op.hint_id])
        # Result allocation (produced on chip; traffic only if evicted and
        # reloaded later).
        result_words = (raised_words(n, op.level, op.digits)
                        if op.kind == HOIST_MODUP
                        else ciphertext_words(n, op.level))
        for _, victim in rf.insert(op.result, result_words,
                                   INTERM, True, uses[op.result]):
            evicted[0] += 1
            if victim.dirty and victim.next_use != float("inf"):
                traffic["interm_store"] += victim.words
                mem_words += victim.words

        # Decoupled data orchestration: memory streams in op order; compute
        # for op i starts when both the previous op and its own data are
        # done (prefetching hides latency whenever compute is the bound).
        mem_clock += mem_words / words_per_cycle
        cycles = cost.compute_cycles(cfg)
        # Pipeline-fill latency is exposed only when this op consumes the
        # previous op's result (a true dependence chain); independent ops
        # overlap in the static schedule.
        chained = prev_result is not None and prev_result in op.operands
        if chained:
            cycles += op_latency(cfg, op, n)
        prev_result = op.result
        compute_start = max(comp_clock, mem_clock)
        stall = compute_start - comp_clock
        comp_clock = compute_start + cycles
        op_fu_cycles: dict[str, float] = {}
        for cls, elements in cost.fu_elements.items():
            capacity = max(1.0, _unit_capacity(cfg, cls))
            op_fu_cycles[cls] = elements / capacity
            fu_busy[cls] = fu_busy.get(cls, 0.0) + elements / capacity
        # Checkpoint boundary: snapshot the live intermediate state through
        # HBM.  Charged before the op's event is recorded so the advance
        # still telescopes into the per-op cycle accounting.
        compute_ops += 1
        if checkpoint_every and compute_ops % checkpoint_every == 0:
            ckpt_words = sum(
                r.words for r in rf.objects.values()
                if r.category == INTERM and r.dirty
            )
            if ckpt_words:
                traffic["ckpt"] += ckpt_words
                mem_words += ckpt_words
                mem_clock += ckpt_words / words_per_cycle
                if tr is not None:
                    tr.count("sim.checkpoints")
                    tr.count("sim.checkpoint_words", ckpt_words)
        if tr is not None:
            if chained and cfg.chaining:
                tr.count("sim.chain_hits")
            record(op, i, crit_before, mem_before, compute_start, cycles,
                   stall, mem_words, op_fu_cycles)

    total_cycles = max(comp_clock, mem_clock)
    return SimResult(
        name=program.name,
        config_name=cfg.name,
        cycles=total_cycles,
        compute_cycles=comp_clock,
        mem_cycles=mem_clock,
        fu_busy_cycles=fu_busy,
        traffic_words=traffic,
        scalar_mults=totals.scalar_mults,
        scalar_adds=totals.scalar_adds,
        kshgen_words=totals.kshgen_elements,
        network_words=totals.network_words,
        clock_hz=cfg.clock_hz,
        bytes_per_word=cfg.bytes_per_word,
        fu_units={
            "ntt": cfg.ntt_units, "mul": cfg.mul_units,
            "add": cfg.add_units, "aut": cfg.aut_units,
            "crb": 1 if cfg.crb else 0,
            "kshgen": 1 if cfg.kshgen else 0,
        },
        port_stream_elements=totals.port_stream_elements,
        rf_capacity_words=cfg.register_file_words,
        peak_resident_words=rf.peak,
    )


def _unit_capacity(cfg: ChipConfig, cls: str) -> float:
    from repro.core.cost import _class_capacity

    return _class_capacity(cfg, cls)
