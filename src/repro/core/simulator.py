"""Static cycle-level simulator for CraterLake-style machines.

Executes a :class:`repro.ir.Program` against a :class:`ChipConfig`,
modeling

* per-op compute time as the limiting resource among FU classes, register
  file ports (with vector chaining's reduction) and the transpose network
  (`repro.core.cost`);
* the single-level register file as a Belady-MIN-managed store of
  ciphertexts, plaintexts and keyswitch hints - the compiler's eviction
  policy (Sec. 6) - with *free-on-last-use* dead-dropping: a resident
  whose next use is the ``inf`` sentinel is released the moment its last
  consumer issues, so dead values never occupy capacity or surface as
  Belady victims;
* HBM as a bandwidth-limited stream, overlapped with compute through
  decoupled data orchestration: a lookahead prefetcher streams operands
  for up to ``ChipConfig.prefetch_depth`` ops ahead of the compute head,
  reserving them in the register file under their Belady next-use.
  Depth 1 is the classic recurrence (memory for op i streams when the
  compute head reaches it, overlapping op i-1's compute); deeper windows
  hide operand streams behind earlier ops' compute.

Outputs match what the paper's evaluation reports: execution time, FU and
bandwidth utilization (Fig. 9), off-chip traffic split into KSH / inputs /
intermediate loads / stores (Fig. 10a), and activity counts the energy
model converts into the Fig. 10b power breakdown.  Scheduling-quality
observables (Belady evictions, dead drops, prefetch hits, and the
stall-cause split) land both on :class:`SimResult` and, when tracing is
enabled, as ``sim.*`` counters (see docs/TRACING.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.config import ChipConfig
from repro.core.cost import (
    OpCost,
    ciphertext_words,
    op_cost,
    op_latency,
    plaintext_words,
    raised_words,
)
from repro.ir import HOIST_MODUP, INPUT, OUTPUT, ROTATE_HOISTED, Program
from repro.obs import collector as obs
from repro.reliability.validate import validate_program

# Object categories for traffic accounting (Fig. 10a).
KSH = "ksh"
INPUTS = "inputs"
INTERM = "interm"

_INF = float("inf")


@dataclass
class SimResult:
    """Everything the evaluation needs from one simulated run."""

    name: str
    config_name: str
    cycles: float
    compute_cycles: float
    mem_cycles: float
    fu_busy_cycles: dict[str, float]
    traffic_words: dict[str, float]  # ksh / inputs / interm_load / interm_store
    scalar_mults: float
    scalar_adds: float
    kshgen_words: float
    network_words: float
    clock_hz: float
    bytes_per_word: float
    fu_units: dict[str, int] = field(default_factory=dict)
    port_stream_elements: float = 0.0
    rf_capacity_words: int = 0
    peak_resident_words: float = 0.0
    # Scheduling-quality observables (also emitted as sim.* counters when
    # tracing is on; carried here so gates and regression tables need no
    # collector).
    rf_evictions: int = 0          # Belady victims displaced under pressure
    dead_drops: int = 0            # residents released on their last use
    prefetch_hits: int = 0         # operand fetches already streamed ahead
    stall_cycles: float = 0.0      # compute cycles lost waiting on memory
    prefetch_window_stall_cycles: float = 0.0  # stall share a deeper
    #                                window could have hidden (operand
    #                                streams issued only at the head)
    # Critical-path cycles attributed to each op tag (FheBuilder.phase
    # label; "" for untagged ops).  Each op's critical-path advance lands
    # in its tag's bucket, so the buckets telescope exactly to
    # ``program_cycles`` - the serving layer uses this to charge chip
    # time to a batch's phases (and, divided by occupancy, to individual
    # requests).
    tag_cycles: dict[str, float] = field(default_factory=dict)
    # Overlap accounting (the pod layer's double-buffered transfers).
    # ``program_cycles`` is the critical path of the op stream alone,
    # before any extra/overlap stream charging; ``serialized_cycles`` is
    # what ``cycles`` would have been had every overlappable stream been
    # charged serialized (the PR 8 model) - for runs without overlap
    # streams the two fields equal ``cycles``.
    program_cycles: float = 0.0
    serialized_cycles: float = 0.0
    overlap_hidden_cycles: float = 0.0  # serialized - overlapped cost
    link_port_cycles: float = 0.0       # busiest per-direction link port

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def total_traffic_bytes(self) -> float:
        return sum(self.traffic_words.values()) * self.bytes_per_word

    @property
    def bandwidth_utilization(self) -> float:
        return min(1.0, self.mem_cycles / self.cycles) if self.cycles else 0.0

    def fu_utilization(self) -> float:
        """Average busy fraction across the chip's FUs (Fig. 9 metric):
        per-class busy cycles weighted by how many units each class has
        (CraterLake: CRB, 2 NTT, Aut, KSHGen, 5 Mul, 5 Add = 15 FUs)."""
        if not self.cycles or not self.fu_units:
            return 0.0
        busy = sum(
            cycles * self.fu_units.get(cls, 1)
            for cls, cycles in self.fu_busy_cycles.items()
        )
        total_units = sum(self.fu_units.values())
        return min(1.0, busy / (total_units * self.cycles))


@dataclass
class _Resident:
    words: float
    category: str
    dirty: bool
    next_use: float  # op index of next use; inf if none


class _RegisterFile:
    """Belady-MIN managed on-chip storage (the compiler's plan, Sec. 6)."""

    def __init__(self, capacity_words: float):
        self.capacity = capacity_words
        self.objects: dict[str, _Resident] = {}
        self.used = 0.0
        self.peak = 0.0

    def lookup(self, obj: str) -> _Resident | None:
        return self.objects.get(obj)

    def insert(self, obj: str, words: float, category: str, dirty: bool,
               next_use: float) -> list[tuple[str, _Resident]]:
        """Make obj resident; returns evicted (name, record) pairs."""
        evicted = []
        if words > self.capacity:
            # Operand larger than the register file: it streams through;
            # model as transient residency (no eviction bookkeeping).
            return evicted
        while self.used + words > self.capacity:
            victim = max(
                self.objects, key=lambda o: (self.objects[o].next_use,
                                             -self.objects[o].words)
            )
            record = self.objects.pop(victim)
            self.used -= record.words
            evicted.append((victim, record))
        self.objects[obj] = _Resident(words, category, dirty, next_use)
        self.used += words
        self.peak = max(self.peak, self.used)
        return evicted

    def drop(self, obj: str) -> _Resident | None:
        record = self.objects.pop(obj, None)
        if record is not None:
            self.used -= record.words
        return record


def _next_use_table(program: Program) -> list[dict[str, float]]:
    """``table[i][obj]`` = first op index > i that touches obj.

    Values are op indices widened to float because ``inf`` is the
    "never used again" sentinel: the register file's Belady policy sorts
    victims by next use (``inf`` first), and the simulator's dead-drop
    sweep releases any resident whose entry is ``inf`` at its last use.
    """
    last: dict[str, float] = {}
    table: list[dict[str, float]] = [dict() for _ in program.ops]
    for i in range(len(program.ops) - 1, -1, -1):
        op = program.ops[i]
        touched = list(op.operands)
        if op.hint_id:
            touched.append(op.hint_id)
        if op.plaintext_id:
            touched.append(op.plaintext_id)
        touched.append(op.result)
        entry = {}
        for obj in touched:
            entry[obj] = last.get(obj, _INF)
        table[i] = entry
        for obj in touched:
            last[obj] = i
    return table


def _fetch_plan(op, cost: OpCost | None, n: int) -> list[tuple[str, float, str]]:
    """Memory objects op needs resident before compute: (obj, words,
    category) triples in stream order.  INPUT ops fetch their own result
    (client data arriving from memory); OUTPUT ops fetch nothing."""
    if op.kind == OUTPUT:
        return []
    if op.kind == INPUT:
        return [(op.result, ciphertext_words(n, op.level), INPUTS)]
    plan = []
    # A rotate_hoisted's first operand is the shared raised-digit object
    # (t digits of L + alpha residues, a hoist_modup result), not a
    # 2-polynomial ciphertext.
    for slot, operand in enumerate(op.operands):
        if op.kind == ROTATE_HOISTED and slot == 0:
            words = raised_words(n, op.level, op.digits)
        else:
            words = ciphertext_words(n, op.level)
        plan.append((operand, words, INTERM))
    if op.plaintext_id is not None:
        words = (2 * n if op.compact_pt
                 else plaintext_words(n, op.level)) * op.repeat
        plan.append((op.plaintext_id, words, INPUTS))
    if op.hint_id is not None and cost is not None and cost.hint_words:
        plan.append((op.hint_id, cost.hint_words, KSH))
    return plan


def simulate(program: Program, cfg: ChipConfig,
             checkpoint_every: int = 0, cache=None,
             extra_streams: dict[str, tuple[float, float]] | None = None,
             chip: int | None = None,
             overlap_streams: dict[str, tuple[float, float]] | None = None,
             ) -> SimResult:
    """Run ``program`` on machine ``cfg``; see module docstring.

    ``extra_streams`` charges additional off-chip transfers this chip
    owes beyond the program's own HBM traffic - the pod layer
    (`repro.pod`) uses it for interconnect sends/receives.  Each entry
    maps a stream name to ``(words, words_per_cycle)``; the words land
    under that name in ``traffic_words`` and advance the memory clock at
    the stream's own rate (a pod link is slower than HBM), so link-bound
    shards show up as memory-bound in the same units as Fig. 10a.

    ``overlap_streams`` has the same entry shape but models
    *double-buffered* transfers: a dedicated port (the link direction)
    carries the stream concurrently with compute, and only the stream's
    memory-system crossing claims memory cycles - at HBM rate when the
    link is the slower side (the crossing hides in otherwise-idle
    bandwidth the way ``prefetch_depth`` claims free capacity), at the
    stream's own rate when the stream itself is the bottleneck
    (bandwidth-bound fallback, which degenerates to serialized
    charging).  The final cycle count becomes
    ``max(compute, memory, busiest port)`` - the ``max(compute, comm)``
    shape of a pipelined stage - and is never worse than the serialized
    model (reported in ``serialized_cycles``; the gap lands in
    ``overlap_hidden_cycles``) and never better than
    ``max(program_cycles, busiest port)``.

    ``chip`` tags every emitted :class:`~repro.obs.collector.OpEvent`
    with a pod chip index, giving each chip its own process row in the
    Chrome-trace export; ``None`` (the default) keeps the single-chip
    layout.

    ``checkpoint_every`` > 0 models checkpointed execution (the recovery
    layer's schedule-boundary snapshots, `repro.reliability.recovery`):
    after every k-th compute op, the live intermediate state - all dirty
    ciphertext residents - is written back through the HBM stream.  The
    extra traffic lands under a ``"ckpt"`` key (present only when
    enabled, so uncheckpointed results keep their exact shape) and
    advances the memory clock, making the resilience bandwidth cost
    visible in the same units as Fig. 10a's traffic split.

    ``cache`` routes the program through the compiler's lowering
    pipeline (`repro.compiler.cache.compile_program`: hoisting +
    pressure scheduling behind the content-addressed compile cache)
    before simulating - the compile-once/run-many entry path for
    repeated inference.  Accepts ``True`` (the default process-wide
    cache), a directory path, or a ``CompileCache``.  The default
    (``None``, overridable with ``REPRO_COMPILE_CACHE=1``) simulates
    the given op stream exactly as passed, with no lowering and no
    caching, so existing results are unchanged.  See docs/COMPILER.md.
    """
    if cache is None and os.environ.get("REPRO_COMPILE_CACHE", "") in (
            "1", "on", "true"):
        cache = True
    if cache:
        from repro.compiler.cache import compile_program

        program = compile_program(program, cfg, cache=cache)
    validate_program(program, cfg)
    n = program.degree
    ops = program.ops
    n_ops = len(ops)
    depth = cfg.prefetch_depth
    rf = _RegisterFile(cfg.register_file_words)
    next_use = _next_use_table(program)
    # Where each value is materialized on chip; INPUT results live in
    # memory from the start (client data), so they are prefetchable.
    producer = {op.result: i for i, op in enumerate(ops)
                if op.kind not in (INPUT, OUTPUT)}

    fu_busy: dict[str, float] = {}
    prev_result: str | None = None
    traffic = {KSH: 0.0, INPUTS: 0.0, "interm_load": 0.0, "interm_store": 0.0}
    if checkpoint_every:
        traffic["ckpt"] = 0.0
    compute_ops = 0
    totals = OpCost()
    mem_clock = 0.0
    comp_clock = 0.0
    words_per_cycle = cfg.hbm_words_per_cycle

    # Per-op costs and fetch plans, precomputed so the prefetcher can
    # stream a future op's operands before the compute head reaches it.
    costs = [op_cost(cfg, op, n) if op.kind not in (INPUT, OUTPUT) else None
             for op in ops]
    plans = [_fetch_plan(op, costs[i], n) for i, op in enumerate(ops)]
    issued = [False] * n_ops       # op's fetch plan already streamed
    ready_at = [0.0] * n_ops       # mem clock when the op's stream was done
    prefetched: set[str] = set()   # residents brought in ahead of their op

    # Per-op observability accumulators; fetch paths increment them, the
    # head loop resets them per op and folds them into the run totals.
    evicted = [0]
    dead_drops = [0]
    hits = [0]
    total_evictions = 0
    total_dead_drops = 0
    total_hits = 0
    total_stall = 0.0
    total_window_stall = 0.0

    def fetch(obj: str, words: float, category: str, uses_at: float) -> float:
        """Ensure obj is resident for the compute head; return words moved
        from memory (0 when already resident, e.g. reuse or prefetch)."""
        record = rf.lookup(obj)
        if record is not None:
            record.next_use = uses_at
            if obj in prefetched:
                prefetched.discard(obj)
                hits[0] += 1
            return 0.0
        moved = words
        if category == KSH:
            traffic[KSH] += words
        elif category == INPUTS:
            traffic[INPUTS] += words
        else:
            traffic["interm_load"] += words
        dirty = category == INTERM
        for victim, vrec in rf.insert(obj, words, category, dirty, uses_at):
            prefetched.discard(victim)
            evicted[0] += 1
            if vrec.dirty and vrec.next_use != _INF:
                traffic["interm_store"] += vrec.words
                moved += vrec.words
        return moved

    def prefetch(obj: str, words: float, category: str, target: int) -> float:
        """Stream obj ahead of its op; reserved under Belady next-use
        ``target`` (the op that will consume it).  Returns words moved.

        Prefetch claims only free capacity - it never evicts a resident.
        Displacing data the compute head still needs for data a *future*
        op needs is how lookahead turns into thrash (fetch, lose, fetch
        again); under pressure the window simply stops growing and the
        head fetches at its own turn, exactly as at depth 1."""
        record = rf.lookup(obj)
        if record is not None:
            # Already resident (reuse, or an earlier window op fetched
            # it); keep the nearest use so Belady never under-protects it.
            record.next_use = min(record.next_use, target)
            return 0.0
        if rf.used + words > rf.capacity:
            return 0.0
        prefetched.add(obj)
        return fetch(obj, words, category, target)

    def dead_sweep(op, uses: dict[str, float]) -> None:
        """Free-on-last-use: release residents this op touched whose next
        use is the ``inf`` sentinel, so dead values stop occupying
        capacity and forcing Belady evictions."""
        touched = list(op.operands)
        if op.hint_id:
            touched.append(op.hint_id)
        if op.plaintext_id:
            touched.append(op.plaintext_id)
        touched.append(op.result)
        for obj in touched:
            record = rf.lookup(obj)
            if record is not None and record.next_use == _INF:
                rf.drop(obj)
                dead_drops[0] += 1

    tr = obs.active()
    tag_cycles: dict[str, float] = {}

    def charge_tag(op, crit_before: float) -> None:
        """Attribute this op's critical-path advance to its tag bucket;
        the per-tag sums telescope exactly to the final cycle count."""
        advance = max(comp_clock, mem_clock) - crit_before
        if advance:
            tag_cycles[op.tag] = tag_cycles.get(op.tag, 0.0) + advance

    def record(op, index: int, crit_before: float, mem_before: float,
               compute_start: float, compute_cycles: float,
               stall: float, mem_words: float,
               fu_cycles: dict[str, float] | None = None) -> None:
        """Emit one OpEvent; ``cycles`` is the critical-path advance, so
        the events telescope exactly to the final cycle count."""
        tr.emit_op(obs.OpEvent(
            index=index, kind=op.kind, result=op.result, level=op.level,
            tag=op.tag,
            cycles=max(comp_clock, mem_clock) - crit_before,
            compute_start=compute_start, compute_cycles=compute_cycles,
            mem_start=mem_before, mem_cycles=mem_clock - mem_before,
            stall_cycles=stall, mem_words=mem_words, evictions=evicted[0],
            fu_cycles=dict(fu_cycles) if fu_cycles else {},
            chip=chip,
        ))
        tr.count("sim.ops")
        tr.count(f"sim.ops.{op.kind}")
        if evicted[0]:
            tr.count("sim.rf_evictions", evicted[0])
        if dead_drops[0]:
            tr.count("sim.dead_drops", dead_drops[0])
        if hits[0]:
            tr.count("sim.prefetch_hits", hits[0])

    for i, op in enumerate(ops):
        uses = next_use[i]
        mem_words = 0.0
        evicted[0] = 0
        dead_drops[0] = 0
        hits[0] = 0
        crit_before = max(comp_clock, mem_clock)
        mem_before = mem_clock

        if op.kind == OUTPUT:
            words = ciphertext_words(n, op.level)
            traffic["interm_store"] += words
            mem_clock += words / words_per_cycle
            for operand in op.operands:
                rec = rf.lookup(operand)
                if rec is None:
                    continue
                # The store leaves the value backed by memory: the RF copy
                # stays valid but clean (a later eviction needs no second
                # writeback), and it is released outright on its last use.
                rec.dirty = False
                rec.next_use = uses.get(operand, _INF)
                if rec.next_use == _INF:
                    rf.drop(operand)
                    dead_drops[0] += 1
            # The stored object's own record: hand-built (non-SSA) streams
            # may reuse the output name for a resident value, which would
            # otherwise linger dead in the RF.
            if op.result not in op.operands and rf.drop(op.result) is not None:
                dead_drops[0] += 1
            total_dead_drops += dead_drops[0]
            charge_tag(op, crit_before)
            if tr is not None:
                record(op, i, crit_before, mem_before, comp_clock, 0.0,
                       0.0, words)
            continue

        # Operand residency: stream this op's remaining fetches (all of
        # them at depth 1; at deeper windows most were prefetched and
        # count as hits, and only prefetch victims are re-fetched here).
        for obj, words, category in plans[i]:
            mem_words += fetch(obj, words, category, uses.get(obj, _INF))
        issued[i] = True
        fetch_cycles = mem_words / words_per_cycle
        own_cycles = fetch_cycles

        if op.kind == INPUT:
            mem_clock += own_cycles
            dead_sweep(op, uses)
            total_evictions += evicted[0]
            total_dead_drops += dead_drops[0]
            total_hits += hits[0]
            charge_tag(op, crit_before)
            if tr is not None:
                record(op, i, crit_before, mem_before, comp_clock, 0.0,
                       0.0, mem_words)
            continue

        cost = costs[i]
        totals.merge(cost)

        # Result allocation (produced on chip; traffic only if evicted and
        # reloaded later).
        result_words = (raised_words(n, op.level, op.digits)
                        if op.kind == HOIST_MODUP
                        else ciphertext_words(n, op.level))
        for victim, vrec in rf.insert(op.result, result_words,
                                      INTERM, True, uses[op.result]):
            prefetched.discard(victim)
            evicted[0] += 1
            if vrec.dirty and vrec.next_use != _INF:
                traffic["interm_store"] += vrec.words
                mem_words += vrec.words
                own_cycles += vrec.words / words_per_cycle

        # Decoupled data orchestration: compute for op i starts when the
        # previous op is done and its own stream has arrived.  Prefetched
        # operands arrived at an earlier memory clock (ready_at), so only
        # the residual fetched at the head delays this op.
        mem_clock += own_cycles
        # At depth 1 (the classic one-op-deep recurrence) compute never
        # runs ahead of the in-order memory stream; with lookahead, a
        # fully prefetched op waits only for its own stream's completion
        # time (ready_at), not for the window's later fetches.  Writeback
        # residuals (evicted dirty victims) occupy the stream but do not
        # gate this op's compute - only missing operands do.
        if depth == 1 or fetch_cycles:
            op_ready = mem_clock
        else:
            op_ready = ready_at[i]
        cycles = cost.compute_cycles(cfg)
        # Pipeline-fill latency is exposed only when this op consumes the
        # previous op's result (a true dependence chain); independent ops
        # overlap in the static schedule.
        chained = prev_result is not None and prev_result in op.operands
        if chained:
            cycles += op_latency(cfg, op, n)
        prev_result = op.result
        compute_start = max(comp_clock, op_ready)
        stall = compute_start - comp_clock
        # Stall-cause split: the share covered by streams issued only at
        # the head (a deeper prefetch window could have hidden it) vs the
        # share where the memory stream itself is the backlog.
        window_stall = min(stall, own_cycles)
        total_stall += stall
        total_window_stall += window_stall
        comp_clock = compute_start + cycles
        op_fu_cycles: dict[str, float] = {}
        for cls, elements in cost.fu_elements.items():
            capacity = max(1.0, _unit_capacity(cfg, cls))
            op_fu_cycles[cls] = elements / capacity
            fu_busy[cls] = fu_busy.get(cls, 0.0) + elements / capacity

        # Free-on-last-use before the prefetcher claims space: dead
        # residents this op just consumed never become Belady victims.
        dead_sweep(op, uses)

        # Lookahead data orchestration: while this op computes, stream
        # operands for the next prefetch_depth - 1 ops (skipping values
        # their producers have not materialized yet - those are forwarded
        # on chip, not fetched).
        for j in range(i + 1, min(i + depth, n_ops)):
            if issued[j] or ops[j].kind == OUTPUT:
                continue
            moved_ahead = 0.0
            for obj, words, category in plans[j]:
                if producer.get(obj, -1) > i:
                    continue  # produced later on chip; nothing to stream
                moved_ahead += prefetch(obj, words, category, j)
            issued[j] = True
            if moved_ahead:
                mem_words += moved_ahead
                mem_clock += moved_ahead / words_per_cycle
            ready_at[j] = mem_clock

        # Checkpoint boundary: snapshot the live intermediate state through
        # HBM.  Charged before the op's event is recorded so the advance
        # still telescopes into the per-op cycle accounting.
        compute_ops += 1
        if checkpoint_every and compute_ops % checkpoint_every == 0:
            ckpt_words = sum(
                r.words for r in rf.objects.values()
                if r.category == INTERM and r.dirty
            )
            if ckpt_words:
                traffic["ckpt"] += ckpt_words
                mem_words += ckpt_words
                mem_clock += ckpt_words / words_per_cycle
                if tr is not None:
                    tr.count("sim.checkpoints")
                    tr.count("sim.checkpoint_words", ckpt_words)
        total_evictions += evicted[0]
        total_dead_drops += dead_drops[0]
        total_hits += hits[0]
        charge_tag(op, crit_before)
        if tr is not None:
            if chained and cfg.chaining:
                tr.count("sim.chain_hits")
            record(op, i, crit_before, mem_before, compute_start, cycles,
                   stall, mem_words, op_fu_cycles)

    if tr is not None:
        if total_stall:
            tr.count("sim.stall_cycles", total_stall)
            tr.count("sim.stall_cycles.bandwidth",
                     total_stall - total_window_stall)
        if total_window_stall:
            tr.count("sim.prefetch_window_stalls", total_window_stall)

    program_cycles = max(comp_clock, mem_clock)

    # Interconnect (or other externally-owed) streams: serialized after
    # the program's own memory traffic at each stream's own rate.  The
    # pod layer charges a shard's link sends/receives here so a chip's
    # cycles, traffic split and bandwidth utilization all see them.
    if extra_streams:
        for stream, (words, stream_wpc) in extra_streams.items():
            if words <= 0:
                continue
            traffic[stream] = traffic.get(stream, 0.0) + words
            mem_clock += words / (stream_wpc or words_per_cycle)
            if tr is not None:
                tr.count(f"sim.stream.{stream}", words)

    # Overlappable streams: double-buffered transfers on dedicated
    # per-direction ports.  Each stream occupies its own port for
    # ``words / rate`` cycles concurrently with compute; its
    # memory-system crossing claims memory cycles at the *faster* of HBM
    # and the stream (idle-bandwidth hiding with a serialized fallback
    # once the stream is bandwidth-bound).  ``serialized_cycles``
    # recomputes the PR 8 serialized charge for the same streams so the
    # hidden share is observable.
    link_port_cycles = 0.0
    overlap_hidden = 0.0
    if overlap_streams:
        serial_mem = mem_clock
        for stream, (words, stream_wpc) in overlap_streams.items():
            if words <= 0:
                continue
            rate = stream_wpc or words_per_cycle
            traffic[stream] = traffic.get(stream, 0.0) + words
            serial_mem += words / rate
            mem_clock += words / max(words_per_cycle, rate)
            link_port_cycles = max(link_port_cycles, words / rate)
            if tr is not None:
                tr.count(f"sim.stream.{stream}", words)
        total_cycles = max(comp_clock, mem_clock, link_port_cycles)
        serialized_cycles = max(comp_clock, serial_mem)
        overlap_hidden = max(0.0, serialized_cycles - total_cycles)
        if tr is not None:
            if overlap_hidden:
                tr.count("sim.overlap.hidden_cycles", overlap_hidden)
            if link_port_cycles:
                tr.count("sim.overlap.port_cycles", link_port_cycles)
    else:
        total_cycles = max(comp_clock, mem_clock)
        serialized_cycles = total_cycles
    return SimResult(
        name=program.name,
        config_name=cfg.name,
        cycles=total_cycles,
        compute_cycles=comp_clock,
        mem_cycles=mem_clock,
        fu_busy_cycles=fu_busy,
        traffic_words=traffic,
        scalar_mults=totals.scalar_mults,
        scalar_adds=totals.scalar_adds,
        kshgen_words=totals.kshgen_elements,
        network_words=totals.network_words,
        clock_hz=cfg.clock_hz,
        bytes_per_word=cfg.bytes_per_word,
        fu_units={
            "ntt": cfg.ntt_units, "mul": cfg.mul_units,
            "add": cfg.add_units, "aut": cfg.aut_units,
            "crb": 1 if cfg.crb else 0,
            "kshgen": 1 if cfg.kshgen else 0,
        },
        port_stream_elements=totals.port_stream_elements,
        rf_capacity_words=cfg.register_file_words,
        peak_resident_words=rf.peak,
        rf_evictions=total_evictions,
        dead_drops=total_dead_drops,
        prefetch_hits=total_hits,
        stall_cycles=total_stall,
        prefetch_window_stall_cycles=total_window_stall,
        tag_cycles=tag_cycles,
        program_cycles=program_cycles,
        serialized_cycles=serialized_cycles,
        overlap_hidden_cycles=overlap_hidden,
        link_port_cycles=link_port_cycles,
    )


def _unit_capacity(cfg: ChipConfig, cls: str) -> float:
    from repro.core.cost import _class_capacity

    return _class_capacity(cfg, cls)
