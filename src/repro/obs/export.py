"""Exporters: human-readable top-N report, CSV counters, Chrome trace.

Three views of one :class:`repro.obs.Collector`:

* :func:`top_report` - a terminal-friendly summary (top simulated ops by
  critical-path cycles, top wall-clock spans, all counters), built on the
  same table formatter the benchmark harnesses use.
* :func:`counters_csv` / :func:`spans_csv` - flat CSV for spreadsheets
  and regression diffing.
* :func:`chrome_trace` - the Chrome ``trace_event`` JSON format
  (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Simulated
  ops are laid out as timeline lanes of one process - one *compute* lane
  per FU class (NTT / mul / add / aut / CRB / KSHGen, from
  ``OpEvent.fu_cycles``) plus *HBM* (the decoupled memory stream) - so
  overlap, memory-bound stretches, per-FU occupancy and per-phase
  structure are visible at a glance.  Wall-clock spans go to a second
  process on their own time base.

Chrome traces timestamp in microseconds.  Pass ``clock_hz`` (e.g.
``ChipConfig.clock_hz``) to convert simulated cycles to simulated
microseconds; without it, cycles are exported 1:1 as "microseconds",
which keeps relative durations correct.
"""

from __future__ import annotations

import json

from repro.obs.collector import Collector

# pid/tid layout of the exported trace.
SIM_PID = 0          # simulated machine (timestamps in simulated time)
FU_TID = 0           # aggregate compute lane (ops with no per-class data)
HBM_TID = 1          # memory-stream lane
HOST_PID = 1         # wall-clock spans (timestamps in host time)
HOST_TID = 0
POD_PID_BASE = 10    # pod chip k renders as process POD_PID_BASE + k

# Per-FU-class compute lanes, populated from ``OpEvent.fu_cycles``.  Lane
# order mirrors Fig. 5's FU mix; tids 0/1 stay reserved for the aggregate
# compute and HBM lanes above.
FU_CLASS_TIDS = {
    "ntt": 2,
    "mul": 3,
    "add": 4,
    "aut": 5,
    "crb": 6,
    "kshgen": 7,
}


def top_report(collector: Collector, n: int = 10) -> str:
    """Top-``n`` summary of a traced region as printable text."""
    # Deferred: repro.analysis pulls in workloads/compiler, which are
    # themselves instrumented with repro.obs - importing lazily keeps the
    # obs package importable from every layer.
    from repro.analysis.report import format_table

    sections = []

    if collector.op_events:
        total = collector.total_op_cycles() or 1.0
        top_ops = sorted(collector.op_events, key=lambda e: -e.cycles)[:n]
        rows = [
            [e.index, e.kind, e.tag or "-", e.level, e.cycles,
             e.stall_cycles, f"{e.cycles / total:.1%}"]
            for e in top_ops
        ]
        sections.append(format_table(
            ["op", "kind", "phase", "level", "cycles", "stall", "share"],
            rows, title=f"Top {len(rows)} simulated ops by critical-path cycles",
        ))
        by_kind: dict[str, float] = {}
        for e in collector.op_events:
            by_kind[e.kind] = by_kind.get(e.kind, 0.0) + e.cycles
        rows = [
            [kind, cycles, f"{cycles / total:.1%}"]
            for kind, cycles in sorted(by_kind.items(), key=lambda kv: -kv[1])
        ]
        sections.append(format_table(
            ["kind", "cycles", "share"], rows,
            title="Critical-path cycles by op kind",
        ))

    span_totals = collector.span_totals()
    if span_totals:
        ranked = sorted(span_totals.items(), key=lambda kv: -kv[1][1])[:n]
        rows = [
            [name, calls, secs * 1e3, secs / calls * 1e6]
            for name, (calls, secs) in ranked
        ]
        sections.append(format_table(
            ["span", "calls", "total ms", "us/call"], rows,
            title=f"Top {len(rows)} wall-clock spans",
        ))

    if collector.counters:
        rows = sorted(collector.counters.items())
        sections.append(format_table(
            ["counter", "value"], rows, title="Counters",
        ))

    if collector.gauges:
        rows = sorted(collector.gauges.items())
        sections.append(format_table(
            ["gauge", "value"], rows, title="Gauges (last-write-wins)",
        ))

    return "\n\n".join(sections) if sections else "(no events collected)"


def counters_csv(collector: Collector) -> str:
    """Counters as two-column CSV (``counter,value``)."""
    from repro.analysis.report import format_csv  # deferred; see top_report

    rows = sorted(collector.counters.items())
    return format_csv(["counter", "value"], rows)


def gauges_csv(collector: Collector) -> str:
    """Gauges as two-column CSV (``gauge,value``)."""
    from repro.analysis.report import format_csv  # deferred; see top_report

    rows = sorted(collector.gauges.items())
    return format_csv(["gauge", "value"], rows)


def spans_csv(collector: Collector) -> str:
    """Aggregated spans as CSV (``span,calls,total_s``)."""
    from repro.analysis.report import format_csv  # deferred; see top_report

    rows = [
        [name, calls, secs]
        for name, (calls, secs) in sorted(collector.span_totals().items())
    ]
    return format_csv(["span", "calls", "total_s"], rows)


def chrome_trace(collector: Collector, clock_hz: float | None = None) -> dict:
    """The collector's contents as a Chrome ``trace_event`` object.

    Returns the JSON Object Format (``{"traceEvents": [...]}``); dump with
    ``json.dump`` or use :func:`write_chrome_trace`.
    """
    to_us = 1e6 / clock_hz if clock_hz else 1.0
    events: list[dict] = []

    def meta(pid: int, tid: int | None, name: str, what: str) -> None:
        ev = {"ph": "M", "pid": pid, "name": what,
              "args": {"name": name}, "ts": 0}
        if tid is not None:
            ev["tid"] = tid
        events.append(ev)

    meta(SIM_PID, None, "simulated machine", "process_name")
    meta(SIM_PID, FU_TID, "FU lanes (compute)", "thread_name")
    meta(SIM_PID, HBM_TID, "HBM (memory stream)", "thread_name")
    named_lanes: set[tuple[int, int]] = set()
    named_chips: set[int] = set()

    for e in collector.op_events:
        # Pod runs lane each chip as its own process row; single-chip
        # events (chip is None) keep the legacy SIM_PID layout exactly.
        if e.chip is None:
            pid = SIM_PID
        else:
            pid = POD_PID_BASE + e.chip
            if e.chip not in named_chips:
                named_chips.add(e.chip)
                meta(pid, None, f"pod chip {e.chip}", "process_name")
                meta(pid, FU_TID, "FU lanes (compute)", "thread_name")
                meta(pid, HBM_TID, "HBM (memory stream)", "thread_name")
        label = f"{e.kind} {e.result}"
        args = {
            "op_index": e.index, "level": e.level, "phase": e.tag,
            "critical_path_cycles": e.cycles,
            "stall_cycles": e.stall_cycles,
            "mem_words": e.mem_words, "evictions": e.evictions,
        }
        if e.chip is not None:
            args["chip"] = e.chip
        if e.compute_cycles > 0:
            per_class = {
                cls: cyc for cls, cyc in (e.fu_cycles or {}).items()
                if cyc > 0 and cls in FU_CLASS_TIDS
            }
            if per_class:
                # One slice per FU class the op occupies, each on its own
                # lane; the classes run concurrently within the op, so all
                # slices start at compute_start (the op's overall span is
                # the max, which already drives the clock model).
                for cls, cyc in per_class.items():
                    if (pid, FU_CLASS_TIDS[cls]) not in named_lanes:
                        named_lanes.add((pid, FU_CLASS_TIDS[cls]))
                        meta(pid, FU_CLASS_TIDS[cls],
                             f"FU {cls}", "thread_name")
                    events.append({
                        "name": label, "cat": e.kind or "op", "ph": "X",
                        "pid": pid, "tid": FU_CLASS_TIDS[cls],
                        "ts": e.compute_start * to_us,
                        "dur": cyc * to_us,
                        "args": {**args, "fu_class": cls},
                    })
            else:
                events.append({
                    "name": label, "cat": e.kind or "op", "ph": "X",
                    "pid": pid, "tid": FU_TID,
                    "ts": e.compute_start * to_us,
                    "dur": e.compute_cycles * to_us,
                    "args": args,
                })
        if e.mem_cycles > 0:
            events.append({
                "name": f"mem {label}", "cat": "hbm", "ph": "X",
                "pid": pid, "tid": HBM_TID,
                "ts": e.mem_start * to_us,
                "dur": e.mem_cycles * to_us,
                "args": args,
            })

    if collector.spans:
        meta(HOST_PID, None, "host (wall clock)", "process_name")
        meta(HOST_PID, HOST_TID, "functional layer", "thread_name")
        base = min(s.start_s for s in collector.spans)
        for s in collector.spans:
            events.append({
                "name": s.name, "cat": s.cat or "host", "ph": "X",
                "pid": HOST_PID, "tid": HOST_TID,
                "ts": (s.start_s - base) * 1e6,
                "dur": s.dur_s * 1e6,
                "args": {},
            })

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": dict(collector.meta)}


def write_chrome_trace(collector: Collector, path: str,
                       clock_hz: float | None = None) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(chrome_trace(collector, clock_hz), f)
