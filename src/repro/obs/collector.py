"""Event collection: counters, wall-clock spans, simulated-op events.

A single module-level :class:`Collector` (or ``None``) is the whole
switch.  Every instrumentation point in the codebase goes through the
module-level helpers (:func:`count`, :func:`span`, :func:`emit_op`),
which check the switch first and fall through to shared no-op objects
when tracing is disabled - one attribute load and one comparison, so the
hot paths (``NttContext.forward``, the simulator's op loop) pay nothing
measurable with tracing off.

Three event kinds, matching what the layers can observe:

* **Counters** - named monotonically increasing floats (call counts,
  eviction counts, reuse hits).  Cheap enough for per-op increments.
* **Spans** - wall-clock timed regions (``time.perf_counter``) around
  the *functional* hot paths: NTTs, keyswitches, hint generation,
  compiler passes.  These measure this library's real execution time.
* **Op events** - one record per simulated IR op with *simulated-cycle*
  timestamps from `repro.core.simulator`: when its memory stream and its
  compute occupied their clocks, and how much of the critical path the
  op accounts for.  These are what the Chrome-trace exporter lays out as
  FU-vs-HBM timeline lanes.

Wall-clock spans and simulated-op events deliberately live in different
time bases (seconds vs cycles); the exporters never mix them on one
timeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class OpEvent:
    """One simulated homomorphic op, in simulated cycles.

    ``cycles`` is the op's contribution to the critical path: the advance
    of max(compute clock, memory clock) across the op.  Summed over a
    run, these telescope exactly to ``SimResult.cycles``.
    """

    index: int            # position in the Program's op stream
    kind: str             # ir.MULT / ROTATE / ... / INPUT / OUTPUT
    result: str           # name of the value the op defines
    level: int
    tag: str = ""         # workload phase label (e.g. "bootstrap")
    cycles: float = 0.0   # critical-path advance (telescopes to total)
    compute_start: float = 0.0   # cycle the FUs begin this op
    compute_cycles: float = 0.0  # FU occupancy incl. exposed fill latency
    mem_start: float = 0.0       # cycle the HBM stream for this op begins
    mem_cycles: float = 0.0      # HBM occupancy (words / words-per-cycle)
    stall_cycles: float = 0.0    # compute wait exposed by the memory stream
    mem_words: float = 0.0       # words moved (fetches + forced writebacks)
    evictions: int = 0           # Belady victims displaced by this op
    # Per-FU-class busy cycles (elements / class capacity) for this op,
    # e.g. {"ntt": 512.0, "mul": 96.0}.  The Chrome-trace exporter splits
    # the compute track into one lane per class from this map; empty for
    # INPUT/OUTPUT ops, which occupy no FU.
    fu_cycles: dict[str, float] = field(default_factory=dict)
    # Pod chip index this op ran on (`repro.pod`); None for single-chip
    # runs.  The Chrome-trace exporter gives each chip its own process
    # row so a pod run reads as K parallel machines.
    chip: int | None = None


@dataclass
class Span:
    """A wall-clock timed region (seconds, host time - not simulated)."""

    name: str
    cat: str
    start_s: float
    dur_s: float


class Collector:
    """Accumulates counters, spans and op events for one traced region."""

    def __init__(self, **meta: object):
        self.counters: dict[str, float] = {}
        # Gauges are last-write-wins level measurements (a queue depth,
        # a p99, a utilization fraction) as opposed to the monotonically
        # accumulated counters; exporters list them separately.
        self.gauges: dict[str, float] = {}
        self.spans: list[Span] = []
        self.op_events: list[OpEvent] = []
        # Free-form run tags (config name, sweep point, campaign seed...).
        # The convention: anything that distinguishes *this* collector's run
        # from its siblings goes here, so batch consumers (design-space
        # sweeps, recovery campaigns) can label collectors without
        # side-channel bookkeeping.  Exporters carry it through verbatim.
        self.meta: dict[str, object] = dict(meta)

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def emit_op(self, event: OpEvent) -> None:
        self.op_events.append(event)

    def span(self, name: str, cat: str = "") -> "_SpanTimer":
        return _SpanTimer(self, name, cat)

    # -- queries used by exporters and tests -------------------------------

    def span_totals(self) -> dict[str, tuple[int, float]]:
        """name -> (calls, total seconds), aggregated over recorded spans."""
        totals: dict[str, tuple[int, float]] = {}
        for s in self.spans:
            calls, secs = totals.get(s.name, (0, 0.0))
            totals[s.name] = (calls + 1, secs + s.dur_s)
        return totals

    def total_op_cycles(self) -> float:
        """Critical-path cycles across all op events (== SimResult.cycles
        for a single traced run)."""
        return sum(e.cycles for e in self.op_events)


class _SpanTimer:
    """Context manager recording one wall-clock span into a collector."""

    __slots__ = ("_collector", "_name", "_cat", "_start")

    def __init__(self, collector: Collector, name: str, cat: str):
        self._collector = collector
        self._name = name
        self._cat = cat

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._collector.spans.append(Span(
            self._name, self._cat, self._start,
            time.perf_counter() - self._start,
        ))


class _NullSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()

# The module-level switch.  None = tracing disabled (the default).
_active: Collector | None = None


def enable(**meta: object) -> Collector:
    """Install (and return) a fresh collector; tracing is on until
    :func:`disable`.  Keyword arguments become the collector's ``meta``
    tags (see :attr:`Collector.meta`)."""
    global _active
    _active = Collector(**meta)
    return _active


def disable() -> Collector | None:
    """Turn tracing off; returns the collector that was active (if any)
    so its contents can still be exported."""
    global _active
    collector, _active = _active, None
    return collector


def active() -> Collector | None:
    """The live collector, or None when tracing is disabled."""
    return _active


def is_enabled() -> bool:
    return _active is not None


@contextmanager
def paused():
    """Scoped tracing *suppression*: ``with obs.paused(): ...`` detaches
    the live collector (if any) and restores it on exit.  For internal
    what-if runs - e.g. a compiler gate simulating both the original and
    the candidate schedule - whose counters and op events must not leak
    into the user's trace as if they were real executions."""
    global _active
    previous = _active
    _active = None
    try:
        yield
    finally:
        _active = previous


@contextmanager
def collecting(**meta: object):
    """Scoped tracing: ``with obs.collecting() as c: ...`` - restores the
    previous collector (usually None) on exit, so tests can't leak state.
    Keyword arguments become the collector's ``meta`` tags."""
    global _active
    previous = _active
    _active = Collector(**meta)
    try:
        yield _active
    finally:
        _active = previous


# -- zero-cost instrumentation helpers ------------------------------------
#
# Call sites use these instead of touching the collector directly; each is
# a single global check when tracing is off.

def count(name: str, value: float = 1.0) -> None:
    """Increment a named counter (no-op when tracing is disabled)."""
    c = _active
    if c is not None:
        c.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a named gauge to ``value`` (no-op when tracing is disabled)."""
    c = _active
    if c is not None:
        c.gauge(name, value)


def span(name: str, cat: str = ""):
    """Wall-clock span context manager; a shared no-op when disabled."""
    c = _active
    if c is None:
        return _NULL_SPAN
    return _SpanTimer(c, name, cat)


def emit_op(event: OpEvent) -> None:
    """Record a simulated-op event (no-op when tracing is disabled)."""
    c = _active
    if c is not None:
        c.emit_op(event)
