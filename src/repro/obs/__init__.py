"""Observability: tracing, counters and exporters for every layer.

The paper's evaluation argues from *where cycles and bytes go* (Figs.
9-10: FU vs bandwidth utilization, KSH vs operand traffic); this package
gives the reproduction the same visibility.  It is deliberately tiny and
dependency-free, and **zero-cost when disabled**: all hooks route through
module-level helpers that check one global and fall through to shared
no-op objects, so benchmark numbers are unchanged with tracing off.

Usage::

    from repro import obs
    from repro.obs import export

    c = obs.enable()                   # or: with obs.collecting() as c:
    result = simulate(program, cfg)
    obs.disable()

    print(export.top_report(c))        # terminal top-N summary
    export.write_chrome_trace(c, "trace.json", clock_hz=cfg.clock_hz)
    # -> open in chrome://tracing or https://ui.perfetto.dev

Instrumented out of the box:

* `repro.core.simulator` - one :class:`OpEvent` per IR op (compute /
  memory / stall cycles, words moved, Belady evictions), plus counters
  for evictions, chaining hits and traffic categories.
* `repro.fhe.ntt` / `repro.fhe.keyswitch` - wall-clock spans and call
  counts on the functional hot paths.
* `repro.compiler` - schedule-decision counters (reuse-ordering hits,
  bootstrap placements, digit choices).

See docs/TRACING.md for the full guide.
"""

from repro.obs.collector import (
    Collector,
    OpEvent,
    Span,
    active,
    collecting,
    count,
    disable,
    emit_op,
    enable,
    gauge,
    is_enabled,
    span,
)
from repro.obs.export import (
    chrome_trace,
    counters_csv,
    gauges_csv,
    spans_csv,
    top_report,
    write_chrome_trace,
)

__all__ = [
    "Collector",
    "OpEvent",
    "Span",
    "active",
    "chrome_trace",
    "collecting",
    "count",
    "counters_csv",
    "disable",
    "emit_op",
    "enable",
    "gauge",
    "gauges_csv",
    "is_enabled",
    "span",
    "spans_csv",
    "top_report",
    "write_chrome_trace",
]
