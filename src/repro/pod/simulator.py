"""K-chip pod simulation layered over the single-chip simulator.

Every chip runs :func:`repro.core.simulator.simulate` on its shard, with
its link obligations charged through ``extra_streams`` (so the chip's
cycles, traffic split, and bandwidth utilization all include the
interconnect) and its op events tagged with the chip index (so a pod
trace renders as K parallel machines).

Two notions of cost come out of a pod run:

* ``batch_cycles`` - end-to-end latency of *one* batch.  Data-parallel:
  the slowest replica (they run concurrently).  Model-parallel: the sum
  of *serialized* stage cycles - the first batch walks an empty
  pipeline, so nothing hides its transfers (fill latency).
* ``cycles_per_batch`` - steady-state cost per batch under load.
  Data-parallel: slowest replica / replica count (K batches in flight).
  Model-parallel: the slowest *overlapped* stage - with micro-batches
  streaming behind each other, every stage double-buffers its
  ``link_in`` / ``link_out`` behind compute (``overlap_streams``), so
  the pipeline beat is ``max(compute, comm)``-shaped.
  ``PodResult.pipeline_cycles(m)`` composes the two:
  ``batch_cycles + (m - 1) * cycles_per_batch`` for an m-batch run
  (fill/drain plus steady state).

``link_words`` reports, for both strategies, the words through all send
ports per batch: the all-reduce volume times the chip count
(data-parallel) or the sum of cut-edge words weighted by their ring hop
distance (model-parallel - a transfer relayed over h links occupies h
send ports).  ``payload_words`` is the hop-independent logical volume.

Failed chips (``failed_chips``) model degraded N-1 operation: the
survivors repartition the work - data-parallel shards widen to
``1/(K-1)`` of the batch, model-parallel stages are re-cut over the
survivor count - and both latency and throughput are recomputed from
scratch, which is exactly what the serving layer's degraded-capacity
admission consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig
from repro.core.cost import ciphertext_words
from repro.core.simulator import SimResult, simulate
from repro.ir import OUTPUT, Program
from repro.obs import collector as obs
from repro.pod.config import DATA_PARALLEL, PodConfig
from repro.pod.interconnect import LinkModel
from repro.pod.partition import Partition, partition
from repro.reliability.errors import ChipFailure, ConfigError


@dataclass
class PodResult:
    """Everything the evaluation needs from one simulated pod run."""

    name: str
    strategy: str
    chips: int                       # configured pod size
    alive: tuple[int, ...]           # chips that actually ran
    failed: tuple[int, ...]          # fail-stopped chips (degraded mode)
    chip_results: dict[int, SimResult]
    link_words: float                # words through all send ports, per batch
    batch_cycles: float              # one batch end-to-end (fill latency)
    cycles_per_batch: float          # steady-state per-batch cost
    clock_hz: float
    partition: Partition | None = field(default=None, repr=False)
    payload_words: float = 0.0       # logical cut volume (hop-independent)
    overlap_hidden_cycles: float = 0.0   # comm hidden behind compute
    serialized_cycles_per_batch: float = 0.0  # pre-overlap steady state

    @property
    def degraded(self) -> bool:
        return bool(self.failed)

    def pipeline_cycles(self, batches: int) -> float:
        """Micro-batched pipeline makespan: the first batch pays the
        fill latency, every batch behind it lands one steady-state beat
        later (fill/drain plus slowest-stage steady state)."""
        if batches <= 0:
            return 0.0
        return self.batch_cycles + (batches - 1) * self.cycles_per_batch

    @property
    def seconds_per_batch(self) -> float:
        return self.cycles_per_batch / self.clock_hz

    @property
    def batch_seconds(self) -> float:
        return self.batch_cycles / self.clock_hz

    def speedup(self, single: SimResult) -> float:
        """Throughput scaling vs one unsharded chip."""
        if not self.cycles_per_batch:
            return 0.0
        return single.cycles / self.cycles_per_batch


def _output_words(program: Program) -> float:
    n = program.degree
    return sum(ciphertext_words(n, op.level) for op in program.ops
               if op.kind == OUTPUT)


def stage_results(part: Partition, cfg: ChipConfig, pod: PodConfig,
                  alive: tuple[int, ...] | None = None,
                  checkpoint_every: int = 0, cache=None) -> list[SimResult]:
    """Simulate every model-parallel shard with its boundary transfers
    double-buffered: each shard's ``link_in`` / ``link_out`` rides a
    per-direction port as an *overlap* stream (hop-weighted per-edge
    latency folded into the stream rate), so a stage's cycles are
    ``max(compute, comm)``-shaped while ``SimResult.serialized_cycles``
    keeps the pre-overlap charge for fill-latency accounting.  Returns
    results aligned with ``part.shards``; the min-cut gate prices
    candidate partitions with exactly this function, so gate verdicts
    and pod results can never disagree."""
    link = LinkModel(cfg, pod)
    k = len(part.shards)
    in_cycles = [0.0] * k
    out_cycles = [0.0] * k
    for e in part.edges:
        cycles = link.transfer_cycles(e.words, e.hops)
        out_cycles[e.src] += cycles
        in_cycles[e.dst] += cycles
    results: list[SimResult] = []
    for j, shard in enumerate(part.shards):
        overlap = {}
        if shard.cut_in_words and in_cycles[j]:
            overlap["link_in"] = (shard.cut_in_words,
                                  shard.cut_in_words / in_cycles[j])
        if shard.cut_out_words and out_cycles[j]:
            overlap["link_out"] = (shard.cut_out_words,
                                   shard.cut_out_words / out_cycles[j])
        shard_prog = shard.program
        if cache:
            # Shard artifacts are namespaced by the pod descriptor: a
            # cut of resnet20 for "4xmodel" must never alias the whole
            # benchmark's artifact (or another cut's).
            from repro.compiler.cache import compile_program

            shard_prog = compile_program(
                shard_prog, cfg, pod=f"{k}x{pod.strategy}", cache=cache)
        results.append(simulate(
            shard_prog, cfg, checkpoint_every, cache=None,
            overlap_streams=overlap or None,
            chip=alive[j] if alive is not None else j))
    return results


def simulate_pod(program: Program, cfg: ChipConfig, pod: PodConfig,
                 failed_chips=(), checkpoint_every: int = 0,
                 cache=None) -> PodResult:
    """Run ``program`` on a ``pod`` of ``cfg`` chips; see module docstring.

    ``failed_chips`` names fail-stopped chips; their work is carried by
    the survivors (degraded N-1 operation).  Raises
    :class:`~repro.reliability.errors.ChipFailure` when no chip
    survives - a pod with zero chips has no degraded mode left.
    """
    failed = tuple(sorted(set(failed_chips)))
    for c in failed:
        if not 0 <= c < pod.chips:
            raise ConfigError("failed chip index outside the pod",
                              chip=c, chips=pod.chips)
    alive = tuple(c for c in range(pod.chips) if c not in failed)
    if not alive:
        raise ChipFailure("every chip in the pod has failed",
                          chips=pod.chips, failed=failed)
    k = len(alive)
    link = LinkModel(cfg, pod)
    tr = obs.active()
    if tr is not None:
        tr.count("pod.simulations")
        if failed:
            tr.count("pod.degraded_simulations")

    if pod.strategy == DATA_PARALLEL:
        part = partition(program, cfg, pod, chips=k)
        # Mirrored replicas: per-batch link cost is the all-reduce that
        # merges the shard outputs (secure-aggregation style).
        out_words = _output_words(program)
        ar_words = link.all_reduce_words(out_words, k)
        ar_cycles = link.all_reduce_cycles(out_words, k)
        extra = None
        if ar_words:
            extra = {"link": (ar_words, ar_words / ar_cycles)}
        chip_results: dict[int, SimResult] = {}
        shared: SimResult | None = None
        for c in alive:
            if tr is None and shared is not None:
                # Replicas are identical; without a collector there is
                # no per-chip event stream to distinguish them.
                chip_results[c] = shared
                continue
            shared = simulate(program, cfg, checkpoint_every, cache,
                              extra_streams=extra, chip=c)
            chip_results[c] = shared
        slowest = max(r.cycles for r in chip_results.values())
        result = PodResult(
            name=program.name, strategy=pod.strategy, chips=pod.chips,
            alive=alive, failed=failed, chip_results=chip_results,
            link_words=ar_words * k, batch_cycles=slowest,
            cycles_per_batch=slowest / k, clock_hz=cfg.clock_hz,
            partition=part, payload_words=out_words if ar_words else 0.0,
            serialized_cycles_per_batch=slowest / k,
        )
    else:
        part = partition(program, cfg, pod, chips=k)
        # The min-cut gate already priced the winning partition through
        # stage_results; reuse its runs when nothing (tracing, compile
        # cache, checkpoint traffic) would change the outcome.
        results = part._gate_results
        if results is None or tr is not None or cache or checkpoint_every:
            results = stage_results(part, cfg, pod, alive=alive,
                                    checkpoint_every=checkpoint_every,
                                    cache=cache)
        chip_results = {alive[j]: res for j, res in enumerate(results)}
        link_words = sum(e.words * e.hops for e in part.edges)
        payload_words = sum(e.words for e in part.edges)
        result = PodResult(
            name=program.name, strategy=pod.strategy, chips=pod.chips,
            alive=alive, failed=failed, chip_results=chip_results,
            link_words=link_words,
            batch_cycles=sum(r.serialized_cycles for r in results),
            cycles_per_batch=(max(r.cycles for r in results)
                              if results else 0.0),
            clock_hz=cfg.clock_hz, partition=part,
            payload_words=payload_words,
            overlap_hidden_cycles=sum(r.overlap_hidden_cycles
                                      for r in results),
            serialized_cycles_per_batch=(
                max(r.serialized_cycles for r in results)
                if results else 0.0),
        )

    if tr is not None:
        tr.count("pod.link_words", result.link_words)
        if result.payload_words:
            tr.count("pod.payload_words", result.payload_words)
        if result.overlap_hidden_cycles:
            tr.count("pod.overlap.hidden_cycles",
                     result.overlap_hidden_cycles)
            tr.count("pod.overlap.serialized_cycles",
                     result.serialized_cycles_per_batch)
    return result
