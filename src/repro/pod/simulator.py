"""K-chip pod simulation layered over the single-chip simulator.

Every chip runs :func:`repro.core.simulator.simulate` on its shard, with
its link obligations charged through ``extra_streams`` (so the chip's
cycles, traffic split, and bandwidth utilization all include the
interconnect) and its op events tagged with the chip index (so a pod
trace renders as K parallel machines).

Two notions of cost come out of a pod run:

* ``batch_cycles`` - end-to-end latency of *one* batch.  Data-parallel:
  the slowest replica (they run concurrently).  Model-parallel: the sum
  of stage cycles (the batch walks the pipeline).
* ``cycles_per_batch`` - steady-state cost per batch under load.
  Data-parallel: slowest replica / replica count (K batches in flight).
  Model-parallel: the slowest stage (the pipeline refills behind it).

Failed chips (``failed_chips``) model degraded N-1 operation: the
survivors repartition the work - data-parallel shards widen to
``1/(K-1)`` of the batch, model-parallel stages are re-cut over the
survivor count - and both latency and throughput are recomputed from
scratch, which is exactly what the serving layer's degraded-capacity
admission consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig
from repro.core.cost import ciphertext_words
from repro.core.simulator import SimResult, simulate
from repro.ir import OUTPUT, Program
from repro.obs import collector as obs
from repro.pod.config import DATA_PARALLEL, PodConfig
from repro.pod.interconnect import LinkModel
from repro.pod.partition import Partition, partition
from repro.reliability.errors import ChipFailure, ConfigError


@dataclass
class PodResult:
    """Everything the evaluation needs from one simulated pod run."""

    name: str
    strategy: str
    chips: int                       # configured pod size
    alive: tuple[int, ...]           # chips that actually ran
    failed: tuple[int, ...]          # fail-stopped chips (degraded mode)
    chip_results: dict[int, SimResult]
    link_words: float                # words through all send ports, per batch
    batch_cycles: float              # one batch end-to-end (latency)
    cycles_per_batch: float          # steady-state per-batch cost
    clock_hz: float
    partition: Partition | None = field(default=None, repr=False)

    @property
    def degraded(self) -> bool:
        return bool(self.failed)

    @property
    def seconds_per_batch(self) -> float:
        return self.cycles_per_batch / self.clock_hz

    @property
    def batch_seconds(self) -> float:
        return self.batch_cycles / self.clock_hz

    def speedup(self, single: SimResult) -> float:
        """Throughput scaling vs one unsharded chip."""
        if not self.cycles_per_batch:
            return 0.0
        return single.cycles / self.cycles_per_batch


def _output_words(program: Program) -> float:
    n = program.degree
    return sum(ciphertext_words(n, op.level) for op in program.ops
               if op.kind == OUTPUT)


def simulate_pod(program: Program, cfg: ChipConfig, pod: PodConfig,
                 failed_chips=(), checkpoint_every: int = 0,
                 cache=None) -> PodResult:
    """Run ``program`` on a ``pod`` of ``cfg`` chips; see module docstring.

    ``failed_chips`` names fail-stopped chips; their work is carried by
    the survivors (degraded N-1 operation).  Raises
    :class:`~repro.reliability.errors.ChipFailure` when no chip
    survives - a pod with zero chips has no degraded mode left.
    """
    failed = tuple(sorted(set(failed_chips)))
    for c in failed:
        if not 0 <= c < pod.chips:
            raise ConfigError("failed chip index outside the pod",
                              chip=c, chips=pod.chips)
    alive = tuple(c for c in range(pod.chips) if c not in failed)
    if not alive:
        raise ChipFailure("every chip in the pod has failed",
                          chips=pod.chips, failed=failed)
    k = len(alive)
    link = LinkModel(cfg, pod)
    tr = obs.active()
    if tr is not None:
        tr.count("pod.simulations")
        if failed:
            tr.count("pod.degraded_simulations")

    if pod.strategy == DATA_PARALLEL:
        part = partition(program, cfg, pod, chips=k)
        # Mirrored replicas: per-batch link cost is the all-reduce that
        # merges the shard outputs (secure-aggregation style).
        out_words = _output_words(program)
        ar_words = link.all_reduce_words(out_words, k)
        ar_cycles = link.all_reduce_cycles(out_words, k)
        extra = None
        if ar_words:
            extra = {"link": (ar_words, ar_words / ar_cycles)}
        chip_results: dict[int, SimResult] = {}
        shared: SimResult | None = None
        for c in alive:
            if tr is None and shared is not None:
                # Replicas are identical; without a collector there is
                # no per-chip event stream to distinguish them.
                chip_results[c] = shared
                continue
            shared = simulate(program, cfg, checkpoint_every, cache,
                              extra_streams=extra, chip=c)
            chip_results[c] = shared
        slowest = max(r.cycles for r in chip_results.values())
        result = PodResult(
            name=program.name, strategy=pod.strategy, chips=pod.chips,
            alive=alive, failed=failed, chip_results=chip_results,
            link_words=ar_words * k, batch_cycles=slowest,
            cycles_per_batch=slowest / k, clock_hz=cfg.clock_hz,
            partition=part,
        )
    else:
        part = partition(program, cfg, pod, chips=k)
        chip_results = {}
        stage_cycles = []
        link_words = 0.0
        for j, shard in enumerate(part.shards):
            chip = alive[j]
            extra = {}
            if shard.cut_in_words:
                cycles = link.transfer_cycles(shard.cut_in_words)
                extra["link_in"] = (shard.cut_in_words,
                                    shard.cut_in_words / cycles)
            if shard.cut_out_words:
                cycles = link.transfer_cycles(shard.cut_out_words)
                extra["link_out"] = (shard.cut_out_words,
                                     shard.cut_out_words / cycles)
            link_words += shard.cut_out_words
            shard_prog = shard.program
            if cache:
                # Shard artifacts are namespaced by the pod descriptor:
                # a cut of resnet20 for "4xmodel" must never alias the
                # whole benchmark's artifact (or another cut's).
                from repro.compiler.cache import compile_program

                shard_prog = compile_program(
                    shard_prog, cfg, pod=f"{k}x{pod.strategy}",
                    cache=cache)
            res = simulate(shard_prog, cfg, checkpoint_every, cache=None,
                           extra_streams=extra or None, chip=chip)
            chip_results[chip] = res
            stage_cycles.append(res.cycles)
        result = PodResult(
            name=program.name, strategy=pod.strategy, chips=pod.chips,
            alive=alive, failed=failed, chip_results=chip_results,
            link_words=link_words, batch_cycles=sum(stage_cycles),
            cycles_per_batch=max(stage_cycles) if stage_cycles else 0.0,
            clock_hz=cfg.clock_hz, partition=part,
        )

    if tr is not None:
        tr.count("pod.link_words", result.link_words)
    return result
