"""K-chip pod simulation: sharding, interconnect, and fault tolerance.

The paper's CraterLake is one 2,048-lane chip; production traffic needs
more.  This package layers a pod over the single-chip stack:

* :mod:`repro.pod.config` - pod topology and link/recovery knobs;
* :mod:`repro.pod.partition` - data-parallel batch sharding and a
  first-cut model-parallel graph cut (ordering.py word weights);
* :mod:`repro.pod.interconnect` - link/transfer/all-reduce cost model;
* :mod:`repro.pod.simulator` - per-chip cycle simulation with link
  streams, degraded N-1 repartitioning, and pod-level throughput;
* :mod:`repro.pod.coordinator` - functional (real CKKS) lock-step
  execution surviving chip fail-stop and link corruption;
* :mod:`repro.pod.campaign` - the seeded chip/link fault campaign
  (``python -m repro.pod --campaign``);
* :mod:`repro.pod.scaling` - the 1/2/4/8-chip throughput study.

See docs/POD.md for the architecture tour.
"""

from repro.pod.config import (
    DATA_PARALLEL,
    MODEL_PARALLEL,
    STRATEGIES,
    PodConfig,
)
from repro.pod.coordinator import PodExecutor, PodStats, Transfer
from repro.pod.interconnect import LinkModel
from repro.pod.partition import CutEdge, Partition, Shard, partition
from repro.pod.simulator import PodResult, simulate_pod

__all__ = [
    "DATA_PARALLEL",
    "MODEL_PARALLEL",
    "STRATEGIES",
    "CutEdge",
    "LinkModel",
    "Partition",
    "PodConfig",
    "PodExecutor",
    "PodResult",
    "PodStats",
    "Shard",
    "Transfer",
    "partition",
    "simulate_pod",
]
