"""Interconnect cost model: links, transfers, and ring all-reduce.

The pod's chips sit on a bidirectional ring (chip ``c`` links to
``(c+1) % K``).  Costs are expressed in chip cycles so they compose
directly with :class:`~repro.core.simulator.SimResult`:

* a point-to-point transfer of ``w`` words costs
  ``latency + w / link_words_per_cycle`` per hop;
* a ring all-reduce of a ``w``-word object over ``k`` chips is the
  classic 2(k-1)-step schedule - each chip sends ``w/k``-word segments
  per step, moving ``2 * (k-1)/k * w`` words through each chip's send
  port in total (bandwidth-optimal; the reduce-scatter + all-gather
  decomposition the distribution-strategies RFC sketches).

The cycle helpers convert a chip's link obligations into stream entries
for :func:`repro.core.simulator.simulate`.  Charged through
``extra_streams`` they serialize onto the chip's memory clock at the
link's (much slower) rate - the pre-overlap model, still used for the
data-parallel all-reduce.  Charged through ``overlap_streams`` each
direction of the link is its own *double-buffered port* running
concurrently with compute (``link_in`` / ``link_out`` are separate
streams, full duplex), which is what lets a pipelined stage cost
``max(compute, comm)`` instead of ``compute + comm``; see
docs/POD.md "Overlap & pipelining".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ChipConfig
from repro.pod.config import PodConfig


@dataclass(frozen=True)
class LinkModel:
    """Per-chip link cost helper bound to one (chip, pod) pairing."""

    chip: ChipConfig
    pod: PodConfig

    @property
    def words_per_cycle(self) -> float:
        return self.pod.link_words_per_cycle(self.chip)

    @staticmethod
    def ring_hops(src: int, dst: int, k: int) -> int:
        """Hops between chips ``src`` and ``dst`` on a bidirectional
        ``k``-ring: the shorter way around, so the last-to-first
        wraparound leg (e.g. ``0 -> 7`` on 8 chips) is one hop, not
        ``k - 1``."""
        if k <= 1:
            return 0
        d = (dst - src) % k
        return min(d, k - d)

    def transfer_cycles(self, words: float, hops: int = 1) -> float:
        """One point-to-point transfer, ``hops`` ring hops away."""
        if words <= 0:
            return 0.0
        return hops * self.pod.link_latency_cycles \
            + words / self.words_per_cycle

    def all_reduce_words(self, words: float, k: int) -> float:
        """Words through *each* chip's send port for one ring all-reduce
        of a ``words``-word object over ``k`` participants."""
        if k <= 1 or words <= 0:
            return 0.0
        return 2.0 * (k - 1) / k * words

    def all_reduce_cycles(self, words: float, k: int) -> float:
        """End-to-end cycles of one ring all-reduce over ``k`` chips."""
        if k <= 1 or words <= 0:
            return 0.0
        steps = 2 * (k - 1)
        return steps * self.pod.link_latency_cycles \
            + self.all_reduce_words(words, k) / self.words_per_cycle

    def stream_words(self, payload_words: float, hops: int = 1) -> float:
        """Equivalent stream length (words) of a transfer including its
        per-hop latency, for charging through ``extra_streams`` (which
        speaks words, not cycles)."""
        if payload_words <= 0:
            return 0.0
        return payload_words \
            + hops * self.pod.link_latency_cycles * self.words_per_cycle
