"""Sharding a workload across pod chips.

Two strategies, mirroring the tf-encrypted distribution-strategies RFC:

* **data-parallel** (mirrored): every chip runs the complete program and
  serves ``1/K`` of the batch; the only cross-chip traffic is the
  all-reduce that merges per-shard outputs (secure-aggregation style).
* **model-parallel** (sharded): the op stream is cut into K contiguous
  stages balanced by modeled compute cycles, and every value that
  crosses a cut becomes a link transfer - priced with the same
  word-weights `compiler/ordering.py` uses for register-file pressure
  (``raised_words`` for hoisted digit objects, ``ciphertext_words``
  otherwise).

Cut edges are *stitched*: the producer shard gains an ``OUTPUT`` op (the
value leaves the chip) and the consumer shard an ``INPUT`` op (it
arrives from the link), so every shard program passes
``validate_program`` and simulates standalone.  Stitched ops are
recorded on the shard (``stitched_inputs`` / ``stitched_outputs``) and
excluded from ``op_indices``, which keeps the conservation invariant
checkable: the shards' ``op_indices`` are a disjoint cover of the source
program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ChipConfig
from repro.core.cost import ciphertext_words, op_cost, raised_words
from repro.ir import HOIST_MODUP, INPUT, OUTPUT, HomOp, Program
from repro.pod.config import DATA_PARALLEL, MODEL_PARALLEL, PodConfig


@dataclass(frozen=True)
class CutEdge:
    """One value crossing a shard boundary (a link transfer per batch)."""

    value: str
    src: int            # producing chip (shard index)
    dst: int            # consuming chip
    words: float        # transfer size (ordering.py word weights)


@dataclass
class Shard:
    """One chip's slice of the workload."""

    chip: int
    program: Program
    op_indices: tuple[int, ...]          # indices into the source program
    batch_share: float = 1.0             # fraction of the batch served here
    cut_in_words: float = 0.0            # words arriving over the link
    cut_out_words: float = 0.0           # words leaving over the link
    stitched_inputs: tuple[str, ...] = ()
    stitched_outputs: tuple[str, ...] = ()


@dataclass
class Partition:
    """The full sharding decision for one (program, pod) pairing."""

    strategy: str
    shards: list[Shard]
    edges: list[CutEdge] = field(default_factory=list)

    @property
    def chips(self) -> int:
        return len(self.shards)


def _value_words(n: int, op: HomOp) -> float:
    """Link-transfer size of ``op``'s result - the same weights the
    pressure scheduler prices the live set with."""
    if op.kind == HOIST_MODUP:
        return raised_words(n, op.level, op.digits)
    return ciphertext_words(n, op.level)


def _op_weight(cfg: ChipConfig, op: HomOp, n: int) -> float:
    """Balance weight in cycles: FU time for compute ops, stream time
    for memory-only INPUT/OUTPUT ops."""
    if op.kind in (INPUT, OUTPUT):
        return ciphertext_words(n, op.level) / cfg.hbm_words_per_cycle
    return op_cost(cfg, op, n).compute_cycles(cfg)


def _cut_points(program: Program, cfg: ChipConfig, chips: int) -> list[int]:
    """Boundaries of ``chips`` contiguous chunks, balanced by cycle
    weight.  A boundary never lands between a ``hoist_modup`` and its
    rotations: the raised digit object is an on-chip forwarding format,
    not something to put on a wire."""
    ops = program.ops
    n = program.degree
    weights = [_op_weight(cfg, op, n) for op in ops]
    total = sum(weights)
    bounds: list[int] = []
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        k = len(bounds) + 1
        if k >= chips or i + 1 >= len(ops):
            continue
        if acc >= total * k / chips:
            b = i + 1
            while b < len(ops) and ops[b - 1].kind == HOIST_MODUP:
                b += 1
            if b < len(ops) and (not bounds or b > bounds[-1]):
                bounds.append(b)
    return bounds


def partition(program: Program, cfg: ChipConfig, pod: PodConfig,
              chips: int | None = None) -> Partition:
    """Shard ``program`` across ``chips`` chips (default: the pod's
    full complement; pass the survivor count for degraded N-1 plans)."""
    k = pod.chips if chips is None else chips
    if pod.strategy == DATA_PARALLEL:
        return _partition_data(program, k)
    return _partition_model(program, cfg, k)


def _partition_data(program: Program, chips: int) -> Partition:
    all_indices = tuple(range(len(program.ops)))
    shards = [
        Shard(chip=c, program=program, op_indices=all_indices,
              batch_share=1.0 / chips)
        for c in range(chips)
    ]
    return Partition(strategy=DATA_PARALLEL, shards=shards)


def _partition_model(program: Program, cfg: ChipConfig,
                     chips: int) -> Partition:
    ops = program.ops
    n = program.degree
    bounds = _cut_points(program, cfg, chips)
    starts = [0, *bounds]
    ends = [*bounds, len(ops)]
    chunks = [tuple(range(s, e)) for s, e in zip(starts, ends)]
    chunks += [()] * (chips - len(chunks))  # tiny programs: idle chips

    chunk_of: dict[str, int] = {}  # producing chunk of each value
    for c, idx in enumerate(chunks):
        for i in idx:
            if ops[i].kind != OUTPUT:
                chunk_of[ops[i].result] = c

    producer_op = {op.result: op for op in ops if op.kind != OUTPUT}
    edges: list[CutEdge] = []
    shards: list[Shard] = []
    # (src, value) pairs already stitched with an OUTPUT, so a value
    # consumed by several later shards leaves its producer only once
    # (the per-consumer link legs stay separate edges).
    emitted: set[tuple[int, str]] = set()

    for c, idx in enumerate(chunks):
        chunk_ops = [ops[i] for i in idx]
        needed: list[str] = []  # cross-shard operands, first-use order
        for op in chunk_ops:
            for operand in op.operands:
                src = chunk_of.get(operand)
                if src is not None and src != c and operand not in needed:
                    needed.append(operand)

        stitched_in: list[HomOp] = []
        in_words = 0.0
        for value in needed:
            p = producer_op[value]
            words = _value_words(n, p)
            stitched_in.append(HomOp(
                kind=INPUT, level=p.level, result=value, tag="pod-cut",
            ))
            in_words += words
            edges.append(CutEdge(value=value, src=chunk_of[value], dst=c,
                                 words=words))

        shards.append(Shard(
            chip=c,
            program=Program(
                name=f"{program.name}@chip{c}/{chips}",
                degree=program.degree, max_level=program.max_level,
                ops=[*stitched_in, *chunk_ops],
            ),
            op_indices=idx,
            cut_in_words=in_words,
            stitched_inputs=tuple(needed),
        ))

    # Producer-side stitching: every edge's value leaves its shard as an
    # OUTPUT (charged once per value, transferred once per consumer).
    for e in edges:
        shard = shards[e.src]
        shard.cut_out_words += e.words
        if (e.src, e.value) not in emitted:
            emitted.add((e.src, e.value))
            p = producer_op[e.value]
            shard.program.append(HomOp(
                kind=OUTPUT, level=p.level,
                result=f"podout_{e.value}", operands=(e.value,),
                tag="pod-cut",
            ))
            shard.stitched_outputs += (e.value,)

    return Partition(strategy=MODEL_PARALLEL, shards=shards, edges=edges)
