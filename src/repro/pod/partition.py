"""Sharding a workload across pod chips.

Two strategies, mirroring the tf-encrypted distribution-strategies RFC:

* **data-parallel** (mirrored): every chip runs the complete program and
  serves ``1/K`` of the batch; the only cross-chip traffic is the
  all-reduce that merges per-shard outputs (secure-aggregation style).
* **model-parallel** (sharded): the op stream is cut into K contiguous
  stages, and every value that crosses a cut becomes a link transfer -
  priced with the same word-weights `compiler/ordering.py` uses for
  register-file pressure (``raised_words`` for hoisted digit objects,
  ``ciphertext_words`` otherwise).  Two cutters compete per workload:
  the greedy cycle-weight balance (PR 8) and a boundary-search balanced
  *min-cut* that binary-searches the pipeline bottleneck under the
  overlap cost model, trading stage weight against the live words at
  each boundary.  Like every other simulator-gated pass, both
  candidates are priced through the real simulator (under
  ``obs.paused()``) and the cheaper steady state wins - the min-cut can
  never pessimize a workload (``compiler.mincut.*`` counters record the
  verdicts).

Cut edges are *stitched*: the producer shard gains an ``OUTPUT`` op (the
value leaves the chip) and the consumer shard an ``INPUT`` op (it
arrives from the link), so every shard program passes
``validate_program`` and simulates standalone.  Stitched ops are
recorded on the shard (``stitched_inputs`` / ``stitched_outputs``) and
excluded from ``op_indices``, which keeps the conservation invariant
checkable: the shards' ``op_indices`` are a disjoint cover of the source
program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ChipConfig
from repro.core.cost import ciphertext_words, op_cost, raised_words
from repro.ir import HOIST_MODUP, INPUT, OUTPUT, HomOp, Program
from repro.obs import collector as obs
from repro.pod.config import DATA_PARALLEL, MODEL_PARALLEL, PodConfig
from repro.pod.interconnect import LinkModel


@dataclass(frozen=True)
class CutEdge:
    """One value crossing a shard boundary (a link transfer per batch)."""

    value: str
    src: int            # producing chip (shard index)
    dst: int            # consuming chip
    words: float        # transfer size (ordering.py word weights)
    hops: int = 1       # bidirectional-ring distance src -> dst


@dataclass
class Shard:
    """One chip's slice of the workload."""

    chip: int
    program: Program
    op_indices: tuple[int, ...]          # indices into the source program
    batch_share: float = 1.0             # fraction of the batch served here
    cut_in_words: float = 0.0            # words arriving over the link
    cut_out_words: float = 0.0           # words leaving over the link
    stitched_inputs: tuple[str, ...] = ()
    stitched_outputs: tuple[str, ...] = ()


@dataclass
class Partition:
    """The full sharding decision for one (program, pod) pairing."""

    strategy: str
    shards: list[Shard]
    edges: list[CutEdge] = field(default_factory=list)
    # Stage SimResults from the min-cut gate's pricing runs, aligned
    # with ``shards``; ``simulate_pod`` reuses them when no collector,
    # cache, or checkpointing would change the outcome.
    _gate_results: list | None = field(default=None, repr=False,
                                       compare=False)

    @property
    def chips(self) -> int:
        return len(self.shards)


def _value_words(n: int, op: HomOp) -> float:
    """Link-transfer size of ``op``'s result - the same weights the
    pressure scheduler prices the live set with."""
    if op.kind == HOIST_MODUP:
        return raised_words(n, op.level, op.digits)
    return ciphertext_words(n, op.level)


def _op_weight(cfg: ChipConfig, op: HomOp, n: int) -> float:
    """Balance weight in cycles: FU time for compute ops, stream time
    for memory-only INPUT/OUTPUT ops."""
    if op.kind in (INPUT, OUTPUT):
        return ciphertext_words(n, op.level) / cfg.hbm_words_per_cycle
    return op_cost(cfg, op, n).compute_cycles(cfg)


def _cut_points(program: Program, cfg: ChipConfig, chips: int) -> list[int]:
    """Boundaries of ``chips`` contiguous chunks, balanced by cycle
    weight.  A boundary never lands between a ``hoist_modup`` and its
    rotations: the raised digit object is an on-chip forwarding format,
    not something to put on a wire."""
    ops = program.ops
    n = program.degree
    weights = [_op_weight(cfg, op, n) for op in ops]
    total = sum(weights)
    bounds: list[int] = []
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        k = len(bounds) + 1
        if k >= chips or i + 1 >= len(ops):
            continue
        if acc >= total * k / chips:
            b = i + 1
            while b < len(ops) and ops[b - 1].kind == HOIST_MODUP:
                b += 1
            if b < len(ops) and (not bounds or b > bounds[-1]):
                bounds.append(b)
    return bounds


def _mincut_points(program: Program, cfg: ChipConfig, pod: PodConfig,
                   chips: int) -> list[int]:
    """Balanced min-cut boundaries under the overlap cost model.

    Binary-searches the pipeline bottleneck T: a stage ``[s, e)`` is
    feasible at T when its estimated overlapped cost -
    ``max(weight + boundary crossings, comm(s), comm(e))``, with
    ``comm(b)`` the link time of the live words at boundary ``b`` -
    stays under T.  Each probe places boundaries greedily
    farthest-feasible (vectorized over candidate boundaries), honouring
    the hoist-group mask.  The result is a heuristic, not a proof: the
    simulator gate in :func:`partition` has the final word.
    """
    ops = program.ops
    n = program.degree
    n_ops = len(ops)
    if chips <= 1 or n_ops < 2:
        return []
    weights = np.fromiter((_op_weight(cfg, op, n) for op in ops),
                          dtype=float, count=n_ops)
    prefix = np.zeros(n_ops + 1)
    np.cumsum(weights, out=prefix[1:])

    # Live words at each boundary b (cut between ops b-1 and b): every
    # value produced before b with a consumer at or after b, via a
    # diff-array over the (producer, last consumer] index interval.
    last_use: dict[str, int] = {}
    for i, op in enumerate(ops):
        for operand in op.operands:
            last_use[operand] = i
    diff = np.zeros(n_ops + 2)
    for p, op in enumerate(ops):
        if op.kind == OUTPUT:
            continue
        last = last_use.get(op.result, -1)
        if last <= p:
            continue
        w = _value_words(n, op)
        diff[p + 1] += w
        diff[last + 1] -= w
    live = np.cumsum(diff[:n_ops + 1])
    live[0] = 0.0
    live[n_ops] = 0.0

    link_wpc = pod.link_words_per_cycle(cfg)
    lat = pod.link_latency_cycles
    comm = np.where(live > 0, lat + live / link_wpc, 0.0)
    cross = live / cfg.hbm_words_per_cycle  # memory-system crossing
    value = prefix + cross                  # stage-cost numerator at e
    safe = np.ones(n_ops + 1, dtype=bool)
    safe[0] = False
    for b in range(1, n_ops):
        if ops[b - 1].kind == HOIST_MODUP:
            safe[b] = False

    def place(target: float) -> list[int] | None:
        """Greedy farthest-feasible boundaries for bottleneck ``target``;
        None when some stage cannot stay under it."""
        bounds: list[int] = []
        s = 0
        while len(bounds) < chips - 1:
            budget = target + prefix[s] - cross[s]
            lo = s + 1
            ok = safe[lo:] & (value[lo:] <= budget) & (comm[lo:] <= target)
            idx = np.nonzero(ok)[0]
            if idx.size == 0:
                return None
            e = lo + int(idx[-1])
            if e == n_ops:
                return bounds    # the rest fits in this stage
            bounds.append(e)
            s = e
        if prefix[n_ops] - prefix[s] + cross[s] > target \
                or comm[s] > target:
            return None
        return bounds

    hi = float(prefix[n_ops])
    best = place(hi)
    if best is None:             # cannot happen (one stage always fits)
        return _cut_points(program, cfg, chips)
    lo_t = 0.0
    for _ in range(48):
        mid = (lo_t + hi) / 2.0
        bounds = place(mid)
        if bounds is None:
            lo_t = mid
        else:
            best, hi = bounds, mid
    return best


def partition(program: Program, cfg: ChipConfig, pod: PodConfig,
              chips: int | None = None) -> Partition:
    """Shard ``program`` across ``chips`` chips (default: the pod's
    full complement; pass the survivor count for degraded N-1 plans)."""
    k = pod.chips if chips is None else chips
    if pod.strategy == DATA_PARALLEL:
        return _partition_data(program, k)
    return _gate_model(program, cfg, pod, k)


def _gate_model(program: Program, cfg: ChipConfig, pod: PodConfig,
                chips: int) -> Partition:
    """Race the greedy balance against the min-cut under the real
    simulator (overlap streams armed, tracing paused) and keep the
    cheaper steady state - the min-cut never pessimizes a workload."""
    greedy_bounds = _cut_points(program, cfg, chips)
    greedy = _partition_model(program, cfg, pod, chips, greedy_bounds)
    if chips <= 1 or len(program.ops) < 2:
        return greedy
    tr = obs.active()
    if tr is not None:
        tr.count("compiler.mincut.considered")
    mincut_bounds = _mincut_points(program, cfg, pod, chips)
    if mincut_bounds == greedy_bounds:
        if tr is not None:
            tr.count("compiler.mincut.rejected")
        return greedy
    mincut = _partition_model(program, cfg, pod, chips, mincut_bounds)

    from repro.pod.simulator import stage_results

    with obs.paused():
        greedy_res = stage_results(greedy, cfg, pod)
        mincut_res = stage_results(mincut, cfg, pod)

    def cost(results):
        # Steady-state bottleneck first, fill latency as the tiebreak.
        return (max(r.cycles for r in results),
                sum(r.serialized_cycles for r in results))

    greedy_cost, mincut_cost = cost(greedy_res), cost(mincut_res)
    if mincut_cost < greedy_cost:
        if tr is not None:
            tr.count("compiler.mincut.applied")
            tr.count("compiler.mincut.cycles_saved",
                     greedy_cost[0] - mincut_cost[0])
            saved = sum(e.words * e.hops for e in greedy.edges) \
                - sum(e.words * e.hops for e in mincut.edges)
            if saved > 0:
                tr.count("compiler.mincut.cut_words_saved", saved)
        mincut._gate_results = mincut_res
        return mincut
    if tr is not None:
        tr.count("compiler.mincut.rejected")
    greedy._gate_results = greedy_res
    return greedy


def _partition_data(program: Program, chips: int) -> Partition:
    all_indices = tuple(range(len(program.ops)))
    shards = [
        Shard(chip=c, program=program, op_indices=all_indices,
              batch_share=1.0 / chips)
        for c in range(chips)
    ]
    return Partition(strategy=DATA_PARALLEL, shards=shards)


def _partition_model(program: Program, cfg: ChipConfig, pod: PodConfig,
                     chips: int, bounds: list[int] | None = None,
                     ) -> Partition:
    ops = program.ops
    n = program.degree
    if bounds is None:
        bounds = _cut_points(program, cfg, chips)
    starts = [0, *bounds]
    ends = [*bounds, len(ops)]
    chunks = [tuple(range(s, e)) for s, e in zip(starts, ends)]
    chunks += [()] * (chips - len(chunks))  # tiny programs: idle chips

    chunk_of: dict[str, int] = {}  # producing chunk of each value
    for c, idx in enumerate(chunks):
        for i in idx:
            if ops[i].kind != OUTPUT:
                chunk_of[ops[i].result] = c

    producer_op = {op.result: op for op in ops if op.kind != OUTPUT}
    edges: list[CutEdge] = []
    shards: list[Shard] = []
    # (src, value) pairs already stitched with an OUTPUT, so a value
    # consumed by several later shards leaves its producer only once
    # (the per-consumer link legs stay separate edges).
    emitted: set[tuple[int, str]] = set()

    for c, idx in enumerate(chunks):
        chunk_ops = [ops[i] for i in idx]
        needed: list[str] = []  # cross-shard operands, first-use order
        for op in chunk_ops:
            for operand in op.operands:
                src = chunk_of.get(operand)
                if src is not None and src != c and operand not in needed:
                    needed.append(operand)

        stitched_in: list[HomOp] = []
        in_words = 0.0
        for value in needed:
            p = producer_op[value]
            words = _value_words(n, p)
            stitched_in.append(HomOp(
                kind=INPUT, level=p.level, result=value, tag="pod-cut",
            ))
            in_words += words
            src = chunk_of[value]
            edges.append(CutEdge(
                value=value, src=src, dst=c, words=words,
                hops=LinkModel.ring_hops(src, c, chips)))

        shards.append(Shard(
            chip=c,
            program=Program(
                name=f"{program.name}@chip{c}/{chips}",
                degree=program.degree, max_level=program.max_level,
                ops=[*stitched_in, *chunk_ops],
            ),
            op_indices=idx,
            cut_in_words=in_words,
            stitched_inputs=tuple(needed),
        ))

    # Producer-side stitching: every edge's value leaves its shard as an
    # OUTPUT (charged once per value, transferred once per consumer).
    for e in edges:
        shard = shards[e.src]
        shard.cut_out_words += e.words
        if (e.src, e.value) not in emitted:
            emitted.add((e.src, e.value))
            p = producer_op[e.value]
            shard.program.append(HomOp(
                kind=OUTPUT, level=p.level,
                result=f"podout_{e.value}", operands=(e.value,),
                tag="pod-cut",
            ))
            shard.stitched_outputs += (e.value,)

    return Partition(strategy=MODEL_PARALLEL, shards=shards, edges=edges)
