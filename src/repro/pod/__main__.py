"""CLI for the pod layer: ``python -m repro.pod --campaign``.

Runs the seeded pod fault campaign (`repro.pod.campaign`), prints its
report, and optionally regression-checks against the committed baseline
(``--check``) exactly like the reliability and serving CLIs - CI runs
``--campaign --check`` plus ``--gate`` as the pod smoke gate.
``--scaling`` prints the 1/2/4/8-chip throughput table instead;
``--gate`` runs the absolute scaling acceptance checks (8-chip
model-parallel speedup floor, data rows bit-identical to the
pre-overlap serialized model).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.pod.campaign import check_against_baseline, run_pod_campaign

DEFAULT_BASELINE = Path(__file__).resolve().parents[3] \
    / "tests" / "pod" / "baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pod",
        description="K-chip pod fault campaign and scaling study")
    parser.add_argument("--campaign", action="store_true",
                        help="run the seeded chip/link fault campaign")
    parser.add_argument("--events", type=int, default=520,
                        help="minimum faults to inject (default 520)")
    parser.add_argument("--chips", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--degree", type=int, default=64)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--check", nargs="?", const=str(DEFAULT_BASELINE),
                        metavar="BASELINE",
                        help="compare against a baseline JSON "
                             "(default: tests/pod/baseline.json)")
    parser.add_argument("--emit-baseline", metavar="PATH",
                        help="write this run's result as a new baseline")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result instead "
                             "of the report")
    parser.add_argument("--scaling", action="store_true",
                        help="print the 1/2/4/8-chip throughput table")
    parser.add_argument("--gate", action="store_true",
                        help="run the absolute scaling gate (model "
                             "speedup floor + data-row bit-identity)")
    args = parser.parse_args(argv)

    if args.gate:
        from repro.pod.scaling import scaling_gate

        problems = scaling_gate()
        if problems:
            print(f"SCALING GATE FAILED ({len(problems)} problems):")
            for p in problems:
                print(f"  - {p}")
            return 1
        print("scaling gate passed")
        return 0

    if args.scaling:
        from repro.pod.scaling import scaling_table

        print(scaling_table())
        return 0

    if not args.campaign:
        parser.print_help()
        return 2

    result = run_pod_campaign(seed=args.seed, events=args.events,
                              chips=args.chips, rounds=args.rounds,
                              degree=args.degree)

    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.report())

    if args.emit_baseline:
        Path(args.emit_baseline).write_text(
            json.dumps(result.to_json(), indent=2) + "\n")
        print(f"baseline written to {args.emit_baseline}")

    if args.check:
        problems = check_against_baseline(result, args.check)
        if problems:
            print(f"\nBASELINE CHECK FAILED ({len(problems)} problems):")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"\nbaseline check passed ({args.check})")
        return 0

    # Without --check the absolute gates still decide the exit code.
    ok = (result.wrong_answers == 0 and result.unrecovered == 0
          and result.false_positives == 0
          and all(s.detection_rate == 1.0
                  for s in result.sites.values() if s.injected))
    if ok:
        print("\nOK: 100% detection, 0 wrong answers, 0 unrecovered")
    else:
        print("\nFAIL: pod campaign gates violated")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
