"""Throughput-scaling study: where does the interconnect kill scaling?

Sweeps pod size (1/2/4/8 chips), sharding strategy (data- vs
model-parallel), and health (clean vs one chip fail-stopped) over the
four deep benchmarks, reporting steady-state throughput speedup against
a single unsharded chip.  This is the pod's answer to F1+'s all-to-all
finding: data-parallel scales near-linearly (the all-reduce tax is one
output object per batch), while model-parallel saturates as soon as a
cut ciphertext's link time rivals a stage's compute time.

``scaling_rows`` is the machine-readable form (the nightly benchmark
pins and archives it); ``scaling_table`` renders the committed text
table in ``benchmarks/results/pod_scaling.txt``.
"""

from __future__ import annotations

from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.pod.config import PodConfig, STRATEGIES
from repro.pod.simulator import simulate_pod
from repro.workloads import DEEP_BENCHMARKS, benchmark

CHIP_SWEEP = (1, 2, 4, 8)


def scaling_rows(benchmarks=DEEP_BENCHMARKS, chip_counts=CHIP_SWEEP,
                 strategies=STRATEGIES,
                 cfg: ChipConfig | None = None) -> list[dict]:
    """One dict per (benchmark, chips, strategy): clean and degraded
    (one chip down; skipped at K=1) per-batch cycles and speedups."""
    cfg = cfg or ChipConfig()
    rows = []
    for name in benchmarks:
        program = benchmark(name)
        single = simulate(program, cfg)
        for chips in chip_counts:
            for strategy in strategies:
                pod = PodConfig(chips=chips, strategy=strategy)
                clean = simulate_pod(program, cfg, pod)
                row = {
                    "benchmark": name,
                    "chips": chips,
                    "strategy": strategy,
                    "single_chip_cycles": single.cycles,
                    "clean_cycles_per_batch": clean.cycles_per_batch,
                    "clean_speedup": clean.speedup(single),
                    "link_words": clean.link_words,
                    "degraded_cycles_per_batch": None,
                    "degraded_speedup": None,
                }
                if chips > 1:
                    degraded = simulate_pod(program, cfg, pod,
                                            failed_chips=(chips - 1,))
                    row["degraded_cycles_per_batch"] = \
                        degraded.cycles_per_batch
                    row["degraded_speedup"] = degraded.speedup(single)
                rows.append(row)
    return rows


def scaling_table(rows: list[dict] | None = None) -> str:
    """The committed throughput-scaling table (text)."""
    from repro.analysis.report import format_table

    rows = rows if rows is not None else scaling_rows()
    body = []
    for r in rows:
        degraded = ("-" if r["degraded_speedup"] is None
                    else f"{r['degraded_speedup']:.2f}x")
        body.append([
            r["benchmark"], r["chips"], r["strategy"],
            f"{r['clean_cycles_per_batch']:.3e}",
            f"{r['clean_speedup']:.2f}x",
            degraded,
            f"{r['link_words']:.3e}",
        ])
    return format_table(
        ["benchmark", "chips", "strategy", "cycles/batch", "speedup",
         "N-1 speedup", "link words"],
        body,
        title="Pod throughput scaling (steady state, vs 1 chip)",
    )
