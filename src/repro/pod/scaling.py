"""Throughput-scaling study: where does the interconnect kill scaling?

Sweeps pod size (1/2/4/8 chips), sharding strategy (data- vs
model-parallel), and health (clean vs one chip fail-stopped) over the
four deep benchmarks, reporting steady-state throughput speedup against
a single unsharded chip.  This is the pod's answer to F1+'s all-to-all
finding: data-parallel scales near-linearly (the all-reduce tax is one
output object per batch), while model-parallel saturates as soon as a
cut ciphertext's link time rivals a stage's compute time.

``scaling_rows`` is the machine-readable form (the nightly benchmark
pins and archives it); ``scaling_table`` renders the committed text
table in ``benchmarks/results/pod_scaling.txt``; ``scaling_gate``
applies the absolute CI acceptance checks (model-parallel speedup
floor, data rows bit-identical to the pre-overlap serialized model).
"""

from __future__ import annotations

from repro.core.config import ChipConfig
from repro.core.simulator import simulate
from repro.pod.config import (DATA_PARALLEL, MODEL_PARALLEL, PodConfig,
                              STRATEGIES)
from repro.pod.simulator import simulate_pod
from repro.workloads import DEEP_BENCHMARKS, benchmark

CHIP_SWEEP = (1, 2, 4, 8)


def scaling_rows(benchmarks=DEEP_BENCHMARKS, chip_counts=CHIP_SWEEP,
                 strategies=STRATEGIES,
                 cfg: ChipConfig | None = None) -> list[dict]:
    """One dict per (benchmark, chips, strategy): clean and degraded
    (one chip down; skipped at K=1) per-batch cycles and speedups."""
    cfg = cfg or ChipConfig()
    rows = []
    for name in benchmarks:
        program = benchmark(name)
        single = simulate(program, cfg)
        for chips in chip_counts:
            for strategy in strategies:
                pod = PodConfig(chips=chips, strategy=strategy)
                clean = simulate_pod(program, cfg, pod)
                row = {
                    "benchmark": name,
                    "chips": chips,
                    "strategy": strategy,
                    "single_chip_cycles": single.cycles,
                    "clean_cycles_per_batch": clean.cycles_per_batch,
                    "clean_speedup": clean.speedup(single),
                    "clean_batch_cycles": clean.batch_cycles,
                    "overlap_hidden_cycles": clean.overlap_hidden_cycles,
                    "link_words": clean.link_words,
                    "degraded_cycles_per_batch": None,
                    "degraded_speedup": None,
                }
                if chips > 1:
                    degraded = simulate_pod(program, cfg, pod,
                                            failed_chips=(chips - 1,))
                    row["degraded_cycles_per_batch"] = \
                        degraded.cycles_per_batch
                    row["degraded_speedup"] = degraded.speedup(single)
                rows.append(row)
    return rows


def scaling_table(rows: list[dict] | None = None) -> str:
    """The committed throughput-scaling table (text)."""
    from repro.analysis.report import format_table

    rows = rows if rows is not None else scaling_rows()
    body = []
    for r in rows:
        degraded = ("-" if r["degraded_speedup"] is None
                    else f"{r['degraded_speedup']:.2f}x")
        hidden = r.get("overlap_hidden_cycles", 0.0) or 0.0
        body.append([
            r["benchmark"], r["chips"], r["strategy"],
            f"{r['clean_cycles_per_batch']:.3e}",
            f"{r['clean_speedup']:.2f}x",
            degraded,
            f"{r['clean_batch_cycles']:.3e}",
            f"{hidden:.3e}" if hidden else "-",
            f"{r['link_words']:.3e}",
        ])
    return format_table(
        ["benchmark", "chips", "strategy", "cycles/batch", "speedup",
         "N-1 speedup", "latency", "hidden", "link words"],
        body,
        title="Pod throughput scaling (steady state, vs 1 chip)",
    )


def scaling_gate(rows: list[dict] | None = None,
                 cfg: ChipConfig | None = None,
                 benchmarks=("packed_bootstrap",),
                 chips: int = 8, min_speedup: float = 3.0) -> list[str]:
    """Absolute acceptance checks for the pod-smoke CI gate.

    Returns a list of problem strings (empty means the gate passes):

    * the ``chips``-chip model-parallel row of each gated benchmark must
      hit at least ``min_speedup`` steady-state speedup - the overlap +
      min-cut machinery has to actually pay off, not just not regress;
    * every data-parallel row in ``rows`` must be bit-identical to the
      pre-overlap serialized model, recomputed here explicitly (the
      all-reduce charged through ``extra_streams``) - the overlap path
      must never perturb data-parallel numbers, even in the last ulp.
    """
    from repro.pod.interconnect import LinkModel
    from repro.pod.simulator import _output_words

    cfg = cfg or ChipConfig()
    if rows is None:
        rows = scaling_rows(benchmarks=benchmarks, cfg=cfg)
    problems = []
    for name in benchmarks:
        row = next((r for r in rows
                    if r["benchmark"] == name and r["chips"] == chips
                    and r["strategy"] == MODEL_PARALLEL), None)
        if row is None:
            problems.append(
                f"{name}: no {chips}-chip model-parallel row to gate")
        elif row["clean_speedup"] < min_speedup:
            problems.append(
                f"{name}: {chips}-chip model-parallel speedup "
                f"{row['clean_speedup']:.2f}x < {min_speedup:.1f}x floor")
    programs: dict[str, object] = {}
    for r in rows:
        if r["strategy"] != DATA_PARALLEL:
            continue
        name, k = r["benchmark"], r["chips"]
        if name not in programs:
            programs[name] = benchmark(name)
        program = programs[name]
        link = LinkModel(cfg, PodConfig(chips=k, strategy=DATA_PARALLEL))
        out_words = _output_words(program)
        ar_words = link.all_reduce_words(out_words, k)
        extra = None
        if ar_words:
            ar_cycles = link.all_reduce_cycles(out_words, k)
            extra = {"link": (ar_words, ar_words / ar_cycles)}
        ref = simulate(program, cfg, extra_streams=extra)
        expect = ref.cycles / k
        if expect != r["clean_cycles_per_batch"]:
            problems.append(
                f"{name}: {k}-chip data-parallel cycles/batch "
                f"{r['clean_cycles_per_batch']!r} != serialized "
                f"reference {expect!r} (must be bit-identical)")
    return problems
