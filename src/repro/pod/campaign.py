"""Seeded pod fault campaign: chip fail-stop + link corruption.

Mirrors the reliability and serving campaigns: one seed drives
everything, each trial arms exactly one fault (alternating the two pod
failure domains), and the gates are absolute -

* **100% detection**: every injected chip loss is observed at the
  lock-step barrier and every injected link corruption is caught by the
  receiver's seal check;
* **0 wrong answers**: every trial's final ciphertexts are bit-identical
  to a fault-free reference execution (recovery is replay, replay is
  deterministic);
* **0 unrecovered**: no survivable fault escalates out of the executor.

Stubborn link faults (every fourth link trial) corrupt consecutive
retransmits of the same transfer - still inside the pod's
``link_retries`` budget, so the executor absorbs them; the campaign
reports them separately because they exercise the backoff path.

Run it from the command line::

    PYTHONPATH=src python -m repro.pod --campaign
    PYTHONPATH=src python -m repro.pod --campaign --check

``--check`` regression-gates the result against
``tests/pod/baseline.json`` exactly like the serving campaign.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.pod.config import PodConfig
from repro.pod.coordinator import PodExecutor, Transfer
from repro.reliability.errors import ChipFailure, InterconnectError
from repro.reliability.faults import CHIP, LINK, FaultInjector


@dataclass
class PodSiteStats:
    injected: int = 0
    detected: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.injected if self.injected else 0.0


@dataclass
class PodCampaignResult:
    """One pod campaign's aggregate outcome (JSON-stable)."""

    seed: int
    events: int                  # faults actually injected
    chips: int
    rounds: int
    trials: int
    clean_trials: int
    sites: dict[str, PodSiteStats]
    distinct_links: int          # links that saw >= 1 corruption
    distinct_chips_failed: int
    false_positives: int
    wrong_answers: int
    unrecovered: int
    stubborn_faults: int
    migrations: int
    replayed_steps: int
    retransmits: int
    backoff_s: float
    checkpoints: int
    total_seconds: float

    def detection_rate(self, site: str) -> float:
        return self.sites[site].detection_rate

    def to_json(self) -> dict:
        return {
            "seed": self.seed, "events": self.events, "chips": self.chips,
            "rounds": self.rounds, "trials": self.trials,
            "clean_trials": self.clean_trials,
            "sites": {
                site: {"injected": s.injected, "detected": s.detected}
                for site, s in self.sites.items()
            },
            "distinct_links": self.distinct_links,
            "distinct_chips_failed": self.distinct_chips_failed,
            "false_positives": self.false_positives,
            "wrong_answers": self.wrong_answers,
            "unrecovered": self.unrecovered,
            "stubborn_faults": self.stubborn_faults,
            "migrations": self.migrations,
            "replayed_steps": self.replayed_steps,
            "retransmits": self.retransmits,
            "checkpoints": self.checkpoints,
        }

    def report(self) -> str:
        from repro.analysis.report import format_table

        rows = [
            [site, s.injected, s.detected, f"{s.detection_rate:.1%}"]
            for site, s in self.sites.items()
        ]
        table = format_table(
            ["site", "injected", "detected", "rate"], rows,
            title=f"Pod fault campaign (seed={self.seed}, "
                  f"{self.chips} chips)",
        )
        lines = [
            table,
            "",
            f"trials: {self.trials} faulted + {self.clean_trials} clean "
            f"({self.events} faults injected)",
            f"coverage: {self.distinct_links} distinct links corrupted, "
            f"{self.distinct_chips_failed} distinct chips fail-stopped, "
            f"{self.stubborn_faults} stubborn (multi-retransmit) faults",
            f"recovery: {self.migrations} shard migrations, "
            f"{self.replayed_steps} steps replayed, "
            f"{self.retransmits} retransmits "
            f"({self.backoff_s * 1e3:.2f} ms virtual backoff), "
            f"{self.checkpoints} pod checkpoints",
            f"verdict: {self.wrong_answers} wrong answers, "
            f"{self.unrecovered} unrecovered, "
            f"{self.false_positives} clean-run false positives "
            f"({self.total_seconds:.1f}s wall)",
        ]
        return "\n".join(lines)


def _make_step(c: int, r: int, rot):
    """Round ``r`` for chip ``c``: rotate on even rounds, double on odd,
    then fold in the previous boundary's received value if one landed."""

    def step(ctx, st):
        v = st[f"v{c}"]
        v = ctx.rotate(v, 1, rot) if r % 2 == 0 else ctx.add(v, v)
        rx = st.get(f"rx_r{r - 1}")
        if rx is not None:
            v = ctx.add(v, rx)
        st[f"v{c}"] = v

    return step


def _build_plan(chips: int, rounds: int, rot):
    plans = {
        c: [(f"chip{c}.r{r}", _make_step(c, r, rot)) for r in range(rounds)]
        for c in range(chips)
    }
    # Two transfers per round boundary on rotating links, so every ring
    # link carries (and can corrupt) traffic over a campaign.
    transfers = {}
    for r in range(rounds - 1):
        a = r % chips
        b = (r + 2) % chips
        transfers[r] = [
            Transfer(src=a, dst=(a + 1) % chips, name=f"v{a}",
                     rename=f"rx_r{r}"),
            Transfer(src=b, dst=(b + 1) % chips, name=f"v{b}",
                     rename=f"rx_r{r}"),
        ]
    return plans, transfers


def _states_equal(got: dict[int, dict], want: dict[int, dict],
                  chips: int) -> bool:
    """Bit-exact comparison of every chip's headline value."""
    for c in range(chips):
        a = got[c][f"v{c}"]
        b = want[c][f"v{c}"]
        if not (np.array_equal(a.c0.data, b.c0.data)
                and np.array_equal(a.c1.data, b.c1.data)
                and a.scale == b.scale):
            return False
    return True


def run_pod_campaign(seed: int = 2022, events: int = 520, chips: int = 4,
                     rounds: int = 4, degree: int = 64,
                     max_level: int = 4,
                     clean_trials: int = 5) -> PodCampaignResult:
    """Inject >= ``events`` seeded pod faults and measure the outcome.

    Every trial executes the same K-chip plan (rotate/double rounds with
    ring transfers at each boundary) from the same encrypted inputs,
    arms exactly one fault - chip fail-stop on even trials, link
    corruption on odd (every fourth link trial stubborn: the corruption
    persists across retransmits) - and compares the final ciphertexts
    bit-for-bit against a fault-free reference.  Driven entirely by
    ``seed``: reruns are identical.
    """
    from repro.fhe.ckks import CkksContext, CkksParams
    from repro.reliability import guards

    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    params = CkksParams(degree=degree, max_level=max_level, digits=1,
                        secret_hamming=max(8, degree // 16), seed=seed)
    ctx = CkksContext(params,
                      policy=guards.ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    rot = ctx.rotation_hint(sk, 1)
    pod = PodConfig(chips=chips, seed=seed)

    initial = {}
    for c in range(chips):
        vals = 0.5 * rng.standard_normal(params.slots)
        initial[c] = {f"v{c}": ctx.seal(ctx.encrypt_values(sk, vals))}
    plans, transfers = _build_plan(chips, rounds, rot)

    def fresh_executor(injector=None) -> PodExecutor:
        return PodExecutor(ctx, pod, plans, initial, transfers=transfers,
                           injector=injector)

    # -- reference + clean phase: no injector, outputs must agree -----------
    reference = fresh_executor().run()
    false_positives = 0
    for _ in range(clean_trials):
        ex = fresh_executor()
        final = ex.run()
        if ex.stats.chip_failures or ex.stats.link_faults_detected \
                or not _states_equal(final, reference, chips):
            false_positives += 1

    # Opportunity counts in a clean run, for arming skips.
    chip_opps = chips * rounds                   # one fires() per step
    link_opps = sum(len(ts) for ts in transfers.values())

    sites = {CHIP: PodSiteStats(), LINK: PodSiteStats()}
    faulted_links: set[tuple[int, int]] = set()
    failed_chips: set[int] = set()
    wrong = unrecovered = stubborn = 0
    migrations = replayed = retransmits = checkpoints = 0
    backoff_s = 0.0
    injector = FaultInjector(seed=seed + 1)
    trials = 0
    link_trials = 0

    while sites[CHIP].injected + sites[LINK].injected < events:
        site = CHIP if trials % 2 == 0 else LINK
        trials += 1
        count = 1
        if site == CHIP:
            injector.arm(CHIP, skip=int(rng.integers(chip_opps)))
        else:
            link_trials += 1
            if link_trials % 4 == 0:
                count = 2  # stubborn: survives the first retransmit
                stubborn += 1
            injector.arm(LINK, skip=int(rng.integers(link_opps)),
                         count=count)

        before = injector.injected[site]
        ex = fresh_executor(injector)
        try:
            final = ex.run()
        except (ChipFailure, InterconnectError):
            final = None
            unrecovered += 1
        # An arm whose skip outran the run's opportunities never fired;
        # that trial injected nothing and counts for nothing.
        unfired = injector._armed.pop(site, None) is not None
        injected = injector.injected[site] - before
        sites[site].injected += injected
        if site == CHIP:
            sites[site].detected += min(injected, ex.stats.chip_failures)
            failed_chips |= ex.dead
        else:
            sites[site].detected += min(injected,
                                        ex.stats.link_faults_detected)
            faulted_links |= ex.stats.faulted_links
            if unfired and count == 2:
                stubborn -= 1  # armed burst never (fully) exercised
        migrations += ex.stats.migrations
        replayed += ex.stats.replayed_steps
        retransmits += ex.stats.retransmits
        backoff_s += ex.stats.backoff_s
        checkpoints += ex.stats.checkpoints
        if final is not None and injected \
                and not _states_equal(final, reference, chips):
            wrong += 1

    return PodCampaignResult(
        seed=seed, events=sites[CHIP].injected + sites[LINK].injected,
        chips=chips, rounds=rounds, trials=trials,
        clean_trials=clean_trials, sites=sites,
        distinct_links=len(faulted_links),
        distinct_chips_failed=len(failed_chips),
        false_positives=false_positives, wrong_answers=wrong,
        unrecovered=unrecovered, stubborn_faults=stubborn,
        migrations=migrations, replayed_steps=replayed,
        retransmits=retransmits, backoff_s=backoff_s,
        checkpoints=checkpoints,
        total_seconds=time.perf_counter() - t0,
    )


# -- regression gate ---------------------------------------------------------

_EXACT_FIELDS = ("events", "chips", "rounds", "trials", "clean_trials",
                 "distinct_links", "distinct_chips_failed",
                 "false_positives", "wrong_answers", "unrecovered",
                 "stubborn_faults", "migrations", "replayed_steps",
                 "retransmits", "checkpoints")


def check_against_baseline(result: PodCampaignResult,
                           baseline_path) -> list[str]:
    """Compare a campaign result against a committed baseline; returns
    human-readable problems (empty = pass).  Counts are integers and the
    campaign is seeded, so every field must match exactly."""
    baseline = json.loads(Path(baseline_path).read_text())
    got = result.to_json()
    problems = []
    for f in _EXACT_FIELDS:
        if got[f] != baseline[f]:
            problems.append(f"{f}: got {got[f]}, baseline {baseline[f]}")
    for site, want in baseline["sites"].items():
        have = got["sites"].get(site)
        if have != want:
            problems.append(f"sites[{site}]: got {have}, baseline {want}")
    # The absolute gates hold regardless of what the baseline says.
    for site, s in result.sites.items():
        if s.injected and s.detection_rate < 1.0:
            problems.append(
                f"detection[{site}]: {s.detection_rate:.1%} < 100%")
    if result.wrong_answers:
        problems.append(f"{result.wrong_answers} wrong answers")
    if result.unrecovered:
        problems.append(f"{result.unrecovered} unrecovered faults")
    return problems
