"""Pod topology and interconnect knobs.

A *pod* is K CraterLake chips behind one serving front door, connected
by point-to-point links in a ring (the all-reduce topology the
tf-encrypted distribution-strategies RFC assumes for its mirrored
variables).  The chips themselves are described by the existing
:class:`~repro.core.config.ChipConfig`; this module adds only what the
pod layer introduces - chip count, link bandwidth/latency, the sharding
strategy, and the fault-recovery budgets for the two pod-level failure
domains (chip fail-stop, link corruption).

The link is deliberately far slower than HBM (100 GB/s per direction vs
1 TB/s of HBM per chip, a NVLink-class : HBM2E-class ratio): the whole
point of the pod study is finding where the interconnect kills scaling,
as F1+'s all-to-all did.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.config import ChipConfig
from repro.reliability.errors import ConfigError

DATA_PARALLEL = "data"
MODEL_PARALLEL = "model"
STRATEGIES = (DATA_PARALLEL, MODEL_PARALLEL)


@dataclass(frozen=True)
class PodConfig:
    """Static description of a K-chip pod.

    ``link_gbps`` is per direction per link; a chip can send and receive
    simultaneously (full duplex), but all of a chip's traffic to every
    neighbor shares the one sending port, which is what serializes ring
    all-reduce steps.
    """

    chips: int = 4
    link_gbps: float = 100.0          # per direction, per link
    link_latency_cycles: float = 500.0  # per-hop fixed cost (SerDes + route)
    strategy: str = DATA_PARALLEL
    # Fault-recovery budgets for the pod failure domains.
    link_retries: int = 3             # retransmits before escalating
    backoff_base_s: float = 1e-4      # retransmit backoff: base * factor**k
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25      # +- fraction, seeded
    checkpoint_rounds: int = 2        # pod checkpoint every k lock-step rounds
    seed: int = 2022

    def __post_init__(self):
        if self.chips < 1:
            raise ConfigError("a pod needs at least one chip",
                              chips=self.chips)
        if self.link_gbps <= 0:
            raise ConfigError("link bandwidth must be positive",
                              link_gbps=self.link_gbps)
        if self.link_latency_cycles < 0:
            raise ConfigError("link latency cannot be negative",
                              link_latency_cycles=self.link_latency_cycles)
        if self.strategy not in STRATEGIES:
            raise ConfigError(f"unknown pod strategy {self.strategy!r}",
                              known=STRATEGIES)
        if self.link_retries < 0:
            raise ConfigError("link_retries cannot be negative",
                              link_retries=self.link_retries)
        if self.backoff_base_s < 0 or self.backoff_factor < 1 \
                or not 0 <= self.backoff_jitter < 1:
            raise ConfigError(
                "pod backoff must have base >= 0, factor >= 1, jitter in "
                "[0, 1)", base=self.backoff_base_s,
                factor=self.backoff_factor, jitter=self.backoff_jitter)
        if self.checkpoint_rounds < 1:
            raise ConfigError("checkpoint_rounds must be >= 1",
                              checkpoint_rounds=self.checkpoint_rounds)

    # -- derived quantities --------------------------------------------------

    def link_words_per_cycle(self, chip: ChipConfig) -> float:
        """Link bandwidth in the chip's clock/word units (comparable to
        ``ChipConfig.hbm_words_per_cycle``)."""
        return self.link_gbps * 1e9 / chip.clock_hz / chip.bytes_per_word

    def backoff_ceiling_s(self) -> float:
        """Largest possible single retransmit backoff sleep."""
        if not self.link_retries:
            return 0.0
        worst = self.backoff_base_s \
            * self.backoff_factor ** (self.link_retries - 1)
        return worst * (1 + self.backoff_jitter)

    def descriptor(self) -> str:
        """Stable short form for cache fingerprints, e.g. ``"4xdata"``.

        Only the fields that change a *lowered schedule* belong here:
        chip count and strategy decide how a program is partitioned;
        bandwidth, latency and fault budgets only change simulated cost
        and recovery behavior, never the emitted ops.
        """
        return f"{self.chips}x{self.strategy}"

    def cache_key(self) -> dict:
        """Every knob, for result-level (not schedule-level) keying."""
        return asdict(self)
