"""Pod-coordinated functional execution with chip/link fault recovery.

The :class:`PodExecutor` runs real CKKS work (the `repro.fhe` layer)
across K logical chips in lock-step rounds, surviving the pod's two new
failure domains:

* **chip fail-stop** (``reliability.faults.CHIP`` site) - a chip stops
  mid-round.  The coordinator observes the loss (fail-stop is detected
  by construction: the lock-step barrier never hears back), migrates
  every logical chip hosted there onto the least-loaded survivor,
  restores the lost state from the last *pod-coordinated checkpoint*
  (all chips snapshot at the same round barrier, reusing
  `repro.reliability.recovery`'s sealed snapshots), replays the missing
  steps, and re-applies the coordinator's receive log (sealed copies of
  every cross-chip payload delivered since that checkpoint - classic
  message-logging recovery, so replay never needs a sender to rewind).
  Replay is deterministic, so recovery is bit-exact.
* **link corruption** (``reliability.faults.LINK`` site) - a cross-chip
  transfer is damaged in flight.  Transfers travel as sealed snapshots
  (:func:`~repro.reliability.recovery.snapshot_ciphertext`); the
  receiver's restore re-verifies the per-limb seals, so any flipped bit
  raises and the payload is never accepted.  The sender retransmits
  from its intact copy with seeded exponential backoff up to the pod's
  ``link_retries`` budget, then escalates with
  :class:`~repro.reliability.errors.InterconnectError`.

Execution state is a per-logical-chip dict of named ciphertexts; a step
is ``(name, fn)`` with ``fn(ctx, state)`` mutating its chip's dict, and
cross-chip dataflow is declared as :class:`Transfer` records bound to
round boundaries.  Everything is seeded; two runs with the same inputs
and injector state produce bit-identical final ciphertexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import collector as obs
from repro.pod.config import PodConfig
from repro.reliability.errors import (
    ChipFailure,
    FaultDetectedError,
    InterconnectError,
    ParameterError,
)
from repro.reliability.faults import CHIP, LINK, FaultInjector
from repro.reliability.recovery import (
    Checkpoint,
    CiphertextSnapshot,
    restore_checkpoint,
    snapshot_ciphertext,
    take_checkpoint,
)

Step = tuple[str, Callable]


@dataclass(frozen=True)
class Transfer:
    """One cross-chip ciphertext movement at a round boundary."""

    src: int                 # logical sending chip
    dst: int                 # logical receiving chip
    name: str                # key in the sender's state dict
    rename: str | None = None  # key in the receiver's (default: name)


@dataclass
class PodStats:
    """What one pod execution did and survived."""

    rounds: int = 0
    steps: int = 0
    transfers: int = 0
    chip_failures: int = 0
    migrations: int = 0          # logical chips re-homed after a failure
    replayed_steps: int = 0      # steps re-executed from a checkpoint
    link_faults_detected: int = 0
    retransmits: int = 0
    backoff_s: float = 0.0       # virtual retransmit backoff accumulated
    checkpoints: int = 0
    restores: int = 0
    # Links (src, dst) that delivered at least one corrupted attempt -
    # campaign coverage evidence, not a counter.
    faulted_links: set = field(default_factory=set)


class PodExecutor:
    """Lock-step fault-tolerant execution over K logical chips."""

    def __init__(self, ctx, pod: PodConfig,
                 plans: dict[int, list[Step]],
                 initial_state: dict[int, dict],
                 transfers: dict[int, list[Transfer]] | None = None,
                 injector: FaultInjector | None = None):
        for c in plans:
            if not 0 <= c < pod.chips:
                raise ParameterError("plan for a chip outside the pod",
                                     chip=c, chips=pod.chips)
        self.ctx = ctx
        self.pod = pod
        self.plans = {c: list(steps) for c, steps in plans.items()}
        self.transfers = {r: list(ts) for r, ts in (transfers or {}).items()}
        self.injector = injector
        self.rng = np.random.default_rng(pod.seed)
        # Executor owns its state: callers can reuse initial ciphertexts
        # across runs (the campaign does, per trial).
        self.states = {
            c: {name: ct.copy() for name, ct in entries.items()}
            for c, entries in initial_state.items()
        }
        self.hosted_on = {c: c for c in range(pod.chips)}  # logical -> phys
        self.dead: set[int] = set()
        self.done = {c: 0 for c in range(pod.chips)}  # steps completed
        self.stats = PodStats()
        self._ckpts: dict[int, Checkpoint] = {}
        # Receive log: sealed copies of payloads delivered since the last
        # pod checkpoint, keyed by receiving chip - replayed after a
        # restore so recovery never needs a sender to rewind.
        self._rx_log: dict[int, list[tuple[int, str, CiphertextSnapshot]]] \
            = {c: [] for c in range(pod.chips)}
        self._logical = sorted(self.plans)
        self._round = 0

    # -- failure handling ---------------------------------------------------

    def _survivors(self) -> list[int]:
        return [p for p in range(self.pod.chips) if p not in self.dead]

    def _hosted(self, phys: int) -> list[int]:
        return [c for c in self._logical if self.hosted_on[c] == phys]

    def _fail_chip(self, phys: int, round_no: int) -> None:
        """Fail-stop ``phys``: migrate its logical chips to the
        least-loaded survivor and replay them from the pod checkpoint."""
        self.dead.add(phys)
        self.stats.chip_failures += 1
        obs.count("pod.chip_failures")
        survivors = self._survivors()
        if not survivors:
            raise ChipFailure(
                "pod lost its last chip; no survivor to migrate onto",
                chip=phys, round=round_no)
        for c in self._hosted(phys):
            host = min(survivors, key=lambda p: (len(self._hosted(p)), p))
            self.hosted_on[c] = host
            self.stats.migrations += 1
            obs.count("pod.migrations")
            # The dead chip's live state went with it: rebuild from the
            # last coordinated checkpoint, replay the missing steps, and
            # re-apply logged receipts at their original boundaries.
            ckpt = self._ckpts[c]
            with obs.span("pod.restore", "pod"):
                self.states[c] = restore_checkpoint(ckpt)
            self.stats.restores += 1
            self._replay(c, ckpt.step, self.done[c])

    def _replay(self, c: int, start: int, end: int) -> None:
        receipts = self._rx_log[c]
        for i in range(start, end):
            name, fn = self.plans[c][i]
            with obs.span("pod.replay_step", "pod"):
                fn(self.ctx, self.states[c])
            self.stats.replayed_steps += 1
            obs.count("pod.replayed_steps")
            for round_no, key, snap in receipts:
                if round_no == i:
                    self.states[c][key] = snap.restore()
        # Receipts delivered after the chip's last step (its plan ended
        # but the pod kept routing to it) have no step to anchor to;
        # re-apply them in arrival order.
        for round_no, key, snap in receipts:
            if round_no >= end:
                self.states[c][key] = snap.restore()

    # -- transfers ----------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        base = self.pod.backoff_base_s * self.pod.backoff_factor ** attempt
        jitter = 1 + self.pod.backoff_jitter * (2 * self.rng.random() - 1)
        return base * jitter

    def _transfer(self, t: Transfer) -> None:
        sender = self.states[t.src]
        if t.name not in sender:
            raise ParameterError("transfer of a value the sender lacks",
                                 src=t.src, name=t.name)
        snap = snapshot_ciphertext(sender[t.name])  # sealed, sender-side
        attempts = self.pod.link_retries + 1
        for attempt in range(attempts):
            wire = CiphertextSnapshot(
                moduli=snap.moduli,
                data0=snap.data0.copy(), data1=snap.data1.copy(),
                domain0=snap.domain0, domain1=snap.domain1,
                scale=snap.scale,
                budget_noise_bits=snap.budget_noise_bits,
                budget_sigma=snap.budget_sigma,
                budget_mod_bits=snap.budget_mod_bits,
                checksums0=snap.checksums0, checksums1=snap.checksums1,
            )
            if self.injector is not None:
                half = wire.data0 if self.rng.random() < 0.5 else wire.data1
                self.injector.maybe_corrupt(LINK, half)
            try:
                received = wire.restore()  # re-verifies the seals
            except FaultDetectedError:
                self.stats.link_faults_detected += 1
                self.stats.faulted_links.add((t.src, t.dst))
                obs.count("pod.link_faults_detected")
                if attempt + 1 < attempts:
                    self.stats.retransmits += 1
                    self.stats.backoff_s += self._backoff(attempt)
                    obs.count("pod.retransmits")
                continue
            key = t.rename or t.name
            self.states[t.dst][key] = received
            self._rx_log[t.dst].append((self._round, key, wire))
            self.stats.transfers += 1
            obs.count("pod.transfers")
            return
        raise InterconnectError(
            "link retransmit budget exhausted; transfer never arrived "
            "intact", src=t.src, dst=t.dst, name=t.name,
            retries=self.pod.link_retries)

    # -- main loop ----------------------------------------------------------

    def _checkpoint_all(self) -> None:
        with obs.span("pod.checkpoint", "pod"):
            for c in self._logical:
                self._ckpts[c] = take_checkpoint(
                    self.ctx, self.states[c], step=self.done[c],
                    label=f"pod-chip{c}")
                self._rx_log[c] = []  # receipts now inside the checkpoint
                self.stats.checkpoints += 1
                obs.count("pod.checkpoints")

    def run(self) -> dict[int, dict]:
        """Execute every plan to completion; returns the final states.

        Raises :class:`ChipFailure` only when the last chip dies, and
        :class:`InterconnectError` only when a transfer exhausts its
        retransmit budget - everything survivable is survived.
        """
        rounds = max((len(s) for s in self.plans.values()), default=0)
        self._checkpoint_all()  # round-0 baseline: any death can restore
        for r in range(rounds):
            self._round = r
            self.stats.rounds += 1
            for c in self._logical:
                if self.done[c] > r or r >= len(self.plans[c]):
                    continue
                phys = self.hosted_on[c]
                if self.injector is not None and phys not in self.dead \
                        and self.injector.fires(CHIP):
                    self._fail_chip(phys, r)
                name, fn = self.plans[c][r]
                with obs.span("pod.step", "pod"):
                    fn(self.ctx, self.states[c])
                self.done[c] = r + 1
                self.stats.steps += 1
                obs.count("pod.steps")
            for t in self.transfers.get(r, ()):  # round-boundary dataflow
                self._transfer(t)
            if (r + 1) % self.pod.checkpoint_rounds == 0:
                self._checkpoint_all()
        return self.states
