"""Operation counts for keyswitching: Table 1 and Fig. 4.

Table 1's closed forms (per keyswitch of an L-residue polynomial, 1-digit
boosted vs standard):

                boosted (changeRNSBase + other)     standard
    Mult        3L^2 + 4L                           2L^2
    Add         3L^2 + 2L                           2L^2
    NTT         6L                                  L^2

Fig. 4 plots, as a function of the multiplicative budget L at N=64K, the
keyswitch-hint footprint (GB) and the number of 28-bit scalar multiplies
(billions) of both algorithms: standard keyswitching's quadratic hint is
what rules it out for deep FHE (1.7 GB vs 52.5 MB at L=60).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class KeyswitchOps:
    """Residue-polynomial operation counts for one keyswitch."""

    mult: int
    add: int
    ntt: int
    crb_mult: int  # the subset of mult that happens inside changeRNSBase
    hint_residues: int  # residue polynomials in the keyswitch hint

    def scalar_mults(self, degree: int) -> float:
        """Total 28-bit multiplies including the NTTs' butterflies."""
        return (self.mult * degree
                + self.ntt * degree / 2 * math.log2(degree))

    def hint_bytes(self, degree: int, bytes_per_word: float = 3.5,
                   seeded: bool = False) -> float:
        residues = self.hint_residues / (2 if seeded else 1)
        return residues * degree * bytes_per_word


def boosted_keyswitch_ops(level: int, digits: int = 1) -> KeyswitchOps:
    """Table 1, generalized to t digits (Sec. 3.1).

    For t=1 this reproduces the paper's column exactly: 3L^2 + 4L mults,
    3L^2 + 2L adds, 6L NTTs, and a hint of 2 ciphertexts (4L residues).
    """
    ell = level
    alpha = -(-ell // digits)
    raised = ell + alpha
    crb_mult = ell * ell + 2 * alpha * ell          # modup + 2x moddown
    # Hint application only; the P^-1 scaling rides in the CRB pass, which
    # is how Table 1 arrives at exactly 3L^2 + 4L multiplies for t=1.
    other_mult = 2 * digits * raised
    add = crb_mult + 2 * (digits - 1) * raised + 2 * ell
    ntt = ell + digits * ell + 2 * alpha + 2 * ell
    hint_residues = 2 * digits * raised              # (t+1) ciphertexts
    return KeyswitchOps(
        mult=crb_mult + other_mult, add=add, ntt=ntt,
        crb_mult=crb_mult, hint_residues=hint_residues,
    )


def standard_keyswitch_ops(level: int) -> KeyswitchOps:
    """Table 1's standard (per-prime BV) column."""
    ell = level
    return KeyswitchOps(
        mult=2 * ell * ell, add=2 * ell * ell, ntt=ell * ell,
        crb_mult=0, hint_residues=2 * ell * ell,
    )


def keyswitch_footprint_curve(max_level: int = 60, degree: int = 65536,
                              bytes_per_word: float = 3.5):
    """Fig. 4 (left): hint footprint in GB vs L, both algorithms."""
    levels = list(range(1, max_level + 1))
    standard = [
        standard_keyswitch_ops(l).hint_bytes(degree, bytes_per_word) / 1e9
        for l in levels
    ]
    boosted = [
        boosted_keyswitch_ops(l).hint_bytes(degree, bytes_per_word) / 1e9
        for l in levels
    ]
    return levels, standard, boosted


def keyswitch_compute_curve(max_level: int = 60, degree: int = 65536):
    """Fig. 4 (right): 28-bit multiplies (billions) vs L, both algorithms."""
    levels = list(range(1, max_level + 1))
    standard = [
        standard_keyswitch_ops(l).scalar_mults(degree) / 1e9 for l in levels
    ]
    boosted = [
        boosted_keyswitch_ops(l).scalar_mults(degree) / 1e9 for l in levels
    ]
    return levels, standard, boosted


def crossover_level(degree: int = 65536) -> int:
    """First L where boosted needs fewer scalar multiplies than standard.

    Sec. 8: 'boosted keyswitching becomes more efficient for L > 14'.
    """
    for level in range(1, 200):
        b = boosted_keyswitch_ops(level).scalar_mults(degree)
        s = standard_keyswitch_ops(level).scalar_mults(degree)
        if b < s:
            return level
    raise RuntimeError("no crossover found")
