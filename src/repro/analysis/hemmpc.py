"""HE-MPC vs accelerated bootstrapping (Sec. 10's quantitative claim).

Hybrid HE-MPC systems (Gazelle, Cheetah, Delphi) avoid bootstrapping by
shipping exhausted ciphertexts back to the client for re-encryption.  The
paper's counterpoint: with bootstrapping at 3.9 ms, the round trip is the
bottleneck - over 13 MB per refresh means >1 s on a 100 Mbps link, ~256x
slower than bootstrapping on CraterLake, before even counting client
compute.  This module reproduces that arithmetic as a small model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RefreshComparison:
    ciphertext_mb: float
    network_seconds: float
    bootstrap_seconds: float

    @property
    def advantage(self) -> float:
        """How much faster on-accelerator bootstrapping is per refresh."""
        return self.network_seconds / self.bootstrap_seconds


def client_refresh_seconds(ciphertext_megabytes: float,
                           link_mbps: float = 100.0) -> float:
    """Round-trip transfer time for one ciphertext refresh (both ways the
    ciphertext must cross the link once; the paper charges one transfer of
    the noise-budgeted ciphertext, >13 MB)."""
    return ciphertext_megabytes * 8.0 / link_mbps


def compare_refresh(
    bootstrap_ms: float = 3.91,
    ciphertext_megabytes: float = 13.0,
    link_mbps: float = 100.0,
) -> RefreshComparison:
    """Sec. 10's numbers: >13 MB per refresh, 100 Mbps link, 3.9 ms
    bootstrap => the accelerator refreshes ~256x faster than the network
    can even move the data."""
    return RefreshComparison(
        ciphertext_mb=ciphertext_megabytes,
        network_seconds=client_refresh_seconds(ciphertext_megabytes,
                                               link_mbps),
        bootstrap_seconds=bootstrap_ms / 1e3,
    )


def narrow_input_savings(coefficient_bits_full: int = 1500,
                         coefficient_bits_narrow: int = 32) -> float:
    """Bootstrapping also lets clients send narrow (e.g. 32-bit) inputs
    the server bootstraps up, instead of full 1,500-bit coefficients -
    a ~47x cut in client encryption and network cost (Sec. 10)."""
    return coefficient_bits_full / coefficient_bits_narrow
