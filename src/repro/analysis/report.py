"""Small reporting helpers shared by the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence
from repro.reliability.errors import ParameterError


def gmean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups."""
    vals = [float(v) for v in values]
    if not vals:
        raise ParameterError("gmean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ParameterError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table, printed by every benchmark harness."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Minimal CSV (no quoting; cells must not contain commas), used by
    the obs exporters and the benchmark results files."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [f"{c:.10g}" if isinstance(c, float) else str(c) for c in row]
        if any("," in c for c in cells):
            raise ParameterError(f"CSV cell contains a comma: {cells}")
        lines.append(",".join(cells))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)
