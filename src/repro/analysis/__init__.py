"""Analytic models and figure/table data generators for the evaluation."""

from repro.analysis.opcounts import (
    KeyswitchOps,
    boosted_keyswitch_ops,
    keyswitch_compute_curve,
    keyswitch_footprint_curve,
    standard_keyswitch_ops,
)
from repro.analysis.tradeoff import (
    CiphertextSizePoint,
    ciphertext_size_sweep,
    optimal_point,
)
from repro.analysis.hemmpc import (
    compare_refresh,
    client_refresh_seconds,
    narrow_input_savings,
)
from repro.analysis.report import format_table, gmean

__all__ = [
    "KeyswitchOps",
    "boosted_keyswitch_ops",
    "standard_keyswitch_ops",
    "keyswitch_compute_curve",
    "keyswitch_footprint_curve",
    "CiphertextSizePoint",
    "ciphertext_size_sweep",
    "optimal_point",
    "compare_refresh",
    "client_refresh_seconds",
    "narrow_input_savings",
    "format_table",
    "gmean",
]
