"""The ciphertext-size tradeoff of Fig. 3 (Sec. 2.3).

For a deep program, the maximum ciphertext size (equivalently L_max) sets
how often bootstrapping runs: bigger ciphertexts buy more usable levels per
refresh, but every operation - bootstrapping included - gets more expensive
with size.  Fig. 3 plots total cost per homomorphic multiply against max
ciphertext size for the two synthetic extremes (a serial multiplication
chain and a 100-wide multiply graph) and finds the optimum in a narrow
20-26 MB band; the paper sizes CraterLake for exactly that band.

Cost here is the paper's y-axis metric: scalar multiplies per homomorphic
multiply, computed from the same op-count formulas as Table 1/Fig. 4 plus
the bootstrap plan's structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.opcounts import boosted_keyswitch_ops
from repro.fhe.security import ciphertext_megabytes
from repro.workloads.bootstrap import BootstrapPlan
from repro.workloads.synthetic import _plan_for_max_level


@dataclass(frozen=True)
class CiphertextSizePoint:
    max_level: int
    ciphertext_mb: float
    usable_levels: int
    bootstrap_mults: float       # scalar mults per bootstrap
    app_mults_per_op: float      # scalar mults per application multiply
    mults_per_op_chain: float    # total, serial-chain amortization
    mults_per_op_wide: float     # total, 100-wide amortization


def _bootstrap_scalar_mults(plan: BootstrapPlan, degree: int) -> float:
    """Scalar multiplies of one bootstrap under the plan's op structure."""
    total = 0.0
    level = plan.top_level
    rotations = plan.rotations_per_stage * plan.tile_partitions
    for _ in range(plan.cts_stages + plan.stc_stages):
        ks = boosted_keyswitch_ops(level, 2 if level > 52 else 1)
        total += rotations * ks.scalar_mults(degree)
        level -= 1
    evalmod_ks = 2 * (plan.evalmod_mults + plan.evalmod_squarings)
    mid = max(1, level - plan.evalmod_depth // 2)
    total += evalmod_ks * boosted_keyswitch_ops(mid, 1).scalar_mults(degree)
    return total


def ciphertext_size_sweep(levels=None, degree: int = 65536,
                          security: int = 80, wide_width: int = 100):
    """Fig. 3's x-sweep: cost per multiply vs maximum ciphertext size."""
    if levels is None:
        levels = [28, 34, 40, 46, 52, 57, 60]
    points = []
    for max_level in levels:
        try:
            plan = _plan_for_max_level(security, degree, max_level)
        except ValueError:
            continue  # too small to host packed bootstrapping
        usable = plan.usable_levels
        boot = _bootstrap_scalar_mults(plan, degree)
        # An application multiply at the midpoint of the usable band.
        app_level = max(1, usable // 2)
        app = boosted_keyswitch_ops(app_level, 1).scalar_mults(degree)
        # Chain: one multiply per level between refreshes.
        chain = app + boot / usable
        # Wide graph: `wide_width` multiplies per level between refreshes.
        wide = app + boot / (usable * wide_width)
        points.append(CiphertextSizePoint(
            max_level=max_level,
            ciphertext_mb=ciphertext_megabytes(degree, max_level),
            usable_levels=usable,
            bootstrap_mults=boot,
            app_mults_per_op=app,
            mults_per_op_chain=chain,
            mults_per_op_wide=wide,
        ))
    return points


def optimal_point(points, metric: str) -> "CiphertextSizePoint":
    """The sweep point minimizing ``metric`` (Fig. 3's black dots)."""
    return min(points, key=lambda p: getattr(p, metric))
