"""Shared intermediate representation: programs as homomorphic-op streams.

FHE programs are static dataflow graphs (Sec. 2.1): no data-dependent
control flow, every operation known ahead of time.  The compiler front end
(`repro.compiler`) builds :class:`Program` objects; the CraterLake simulator
(`repro.core.simulator`), the F1+ model and the CPU model all consume the
same stream, so every compared system runs literally the same workload.

Operands are named; sizes derive from (kind, level, degree).  ``hint_id``
identifies which keyswitch hint an op applies - hint reuse across ops is
what the register file's Belady management and the KSH traffic accounting
(Fig. 10a) are about.

Stability guarantees
--------------------
This IR is a *serialized* surface: `repro.compiler.cache` persists
lowered programs to disk and content-addresses them, so the field set
and semantics of :class:`HomOp` / :class:`Program` are versioned by
``repro.compiler.cache.FORMAT_VERSION``.  Changing a field's meaning,
adding a field that affects scheduling, or reordering :data:`KINDS`
(the serialized kind codes are indices into it) requires bumping that
version so stale artifacts are rejected instead of decoded wrongly.

Names are *not* semantic: SSA value names, ``hint_id`` and
``plaintext_id`` strings are display handles whose consistent renaming
never changes a schedule, and the cache's fingerprints are invariant
under such renames (the sharing structure - which ops use the *same*
hint or value - is what's hashed).  ``Program.name`` and
``description`` are pure metadata, excluded from fingerprints.  See
docs/COMPILER.md for the full contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reliability.errors import ParameterError, ScheduleError

# Operation kinds.  MULT/ROTATE need keyswitching; PMULT/ADD/RESCALE are
# plain polynomial ops; INPUT marks an off-chip ciphertext operand's first
# use (client data or layer weights).
MULT = "mult"          # ciphertext x ciphertext (+relinearization)
PMULT = "pmult"        # ciphertext x plaintext
ADD = "add"            # ciphertext add/sub
ROTATE = "rotate"      # automorphism + keyswitch
CONJUGATE = "conjugate"  # automorphism + keyswitch (counted like rotate)
RESCALE = "rescale"
INPUT = "input"
OUTPUT = "output"
# Hoisted rotations (Halevi-Shoup, emitted by repro.compiler.hoisting):
# HOIST_MODUP performs the shared ModUp of one ciphertext's c1 (INTT +
# digit decompose + raise + NTT) once; each ROTATE_HOISTED consumes the
# raised digits - operands (raised, source) - and pays only the hint
# multiply, ModDown and output automorphism.
HOIST_MODUP = "hoist_modup"
ROTATE_HOISTED = "rotate_hoisted"

KINDS = (MULT, PMULT, ADD, ROTATE, CONJUGATE, RESCALE, INPUT, OUTPUT,
         HOIST_MODUP, ROTATE_HOISTED)
KEYSWITCH_KINDS = (MULT, ROTATE, CONJUGATE, ROTATE_HOISTED)


@dataclass
class HomOp:
    """One homomorphic operation at a known level.

    ``level`` is the multiplicative budget L at which the op executes
    (the number of live RNS residues); ``digits`` the keyswitching digit
    count t chosen for this level by the compiler (Sec. 3.1).
    """

    kind: str
    level: int
    result: str
    operands: tuple[str, ...] = ()
    hint_id: str | None = None
    plaintext_id: str | None = None
    # Rotation amount (slot shift) for ROTATE / ROTATE_HOISTED ops.  This
    # is semantic, not a cost knob: ``hint_id`` is only a *reuse handle*
    # for keyswitch-hint traffic accounting and may legitimately be shared
    # by rotations of different amounts (e.g. a workload cycling a small
    # pool of hint slots), so passes must never infer the amount from it.
    # ``None`` means unknown; value-merging optimizations must then treat
    # the op as unique.
    steps: int | None = None
    digits: int = 1
    tag: str = ""  # phase label for reporting (e.g. "bootstrap", "conv3")
    # Compact plaintext: small-coefficient multiplicands (bootstrap matrix
    # diagonals, scale constants) are stored as ~2 residues and extended
    # on chip, instead of occupying all L residues in memory.
    compact_pt: bool = False
    # Batched emission: this op stands for ``repeat`` structurally
    # identical, mutually independent ops (e.g. the per-block rotations of
    # a blocked matvec, which share one hint, or a matvec's diagonal
    # products with distinct single-use plaintexts).  Compute scales with
    # ``repeat``; a shared hint is still fetched once.
    repeat: int = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ScheduleError(f"unknown op kind {self.kind!r}")
        if self.level < 1:
            raise ScheduleError("level must be >= 1", level=self.level)
        if self.kind in KEYSWITCH_KINDS and self.hint_id is None:
            raise ScheduleError(f"{self.kind} requires a hint_id")
        if self.digits < 1:
            raise ScheduleError("digits must be >= 1", digits=self.digits)
        if self.repeat < 1:
            raise ScheduleError("repeat must be >= 1", repeat=self.repeat)
        if self.repeat > 1 and self.kind in (INPUT, OUTPUT, RESCALE,
                                             HOIST_MODUP):
            raise ScheduleError(f"{self.kind} ops cannot batch with repeat")
        if self.steps is not None and self.kind not in (ROTATE,
                                                        ROTATE_HOISTED):
            raise ScheduleError(
                f"steps only applies to rotations, not {self.kind}",
                steps=self.steps,
            )
        if self.kind == ROTATE_HOISTED and len(self.operands) != 2:
            raise ScheduleError(
                "rotate_hoisted takes (raised, source) operands",
                operands=self.operands,
            )


@dataclass
class Program:
    """An ordered stream of homomorphic ops plus workload metadata."""

    name: str
    degree: int
    max_level: int
    ops: list[HomOp] = field(default_factory=list)
    description: str = ""

    def __post_init__(self):
        if self.degree & (self.degree - 1):
            raise ParameterError("degree must be a power of two",
                                 degree=self.degree)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: HomOp) -> HomOp:
        if op.level > self.max_level:
            raise ScheduleError(
                f"op at level {op.level} exceeds program max {self.max_level}"
            )
        self.ops.append(op)
        return op

    # -- summary statistics used by reports and tests ----------------------

    def count(self, kind: str) -> int:
        return sum(1 for op in self.ops if op.kind == kind)

    def keyswitch_count(self) -> int:
        return sum(1 for op in self.ops if op.kind in KEYSWITCH_KINDS)

    def distinct_hints(self) -> set[str]:
        return {op.hint_id for op in self.ops if op.hint_id is not None}

    def max_live_level(self) -> int:
        return max((op.level for op in self.ops), default=0)

    def phase_names(self) -> list[str]:
        seen: list[str] = []
        for op in self.ops:
            if op.tag and (not seen or seen[-1] != op.tag):
                if op.tag not in seen:
                    seen.append(op.tag)
        return seen
