"""Rotation-hoisting pass: share one ModUp across same-source rotations.

The dominant cost of a rotation keyswitch is raising the input's c1 into
the extended basis (INTT + changeRNSBase + NTT).  When one ciphertext is
rotated by many different amounts - every BSGS baby step emitted by
`repro.compiler.kernels.matvec`, every bootstrapping transform stage in
`repro.workloads.bootstrap` - that ModUp is identical across the group
and can be hoisted (Halevi-Shoup; the paper's compiler applies it inside
its keyswitch pipelines, Sec. 6).

This pass detects groups of :data:`~repro.ir.ROTATE` ops that consume the
same SSA value at the same (level, digits), and rewrites each profitable
group into one :data:`~repro.ir.HOIST_MODUP` (inserted where the first
group member sat, so the stream stays in dataflow order) plus
:data:`~repro.ir.ROTATE_HOISTED` ops for the members.  The raised digits
become an ordinary named intermediate, so the reuse scheduler
(`repro.compiler.ordering`) keeps them register-file-resident across the
whole group and the Belady register file sizes them correctly
(:func:`repro.core.cost.raised_words`).

Group members rotating by the *same amount* (bootstrapping's per-tile
rotations, which sit inside the rotation loop exactly so hints are
reused) are additionally *batched* into a single ROTATE_HOISTED with
``repeat = m``: once the ModUp is hoisted out, the m hint products are
structurally identical passes over the same raised digits, so the KSH
generator emits each pseudorandom a-half row once and broadcasts it to
all m members' multipliers (see :func:`repro.core.cost.op_cost`).  This
is what makes multi-digit groups - whose per-rotation bound is the KSH
generator, leaving plain ModUp hoisting break-even - profitable to
hoist.  Batching is a value merge, so its key is the *semantic* rotation
amount ``HomOp.steps`` (plus hint and tag): ``hint_id`` alone is only a
reuse handle and real workloads share one hint id across different
amounts (e.g. `repro.workloads.neural`'s ``rot{j % 8}`` pool), which
must never be merged.  Members whose ``steps`` is unknown (``None``)
still share the hoisted ModUp but are never batched with anything.
Batch members compute identical values (same source, same rotation
amount), so dropped members' results are renamed to the
representative's; downstream per-tile consumers are untouched and still
charge their full per-tile work.

Profitability is decided against the cost model, not assumed: a group is
rewritten only when the hoist plus its batched rotations are strictly
cheaper in compute cycles than the fused originals on the target config.
Because the hoisted split is an exact complement of the fused keyswitch,
a singleton group is exactly break-even and is therefore never rewritten
(the pass cannot pessimize).

Input rotations that are already batched (``repeat > 1``) stand for
rotations of *different* ciphertexts sharing a hint - there is no common
ModUp to hoist - and :data:`~repro.ir.CONJUGATE` ops are single
automorphisms with nothing to share, so both are skipped.

The pass is deterministic (groups follow stream order; the gate is a
pure cost-model comparison), which the compile cache
(`repro.compiler.cache`) relies on to substitute a stored artifact for
a recompile; behavior changes here that alter output for an unchanged
input require a ``FORMAT_VERSION`` bump (see docs/COMPILER.md).
"""

from __future__ import annotations

from repro.core.config import ChipConfig
from repro.core.cost import op_cost, op_latency
from repro.ir import HOIST_MODUP, ROTATE, ROTATE_HOISTED, HomOp, Program
from repro.obs import collector as obs

_REFERENCE_CFG: ChipConfig | None = None


def _reference_cfg() -> ChipConfig:
    global _REFERENCE_CFG
    if _REFERENCE_CFG is None:
        _REFERENCE_CFG = ChipConfig()
    return _REFERENCE_CFG


def hoist_rotations(program: Program, cfg: ChipConfig | None = None,
                    min_group: int = 2) -> Program:
    """Return a new Program with profitable rotation groups hoisted.

    ``cfg`` is the machine the profitability test targets (default: the
    CraterLake configuration); ``min_group`` the smallest group size even
    considered (the cost test already rejects singletons).
    """
    with obs.span("compiler.hoist_rotations", "compiler"):
        return _hoist_rotations(program, cfg or _reference_cfg(), min_group)


def _hoist_rotations(program: Program, cfg: ChipConfig,
                     min_group: int) -> Program:
    n = program.degree

    # Group plain rotations by the SSA version of their source operand at
    # the same (level, digits).  Redefinition of a name (non-SSA streams)
    # closes its open groups: a later rotate of the new value must not
    # share the old value's ModUp.
    version: dict[str, int] = {}
    groups: dict[tuple, list[int]] = {}
    for i, op in enumerate(program.ops):
        if op.kind == ROTATE and op.repeat == 1 and len(op.operands) == 1:
            src = op.operands[0]
            key = (src, version.get(src, 0), op.level, op.digits)
            groups.setdefault(key, []).append(i)
        version[op.result] = version.get(op.result, 0) + 1

    # Decide profitability per group against the cost model.
    replacements: dict[int, HomOp] = {}   # batch-rep index -> rotate_hoisted
    hoists: dict[int, HomOp] = {}         # first-member index -> hoist_modup
    dropped: dict[int, str] = {}          # merged member index -> rep result
    hoisted_rotations = 0
    for gidx, ((src, ver, level, digits), members) in enumerate(
            sorted(groups.items(), key=lambda kv: kv[1][0])):
        k = len(members)
        if k < min_group:
            continue
        first = program.ops[members[0]]
        raised = f"{src}@up{gidx}"
        hoist_op = HomOp(kind=HOIST_MODUP, level=level, result=raised,
                         operands=(src,), digits=digits, tag=first.tag)
        rotate_cycles = op_cost(cfg, first, n).compute_cycles(cfg)
        hoist_cycles = op_cost(cfg, hoist_op, n).compute_cycles(cfg)
        # Members rotating by the same amount compute the same value, so
        # they batch into one ROTATE_HOISTED with repeat = m and the KSH
        # generator runs once per batch instead of once per member.  The
        # key is the explicit op.steps - hint ids are reuse handles that
        # workloads share across different amounts, so hint equality is
        # NOT a semantic equivalence; an op without a known amount
        # (steps=None) is its own singleton batch.
        batches: dict[tuple, list[int]] = {}
        for idx in members:
            member = program.ops[idx]
            key = ((member.steps, member.hint_id, member.tag)
                   if member.steps is not None else ("unbatchable", idx))
            batches.setdefault(key, []).append(idx)
        hoisted_total = 0.0
        probes: dict[int, HomOp] = {}
        for batch in batches.values():
            rep = program.ops[batch[0]]
            probe = HomOp(kind=ROTATE_HOISTED, level=level,
                          result=rep.result, operands=(raised, src),
                          hint_id=rep.hint_id, digits=digits, tag=rep.tag,
                          steps=rep.steps, repeat=len(batch))
            probes[batch[0]] = probe
            hoisted_total += op_cost(cfg, probe, n).compute_cycles(cfg)
        # The rewrite introduces a hoist -> rotation dependence chain the
        # fused ops did not have; on serial machines that exposes two
        # pipeline fills.  Charge them (and give the fused side none, a
        # conservative comparison) so tiny groups on small rings are not
        # pessimized for a few hundred cycles of compute savings.
        latency = (op_latency(cfg, hoist_op, n)
                   + op_latency(cfg, next(iter(probes.values())), n))
        if hoist_cycles + hoisted_total + latency >= k * rotate_cycles:
            obs.count("compiler.hoist.unprofitable_groups")
            continue
        hoists[members[0]] = hoist_op
        replacements.update(probes)
        for batch in batches.values():
            rep_result = program.ops[batch[0]].result
            for idx in batch[1:]:
                dropped[idx] = rep_result
        obs.count("compiler.hoist.hoisted_groups")
        obs.count("compiler.hoist.modups_saved", k - 1)
        hoisted_rotations += k

    if hoisted_rotations:
        obs.count("compiler.hoist.rotations_hoisted", hoisted_rotations)

    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    ops: list[HomOp] = []
    rename: dict[str, str] = {}
    for i, op in enumerate(program.ops):
        if i in hoists:
            # The group's source name was captured at analysis time; it
            # may itself be a dropped batch member of an earlier group,
            # so emit with the live rename applied or the hoist would
            # reference a name with no producer.
            ops.append(replace_operands(hoists[i], rename)
                       if rename else hoists[i])
        if i in dropped:
            # Batched away: later uses of this member's result read the
            # batch representative's (identical) value instead.
            rename[op.result] = dropped[i]
            continue
        op = replacements.get(i, op)  # before renaming: probes' source
        if rename and any(o in rename for o in op.operands):
            op = replace_operands(op, rename)
        if op.result in rename:
            del rename[op.result]  # non-SSA redefinition shadows the merge
        ops.append(op)
    out.ops = ops
    return out


def replace_operands(op: HomOp, rename: dict[str, str]) -> HomOp:
    """Copy ``op`` with operand names substituted per ``rename``."""
    return HomOp(
        kind=op.kind, level=op.level, result=op.result,
        operands=tuple(rename.get(o, o) for o in op.operands),
        hint_id=op.hint_id, plaintext_id=op.plaintext_id,
        digits=op.digits, tag=op.tag, compact_pt=op.compact_pt,
        steps=op.steps, repeat=op.repeat,
    )
