"""The CraterLake compiler (Sec. 6): from FHE programs to op streams.

A Python-embedded DSL (`repro.compiler.dsl`) builds dataflow programs of
homomorphic operations; kernels (`repro.compiler.kernels`) provide the
building blocks every benchmark uses (BSGS matrix-vector products,
polynomial activations, rotate-and-sum reductions); the digit scheduler
(`repro.compiler.digits`) picks the keyswitching variant per level for a
security target (Sec. 3.1); the hoisting pass (`repro.compiler.hoisting`)
rewrites groups of same-source rotations into shared-ModUp form
(Halevi-Shoup); and the ordering passes (`repro.compiler.ordering`) reorder
independent ops: `order_for_reuse` maximizes operand/hint reuse and
`order_for_pressure` adds a register-pressure-aware, simulator-gated
refinement - together the compiler's main lever on off-chip traffic.

:func:`compile_program` (`repro.compiler.cache`) is the one-call pipeline
entry - hoisting, then ordering, behind an optional content-addressed
compile cache that persists lowered schedules across calls and processes.
The full pipeline and artifact contract are documented in
docs/COMPILER.md.

Stability guarantees
--------------------
The compiler's output is deterministic: lowering the same
:class:`~repro.ir.Program` for the same
:class:`~repro.core.config.ChipConfig` under the same pass flags always
produces the identical op stream (no randomness, no wall-clock input,
simulator-gated decisions included).  That determinism is load-bearing -
it is what lets the compile cache substitute a deserialized artifact for
a recompile bit-for-bit.  Code that would break it (hash-order
iteration over ops, randomized tie-breaking) must not be introduced
without bumping :data:`repro.compiler.cache.FORMAT_VERSION`.

Fingerprints (:func:`repro.compiler.cache.fingerprint`) are invariant
under SSA value renames and hint/plaintext-id renames (names are
canonicalized to first-appearance indices before hashing) and under
``Program.name`` / ``ChipConfig.name`` changes; *every* other program,
config, or flag change invalidates them.  Any change to the
canonicalization or to pass semantics that alters lowered output for an
unchanged input requires a ``FORMAT_VERSION`` bump so stale artifacts
are rejected rather than replayed.
"""

from repro.compiler.cache import (
    FORMAT_VERSION,
    CompileCache,
    compile_program,
    fingerprint,
    load_artifact,
    save_artifact,
)
from repro.compiler.digits import digit_schedule
from repro.compiler.dsl import FheBuilder, Value
from repro.compiler.hoisting import hoist_rotations
from repro.compiler.kernels import (
    blocked_matvec,
    matvec,
    polynomial_activation,
    rotate_accumulate,
)
from repro.compiler.ordering import order_for_pressure, order_for_reuse
from repro.compiler.placement import (
    Placement,
    amortized_cost_per_op,
    plan_refreshes,
)

__all__ = [
    "FORMAT_VERSION",
    "CompileCache",
    "FheBuilder",
    "Value",
    "compile_program",
    "digit_schedule",
    "fingerprint",
    "load_artifact",
    "save_artifact",
    "blocked_matvec",
    "matvec",
    "polynomial_activation",
    "rotate_accumulate",
    "hoist_rotations",
    "order_for_pressure",
    "order_for_reuse",
    "Placement",
    "amortized_cost_per_op",
    "plan_refreshes",
]
