"""The CraterLake compiler (Sec. 6): from FHE programs to op streams.

A Python-embedded DSL (`repro.compiler.dsl`) builds dataflow programs of
homomorphic operations; kernels (`repro.compiler.kernels`) provide the
building blocks every benchmark uses (BSGS matrix-vector products,
polynomial activations, rotate-and-sum reductions); the digit scheduler
(`repro.compiler.digits`) picks the keyswitching variant per level for a
security target (Sec. 3.1); the hoisting pass (`repro.compiler.hoisting`)
rewrites groups of same-source rotations into shared-ModUp form
(Halevi-Shoup); and the ordering passes (`repro.compiler.ordering`) reorder
independent ops: `order_for_reuse` maximizes operand/hint reuse and
`order_for_pressure` adds a register-pressure-aware, simulator-gated
refinement - together the compiler's main lever on off-chip traffic.
"""

from repro.compiler.digits import digit_schedule
from repro.compiler.dsl import FheBuilder, Value
from repro.compiler.hoisting import hoist_rotations
from repro.compiler.kernels import (
    blocked_matvec,
    matvec,
    polynomial_activation,
    rotate_accumulate,
)
from repro.compiler.ordering import order_for_pressure, order_for_reuse
from repro.compiler.placement import (
    Placement,
    amortized_cost_per_op,
    plan_refreshes,
)

__all__ = [
    "FheBuilder",
    "Value",
    "digit_schedule",
    "blocked_matvec",
    "matvec",
    "polynomial_activation",
    "rotate_accumulate",
    "hoist_rotations",
    "order_for_pressure",
    "order_for_reuse",
    "Placement",
    "amortized_cost_per_op",
    "plan_refreshes",
]
