"""Reusable homomorphic kernels: the building blocks of every benchmark.

These mirror `repro.fhe`'s functional implementations at the op-stream
level, with the same operation counts: a BSGS matrix-vector product costs
~2*sqrt(D) rotations and D plaintext multiplies for D live diagonals; a
degree-d polynomial activation costs ~2*sqrt(d) ciphertext multiplies at
~log2(d) depth; a rotate-and-accumulate reduction costs log2(n) rotations.
"""

from __future__ import annotations

import math

from repro.compiler.dsl import FheBuilder, Value
from repro.reliability.errors import ParameterError


def matvec(b: FheBuilder, x: Value, dim: int, weights: str,
           diagonals: int | None = None, hint_prefix: str = "",
           rescale: bool = True, compact_weights: bool = False) -> Value:
    """BSGS matrix-vector product of a packed dim x dim matrix.

    Cost is in *homomorphic op counts*, not cycles: ~2*sqrt(d) rotations
    + d plaintext multiplies for d live diagonals, consuming one level
    when ``rescale``.  ``diagonals`` defaults to dense (dim live
    diagonals).  Weight
    plaintexts are named per (weights, giant, baby) so reuse across calls
    with the same ``weights`` label is visible to the register file;
    rotation hints are shared across all matvecs with the same
    ``hint_prefix`` (typically "" = program-global baby/giant hints).
    """
    d = dim if diagonals is None else diagonals
    if d < 1:
        raise ParameterError("need at least one live diagonal")
    n1 = max(1, 1 << round(math.log2(max(1.0, math.sqrt(d)))))
    n2 = -(-d // n1)
    # Baby rotations of the input.
    rotated = {0: x}
    for j in range(1, n1):
        rotated[j] = b.rotate(x, j, hint_id=f"{hint_prefix}rot{j}")
    total: Value | None = None
    for g in range(n2):
        group = min(n1, d - g * n1)
        if group <= 0:
            break
        # One batched op stands for the group's diagonal products (and the
        # adds folding them); the plaintexts are distinct and single-use,
        # so batching only compresses the op stream, not the cost.
        inner = b.pmult(rotated[0], f"{weights}/g{g}", rescale=False,
                        repeat=group, compact=compact_weights)
        if group > 1:
            inner = b.add(inner, inner, repeat=group - 1)
        if g:
            inner = b.rotate(inner, g * n1,
                             hint_id=f"{hint_prefix}rot{g * n1}")
        total = inner if total is None else b.add(total, inner)
    assert total is not None
    return b.rescale(total) if rescale else total


def polynomial_activation(b: FheBuilder, x: Value, degree: int) -> Value:
    """Paterson-Stockmeyer activation: ~2*sqrt(d) ciphertext mults (op
    count), consuming ~log2(d)+2 levels of depth."""
    if degree < 2:
        raise ParameterError("activation degree must be >= 2")
    k = 1 << math.ceil(math.log2(math.sqrt(degree + 1)))
    n_chunks = -(-(degree + 1) // k)
    powers = {1: x}
    for i in range(2, k + 1):
        lo, hi = i // 2, i - i // 2
        a = b.mod_drop(powers[lo], min(powers[lo].level, powers[hi].level))
        c = b.mod_drop(powers[hi], a.level)
        powers[i] = b.mult(a, c)
    giants = {1: powers[k]}
    for j in range(2, n_chunks):
        lo, hi = j // 2, j - j // 2
        a = b.mod_drop(giants[lo], min(giants[lo].level, giants[hi].level))
        c = b.mod_drop(giants[hi], a.level)
        giants[j] = b.mult(a, c)
    result: Value | None = None
    for j in range(n_chunks):
        chunk: Value | None = None
        for i in range(1, k):
            if j * k + i > degree:
                break
            term = b.pmult(powers[i], f"actcoef{j * k + i}", rescale=False)
            chunk = term if chunk is None else b.add(chunk, term)
        if chunk is None:
            continue
        chunk = Value(chunk.name, chunk.level)
        if j:
            giant = giants[j]
            level = min(chunk.level - 1, giant.level)
            chunk = b.mult(
                b.mod_drop(b.rescale(chunk), level),
                b.mod_drop(giant, level),
            )
        else:
            chunk = b.rescale(chunk)
        result = chunk if result is None else b.add(result, chunk)
    assert result is not None
    return result


def rotate_accumulate(b: FheBuilder, x: Value, count: int,
                      hint_prefix: str = "") -> Value:
    """log2(count) rotations + adds (op counts; depth-free) summing
    ``count`` slot groups."""
    acc = x
    step = 1
    while step < count:
        rot = b.rotate(acc, step, hint_id=f"{hint_prefix}rot{step}")
        acc = b.add(acc, rot)
        step *= 2
    return acc


def blocked_matvec(b: FheBuilder, x: Value, diagonals: int, blocks: int,
                   weights: str, hint_prefix: str = "",
                   compact_weights: bool = False,
                   rescale: bool = True) -> Value:
    """``blocks`` independent BSGS matrix products sharing rotation
    hints; op counts scale with ``blocks`` but hint *words* are fetched
    once (batched emission), consuming one level when ``rescale``.

    The block structure of convolutional layers: every block applies the
    same rotation steps (so hints are fetched once and reused) to
    independent data, which also lets the static schedule overlap them
    fully.  Emitted with batched ops to keep programs compact.
    """
    n1 = max(1, 1 << round(math.log2(max(1.0, math.sqrt(diagonals)))))
    n2 = -(-diagonals // n1)
    rotated = {0: x}
    for j in range(1, n1):
        rotated[j] = b.rotate(x, j, hint_id=f"{hint_prefix}rot{j}",
                              repeat=blocks)
    total: Value | None = None
    for g in range(n2):
        group = min(n1, diagonals - g * n1)
        if group <= 0:
            break
        inner = b.pmult(rotated[0], f"{weights}/g{g}", rescale=False,
                        repeat=group * blocks, compact=compact_weights)
        if group * blocks > 1:
            inner = b.add(inner, inner, repeat=group * blocks - 1)
        if g:
            inner = b.rotate(inner, g * n1, hint_id=f"{hint_prefix}rot{g * n1}",
                             repeat=blocks)
        total = inner if total is None else b.add(total, inner)
    assert total is not None
    return b.rescale(total) if rescale else total
