"""Content-addressed compile cache + stable IR serialization (Sec. 6).

CraterLake's programming model is compile-once/run-many: FHE programs
are static dataflow graphs, so a lowered schedule is a pure function of
(program IR, :class:`~repro.core.config.ChipConfig`, pass flags).  The
lowering pipeline - hoisting, then the ordering passes, each with
simulator-backed profitability gates - is therefore *repeated-inference
precompute*: a serving loop that recompiled the same logreg graph per
request would spend seconds per query on work whose result never
changes.  This module makes that work a one-time cost:

* **Stable serialization** - :func:`program_to_arrays` /
  :func:`program_from_arrays` encode a :class:`~repro.ir.Program` as
  columnar numpy arrays (an ``.npz`` payload) plus a canonical-JSON
  manifest, versioned by :data:`FORMAT_VERSION` and round-tripping
  bit-exactly (``loaded == original`` fieldwise, including ``steps``,
  hint ids, hoisted ops, batching, and tags).  See docs/COMPILER.md for
  the on-disk contract and the version-bump rules.
* **Content-addressed fingerprints** - :func:`fingerprint` hashes the
  *canonicalized* program (SSA names, hint ids and plaintext ids
  replaced by first-appearance indices, so renaming values cannot
  cause a miss), the config's :meth:`~repro.core.config.ChipConfig.
  cache_key` (every field but the display name), and the normalized
  pass flags.  Anything that can change the lowered schedule changes
  the hash; nothing else does.
* **Two-tier cache** - :class:`CompileCache` holds an LRU memory tier
  (compiled ``Program`` objects) over an optional size-bounded
  directory tier (``<fingerprint>.json`` + ``.npz`` pairs, evicted
  oldest-first).  Loads re-verify the payload seal (the reliability
  layer's verify-on-restore idiom, cf. `repro.reliability.recovery`):
  a corrupt, truncated, or version-skewed artifact counts
  ``compiler.cache.invalid``, is deleted, and reads as a miss - never
  an exception, never a wrong schedule.
* **The entry point** - :func:`compile_program` runs the full pipeline
  (hoist -> optional reuse ordering -> pressure scheduling) through the
  cache, and ``simulate(..., cache=...)`` routes through it.  Cache
  observability flows through `repro.obs` as ``compiler.cache.{hit,
  miss,store,evict,invalid}`` counters and ``compiler.compile`` /
  ``compiler.cache.*`` spans (docs/TRACING.md).

Default off: plain ``simulate(program, cfg)`` never compiles or caches
(tests and the paper-table benchmarks are unchanged).  Opt in with an
explicit ``cache=`` argument or ``REPRO_COMPILE_CACHE=1``.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.config import ChipConfig
from repro.ir import KINDS, HomOp, Program
from repro.obs import collector as obs
from repro.reliability.errors import ArtifactError

#: Serialization format version.  Bump rules (see docs/COMPILER.md):
#: any change to the artifact schema, the columnar encoding, the
#: canonicalization used by :func:`fingerprint`, or the semantics of an
#: existing IR field requires a bump; adding a new *optional* HomOp
#: field with a default that old artifacts can assume also requires a
#: bump (old artifacts must not deserialize into wrong programs).
#: Loaders reject any other version - a stale artifact is a miss, not a
#: best-effort parse.
FORMAT_VERSION = 2

_KIND_CODE = {kind: i for i, kind in enumerate(KINDS)}

#: The lowering pipeline's knobs, in their default configuration.  The
#: fingerprint covers the *normalized* flag dict, so unknown keys are
#: rejected rather than silently ignored (a typo must not alias two
#: different pipelines to one hash).
DEFAULT_FLAGS = {
    "hoist": True,      # repro.compiler.hoisting.hoist_rotations
    "reuse": False,     # repro.compiler.ordering.order_for_reuse
    "pressure": True,   # repro.compiler.ordering.order_for_pressure
    "window": 32,       # pressure scheduler's pull-forward window
    "min_group": 2,     # smallest rotation group hoisting considers
    "pod": "",          # PodConfig.descriptor() when compiling a shard
    #                     ("" = single chip).  A shard of resnet20 cut
    #                     for a 4-chip pod is a *different program* from
    #                     the whole benchmark; the descriptor keeps
    #                     their artifacts from aliasing even when a
    #                     partitioner change produces identical IR.
}


def normalize_flags(flags: dict | None = None) -> dict:
    """Fill defaults and reject unknown pass flags."""
    merged = dict(DEFAULT_FLAGS)
    if flags:
        unknown = set(flags) - set(DEFAULT_FLAGS)
        if unknown:
            raise ArtifactError("unknown pass flags",
                                flags=sorted(unknown))
        merged.update(flags)
    merged["hoist"] = bool(merged["hoist"])
    merged["reuse"] = bool(merged["reuse"])
    merged["pressure"] = bool(merged["pressure"])
    merged["window"] = int(merged["window"])
    merged["min_group"] = int(merged["min_group"])
    merged["pod"] = str(merged["pod"])
    return merged


# -- canonical JSON + fingerprinting ----------------------------------------

def canonical_json(obj) -> bytes:
    """Deterministic JSON bytes: sorted keys, minimal separators.  Two
    structurally equal documents serialize identically regardless of
    dict insertion order - the "insensitive to dict ordering" half of
    the fingerprint contract."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")


def canonical_program_dict(program: Program) -> dict:
    """The program as fingerprinted: names replaced by structure.

    SSA value names, hint ids, and plaintext ids are display choices of
    the builder (`FheBuilder`'s ``v%17`` counter, a workload's
    ``rot{j%8}`` pool); renaming them consistently cannot change the
    lowered schedule, so each is mapped to a first-appearance index
    (``v0, v1, ...`` / ``h0, ...`` / ``p0, ...``).  The *sharing
    structure* survives: collapsing two distinct hints into one, or
    splitting one value into two, changes the mapping and the hash.
    ``Program.name`` and ``description`` are metadata and excluded;
    every schedule-relevant field (kind, level, operand wiring, steps,
    digits, tag, compact_pt, repeat, degree, max_level) is included.
    """
    values: dict[str, str] = {}
    hints: dict[str, str] = {}
    pts: dict[str, str] = {}

    def vname(name: str) -> str:
        if name not in values:
            values[name] = f"v{len(values)}"
        return values[name]

    ops = []
    for op in program.ops:
        operands = [vname(o) for o in op.operands]
        hint = None
        if op.hint_id is not None:
            if op.hint_id not in hints:
                hints[op.hint_id] = f"h{len(hints)}"
            hint = hints[op.hint_id]
        pt = None
        if op.plaintext_id is not None:
            if op.plaintext_id not in pts:
                pts[op.plaintext_id] = f"p{len(pts)}"
            pt = pts[op.plaintext_id]
        ops.append([op.kind, op.level, vname(op.result), operands, hint,
                    pt, op.steps, op.digits, op.tag, op.compact_pt,
                    op.repeat])
    return {"degree": program.degree, "max_level": program.max_level,
            "ops": ops}


def program_token(program: Program) -> str:
    """sha256 of the canonical-JSON form of
    :func:`canonical_program_dict` - the program half of the
    fingerprint.

    Canonicalization walks every op, so the token is memoized on the
    ``Program`` instance (guarded by the ops list's identity and
    length): a serving loop fingerprinting the same program per request
    pays the walk once.  The memo assumes the codebase's convention
    that a ``Program`` is immutable once built - passes return *new*
    programs (and ``append`` or replacing ``.ops`` invalidates the
    guard) - mutating an existing ``HomOp`` in place is already
    undefined behavior for scheduling and is not detected here.
    """
    ops = program.ops
    guard = (id(ops), len(ops))
    memo = getattr(program, "_token_memo", None)
    if memo is not None and memo[0] == guard:
        return memo[1]
    token = hashlib.sha256(
        canonical_json(canonical_program_dict(program))).hexdigest()
    program._token_memo = (guard, token)
    return token


def fingerprint(program: Program, cfg: ChipConfig | None = None,
                flags: dict | None = None) -> str:
    """Content address of a (program, config, pass flags) compilation.

    The sha256 of the canonical JSON of ``{"format", "program_sha256",
    "config", "flags"}``, where ``program_sha256`` is
    :func:`program_token` (the hash of the canonicalized program) -
    a two-stage construction so the per-op walk can be memoized.
    Invariant under SSA renames, hint/plaintext-id renames, dict
    ordering, and the display names ``Program.name`` /
    ``ChipConfig.name``; sensitive to every op field, the op order, the
    program's ring parameters, every other config field, the pass-flag
    set, and :data:`FORMAT_VERSION` itself (a format bump invalidates
    every existing artifact at once).
    """
    cfg = cfg or ChipConfig()
    doc = {
        "format": FORMAT_VERSION,
        "program_sha256": program_token(program),
        "config": cfg.cache_key(),
        "flags": normalize_flags(flags),
    }
    return hashlib.sha256(canonical_json(doc)).hexdigest()


# -- columnar serialization --------------------------------------------------

def _str_column(items: list[str]) -> np.ndarray:
    return (np.array(items, dtype=np.str_) if items
            else np.array([], dtype="<U1"))


def program_to_arrays(program: Program) -> dict[str, np.ndarray]:
    """Encode the op stream as columnar arrays (the ``.npz`` payload).

    Fixed-width numeric columns plus unicode string columns; the
    variable-length ``operands`` tuples flatten into one string column
    with an offsets array (``operands_off[i]:operands_off[i+1]`` slices
    op i's operands).  ``None``-able fields (``steps``, ``hint_id``,
    ``plaintext_id``) carry an explicit mask column - ``steps`` values
    are signed rotation amounts, so no in-band sentinel exists.
    """
    ops = program.ops
    n = len(ops)
    operands_flat: list[str] = []
    operands_off = np.zeros(n + 1, dtype=np.int64)
    for i, op in enumerate(ops):
        operands_flat.extend(op.operands)
        operands_off[i + 1] = len(operands_flat)
    return {
        "kind": np.fromiter((_KIND_CODE[op.kind] for op in ops),
                            dtype=np.uint8, count=n),
        "level": np.fromiter((op.level for op in ops),
                             dtype=np.int64, count=n),
        "digits": np.fromiter((op.digits for op in ops),
                              dtype=np.int64, count=n),
        "repeat": np.fromiter((op.repeat for op in ops),
                              dtype=np.int64, count=n),
        "compact_pt": np.fromiter((op.compact_pt for op in ops),
                                  dtype=np.uint8, count=n),
        "steps": np.fromiter(
            (op.steps if op.steps is not None else 0 for op in ops),
            dtype=np.int64, count=n),
        "steps_mask": np.fromiter(
            (op.steps is not None for op in ops), dtype=np.uint8, count=n),
        "result": _str_column([op.result for op in ops]),
        "operands": _str_column(operands_flat),
        "operands_off": operands_off,
        "hint": _str_column([op.hint_id or "" for op in ops]),
        "hint_mask": np.fromiter(
            (op.hint_id is not None for op in ops), dtype=np.uint8, count=n),
        "plaintext": _str_column([op.plaintext_id or "" for op in ops]),
        "plaintext_mask": np.fromiter(
            (op.plaintext_id is not None for op in ops),
            dtype=np.uint8, count=n),
        "tag": _str_column([op.tag for op in ops]),
    }


def program_from_arrays(meta: dict, arrays) -> Program:
    """Rebuild a :class:`Program` from a manifest's ``program`` section
    and the columnar payload.  Ops go through the normal :class:`HomOp`
    constructor, so the IR's own validation re-runs on load - a corrupt
    column that survives the seal check still cannot produce an
    inconsistent op."""
    n = int(meta["op_count"])
    if len(arrays["kind"]) != n:
        raise ArtifactError("op count mismatch", manifest=n,
                            payload=len(arrays["kind"]))
    # One bulk .tolist() per column (numpy scalars -> native int/str) is
    # ~5x faster than per-element indexing on the 70k-op benchmarks -
    # this loop is the disk tier's whole load cost.
    kinds = arrays["kind"].tolist()
    levels = arrays["level"].tolist()
    digits = arrays["digits"].tolist()
    repeats = arrays["repeat"].tolist()
    compact = arrays["compact_pt"].tolist()
    steps = arrays["steps"].tolist()
    steps_mask = arrays["steps_mask"].tolist()
    results = arrays["result"].tolist()
    operands = arrays["operands"].tolist()
    operands_off = arrays["operands_off"].tolist()
    hints = arrays["hint"].tolist()
    hint_mask = arrays["hint_mask"].tolist()
    pts = arrays["plaintext"].tolist()
    pt_mask = arrays["plaintext_mask"].tolist()
    tags = arrays["tag"].tolist()
    program = Program(name=meta["name"], degree=int(meta["degree"]),
                      max_level=int(meta["max_level"]),
                      description=meta["description"])
    ops = program.ops
    for i in range(n):
        code = kinds[i]
        if code >= len(KINDS):
            raise ArtifactError("unknown op kind code", code=code)
        ops.append(HomOp(
            kind=KINDS[code],
            level=levels[i],
            result=results[i],
            operands=tuple(operands[operands_off[i]:operands_off[i + 1]]),
            hint_id=hints[i] if hint_mask[i] else None,
            plaintext_id=pts[i] if pt_mask[i] else None,
            steps=steps[i] if steps_mask[i] else None,
            digits=digits[i],
            tag=tags[i],
            compact_pt=bool(compact[i]),
            repeat=repeats[i],
        ))
    return program


def payload_seal(arrays: dict[str, np.ndarray]) -> str:
    """sha256 over the payload's array *contents* (name, dtype, shape,
    raw bytes, in sorted-name order) - the artifact's integrity seal.

    Computed over contents rather than the ``.npz`` container bytes
    because zip archives embed timestamps; the seal must be a pure
    function of the data so the manifest stays deterministic.
    """
    h = hashlib.sha256()
    for key in sorted(arrays):
        a = np.ascontiguousarray(arrays[key])
        h.update(key.encode())
        h.update(b"\0")
        h.update(a.dtype.str.encode())
        h.update(repr(tuple(a.shape)).encode())
        h.update(b"\0")
        h.update(a.tobytes())
    return h.hexdigest()


def artifact_manifest(program: Program, fp: str, cfg: ChipConfig,
                      flags: dict, arrays: dict[str, np.ndarray]) -> dict:
    """The JSON sidecar for one serialized lowered schedule.  Pure
    function of its inputs (no timestamps, sorted keys on write), so
    re-serializing an identical compilation is byte-identical."""
    from dataclasses import asdict

    return {
        "format": FORMAT_VERSION,
        "kind": "repro.compiler.cache/artifact",
        "fingerprint": fp,
        "program": {
            "name": program.name,
            "degree": program.degree,
            "max_level": program.max_level,
            "description": program.description,
            "op_count": len(program.ops),
        },
        "config": asdict(cfg),
        "flags": normalize_flags(flags),
        "payload_sha256": payload_seal(arrays),
        "arrays": sorted(arrays),
    }


def save_artifact(base: Path, program: Program, fp: str,
                  cfg: ChipConfig, flags: dict | None = None) -> Path:
    """Write ``<base>.json`` + ``<base>.npz``; returns the manifest path.

    The payload lands first and the manifest last, so a crash mid-write
    leaves either a dangling ``.npz`` (never consulted without its
    manifest) or a manifest whose seal check fails - both read as
    misses, matching the recovery layer's write-then-commit discipline.
    """
    base = Path(base)
    arrays = program_to_arrays(program)
    manifest = artifact_manifest(program, fp, cfg, flags or {}, arrays)
    base.parent.mkdir(parents=True, exist_ok=True)
    with open(base.with_suffix(".npz"), "wb") as f:
        np.savez(f, **arrays)
    base.with_suffix(".json").write_text(
        json.dumps(manifest, sort_keys=True, indent=1) + "\n")
    return base.with_suffix(".json")


def load_artifact(base: Path, expect_fingerprint: str | None = None,
                  ) -> Program:
    """Read and *verify* one artifact; raises :class:`ArtifactError` on
    any mismatch (format version, payload seal, fingerprint, structure).
    The cache wraps this in its corruption-tolerant lookup; call it
    directly only when a hard failure is what you want (e.g. loading an
    ahead-of-time artifact you believe must exist)."""
    base = Path(base)
    try:
        manifest = json.loads(base.with_suffix(".json").read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactError("unreadable artifact manifest",
                            path=str(base.with_suffix(".json"))) from exc
    if not isinstance(manifest, dict):
        raise ArtifactError("artifact manifest is not an object")
    if manifest.get("format") != FORMAT_VERSION:
        raise ArtifactError("artifact format version mismatch",
                            found=manifest.get("format"),
                            supported=FORMAT_VERSION)
    if expect_fingerprint and manifest.get("fingerprint") != expect_fingerprint:
        raise ArtifactError("artifact fingerprint mismatch",
                            expected=expect_fingerprint,
                            found=manifest.get("fingerprint"))
    try:
        with np.load(base.with_suffix(".npz")) as npz:
            arrays = {key: npz[key] for key in npz.files}
    except Exception as exc:  # zipfile/numpy raise various corruption errors
        raise ArtifactError("unreadable artifact payload",
                            path=str(base.with_suffix(".npz"))) from exc
    if sorted(arrays) != manifest.get("arrays"):
        raise ArtifactError("artifact payload columns mismatch")
    if payload_seal(arrays) != manifest.get("payload_sha256"):
        raise ArtifactError("artifact payload seal mismatch",
                            path=str(base.with_suffix(".npz")))
    try:
        return program_from_arrays(manifest["program"], arrays)
    except ArtifactError:
        raise
    except Exception as exc:  # missing columns, IR validation failures...
        raise ArtifactError("artifact does not decode to a valid program",
                            path=str(base)) from exc


# -- the two-tier cache ------------------------------------------------------

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-craterlake/
    compile``, else ``~/.cache/repro-craterlake/compile``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-craterlake" / "compile"


class CompileCache:
    """LRU memory tier over an optional size-bounded directory tier.

    ``directory=None`` is memory-only (no surprise writes under
    ``$HOME``); pass a directory (or use :func:`default_cache`) for
    cross-process persistence.  ``memory_entries`` bounds the LRU;
    ``disk_bytes`` bounds the directory tier, evicting oldest-modified
    artifacts first.  All lookups are corruption-tolerant: any failure
    to read, unseal, or rebuild an artifact deletes it, counts
    ``compiler.cache.invalid``, and reports a miss.

    Instance-local totals mirror the obs counters in :attr:`stats`
    (``hit`` / ``miss`` / ``store`` / ``evict`` / ``invalid``), so tests
    and servers can read rates without a live collector.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 memory_entries: int = 16,
                 disk_bytes: int = 512 * 2**20):
        self.directory = Path(directory) if directory is not None else None
        self.memory_entries = int(memory_entries)
        self.disk_bytes = int(disk_bytes)
        self._memory: OrderedDict[str, Program] = OrderedDict()
        self.stats = {"hit": 0, "miss": 0, "store": 0, "evict": 0,
                      "invalid": 0}

    # -- bookkeeping -------------------------------------------------------

    def _count(self, event: str, value: int = 1) -> None:
        self.stats[event] += value
        obs.count(f"compiler.cache.{event}", value)

    def _base(self, fp: str) -> Path:
        return self.directory / fp

    def _artifacts(self) -> list[Path]:
        """Manifest paths in the directory tier, oldest-modified first."""
        if self.directory is None or not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"),
                      key=lambda p: p.stat().st_mtime)

    def _remove(self, base: Path) -> None:
        for path in (base.with_suffix(".json"), base.with_suffix(".npz")):
            try:
                path.unlink()
            except OSError:
                pass

    # -- the cache protocol ------------------------------------------------

    def get(self, fp: str) -> Program | None:
        """Cached lowered schedule for a fingerprint, or None (a miss)."""
        program = self._memory.get(fp)
        if program is not None:
            self._memory.move_to_end(fp)
            self._count("hit")
            obs.count("compiler.cache.hit.memory")
            return program
        if self.directory is not None:
            base = self._base(fp)
            if base.with_suffix(".json").exists():
                try:
                    with obs.span("compiler.cache.load", "compiler"):
                        program = load_artifact(base, expect_fingerprint=fp)
                except Exception:
                    # Corrupt / stale / truncated: degrade to a miss.
                    self._count("invalid")
                    self._remove(base)
                else:
                    self._insert_memory(fp, program)
                    self._count("hit")
                    obs.count("compiler.cache.hit.disk")
                    return program
        self._count("miss")
        return None

    def put(self, fp: str, program: Program,
            cfg: ChipConfig | None = None,
            flags: dict | None = None) -> None:
        """Store a lowered schedule under its fingerprint (both tiers).

        ``cfg``/``flags`` are recorded in the on-disk manifest for
        humans and AOT tooling; they do not affect the key (the
        fingerprint already binds them).  Disk failures (read-only or
        full filesystem) are swallowed: caching is an optimization and
        must never take the compile path down.
        """
        snapshot = Program(name=program.name, degree=program.degree,
                           max_level=program.max_level,
                           description=program.description)
        snapshot.ops = list(program.ops)
        self._insert_memory(fp, snapshot)
        if self.directory is not None:
            try:
                with obs.span("compiler.cache.store", "compiler"):
                    save_artifact(self._base(fp), snapshot, fp,
                                  cfg or ChipConfig(), flags or {})
                self._trim_disk(keep=fp)
            except OSError:
                obs.count("compiler.cache.store_error")
                return
        self._count("store")

    def clear(self) -> None:
        """Drop both tiers (directory artifacts included)."""
        self._memory.clear()
        for manifest in self._artifacts():
            self._remove(manifest.with_suffix(""))

    # -- tier internals ----------------------------------------------------

    def _insert_memory(self, fp: str, program: Program) -> None:
        if self.memory_entries < 1:
            return
        self._memory[fp] = program
        self._memory.move_to_end(fp)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._count("evict")

    def _trim_disk(self, keep: str) -> None:
        """Evict oldest artifacts until the directory fits the budget;
        the just-written artifact survives even if it alone exceeds it
        (a too-small budget degrades capacity, not correctness)."""
        manifests = self._artifacts()
        total = 0
        sizes: list[tuple[Path, int]] = []
        for manifest in manifests:
            pair = manifest.stat().st_size
            npz = manifest.with_suffix(".npz")
            if npz.exists():
                pair += npz.stat().st_size
            sizes.append((manifest, pair))
            total += pair
        for manifest, pair in sizes:
            if total <= self.disk_bytes:
                break
            if manifest.stem == keep:
                continue
            self._remove(manifest.with_suffix(""))
            self._count("evict")
            total -= pair


_DEFAULT_CACHE: CompileCache | None = None


def default_cache() -> CompileCache:
    """The process-wide cache over :func:`default_cache_dir` (created on
    first use; ``simulate(..., cache=True)`` resolves to it)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = CompileCache(default_cache_dir())
    return _DEFAULT_CACHE


def resolve_cache(cache) -> CompileCache | None:
    """Map the public ``cache=`` knob onto a :class:`CompileCache`:
    None/False -> disabled, True -> :func:`default_cache`, a path ->
    a cache over that directory, a CompileCache -> itself."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, CompileCache):
        return cache
    if isinstance(cache, (str, Path)):
        return CompileCache(cache)
    raise ArtifactError("cache must be None/bool/path/CompileCache",
                        got=type(cache).__name__)


# -- the compile entry point -------------------------------------------------

def compile_program(program: Program, cfg: ChipConfig | None = None, *,
                    hoist: bool = True, reuse: bool = False,
                    pressure: bool = True, window: int = 32,
                    min_group: int = 2, pod: str = "",
                    cache=None) -> Program:
    """Lower ``program`` for ``cfg`` through the full pass pipeline,
    optionally through a compile cache.

    The pipeline is hoisting (``hoist``), hint-reuse ordering
    (``reuse``, off by default - pressure scheduling subsumes it on the
    tracked workloads), then pressure scheduling (``pressure``, with
    its ``window``); each pass keeps its own simulator/profitability
    gate, so the result is never worse than the input program.  The
    pipeline is deterministic, which is what makes a cached artifact a
    *bit-identical* substitute for recompiling.

    ``pod`` namespaces the artifact with a pod-partition descriptor
    (``PodConfig.descriptor()``, e.g. ``"4xmodel"``) when the program
    is one shard of a pod cut; single-chip callers leave it ``""``.

    ``cache`` accepts anything :func:`resolve_cache` does.  On a hit
    the cached op stream is returned under the caller's program
    metadata (name/description are display fields, excluded from the
    fingerprint); on a miss the freshly lowered program is stored under
    its fingerprint before returning.
    """
    cfg = cfg or ChipConfig()
    flags = normalize_flags({"hoist": hoist, "reuse": reuse,
                             "pressure": pressure, "window": window,
                             "min_group": min_group, "pod": pod})
    store = resolve_cache(cache)
    fp = None
    if store is not None:
        with obs.span("compiler.cache.fingerprint", "compiler"):
            fp = fingerprint(program, cfg, flags)
        hit = store.get(fp)
        if hit is not None:
            out = Program(name=program.name, degree=program.degree,
                          max_level=program.max_level,
                          description=program.description)
            out.ops = list(hit.ops)
            return out
    with obs.span("compiler.compile", "compiler"):
        lowered = program
        if flags["hoist"]:
            from repro.compiler.hoisting import hoist_rotations
            lowered = hoist_rotations(lowered, cfg, flags["min_group"])
        if flags["reuse"]:
            from repro.compiler.ordering import order_for_reuse
            lowered = order_for_reuse(lowered)
        if flags["pressure"]:
            from repro.compiler.ordering import order_for_pressure
            lowered = order_for_pressure(lowered, cfg, flags["window"])
    if store is not None:
        store.put(fp, lowered, cfg, flags)
    return lowered
