"""Operation ordering passes (Sec. 6, step 2).

The paper orders homomorphic operations with a tiling analysis (Timeloop-
style) so that large operands - keyswitch hints above all - are reused
while resident, and so the live set fits the register file.  Two
list-scheduling equivalents live here:

* :func:`order_for_reuse` - among dependency-ready ops, prefer one using
  the hint (or plaintext) that was touched most recently; otherwise fall
  back to program order.  Runs in O(ops) with per-hint ready queues.
* :func:`order_for_pressure` - a register-pressure-aware refinement:
  among ready ops, prefer the one whose scheduling *shrinks* the live
  set the most (Sethi-Ullman-style weight in words over operand
  ciphertexts / raised digits / hints / plaintexts), with hint-reuse
  chaining only as a tie-break, and a per-workload simulator gate that
  keeps the reordering only when it does not pessimize cycles or
  evictions.

Dependences are operand-producer edges, so both reorderings are always
semantics-preserving.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque

from repro.core.config import ChipConfig
from repro.core.cost import (
    ciphertext_words,
    op_cost,
    plaintext_words,
    raised_words,
)
from repro.ir import HOIST_MODUP, INPUT, OUTPUT, ROTATE_HOISTED, HomOp, Program
from repro.obs import collector as obs
from repro.reliability.errors import ScheduleError


def _reuse_key(op: HomOp) -> str | None:
    # A hoist_modup keys on its result (the raised digits), so the
    # first rotation of its group - also registered under that name
    # below - is picked immediately after it; the group's rotations
    # then chain on their hints as usual.  Keeping hint keying (not
    # raised-object keying) for rotate_hoisted matters: clustering a
    # whole group back to back would make every member's result live
    # at once and thrash the register file, while hint-chained order
    # interleaves each rotation with its consumers and the raised
    # digits stay resident by Belady (their next use is always near).
    if op.kind == HOIST_MODUP:
        return op.result
    return op.hint_id or op.plaintext_id


def order_for_reuse(program: Program) -> Program:
    """Return a new Program with a reuse-friendlier op order."""
    with obs.span("compiler.order_for_reuse", "compiler"):
        return _order_for_reuse(program)


def _order_for_reuse(program: Program) -> Program:
    ops = program.ops
    producers: dict[str, int] = {op.result: i for i, op in enumerate(ops)}

    consumers: dict[int, list[int]] = defaultdict(list)
    indegree = [0] * len(ops)
    for i, op in enumerate(ops):
        for operand in op.operands:
            j = producers.get(operand)
            if j is not None and j != i:
                consumers[j].append(i)
                indegree[i] += 1

    reuse_key = _reuse_key

    ready_heap: list[int] = []           # program order fallback
    ready_by_key: dict[str, deque[int]] = defaultdict(deque)
    done = [False] * len(ops)

    def push(i: int) -> None:
        heapq.heappush(ready_heap, i)
        key = reuse_key(ops[i])
        if key is not None:
            ready_by_key[key].append(i)
        # Secondary registration: a hoisted rotation is also reachable
        # through its raised-digit operand, so a freshly scheduled
        # hoist_modup (whose key is that object) hands off to its group.
        if ops[i].kind == ROTATE_HOISTED:
            ready_by_key[ops[i].operands[0]].append(i)

    for i, d in enumerate(indegree):
        if d == 0:
            push(i)

    scheduled: list[HomOp] = []
    last_key: str | None = None
    while len(scheduled) < len(ops):
        i = None
        # Prefer a ready op reusing the most recent hint/plaintext.
        if last_key is not None:
            queue = ready_by_key.get(last_key)
            while queue:
                candidate = queue.popleft()
                if not done[candidate]:
                    i = candidate
                    # A schedule decision: this op was moved up so a
                    # resident hint/plaintext gets reused.
                    obs.count("compiler.reorder.reuse_picks")
                    break
        if i is None:
            while ready_heap:
                candidate = heapq.heappop(ready_heap)
                if not done[candidate]:
                    i = candidate
                    obs.count("compiler.reorder.program_order_picks")
                    break
        if i is None:
            raise ScheduleError("dependency cycle in program (builder bug)")
        op = ops[i]
        done[i] = True
        scheduled.append(op)
        last_key = reuse_key(op) or last_key
        for j in consumers[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                push(j)

    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    out.ops = scheduled
    return out


def order_for_pressure(program: Program,
                       cfg: ChipConfig | None = None,
                       window: int = 32) -> Program:
    """Register-pressure-aware list scheduling, gated by the simulator.

    Follows program (dataflow) order, but pulls a dependency-ready
    *killer* forward: an op within ``window`` positions of the oldest
    ready op whose scheduling *shrinks* the live set (Sethi-Ullman-style
    weight in words - the result it allocates minus the operand
    ciphertexts / raised digits / hints / plaintexts it is the last
    reader of).  Last-use consumers therefore run as soon as their
    inputs exist and values die young, which is what shrinks the Belady
    register file's victim count; ties prefer an op reusing the
    last-touched hint (the :func:`order_for_reuse` chain rule), then the
    oldest op.  Ops that merely *grow* the live set are never pulled
    forward, and the bounded window keeps the schedule near dataflow
    order: these op streams run within a hair of register-file capacity,
    and pulling an op far forward makes its result live across the
    entire gap - a reliable way to turn clean evictions into dirty
    writebacks.

    Like the hoisting pass, the result is gated per workload against the
    cycle-level simulator on ``cfg`` (default: the CraterLake
    configuration): the reordering is kept only if it pessimizes neither
    critical-path cycles nor ``interm_store`` writeback traffic,
    otherwise the original program is returned unchanged.  The gate
    simulations run under :func:`repro.obs.collector.paused` so they
    never leak op events or counters into a live trace.
    """
    from repro.compiler.hoisting import _reference_cfg
    from repro.core.simulator import simulate

    cfg = cfg or _reference_cfg()
    with obs.span("compiler.order_for_pressure", "compiler"):
        candidate = _order_for_pressure(program, cfg, window)
        with obs.paused():
            # cache=False: the gate must measure *these* schedules
            # verbatim - routing through the compile cache here would
            # recurse (compile -> gate -> compile) and defeat the gate.
            base = simulate(program, cfg, cache=False)
            cand = simulate(candidate, cfg, cache=False)
    stores = "interm_store"
    if (cand.cycles <= base.cycles
            and cand.traffic_words[stores] <= base.traffic_words[stores]):
        obs.count("compiler.reorder.gate_accepted")
        obs.count("compiler.reorder.gate_cycles_saved",
                  base.cycles - cand.cycles)
        obs.count("compiler.reorder.gate_evictions_saved",
                  base.rf_evictions - cand.rf_evictions)
        return candidate
    obs.count("compiler.reorder.gate_rejected")
    return program


def _order_for_pressure(program: Program, cfg: ChipConfig,
                        window: int = 32) -> Program:
    ops = program.ops
    n = program.degree
    n_ops = len(ops)
    producers: dict[str, int] = {op.result: i for i, op in enumerate(ops)}

    consumers: dict[int, list[int]] = defaultdict(list)
    readers: dict[str, list[int]] = defaultdict(list)
    indegree = [0] * n_ops
    for i, op in enumerate(ops):
        for operand in set(op.operands):
            readers[operand].append(i)
            j = producers.get(operand)
            if j is not None and j != i:
                consumers[j].append(i)
                indegree[i] += 1

    # Live-set weights, in register-file words (the Sethi-Ullman number's
    # currency here): what each value, hint and plaintext occupies while
    # resident.  Mirrors the simulator's sizing exactly.
    def _result_words(i: int) -> float:
        op = ops[i]
        if op.kind == OUTPUT:
            return 0.0
        if op.kind == HOIST_MODUP:
            return raised_words(n, op.level, op.digits)
        return ciphertext_words(n, op.level)

    obj_words = {op.result: _result_words(i) for i, op in enumerate(ops)
                 if op.kind != OUTPUT}
    uses_left = {obj: len(r) for obj, r in readers.items()}

    hint_words_of: dict[str, float] = {}
    hint_left: dict[str, int] = defaultdict(int)
    pt_words_of: dict[str, float] = {}
    pt_left: dict[str, int] = defaultdict(int)
    for i, op in enumerate(ops):
        if op.kind in (INPUT, OUTPUT):
            continue
        if op.hint_id is not None:
            hw = op_cost(cfg, op, n).hint_words
            if hw:
                hint_words_of[op.hint_id] = max(
                    hint_words_of.get(op.hint_id, 0.0), hw)
                hint_left[op.hint_id] += 1
        if op.plaintext_id is not None:
            pw = (2 * n if op.compact_pt
                  else plaintext_words(n, op.level)) * op.repeat
            pt_words_of[op.plaintext_id] = max(
                pt_words_of.get(op.plaintext_id, 0.0), pw)
            pt_left[op.plaintext_id] += 1

    live_hints: set[str] = set()
    live_pts: set[str] = set()

    def growth(i: int) -> float:
        """Net live-set change (words) if op i is scheduled now: result
        allocation minus everything this op is the last reader of."""
        op = ops[i]
        g = _result_words(i)
        for obj in set(op.operands):
            if uses_left[obj] == 1:
                g -= obj_words.get(obj, 0.0)
        if op.hint_id in hint_words_of:
            if op.hint_id not in live_hints:
                g += hint_words_of[op.hint_id]
            if hint_left[op.hint_id] == 1:
                g -= hint_words_of[op.hint_id]
        if op.plaintext_id in pt_words_of:
            if op.plaintext_id not in live_pts:
                g += pt_words_of[op.plaintext_id]
            if pt_left[op.plaintext_id] == 1:
                g -= pt_words_of[op.plaintext_id]
        return g

    ready_heap: list[int] = []           # ready ops by program index
    ready = [False] * n_ops
    done = [False] * n_ops

    def register(i: int) -> None:
        ready[i] = True
        heapq.heappush(ready_heap, i)

    for i, d in enumerate(indegree):
        if d == 0:
            register(i)

    scheduled: list[HomOp] = []
    last_key: str | None = None
    while len(scheduled) < n_ops:
        while ready_heap and done[ready_heap[0]]:
            heapq.heappop(ready_heap)
        if not ready_heap:
            raise ScheduleError("dependency cycle in program (builder bug)")
        oldest = ready_heap[0]
        # Candidate entries sort by (live-set growth, chain rank, program
        # index): least growth wins, hint-reuse chaining breaks ties,
        # program order breaks the rest.  Only strict killers (growth<0)
        # compete with the oldest ready op - pressure may pull work
        # *forward to free registers*, never merely reshuffle it.
        def entry(c: int) -> tuple[float, int, int]:
            key = _reuse_key(ops[c])
            chained = 0 if (key is not None and key == last_key) else 1
            return (growth(c), chained, c)

        best = entry(oldest)
        for c in range(oldest + 1, min(oldest + window + 1, n_ops)):
            if ready[c] and not done[c]:
                e = entry(c)
                if e[0] < 0 and e < best:
                    best = e
        i = best[2]
        if i != oldest:
            obs.count("compiler.reorder.killer_picks")
            if best[1] == 0:
                obs.count("compiler.reorder.chain_tiebreaks")
        else:
            obs.count("compiler.reorder.program_order_picks")
        op = ops[i]
        done[i] = True
        scheduled.append(op)
        last_key = _reuse_key(op) or last_key

        # Liveness bookkeeping for future growth() calls.
        for obj in set(op.operands):
            uses_left[obj] -= 1
        if op.hint_id in hint_words_of:
            hint_left[op.hint_id] -= 1
            if hint_left[op.hint_id] == 0:
                live_hints.discard(op.hint_id)
            else:
                live_hints.add(op.hint_id)
        if op.plaintext_id in pt_words_of:
            pt_left[op.plaintext_id] -= 1
            if pt_left[op.plaintext_id] == 0:
                live_pts.discard(op.plaintext_id)
            else:
                live_pts.add(op.plaintext_id)
        for j in consumers[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                register(j)

    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    out.ops = scheduled
    return out
