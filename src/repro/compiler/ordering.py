"""Reuse-maximizing operation ordering (Sec. 6, step 2).

The paper orders homomorphic operations with a tiling analysis (Timeloop-
style) so that large operands - keyswitch hints above all - are reused
while resident.  This pass implements the list-scheduling equivalent:
among dependency-ready ops, prefer one using the hint (or plaintext) that
was touched most recently; otherwise fall back to program order.
Dependences are operand-producer edges, so the reordering is always
semantics-preserving.  Runs in O(ops) with per-hint ready queues.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque

from repro.ir import HOIST_MODUP, ROTATE_HOISTED, HomOp, Program
from repro.obs import collector as obs
from repro.reliability.errors import ScheduleError


def order_for_reuse(program: Program) -> Program:
    """Return a new Program with a reuse-friendlier op order."""
    with obs.span("compiler.order_for_reuse", "compiler"):
        return _order_for_reuse(program)


def _order_for_reuse(program: Program) -> Program:
    ops = program.ops
    producers: dict[str, int] = {op.result: i for i, op in enumerate(ops)}

    consumers: dict[int, list[int]] = defaultdict(list)
    indegree = [0] * len(ops)
    for i, op in enumerate(ops):
        for operand in op.operands:
            j = producers.get(operand)
            if j is not None and j != i:
                consumers[j].append(i)
                indegree[i] += 1

    def reuse_key(op: HomOp) -> str | None:
        # A hoist_modup keys on its result (the raised digits), so the
        # first rotation of its group - also registered under that name
        # below - is picked immediately after it; the group's rotations
        # then chain on their hints as usual.  Keeping hint keying (not
        # raised-object keying) for rotate_hoisted matters: clustering a
        # whole group back to back would make every member's result live
        # at once and thrash the register file, while hint-chained order
        # interleaves each rotation with its consumers and the raised
        # digits stay resident by Belady (their next use is always near).
        if op.kind == HOIST_MODUP:
            return op.result
        return op.hint_id or op.plaintext_id

    ready_heap: list[int] = []           # program order fallback
    ready_by_key: dict[str, deque[int]] = defaultdict(deque)
    done = [False] * len(ops)

    def push(i: int) -> None:
        heapq.heappush(ready_heap, i)
        key = reuse_key(ops[i])
        if key is not None:
            ready_by_key[key].append(i)
        # Secondary registration: a hoisted rotation is also reachable
        # through its raised-digit operand, so a freshly scheduled
        # hoist_modup (whose key is that object) hands off to its group.
        if ops[i].kind == ROTATE_HOISTED:
            ready_by_key[ops[i].operands[0]].append(i)

    for i, d in enumerate(indegree):
        if d == 0:
            push(i)

    scheduled: list[HomOp] = []
    last_key: str | None = None
    while len(scheduled) < len(ops):
        i = None
        # Prefer a ready op reusing the most recent hint/plaintext.
        if last_key is not None:
            queue = ready_by_key.get(last_key)
            while queue:
                candidate = queue.popleft()
                if not done[candidate]:
                    i = candidate
                    # A schedule decision: this op was moved up so a
                    # resident hint/plaintext gets reused.
                    obs.count("compiler.reorder.reuse_picks")
                    break
        if i is None:
            while ready_heap:
                candidate = heapq.heappop(ready_heap)
                if not done[candidate]:
                    i = candidate
                    obs.count("compiler.reorder.program_order_picks")
                    break
        if i is None:
            raise ScheduleError("dependency cycle in program (builder bug)")
        op = ops[i]
        done[i] = True
        scheduled.append(op)
        last_key = reuse_key(op) or last_key
        for j in consumers[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                push(j)

    out = Program(name=program.name, degree=program.degree,
                  max_level=program.max_level,
                  description=program.description)
    out.ops = scheduled
    return out
