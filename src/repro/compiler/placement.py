"""Bootstrap placement: deciding where to refresh (Sec. 2.3).

Optimal bootstrap placement in a general dataflow graph is NP-hard [9];
like production compilers, we use the greedy level-tracking policy: walk
the (topologically ordered) op sequence tracking each value's remaining
budget and insert a bootstrap exactly when the next operation would not
fit.  For chain-structured programs - which all of the paper's benchmarks
are, between their wide layers - greedy is optimal: any earlier refresh
wastes usable levels, any later one is infeasible.

`plan_refreshes` works on abstract depth requirements so workloads and
tests can reason about placement without building full programs;
`amortized_cost_per_op` exposes the Fig. 3 objective for a placement.

Placement is an *emission-time* decision: workloads consult it while
the DSL builds the op stream, so its outcome is fully captured in the
emitted IR.  The compile cache's fingerprint therefore covers it for
free - no separate placement flag exists or is needed (docs/COMPILER.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import collector as obs
from repro.reliability.errors import ScheduleError


@dataclass(frozen=True)
class Placement:
    """Where refreshes land in a sequence of depth-consuming steps."""

    refresh_before: tuple[int, ...]  # step indices preceded by a bootstrap
    usable_levels: int

    @property
    def count(self) -> int:
        return len(self.refresh_before)


def plan_refreshes(step_depths, usable_levels: int,
                   start_budget: int | None = None) -> Placement:
    """Greedy placement for a serial program.

    ``step_depths[i]`` is the multiplicative depth step i consumes;
    ``usable_levels`` is what one bootstrap restores (top level minus the
    bootstrap's own consumption).  Raises if any single step exceeds what a
    refresh can provide - the signal to grow the chain or split the step.
    """
    if usable_levels < 1:
        raise ScheduleError("a refresh must restore at least one level")
    budget = usable_levels if start_budget is None else start_budget
    refreshes = []
    for i, depth in enumerate(step_depths):
        if depth > usable_levels:
            raise ScheduleError(
                f"step {i} needs depth {depth} > usable {usable_levels}; "
                "increase L_max or decompose the step"
            )
        if depth > budget:
            refreshes.append(i)
            budget = usable_levels
        budget -= depth
    obs.count("compiler.bootstraps_placed", len(refreshes))
    return Placement(tuple(refreshes), usable_levels)


def greedy_is_lazy(placement: Placement, step_depths,
                   start_budget: int | None = None) -> bool:
    """Check the optimality invariant for serial chains: before every
    refresh the remaining budget is too small for the next step (no
    refresh happens while work would still fit)."""
    budget = (placement.usable_levels if start_budget is None
              else start_budget)
    refreshes = set(placement.refresh_before)
    for i, depth in enumerate(step_depths):
        if i in refreshes:
            if budget >= depth:
                return False  # refreshed although the step still fit
            budget = placement.usable_levels
        budget -= depth
    return True


def amortized_cost_per_op(placement: Placement, step_costs,
                          bootstrap_cost: float) -> float:
    """Average cost per step including refreshes: Fig. 3's y-axis."""
    steps = len(step_costs)
    if steps == 0:
        raise ScheduleError("no steps")
    total = sum(step_costs) + placement.count * bootstrap_cost
    return total / steps
