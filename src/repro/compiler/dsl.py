"""Python-embedded DSL for FHE programs (Sec. 6, step 1).

Mirrors the front end of the paper's compiler: programs are built by
calling homomorphic operations on :class:`Value` handles; the builder
tracks levels, assigns keyswitching digit counts from a per-level schedule,
inserts rescales, and emits the flat :class:`repro.ir.Program` stream the
machine models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import (
    ADD,
    CONJUGATE,
    INPUT,
    MULT,
    OUTPUT,
    PMULT,
    RESCALE,
    ROTATE,
    HomOp,
    Program,
)
from repro.reliability.errors import NoiseBudgetExhaustedError, ScheduleError


@dataclass(frozen=True)
class Value:
    """A handle to a ciphertext value in the dataflow graph."""

    name: str
    level: int

    def __post_init__(self):
        if self.level < 1:
            raise ScheduleError("values must carry at least one level")


class FheBuilder:
    """Builds a Program; one instance per workload.

    ``digit_schedule`` maps level -> keyswitching digit count t; levels not
    present default to 1 digit.  ``tag`` (settable via :meth:`phase`)
    labels emitted ops for per-phase reporting.
    """

    def __init__(self, name: str, degree: int = 65536, max_level: int = 60,
                 digit_schedule: dict[int, int] | None = None,
                 description: str = ""):
        self.program = Program(name=name, degree=degree, max_level=max_level,
                               description=description)
        self.digit_schedule = digit_schedule or {}
        self._counter = 0
        self._tag = ""

    # -- plumbing -----------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}%{self._counter}"

    def _digits(self, level: int) -> int:
        return self.digit_schedule.get(level, 1)

    def _emit(self, kind: str, level: int, operands=(), hint_id=None,
              plaintext_id=None, result_prefix: str = "v",
              repeat: int = 1, compact_pt: bool = False,
              steps: int | None = None) -> Value:
        result = self._fresh(result_prefix)
        self.program.append(HomOp(
            kind=kind, level=level, result=result,
            operands=tuple(o.name for o in operands),
            hint_id=hint_id, plaintext_id=plaintext_id,
            digits=self._digits(level), tag=self._tag, repeat=repeat,
            compact_pt=compact_pt, steps=steps,
        ))
        return Value(result, level)

    def phase(self, tag: str) -> "FheBuilder":
        """Label subsequent ops (e.g. 'bootstrap', 'conv2'); returns self."""
        self._tag = tag
        return self

    # -- operations -----------------------------------------------------------

    def input(self, name: str, level: int) -> Value:
        value = Value(self._fresh(f"in_{name}"), level)
        self.program.append(HomOp(
            kind=INPUT, level=level, result=value.name, tag=self._tag,
        ))
        return value

    def output(self, value: Value) -> None:
        self.program.append(HomOp(
            kind=OUTPUT, level=value.level, result=self._fresh("out"),
            operands=(value.name,), tag=self._tag,
        ))

    def mult(self, a: Value, b: Value, rescale: bool = True,
             repeat: int = 1) -> Value:
        if a.level != b.level:
            raise ScheduleError(
                f"mult operands at different levels ({a.level} vs {b.level});"
                " mod_drop first"
            )
        out = self._emit(MULT, a.level, (a, b), hint_id="relin", repeat=repeat)
        return self.rescale(out) if rescale else out

    def square(self, a: Value, rescale: bool = True) -> Value:
        return self.mult(a, a, rescale=rescale)

    def pmult(self, a: Value, plaintext: str, rescale: bool = True,
              repeat: int = 1, compact: bool = False) -> Value:
        """Plaintext multiply; ``repeat`` batches that many diagonal
        products (distinct single-use plaintexts) into one stream op;
        ``compact`` marks small-coefficient plaintexts stored as ~2
        residues and extended on chip."""
        out = self._emit(PMULT, a.level, (a,), plaintext_id=plaintext,
                         repeat=repeat, compact_pt=compact)
        return self.rescale(out) if rescale else out

    def add(self, a: Value, b: Value, repeat: int = 1) -> Value:
        if a.level != b.level:
            # Harmless level alignment (mod-drop is free in the machine
            # model); emit at the lower level.
            level = min(a.level, b.level)
            a, b = Value(a.name, level), Value(b.name, level)
        return self._emit(ADD, a.level, (a, b), repeat=repeat)

    def rotate(self, a: Value, steps: int, hint_id: str | None = None,
               repeat: int = 1) -> Value:
        """Rotate; ``repeat`` batches independent rotations sharing the
        same hint (e.g. across the blocks of a blocked matrix product).
        The rotation amount is carried on the op (``HomOp.steps``) - the
        hint id is a reuse handle only and may be shared across amounts."""
        hint = hint_id if hint_id is not None else f"rot{steps}"
        return self._emit(ROTATE, a.level, (a,), hint_id=hint, repeat=repeat,
                          steps=steps)

    def conjugate(self, a: Value, hint_id: str = "conj") -> Value:
        return self._emit(CONJUGATE, a.level, (a,), hint_id=hint_id)

    def rescale(self, a: Value) -> Value:
        if a.level < 2:
            raise NoiseBudgetExhaustedError("cannot rescale below level 1")
        out = self._emit(RESCALE, a.level, (a,))
        return Value(out.name, a.level - 1)

    def mod_drop(self, a: Value, level: int) -> Value:
        """Level alignment; free in the machine model (rows are ignored)."""
        if level > a.level:
            raise ScheduleError("cannot raise a value's level")
        return Value(a.name, level)

    def raise_level(self, a: Value, level: int, tag: str = "") -> Value:
        """Model a ModRaise (bootstrapping step 1): bookkeeping only; the
        compute cost is carried by the ops that follow."""
        if level < a.level:
            raise ScheduleError("raise_level must increase the level")
        return Value(a.name, level)

    def build(self) -> Program:
        return self.program
