"""Keyswitching digit schedules for security targets (Sec. 3.1, Sec. 9.4).

At a fixed ring degree N, a t-digit keyswitch at level L implies
logQP = (L + ceil(L/t)) * 28 bits; the schedule picks the smallest t that
keeps (N, logQP) at the requested security.  The paper's published
schedules fall out of this rule:

* 80-bit, N=64K:  1-digit keyswitching up to L ~ 52, 2-digit above.
* 128-bit, N=64K: 1-digit for L < 32, 2-digit for 32 <= L < 43,
                  3-digit for L >= 43 (and bootstrap twice as often).
* 200-bit:        requires N=128K, with higher-digit variants.

Like bootstrap placement, the digit schedule is an emission-time
decision: the chosen t is stamped onto each emitted ``HomOp.digits``,
so the compile cache's fingerprint covers it through the IR itself
(docs/COMPILER.md).
"""

from __future__ import annotations

from repro.fhe.security import SecurityEstimator
from repro.obs import collector as obs


def digit_schedule(degree: int, security: int, max_level: int,
                   modulus_bits: int = 28, max_digits: int = 4) -> dict[int, int]:
    """Level -> digit count map for a workload's full chain."""
    est = SecurityEstimator(degree, security, modulus_bits, max_digits)
    schedule = est.digit_schedule(max_level)
    if obs.is_enabled():
        # Schedule decisions: how many levels got multi-digit keyswitching.
        for t in schedule.values():
            obs.count(f"compiler.digit_choice.t{t}")
    return schedule


def max_usable_level(degree: int, security: int,
                     modulus_bits: int = 28, max_digits: int = 4) -> int:
    """Largest level that stays secure; bounds bootstrapping's top level."""
    est = SecurityEstimator(degree, security, modulus_bits, max_digits)
    return est.max_level()
