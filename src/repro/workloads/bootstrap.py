"""Bootstrapping workloads and the embeddable bootstrap op sequence.

The op structure follows the state-of-the-art fully packed algorithm the
paper uses ([11, 53], Sec. 6 "Optimized bootstrapping"): CoeffToSlot and
SlotToCoeff are decomposed into FFT-like sparse stages (the paper's 4x4
tiling) so each stage's rotations and diagonal plaintexts fit on chip;
EvalMod evaluates a high-degree sine/arcsine approximation with repeated
double-angle squarings on both the real and imaginary coefficient lanes.

The stage/rotation/multiply counts below are calibrated against Lattigo's
fully packed bootstrapping at N=64K (the paper's software baseline) and
against the paper's own aggregate measurements for the P-Bootstrap row:
~3.9 ms on CraterLake with ~2 GB of off-chip traffic, KSH-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.digits import digit_schedule, max_usable_level
from repro.compiler.dsl import FheBuilder, Value
from repro.ir import Program
from repro.reliability.errors import ParameterError, ScheduleError


@dataclass(frozen=True)
class BootstrapPlan:
    """Structural parameters of one bootstrap at a security point.

    ``top_level`` is the level right after ModRaise; the stages then spend
    levels downward.  ``usable_levels`` is what remains for application
    compute (the blue region of Fig. 2): top - consumed.
    """

    top_level: int = 57
    input_level: int = 3
    cts_stages: int = 4          # CoeffToSlot FFT-like factors
    stc_stages: int = 3          # SlotToCoeff factors
    baby_rotations: int = 4      # hints shared across stages of a transform
    giant_rotations_per_stage: int = 8   # stage-pair-specific hints
    tile_partitions: int = 5     # the on-chip tiling of Sec. 6: each
                                 # stage runs per-tile, reusing its hints
    diagonals_per_rotation: int = 2  # plaintext diagonals per rotated copy
    evalmod_mults: int = 35      # sine-poly PS multiplies per lane
    evalmod_depth: int = 9       # levels the sine evaluation spends
    evalmod_squarings: int = 8   # double-angle iterations
    scaling_corrections: int = 11  # extra pmult+rescale levels [11]
    sparse_slots: bool = False   # unpacked: transforms collapse
    packed_fraction: float = 1.0  # fraction of slots in use; partial
                                  # packing shrinks the transforms (LSTM)

    @property
    def rotations_per_stage(self) -> int:
        return self.baby_rotations + self.giant_rotations_per_stage

    @property
    def levels_consumed(self) -> int:
        return (self.cts_stages + self.evalmod_depth
                + self.evalmod_squarings + self.scaling_corrections
                + self.stc_stages)

    @property
    def usable_levels(self) -> int:
        usable = self.top_level - self.levels_consumed
        if usable < 1:
            raise ScheduleError("bootstrap plan consumes the whole chain")
        return usable

    def keyswitch_count(self) -> int:
        transforms = ((self.cts_stages + self.stc_stages)
                      * self.rotations_per_stage * self.tile_partitions)
        evalmod = 2 * (self.evalmod_mults + self.evalmod_squarings)
        conjugations = 4
        return transforms + evalmod + conjugations


def plan_for(security: int, degree: int = 65536) -> BootstrapPlan:
    """The paper's operating points (Sec. 8, Sec. 9.4).

    80-bit @ 64K refreshes to L=57; 128-bit bootstraps twice as often
    (half the usable levels, capped at L=51); 200-bit needs N=128K.
    """
    if security > 128 and degree < 131072:
        raise ParameterError("beyond-128-bit security requires N=128K (Sec. 9.4)")
    # Larger rings transform twice the slots: the tiled CoeffToSlot /
    # SlotToCoeff stages process proportionally more partitions.
    tiles = 5 * max(1, degree // 65536)
    if security <= 80:
        return BootstrapPlan(top_level=57, tile_partitions=tiles)
    if security <= 128:
        # Bootstrap twice as often: shallower chain, fewer corrections.
        top = min(51, max_usable_level(degree, security))
        return BootstrapPlan(top_level=top, scaling_corrections=8,
                             evalmod_squarings=7, tile_partitions=tiles)
    # Conservative (e.g. 200-bit) on the large ring keeps the same chain;
    # the cost shows up through higher-digit keyswitching and doubled N.
    return BootstrapPlan(
        top_level=min(57, max_usable_level(degree, security)),
        tile_partitions=tiles,
    )


def emit_bootstrap(b: FheBuilder, x: Value, plan: BootstrapPlan,
                   namespace: str = "boot") -> Value:
    """Append one full bootstrap to the program; returns the refreshed value.

    Hint naming encodes the reuse structure: baby-step hints are shared
    across all stages of a transform (and across repeated bootstraps),
    giant-step hints are per stage, and EvalMod shares the single
    relinearization hint - which is why KSH traffic, not compute, dominates
    this workload (Fig. 10a).
    """
    b.phase("bootstrap")
    level = plan.top_level
    x = b.raise_level(x, level)

    def transform(x: Value, stages: int, label: str) -> Value:
        if plan.sparse_slots:
            tiles = 1
        else:
            # Partially packed ciphertexts need proportionally fewer tiles
            # (less data to transform), never fewer than one.
            tiles = max(1, round(plan.tile_partitions * plan.packed_fraction))
        rotations = plan.rotations_per_stage
        if plan.packed_fraction < 1.0:
            # Sparse transforms: rotation count shrinks with packing.
            rotations = max(4, round(rotations * plan.packed_fraction))
        for s in range(stages):
            acc: Value | None = None
            # The tile decomposition of Sec. 6: each stage is applied
            # per on-chip tile, and - crucially - the tile loop sits
            # *inside* the rotation loop so each keyswitch hint is fetched
            # once per stage and reused across every tile.  That reuse is
            # why the decomposition pays off (and what the compiler's
            # ordering pass guarantees for less carefully written code).
            for j in range(rotations):
                if plan.sparse_slots and j >= 2:
                    break  # single-slot transforms collapse
                if j < plan.baby_rotations:
                    hint = f"{namespace}/{label}/baby{j}"
                else:
                    # FFT-factor strides repeat across stage pairs, so
                    # giant-step hints are shared between them.
                    hint = f"{namespace}/{label}/s{s % 2}g{j}"
                for tile in range(tiles):
                    r = b.rotate(x, 1 + j + s, hint_id=hint)
                    t = b.pmult(r, f"{namespace}/{label}/w{s}_{j}_{tile}",
                                rescale=False, compact=True,
                                repeat=plan.diagonals_per_rotation)
                    acc = t if acc is None else b.add(acc, t)
            assert acc is not None
            x = b.rescale(acc)
        return x

    # CoeffToSlot, then the conjugation split into two coefficient lanes.
    x = transform(x, plan.cts_stages, "cts")
    split = b.conjugate(x, hint_id=f"{namespace}/conj")
    lanes = [b.add(x, split), b.add(x, split)]

    # EvalMod on both lanes: sine polynomial (PS), double angles, and the
    # scaling corrections of [11].
    refreshed = []
    for lane in lanes:
        val = lane
        mults_left = plan.evalmod_mults
        for d in range(plan.evalmod_depth):
            per_level = max(1, round(plan.evalmod_mults / plan.evalmod_depth))
            take = min(per_level, mults_left) if d < plan.evalmod_depth - 1 \
                else mults_left
            acc = None
            for _ in range(max(1, take)):
                term = b.mult(val, val, rescale=False)
                acc = term if acc is None else b.add(acc, term)
            mults_left -= max(1, take)
            val = b.rescale(acc)
            if mults_left <= 0 and d >= plan.evalmod_depth - 1:
                break
        for _ in range(plan.evalmod_squarings):
            val = b.square(val)
        val = b.add(val, b.conjugate(val, hint_id=f"{namespace}/conj"))
        refreshed.append(val)

    merged = b.add(refreshed[0], refreshed[1])
    for _ in range(plan.scaling_corrections):
        merged = b.pmult(merged, f"{namespace}/scale_corr", compact=True)

    merged = transform(merged, plan.stc_stages, "stc")
    b.phase("")
    return merged


def packed_bootstrapping(security: int = 80, degree: int = 65536,
                         hoist: bool = False) -> Program:
    """Table 3's 'Packed Bootstrapping': refresh one fully packed N=64K
    ciphertext from L=3 exhausted to a usable budget.

    ``hoist=True`` runs the compiler's rotation-hoisting pass over the
    emitted stream (one shared ModUp per transform-stage rotation group).
    Off by default: the Table 3 comparisons are defined on the fused
    schedule; the nightly hoisted-vs-unhoisted benchmark opts in.
    """
    plan = plan_for(security, degree)
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(
        "packed_bootstrap", degree=degree, max_level=plan.top_level,
        digit_schedule=schedule,
        description="fully packed CKKS bootstrapping (Sec. 8)",
    )
    x = b.input("ct", plan.input_level)
    # The benchmark refreshes a fixed multiplicative budget (the 80-bit
    # configuration's refresh); stricter security leaves fewer usable
    # levels per refresh, so it must bootstrap more often (Sec. 9.4).
    reference_usable = BootstrapPlan(top_level=57).usable_levels
    refreshes = max(1, -(-reference_usable // plan.usable_levels))
    out = x
    for _ in range(refreshes):
        out = emit_bootstrap(b, out, plan)
        out = Value(out.name, plan.input_level)
    b.output(out)
    program = b.build()
    if hoist:
        # Deferred: the hoisting pass imports the cost model, and keeping
        # workloads importable without the compiler's passes matters for
        # layering (workloads only need the DSL).
        from repro.compiler.hoisting import hoist_rotations

        return hoist_rotations(program)
    return program


def unpacked_bootstrapping(security: int = 80, degree: int = 65536) -> Program:
    """F1's bootstrapping benchmark: a single-slot ciphertext, L <= 23.

    Sparse packing collapses CoeffToSlot/SlotToCoeff to a handful of
    rotations and needs far fewer levels, but serves only one element -
    ~1000x worse per slot (Sec. 2.3)."""
    plan = BootstrapPlan(
        top_level=23, input_level=3, cts_stages=2, stc_stages=2,
        baby_rotations=2, giant_rotations_per_stage=2,
        evalmod_mults=14, evalmod_depth=6, evalmod_squarings=5,
        scaling_corrections=4, sparse_slots=True,
    )
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(
        "unpacked_bootstrap", degree=degree, max_level=plan.top_level,
        digit_schedule=schedule,
        description="single-slot bootstrapping (F1's benchmark)",
    )
    x = b.input("ct", plan.input_level)
    out = emit_bootstrap(b, x, plan)
    b.output(out)
    return b.build()
