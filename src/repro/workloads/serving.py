"""Multi-tenant served workloads: masked inner products over packed slots.

The serving front-end (`repro.serve`) packs N tenant queries into one
CKKS ciphertext (each query owns a ``block`` of consecutive slots) and
runs one of two workload kinds over the shared vector:

* ``logreg`` - a logistic-regression-style scoring pass: slot-wise
  plaintext multiply by the model weights, then a rotate-and-accumulate
  reduction (strides block/2, block/4, ..., 1).  After the reduction,
  slot ``i*block`` holds exactly the sum over tenant i's own block -
  the cyclic windows that *other* slots accumulate do cross tenant
  boundaries, but the designated readout slots never do, which is what
  makes per-tenant demultiplexing sound.
* ``lstm`` - a deeper two-stage pipeline standing in for recurrent
  scoring: reduce, then a **per-tenant mask** (a plaintext that keeps
  only the block-start slots, zeroing the cross-tenant mixture the
  first reduction left elsewhere), a second weight multiply, and a
  second reduction.  The mask is load-bearing: without it the second
  reduction would sum stage-one values whose windows leak neighbouring
  tenants' data into the readout.

Both kinds exist twice, deliberately in lock-step:

* :func:`serving_program` emits the IR stream (tagged phases:
  pack/score/reduce/mask/score2/reduce2/emit) that the chip simulator
  prices - parameterized by ``blocks`` (occupancy) because the weight
  plaintexts stream per occupied block, so fuller batches genuinely
  cost more HBM traffic;
* :func:`build_steps` returns the *functional* CKKS step list a
  :class:`~repro.reliability.recovery.RecoveringExecutor` runs, so
  injected faults hit real limbs/NTTs/hints and recovery replays real
  homomorphic state.

:func:`slot_reference` is the numpy mirror of the slot arithmetic, used
by tests to bound the decrypted answers (approximately - CKKS is
approximate about values) while replay determinism is checked bit-exact.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.dsl import FheBuilder
from repro.ir import ADD, PMULT, ROTATE, HomOp, Program
from repro.reliability.errors import ParameterError

SERVE_KINDS = ("logreg", "lstm")

#: Levels each kind consumes (pmult rescales): logreg 1, lstm 3.
KIND_DEPTH = {"logreg": 1, "lstm": 3}


def rotation_strides(block: int) -> list[int]:
    """Reduction strides block/2, block/4, ..., 1."""
    if block < 2 or block & (block - 1):
        raise ParameterError("block must be a power of two >= 2",
                             block=block)
    strides = []
    s = block // 2
    while s >= 1:
        strides.append(s)
        s //= 2
    return strides


def check_kind(kind: str) -> str:
    if kind not in SERVE_KINDS:
        raise ParameterError("unknown serve workload kind", kind=kind,
                             known=SERVE_KINDS)
    return kind


# -- model parameters ---------------------------------------------------------


def serving_weights(seed: int, slots: int, block: int) -> dict[str, np.ndarray]:
    """Deterministic model weights shared by every tenant.

    ``w1``/``w2`` are the two stages' slot-wise weights; ``mask`` keeps
    only block-start slots (the per-tenant isolation mask between lstm
    stages).  Everything flows from ``seed``.
    """
    rng = np.random.default_rng(seed)
    w1 = 0.5 * rng.standard_normal(slots)
    w2 = 0.5 * rng.standard_normal(slots)
    mask = np.zeros(slots)
    mask[::block] = 1.0
    return {"w1": w1, "w2": w2, "mask": mask}


def slot_reference(kind: str, vector: np.ndarray, weights: dict,
                   block: int) -> np.ndarray:
    """Numpy mirror of the packed slot arithmetic (full slot vector)."""
    check_kind(kind)
    v = vector * weights["w1"]
    for s in rotation_strides(block):
        v = v + np.roll(v, -s)
    if kind == "lstm":
        v = v * weights["mask"]
        v = v * weights["w2"]
        for s in rotation_strides(block):
            v = v + np.roll(v, -s)
    return v


def readout_slot(block_index: int, block: int) -> int:
    return block_index * block


# -- the IR program the chip simulator prices ---------------------------------


def serving_program(kind: str, degree: int, max_level: int, block: int,
                    blocks: int) -> Program:
    """Emit the serving batch as a tagged IR stream.

    ``blocks`` is the batch occupancy: the weight plaintexts carry
    ``repeat=blocks`` because each occupied block's weight diagonal
    streams from HBM, so a fuller ciphertext costs proportionally more
    memory traffic (this is what makes the degradation ladder's
    "smaller batches are cheaper per dispatch" trade real in-model).
    """
    check_kind(kind)
    if blocks < 1:
        raise ParameterError("batch must occupy at least one block",
                             blocks=blocks)
    b = FheBuilder(
        f"serve_{kind}_b{blocks}", degree=degree, max_level=max_level,
        description=f"multi-tenant {kind} batch, {blocks} packed queries",
    )
    b.phase("pack")
    x = b.input("batch", max_level)
    b.phase("score")
    x = b.pmult(x, "srv/w1", repeat=blocks)
    b.phase("reduce")
    for s in rotation_strides(block):
        x = b.add(x, b.rotate(x, s, hint_id=f"srv/rot{s}"))
    if kind == "lstm":
        b.phase("mask")
        x = b.pmult(x, "srv/mask")
        b.phase("score2")
        x = b.pmult(x, "srv/w2", repeat=blocks)
        b.phase("reduce2")
        for s in rotation_strides(block):
            x = b.add(x, b.rotate(x, s, hint_id=f"srv/rot{s}"))
    b.phase("emit")
    b.output(x)
    return b.build()


# -- the functional step list the RecoveringExecutor runs ---------------------


def build_steps(ctx, hints: dict[int, object], weights: dict,
                kind: str, block: int):
    """(name, fn) steps over state ``{"x": working, "base": resident}``.

    ``base`` (the encrypted packed input) is never consumed after step
    zero - it is the quiet register-file resident the ``rf`` fault site
    corrupts, detected by the keyswitch boundary sweep.  All steps are
    pure homomorphic ops (no randomness), so executor replay is
    bit-deterministic.
    """
    check_kind(kind)
    strides = rotation_strides(block)

    def pmult_step(values):
        def fn(ctx_, state):
            state["x"] = ctx_.pmult(state["x"], values)
        return fn

    def reduce_step(s):
        def fn(ctx_, state):
            state["x"] = ctx_.add(state["x"],
                                  ctx_.rotate(state["x"], s, hints[s]))
        return fn

    steps = [("score/w1", pmult_step(weights["w1"]))]
    steps += [(f"reduce/rot{s}", reduce_step(s)) for s in strides]
    if kind == "lstm":
        steps.append(("mask", pmult_step(weights["mask"])))
        steps.append(("score2/w2", pmult_step(weights["w2"])))
        steps += [(f"reduce2/rot{s}", reduce_step(s)) for s in strides]
    return steps


def step_cycle_costs(steps, degree: int, start_level: int, cfg) -> list[float]:
    """Price each functional step with the core cycle model, so executor
    replay overhead lands in the same units as the compiled schedule."""
    from repro.core.cost import op_cost

    costs = []
    level = start_level
    for name, _ in steps:
        if name.startswith(("score", "mask")):
            op = HomOp(kind=PMULT, level=level, result="t",
                       operands=("a",), plaintext_id="w")
            cycles = op_cost(cfg, op, degree).compute_cycles(cfg)
            level = max(1, level - 1)  # the pmult's rescale
        else:
            rot = HomOp(kind=ROTATE, level=level, result="t",
                        operands=("a",), hint_id="h")
            add = HomOp(kind=ADD, level=level, result="t",
                        operands=("a", "b"))
            cycles = (op_cost(cfg, rot, degree).compute_cycles(cfg)
                      + op_cost(cfg, add, degree).compute_cycles(cfg))
        costs.append(cycles)
    return costs
