"""The synthetic programs behind Fig. 3 (Sec. 2.3).

Two extremes of deep FHE programs, parameterized by the maximum ciphertext
level L_max (i.e. maximum ciphertext size):

* a serial **multiplication chain** - minimal work between bootstrappings,
  the worst case for bootstrapping amortization;
* a **wide multiply-add graph** with 100 multiplies per level converging to
  one output - the best case, amortizing each bootstrap over ~100 ops.

Fig. 3 plots cost per homomorphic multiply against max ciphertext size;
both extremes share an optimum in the 20-26 MB range (L_max ~ 47-62 at
N=64K), which is the paper's argument for the sizes CraterLake targets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.compiler.digits import digit_schedule
from repro.compiler.dsl import FheBuilder, Value
from repro.ir import Program
from repro.workloads.bootstrap import BootstrapPlan, emit_bootstrap, plan_for
from repro.reliability.errors import ScheduleError


def _plan_for_max_level(security: int, degree: int,
                        top_level: int) -> BootstrapPlan:
    """A bootstrap plan scaled to an arbitrary maximum level.

    Smaller chains need shallower (cheaper) EvalMod/transform stages but
    leave fewer usable levels - exactly the tradeoff Fig. 3 sweeps.
    """
    base = plan_for(security, degree)
    if top_level >= base.top_level:
        return replace(base, top_level=top_level)
    # Bootstrapping consumption has a hard floor: EvalMod's precision needs
    # its Taylor depth and double angles regardless of chain length, and
    # the transforms need at least two stages each.  Only ~1 level of
    # consumption can be shaved per 3 levels of chain shrink, which is why
    # small chains leave almost no usable budget (the left cliff of
    # Fig. 3).
    target = base.levels_consumed - (base.top_level - top_level + 2) // 3
    plan = replace(base, top_level=top_level)
    # Shave fields largest-first down to the target, respecting floors.
    floors = {"scaling_corrections": 4, "evalmod_depth": 5,
              "evalmod_squarings": 4, "cts_stages": 2, "stc_stages": 2}
    while plan.levels_consumed > target:
        candidates = [
            (getattr(plan, f) - floor, f) for f, floor in floors.items()
            if getattr(plan, f) > floor
        ]
        if not candidates:
            break
        _, field = max(candidates)
        plan = replace(plan, **{field: getattr(plan, field) - 1})
    if plan.levels_consumed >= top_level:
        raise ScheduleError(
            f"L_max={top_level} cannot host packed bootstrapping"
        )
    return plan


def multiplication_chain(total_mults: int = 200, max_level: int = 57,
                         security: int = 80, degree: int = 65536) -> Program:
    """Serial chain of ciphertext multiplies with bootstrapping as needed."""
    plan = _plan_for_max_level(security, degree, max_level)
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(
        f"mult_chain_L{max_level}", degree=degree, max_level=plan.top_level,
        digit_schedule=schedule,
        description="Fig. 3 (left): serial multiplication chain",
    )
    x = b.input("x", plan.usable_levels)
    x = Value(x.name, plan.usable_levels)
    for _ in range(total_mults):
        if x.level <= 1:
            x = emit_bootstrap(b, x, plan)
            x = Value(x.name, plan.usable_levels)
        x = b.square(x)
    b.output(x)
    return b.build()


def wide_multiply_graph(levels: int = 20, width: int = 100,
                        max_level: int = 57, security: int = 80,
                        degree: int = 65536) -> Program:
    """Width-100 multiply layers converging to one output per level."""
    plan = _plan_for_max_level(security, degree, max_level)
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(
        f"wide_graph_L{max_level}", degree=degree, max_level=plan.top_level,
        digit_schedule=schedule,
        description="Fig. 3 (right): wide multiply-add graph",
    )
    x = b.input("x", plan.usable_levels)
    x = Value(x.name, plan.usable_levels)
    for _ in range(levels):
        if x.level <= 1:
            x = emit_bootstrap(b, x, plan)
            x = Value(x.name, plan.usable_levels)
        acc = None
        for _ in range(width):
            prod = b.square(x, rescale=False)
            acc = prod if acc is None else b.add(acc, prod)
        x = b.rescale(acc)
    b.output(x)
    return b.build()
