"""Benchmark programs: the paper's full evaluation suite (Sec. 8).

Deep benchmarks (high multiplicative depth, bootstrapping required):
ResNet-20, HELR logistic regression, LSTM, fully packed bootstrapping.
Shallow benchmarks (no bootstrapping): unpacked bootstrapping, LoLa-CIFAR,
LoLa-MNIST with unencrypted and with encrypted weights.  Plus the two
synthetic programs behind Fig. 3.

Every benchmark is emitted through the compiler DSL as a homomorphic-op
stream, so CraterLake, F1+ and the CPU model all execute identical work.
"""

from repro.ir import Program
from repro.workloads.bootstrap import (
    BootstrapPlan,
    emit_bootstrap,
    packed_bootstrapping,
    unpacked_bootstrapping,
)
from repro.workloads.logreg import logistic_regression
from repro.workloads.neural import (
    lola_cifar,
    lola_mnist,
    lstm,
    resnet20,
)
from repro.workloads.synthetic import multiplication_chain, wide_multiply_graph

DEEP_BENCHMARKS = ("resnet20", "logreg", "lstm", "packed_bootstrap")
SHALLOW_BENCHMARKS = (
    "unpacked_bootstrap", "lola_cifar", "lola_mnist_uw", "lola_mnist_ew",
)
ALL_BENCHMARKS = DEEP_BENCHMARKS + SHALLOW_BENCHMARKS

_FACTORIES = {
    "resnet20": resnet20,
    "logreg": logistic_regression,
    "lstm": lstm,
    "packed_bootstrap": packed_bootstrapping,
    "unpacked_bootstrap": unpacked_bootstrapping,
    "lola_cifar": lola_cifar,
    "lola_mnist_uw": lambda **kw: lola_mnist(encrypted_weights=False, **kw),
    "lola_mnist_ew": lambda **kw: lola_mnist(encrypted_weights=True, **kw),
}


def benchmark(name: str, security: int = 80,
              degree: int | None = None) -> Program:
    """Build a benchmark program at a security level (and optional ring
    degree, for the N=128K study of Sec. 9.4)."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_FACTORIES)}"
        )
    kwargs = {"security": security}
    if degree is not None:
        kwargs["degree"] = degree
    return _FACTORIES[name](**kwargs)


__all__ = [
    "ALL_BENCHMARKS",
    "DEEP_BENCHMARKS",
    "SHALLOW_BENCHMARKS",
    "BootstrapPlan",
    "benchmark",
    "emit_bootstrap",
    "packed_bootstrapping",
    "unpacked_bootstrapping",
    "logistic_regression",
    "lola_cifar",
    "lola_mnist",
    "lstm",
    "resnet20",
    "multiplication_chain",
    "wide_multiply_graph",
]
