"""Neural-network benchmarks: ResNet-20, LSTM, and the LoLa networks.

Structural parameters (layers, rotations per layer, activation degrees,
bootstraps per inference) follow the source implementations the paper
benchmarks - Lee et al.'s fully packed ResNet-20 [48] (modified, as the
paper does, to pack all channels into one ciphertext before bootstrapping),
Podschwadt & Takabi's LSTM [57], and Low-Latency CryptoNets [13] - at the
level of detail the performance model consumes: homomorphic op counts,
levels, and operand/hint reuse.
"""

from __future__ import annotations

from repro.compiler.digits import digit_schedule
from repro.compiler.dsl import FheBuilder, Value
from repro.compiler.kernels import (
    matvec,
    polynomial_activation,
)
from repro.ir import Program
from repro.workloads.bootstrap import emit_bootstrap, plan_for


def _deep_builder(name: str, security: int, degree: int, description: str,
                  packed_fraction: float = 1.0):
    plan = plan_for(security, degree)
    if packed_fraction < 1.0:
        from dataclasses import replace

        plan = replace(plan, packed_fraction=packed_fraction)
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(name, degree=degree, max_level=plan.top_level,
                   digit_schedule=schedule, description=description)
    return b, plan


def resnet20(security: int = 80, degree: int = 65536,
             layers: int = 20) -> Program:
    """ResNet-20 inference on one encrypted CIFAR-10 image [48].

    Each residual layer is a multiplexed-packed convolution (a large
    BSGS matrix-vector product over the channel-packed ciphertext) plus a
    high-degree polynomial ReLU [47]; all channels are packed into a single
    ciphertext before each bootstrap (the 38x bootstrapping reduction the
    paper applies, Sec. 8).
    """
    b, plan = _deep_builder(
        "resnet20", security, degree,
        "ResNet-20, fully packed FHE inference (Lee et al. [48], modified)",
    )
    usable = plan.usable_levels
    # Multiplexed-packed convolution [48]: 2*(k^2-1) = 16 base shifts, each
    # applied across the multiplexing factor (channel blocks sharing the
    # ciphertext); hints are shared across blocks, which is what makes the
    # packing worthwhile.
    base_shifts = 16
    multiplex = 200     # blocks sharing each shift's rotation hint
    weights_per_shift = 40  # distinct weight plaintexts per shift
    # ReLU is a composition of minimax polynomials [47]; tighter security
    # budgets (fewer usable levels per refresh) drop composition stages, as
    # the source implementation does when the chain shrinks.
    import math

    def poly_depth(degree: int) -> int:
        return math.ceil(math.log2(degree + 1)) + 2

    relu_degrees = (15, 15, 27)
    while (3 + sum(poly_depth(d) for d in relu_degrees)
           >= plan.usable_levels and len(relu_degrees) > 1):
        relu_degrees = relu_degrees[1:]
    relu_depth = sum(poly_depth(d) for d in relu_degrees)

    x = b.input("image", plan.top_level)
    x = Value(x.name, plan.usable_levels)  # inputs arrive shallow, cheap
    level_cost = 3 + relu_depth  # conv + bn + packing + composite ReLU
    for layer in range(layers):
        if x.level <= level_cost:
            x = emit_bootstrap(b, x, plan, namespace="boot")
            x = Value(x.name, usable)
        b.phase(f"conv{layer}")
        acc = None
        for shift in range(base_shifts):
            r = b.rotate(x, shift + 1, hint_id=f"convshift{shift}",
                         repeat=multiplex)
            t = b.pmult(r, f"conv{layer}/w{shift}",
                        rescale=False, repeat=weights_per_shift)
            acc = t if acc is None else b.add(acc, t, repeat=multiplex)
        x = b.rescale(acc)
        # Channel re-packing rotations after the conv.
        for j in range(8):
            r = b.rotate(x, 1 << j, hint_id=f"rot{1 << j}")
            x = b.add(x, r)
        x = b.pmult(x, f"bn{layer}")  # folded batch-norm scale
        for d in relu_degrees:
            x = polynomial_activation(b, x, d)
    b.phase("fc")
    x = matvec(b, x, 64, weights="fc")
    b.output(x)
    return b.build()


def lstm(security: int = 80, degree: int = 65536,
         timesteps: int = 320, hidden: int = 128) -> Program:
    """LSTM NLP inference [57]: h = sigma(W0 h + W1 x) per timestep.

    Two 128x128 matrix-vector products and a degree-3 activation per step;
    the paper reports 50 bootstrappings per inference, which emerges here
    from 350 timesteps at 3 levels each over a 22-level budget.
    """
    # Timesteps are batched across the 32K slots, so bootstraps operate on
    # well-packed ciphertexts (slightly cheaper transforms than the fully
    # packed standalone benchmark).
    b, plan = _deep_builder(
        "lstm", security, degree,
        "LSTM recurrent inference (Podschwadt & Takabi [57])",
        packed_fraction=0.8,
    )
    usable = plan.usable_levels
    h = b.input("h0", usable)
    h = Value(h.name, usable)
    for step in range(timesteps):
        if h.level <= 4:  # matvec (1) + activation depth (3)
            h = emit_bootstrap(b, h, plan, namespace="boot")
            h = Value(h.name, usable)
        b.phase(f"step{step}")
        x_t = b.input(f"x{step}", h.level)
        # The replication-packed weight matrices have 16 live diagonals;
        # W0/W1 are reused every timestep, so the compiler keeps them
        # on-chip in compact (2-residue) form and re-extends via the CRB.
        wh = matvec(b, h, hidden, weights="W0", diagonals=16,
                    compact_weights=True)
        wx = matvec(b, x_t, hidden, weights="W1", diagonals=16,
                    compact_weights=True)
        s = b.add(wh, wx)
        h = polynomial_activation(b, s, 3)
    b.output(h)
    return b.build()


def lola_cifar(security: int = 80, degree: int = 16384) -> Program:
    """LoLa-CIFAR [13]: 6 layers, unencrypted weights, no bootstrapping.

    Convolutions are expressed as wide matrix products over the packed
    image, which makes this shallow benchmark rotation-heavy (the paper
    measures 8 GB of traffic and ~50 ms)."""
    b = FheBuilder(
        "lola_cifar", degree=degree, max_level=8,
        description="LoLa CIFAR-10 network, unencrypted weights [13]",
    )
    # (blocks, rotation steps, weight plaintexts) per layer.  LoLa's
    # replication packing makes its convolutions rotation-heavy but
    # multiply-light: many blocks share each rotation hint while the
    # weight data itself is comparatively small.
    layer_shapes = [
        (7000, 15, 6000), (4000, 15, 4000), (2000, 12, 2500),
        (1000, 12, 1500), (500, 10, 800), (120, 10, 200),
    ]
    x = b.input("image", 8)
    x = Value(x.name, 8)
    for i, (blocks, steps, n_weights) in enumerate(layer_shapes):
        b.phase(f"layer{i}")
        acc = None
        for j in range(steps):
            r = b.rotate(x, j + 1, hint_id=f"l{i}/rot{j}", repeat=blocks)
            t = b.pmult(r, f"w{i}/s{j}", rescale=False,
                        repeat=max(1, n_weights // steps))
            acc = t if acc is None else b.add(acc, t, repeat=blocks)
        if acc.level > 2:
            x = b.rescale(acc)
            if i % 2 == 0:
                x = b.square(x)  # square activation on alternating layers
        else:
            x = acc
    b.output(x)
    return b.build()


def lola_mnist(encrypted_weights: bool, security: int = 80,
               degree: int = 16384) -> Program:
    """LoLa-MNIST [13]: a LeNet-style network, max L between 4 and 8.

    With encrypted weights every weight multiply becomes a full
    ciphertext-ciphertext multiplication (keyswitch included), which is why
    the EW variant moves ~2x the data and runs ~2x slower (Table 3).
    """
    name = "lola_mnist_ew" if encrypted_weights else "lola_mnist_uw"
    b = FheBuilder(
        name, degree=degree, max_level=6,
        description=f"LoLa MNIST, {'encrypted' if encrypted_weights else 'unencrypted'} weights",
    )
    x = b.input("image", 6)
    x = Value(x.name, 6)
    # conv layer: 5x5 kernels over 8 replication blocks
    b.phase("conv")
    acc = None
    for j in range(25):
        # Kernel shifts share the +-1/+-row rotation hints (8 distinct).
        r = b.rotate(x, j + 1, hint_id=f"rot{j % 8}", repeat=8)
        t = b.pmult(r, f"conv/k{j}", rescale=False, repeat=2)
        acc = t if acc is None else b.add(acc, t, repeat=8)
    x = b.square(b.rescale(acc) if acc.level > 1 else acc)
    # dense 720 -> 100 layer
    b.phase("dense1")
    if encrypted_weights:
        acc = None
        for j in range(48):
            w = b.input(f"w1_{j}", x.level)
            r = b.rotate(x, j + 1, hint_id=f"rot{j % 8}")
            t = b.mult(r, w, rescale=False)
            acc = t if acc is None else b.add(acc, t)
        x = b.rescale(acc)
    else:
        x = matvec(b, x, 48, weights="dense1", diagonals=48,
                   hint_prefix="d1/")
    x = b.square(x)
    b.phase("dense2")
    x = matvec(b, x, 10, weights="dense2", diagonals=10)
    b.output(x)
    return b.build()
