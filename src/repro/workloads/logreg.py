"""HELR logistic regression training (Han et al. [36], Sec. 8).

Multiple batches of logistic-regression training with 256 features and 256
samples per batch, starting at computational depth L=38.  Unlike F1's
single-iteration version, this runs many iterations, so bootstrapping is
exercised (the point the paper makes about this benchmark).

Per iteration: a batched inner product (X w, via rotations + plaintext
multiplies over the fully packed batch), a degree-7 sigmoid approximation,
and a gradient update (another batched product plus a rotate-accumulate
reduction across samples).
"""

from __future__ import annotations

from repro.compiler.digits import digit_schedule
from repro.compiler.dsl import FheBuilder, Value
from repro.compiler.kernels import polynomial_activation, rotate_accumulate
from repro.ir import Program
from repro.workloads.bootstrap import emit_bootstrap, plan_for

START_LEVEL = 38  # the paper's stated starting depth for this benchmark


def logistic_regression(security: int = 80, degree: int = 65536,
                        iterations: int = 34, features: int = 256) -> Program:
    plan = plan_for(security, degree)
    schedule = digit_schedule(degree, security, plan.top_level)
    b = FheBuilder(
        "logreg", degree=degree, max_level=plan.top_level,
        digit_schedule=schedule,
        description="HELR logistic regression training [36], multi-batch",
    )
    usable = min(START_LEVEL, plan.usable_levels + plan.input_level)
    w = b.input("weights", usable)
    w = Value(w.name, usable)
    # Depth per iteration: forward product (1) + sigmoid (5) + update (2).
    iter_depth = 8
    for it in range(iterations):
        if w.level <= iter_depth:
            w = emit_bootstrap(b, w, plan, namespace="boot")
            w = Value(w.name, plan.usable_levels)
        b.phase(f"iter{it}")
        batch = b.input(f"batch{it}", w.level)

        def data_product(x: Value, label: str) -> Value:
            # The 256x256 packed batch product: 16 rotation steps applied
            # across 30 sample blocks (hints shared program-wide), against
            # 128 single-use data plaintexts per iteration.
            acc = None
            for j in range(16):
                r = b.rotate(x, j + 1, hint_id=f"lr/rot{j}", repeat=30)
                t = b.pmult(r, f"{label}/s{j}", rescale=False, repeat=8)
                acc = t if acc is None else b.add(acc, t, repeat=30)
            return b.rescale(acc)

        # Forward: z = X w over the packed batch.
        z = data_product(w, f"X{it}")
        # Sigmoid via degree-7 polynomial.
        s = polynomial_activation(b, z, 7)
        # Gradient: X^T (y - sigma(z)): the transposed product plus a
        # reduction across the 256 samples.
        err = b.mult(s, b.mod_drop(batch, s.level))
        grad = data_product(err, f"Xt{it}")
        grad = rotate_accumulate(b, grad, features, hint_prefix="lr/")
        grad = b.pmult(grad, f"lr/rate{it}")
        w = b.add(b.mod_drop(w, grad.level), grad)
    b.output(w)
    return b.build()
