"""Homomorphic polynomial evaluation (Paterson-Stockmeyer).

FHE has no nonlinear operations, so activation functions (Sec. 2.1) and the
modular reduction inside bootstrapping are replaced by polynomials.  Naive
Horner evaluation of a degree-d polynomial burns d levels; the
Paterson-Stockmeyer scheme used here is the sum form

    P(x) = sum_j chunk_j(x) * x^(j*k),        k ~ sqrt(d)

with baby powers x^1..x^k and giant powers x^(j*k) built by a product
ladder, giving ~log2(d) multiplicative depth and ~2*sqrt(d) ciphertext
multiplications - the op-count shape the workload generators also assume.

Scale discipline: chunk coefficients are encoded at exactly the scale that
makes every term of the sum land on one common target scale, so additions
never mix mismatched scales even though 28-bit moduli are inexact powers of
two.  This mirrors the plaintext-operand bookkeeping the paper's compiler
performs.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext
from repro.fhe.keyswitch import KeySwitchHint
from repro.reliability.errors import ParameterError


def align_levels(ctx: CkksContext, a: Ciphertext, b: Ciphertext):
    """Bring two ciphertexts to a common (minimum) level for addition."""
    level = min(a.level, b.level)
    return ctx.drop_to_level(a, level), ctx.drop_to_level(b, level)


def add_any(ctx: CkksContext, a: Ciphertext | None, b: Ciphertext | None):
    """Add, tolerating None (empty accumulator) and level mismatches."""
    if a is None:
        return b
    if b is None:
        return a
    a, b = align_levels(ctx, a, b)
    return ctx.add(a, b)


def mul_rescale(ctx: CkksContext, a: Ciphertext, b: Ciphertext,
                relin: KeySwitchHint) -> Ciphertext:
    """Level-aligned ciphertext multiply followed by a rescale."""
    a, b = align_levels(ctx, a, b)
    return ctx.rescale(ctx.multiply(a, b, relin))


def power_ladder(
    ctx: CkksContext, ct: Ciphertext, k: int, relin: KeySwitchHint
) -> dict[int, Ciphertext]:
    """All powers x^1..x^k, each built from two smaller powers (+rescale)."""
    powers: dict[int, Ciphertext] = {1: ct}
    for i in range(2, k + 1):
        lo, hi = i // 2, i - i // 2
        a, b = align_levels(ctx, powers[lo], powers[hi])
        powers[i] = ctx.rescale(
            ctx.square(a, relin) if lo == hi else ctx.multiply(a, b, relin)
        )
    return powers


def _giant_ladder(
    ctx: CkksContext, base: Ciphertext, count: int, relin: KeySwitchHint
) -> dict[int, Ciphertext]:
    """giants[j] = base^j for j in 1..count, built pairwise (log depth)."""
    giants: dict[int, Ciphertext] = {1: base}
    for j in range(2, count + 1):
        lo, hi = j // 2, j - j // 2
        a, b = align_levels(ctx, giants[lo], giants[hi])
        giants[j] = ctx.rescale(
            ctx.square(a, relin) if lo == hi else ctx.multiply(a, b, relin)
        )
    return giants


def evaluate_polynomial(
    ctx: CkksContext,
    ct: Ciphertext,
    coeffs,
    relin: KeySwitchHint,
) -> Ciphertext:
    """Evaluate sum_i coeffs[i] * x^i at the encrypted x (complex coeffs ok).

    Result lands ~log2(d)+2 levels below the input, at the input's scale.
    """
    coeffs = [complex(c) for c in coeffs]
    degree = len(coeffs) - 1
    while degree > 0 and coeffs[degree] == 0:
        degree -= 1
    if degree == 0:
        raise ParameterError("constant polynomial: nothing to evaluate")
    if degree == 1:
        out = ctx.pmult(ct, [coeffs[1]])
        return ctx.add_scalar(out, coeffs[0]) if coeffs[0] else out

    target = ct.scale
    k = 1 << int(np.ceil(np.log2(np.sqrt(degree + 1))))
    n_chunks = -(-(degree + 1) // k)
    powers = power_ladder(ctx, ct, min(k, degree), relin)
    giants = (
        _giant_ladder(ctx, powers[k], n_chunks - 1, relin)
        if n_chunks > 1
        else {}
    )
    # Every chunk is evaluated one level below its deepest baby power; pin
    # that level so the per-chunk encoding scale below is exact.
    chunk_level = min(p.level for p in powers.values()) - 1

    def chunk_eval(lo: int, chunk_scale: float):
        """coeffs[lo+1 : lo+k] * x^(1..k-1), every term at chunk_scale."""
        acc = None
        for j in range(1, k):
            idx = lo + j
            if idx > degree or coeffs[idx] == 0:
                continue
            term = ctx.pmult(powers[j], [coeffs[idx]], chunk_scale)
            acc = add_any(ctx, acc, term)
        if acc is not None:
            acc = ctx.drop_to_level(acc, min(acc.level, chunk_level))
        constant = coeffs[lo] if lo <= degree else 0
        return acc, constant

    result = None
    for j in range(n_chunks):
        if j == 0:
            term, constant = chunk_eval(0, target)
            if constant:
                term = (
                    ctx.add_scalar(term, constant)
                    if term is not None
                    # Degenerate chunk: constant alone; realized through the
                    # first giant (present because degree >= k here).
                    else ctx.add_scalar(ctx.pmult(giants[1], [0.0], target), constant)
                )
        else:
            giant = giants[j]
            aligned_level = min(chunk_level, giant.level)
            q_mul = float(ctx.basis_at(aligned_level).moduli[-1])
            chunk_scale = target * q_mul / giant.scale
            acc, constant = chunk_eval(j * k, chunk_scale)
            if constant:
                acc = (
                    ctx.add_scalar(acc, constant)
                    if acc is not None
                    else None
                )
            if acc is None:
                if not constant:
                    continue
                term = ctx.pmult(giant, [constant], target)
            else:
                acc = ctx.drop_to_level(acc, aligned_level)
                term = mul_rescale(ctx, acc, giant, relin)
                term.scale = target  # exact by construction; pin float ulps
        result = add_any(ctx, result, term)
    return result


def evaluate_chebyshev(
    ctx: CkksContext,
    ct: Ciphertext,
    cheb_coeffs,
    relin: KeySwitchHint,
) -> Ciphertext:
    """Evaluate a Chebyshev-basis polynomial sum_i c_i T_i(x), |x| <= 1.

    Converts to the monomial basis (fine for the modest degrees used here)
    and reuses :func:`evaluate_polynomial`.  Chebyshev fits are what the
    bootstrapping EvalMod step and the paper's ReLU approximations use.
    """
    mono = np.polynomial.chebyshev.cheb2poly(np.asarray(cheb_coeffs))
    return evaluate_polynomial(ctx, ct, mono, relin)
