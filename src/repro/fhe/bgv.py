"""BGV: exact integer arithmetic on the same RNS substrate.

Sec. 2's premise is that CKKS, BGV and GSW share an implementation
substrate, which is why one accelerator serves them all.  This module
demonstrates it: BGV reuses this library's RNS polynomials, NTTs, samplers
and keyswitching unchanged - only the plaintext encoding (integers modulo
t instead of scaled fixed-point) and the noise bookkeeping differ:

* errors are scaled by the plaintext modulus t, so noise never perturbs
  the message residues (``generate_hint(error_scale=t)``);
* levels are spent by **modulus switching**, the BGV analogue of rescaling:
  dividing by q_L with a correction delta = 0 (mod t), delta = -c (mod q_L)
  keeps the plaintext exact while shrinking noise;
* slot packing uses the negacyclic NTT modulo t (t = 65537 is NTT-friendly
  for every ring this library instantiates), so batched add/mult are
  element-wise mod t.

Because q_L != 1 (mod t), each modulus switch multiplies the underlying
plaintext by q_L^-1 mod t; ciphertexts carry that factor and decryption
removes it - the standard BGV bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.keyswitch import generate_hint, standard_keyswitch
from repro.fhe.ntt import NttContext
from repro.fhe.poly import COEFF, EVAL, RnsPoly
from repro.fhe.primes import find_ntt_primes, is_prime
from repro.fhe.rns import RnsBasis
from repro.fhe.sampling import gaussian_error, ternary_secret
from repro.reliability.errors import (
    LevelMismatchError,
    ParameterError,
    ScaleMismatchError,
)

DEFAULT_PLAIN_MODULUS = 65537  # Fermat prime: NTT-friendly for N <= 32768


@dataclass(frozen=True)
class BgvParams:
    degree: int = 1024
    max_level: int = 6
    modulus_bits: int = 28
    plain_modulus: int = DEFAULT_PLAIN_MODULUS
    error_sigma: float = 3.2
    seed: int = 99

    def __post_init__(self):
        if self.degree & (self.degree - 1):
            raise ParameterError("degree must be a power of two",
                                 degree=self.degree)
        if not is_prime(self.plain_modulus):
            raise ParameterError("plain modulus must be prime for slot packing")
        if (self.plain_modulus - 1) % (2 * self.degree):
            raise ParameterError(
                "plain modulus must be NTT-friendly (1 mod 2N) for batching"
            )

    @property
    def slots(self) -> int:
        return self.degree


class BgvCiphertext:
    """(c0, c1) with level and the accumulated q^-1 plaintext factor."""

    def __init__(self, c0: RnsPoly, c1: RnsPoly, plain_factor: int):
        self.c0 = c0
        self.c1 = c1
        self.plain_factor = plain_factor

    @property
    def level(self) -> int:
        return self.c0.level

    @property
    def basis(self) -> RnsBasis:
        return self.c0.basis


class BgvContext:
    """Keygen and homomorphic evaluation for batched BGV."""

    def __init__(self, params: BgvParams):
        self.params = params
        primes = find_ntt_primes(params.max_level, params.modulus_bits,
                                 params.degree)
        self.q_basis = RnsBasis(primes)
        self.t = params.plain_modulus
        self.slot_ntt = NttContext.get(self.t, params.degree)
        self.rng = np.random.default_rng(params.seed)
        self._hint_seed = iter(range(77_000_000, 2**31))

    # -- encoding: batched integers via the NTT modulo t -------------------

    def encode(self, values) -> np.ndarray:
        """Integers (any sign) -> plaintext polynomial coefficients mod t."""
        values = np.asarray(values, dtype=np.int64) % self.t
        full = np.zeros(self.params.degree, dtype=np.uint64)
        full[: len(values)] = values.astype(np.uint64)
        return self.slot_ntt.inverse(full)

    def decode(self, coeffs: np.ndarray) -> np.ndarray:
        return self.slot_ntt.forward(coeffs.astype(np.uint64))

    # -- keys ----------------------------------------------------------------

    def keygen(self):
        from repro.fhe.ckks import SecretKey

        return SecretKey(coeffs=ternary_secret(self.params.degree, self.rng))

    def relin_hint(self, sk):
        s = sk.poly(self.q_basis)
        return generate_hint(
            s * s, s, self.q_basis, None, 1, self.rng,
            next(self._hint_seed), self.params.error_sigma,
            label="bgv-relin", error_scale=self.t,
        )

    # -- encryption -------------------------------------------------------------

    def encrypt(self, sk, values, level: int | None = None) -> BgvCiphertext:
        level = self.params.max_level if level is None else level
        basis = self.q_basis[:level] if level < len(self.q_basis) else self.q_basis
        n = self.params.degree
        m_coeffs = self.encode(values)
        m = RnsPoly.from_integers(
            basis, m_coeffs.astype(np.int64), EVAL
        )
        a = RnsPoly.uniform_random(basis, n, self.rng, EVAL)
        e = RnsPoly.from_integers(
            basis,
            gaussian_error(n, self.rng, self.params.error_sigma)
            * self.t,
            EVAL,
        )
        s = sk.poly(basis)
        return BgvCiphertext(m + e - a * s, a, plain_factor=1)

    def decrypt(self, sk, ct: BgvCiphertext) -> np.ndarray:
        s = sk.poly(ct.basis)
        raw = (ct.c0 + ct.c1 * s).to_coeff().to_integers()
        coeffs = np.array([int(v) % self.t for v in raw], dtype=np.uint64)
        slots = self.decode(coeffs)
        # Undo the accumulated modswitch factor.
        fix = pow(self.plain_correction(ct), -1, self.t)
        return slots * np.uint64(fix) % np.uint64(self.t)

    def plain_correction(self, ct: BgvCiphertext) -> int:
        return ct.plain_factor % self.t

    # -- homomorphic operations ----------------------------------------------------

    def add(self, a: BgvCiphertext, b: BgvCiphertext) -> BgvCiphertext:
        if a.plain_factor != b.plain_factor:
            raise ScaleMismatchError("operands carry different modswitch factors")
        return BgvCiphertext(a.c0 + b.c0, a.c1 + b.c1, a.plain_factor)

    def multiply(self, a: BgvCiphertext, b: BgvCiphertext,
                 relin) -> BgvCiphertext:
        """Tensor + relinearize (standard keyswitching, t-scaled errors)."""
        if a.basis != b.basis:
            raise LevelMismatchError("operands at different levels",
                                     left_level=a.level, right_level=b.level)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        ks0, ks1 = standard_keyswitch(d2, relin)
        return BgvCiphertext(
            d0 + ks0, d1 + ks1,
            a.plain_factor * b.plain_factor % self.t,
        )

    def mod_switch(self, ct: BgvCiphertext) -> BgvCiphertext:
        """Drop the last modulus, dividing noise by ~q_L exactly mod t."""
        return BgvCiphertext(
            self._switch_poly(ct.c0), self._switch_poly(ct.c1),
            ct.plain_factor * pow(
                ct.basis.moduli[-1] % self.t, -1, self.t
            ) % self.t,
        )

    def _switch_poly(self, poly: RnsPoly) -> RnsPoly:
        """(x + delta) / q_L with delta = -x (mod q_L), delta = 0 (mod t)."""
        coeff = poly.to_coeff()
        q_last = coeff.basis.moduli[-1]
        last = coeff.data[-1].astype(np.int64)
        centered = last - np.int64(q_last) * (last > q_last // 2)
        # delta = -r + q_L * w with w = r * q_L^{-1} (mod t, centered):
        # then delta = -r (mod q_L) and delta = 0 (mod t).
        q_inv_t = pow(q_last % self.t, -1, self.t)
        w = (centered % self.t) * q_inv_t % self.t
        w = w - np.int64(self.t) * (w > self.t // 2)
        delta = -centered + np.int64(q_last) * w
        new_basis = coeff.basis.drop_last()
        out = np.empty((len(new_basis), poly.degree), dtype=np.uint64)
        for i, qi in enumerate(new_basis):
            qi64 = np.uint64(qi)
            inv = np.uint64(pow(q_last % qi, qi - 2, qi))
            corr = np.mod(delta, qi).astype(np.uint64)
            out[i] = (coeff.data[i] + corr) % qi64 * inv % qi64
        return RnsPoly(new_basis, out, COEFF).to_eval()
