"""Fully packed CKKS bootstrapping: the enabler of unbounded computation.

A ciphertext that has spent its multiplicative budget (level 1) is refreshed
to a high level without decryption, following the standard CKKS recipe the
paper's benchmarks use (Sec. 8, [11, 14, 53]):

1. **ModRaise** - reinterpret the level-1 ciphertext over the full modulus
   chain.  The underlying plaintext becomes m + q1*I for a small integer
   polynomial I.
2. **CoeffToSlot** - a homomorphic real-linear transform moving the N
   coefficients into the N/2 complex slots (packed as a_j + i*a_{n+j}),
   implemented with BSGS diagonal multiplication (`repro.fhe.linear`).
   The transform also folds in the division by 2^r that EvalMod needs.
3. **EvalMod** - remove the q1*I term by evaluating x mod q1 ~
   (q1/2pi)*sin(2pi x/q1) per slot: a Taylor polynomial of the complex
   exponential at x/2^r, then r repeated squarings, then Im() extraction
   by conjugation.
4. **SlotToCoeff** - the inverse transform back to coefficient packing.

The result encrypts the original message at a high level again; Fig. 2 of
the paper is exactly this refresh.  The paper's production configuration
decomposes CoeffToSlot/SlotToCoeff into FFT-like sparse factors (4x4 tiles)
for on-chip reuse; functionally we apply the dense transforms (one level
each), which computes the same map - the factored op counts live in the
workload generators where performance is modeled.

Precision at 28-bit toy scales: keyswitch noise entering the EvalMod input
is amplified by 2pi*2^r, so the configuration keeps r small (a high-degree
Taylor polynomial absorbs the larger argument) and CoeffToSlot runs with
many baby steps (giant-step rotation noise is the unattenuated term) - the
same tradeoffs real implementations tune, at a different operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, factorial, log2, pi

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext, Plaintext, SecretKey
from repro.fhe.linear import RealLinearTransform
from repro.fhe.poly import EVAL, RnsPoly
from repro.fhe.polyeval import evaluate_polynomial, mul_rescale
from repro.obs import collector as obs
from repro.reliability.errors import LevelMismatchError


@dataclass(frozen=True)
class BootstrapConfig:
    """Precision/level knobs for bootstrapping.

    ``range_bound`` K bounds |I| (+ message) in the raised plaintext; the
    squaring count is then r = ceil(log2(2*pi*K / max_arg)), keeping the
    Taylor argument below ``max_arg`` where the degree-``taylor_degree``
    series of exp is accurate.  ``None`` derives K from the secret key's
    Hamming weight (6 sigma of the I distribution) - the reason sparse keys
    make bootstrapping cheaper, and why the paper's use of *non-sparse*
    keys (with more levels) is a quality statement.
    """

    taylor_degree: int = 63
    max_arg: float = 8.0
    range_bound: int | None = None
    message_ratio: float = 32.0  # required q1 / |m| headroom of inputs
    cts_baby_steps: int | None = None  # None: slots/8 (noise-critical)


class Bootstrapper:
    """Owns the transforms and keyswitch hints bootstrapping needs.

    Building one is expensive (two dense real-linear transforms and a few
    dozen rotation hints) and done once per context+key, exactly like the
    one-time keyswitch-hint generation a real deployment performs.
    """

    def __init__(self, ctx: CkksContext, sk: SecretKey,
                 config: BootstrapConfig = BootstrapConfig()):
        self.ctx = ctx
        self.config = config
        n = ctx.params.slots
        degree = ctx.params.degree
        encoder = ctx.encoder

        hamming = ctx.params.secret_hamming
        weight = hamming if hamming is not None else 2 * degree // 3
        if config.range_bound is not None:
            self.range_bound = config.range_bound
        else:
            self.range_bound = max(8, ceil(6.0 * np.sqrt(weight / 12.0)))
        self.squarings = max(
            0, ceil(log2(2 * pi * self.range_bound / config.max_arg))
        )

        def cts_fn(z):
            # slots (evaluations) -> packed coefficients a_j + i*a_{j+n}.
            # The divisions EvalMod needs (by 2^r for the Taylor argument,
            # by 2 for the conjugation split) are NOT folded in here: they
            # are applied afterwards as a free scale redeclaration, which
            # divides the transform's own noise along with the signal and
            # thus cancels the 2^r noise amplification of the squarings.
            a = encoder.unembed(z)
            return a[:n] + 1j * a[n:]

        def stc_fn(v):
            # EvalMod leaves slots 4*pi*i*(eps_re + i*eps_im); invert that
            # constant (complex-linear, so it composes), unpack, re-embed.
            w = v / (4j * pi)
            coeffs = np.concatenate([w.real, w.imag])
            return encoder.embed(coeffs)

        cts_babies = config.cts_baby_steps
        if cts_babies is None:
            cts_babies = max(16, n // 8)
        self.coeff_to_slot = RealLinearTransform(ctx, cts_fn,
                                                 baby_steps=cts_babies)
        self.slot_to_coeff = RealLinearTransform(ctx, stc_fn)

        rotations = (
            self.coeff_to_slot.required_rotations()
            | self.slot_to_coeff.required_rotations()
        )
        self.rotation_hints = {
            r: ctx.rotation_hint(sk, r) for r in sorted(rotations)
        }
        self.conj_hint = ctx.conjugation_hint(sk)
        self.relin_hint = ctx.relin_hint(sk)

        # Monomial x^(N/2) multiplies every slot by i, exactly and for free.
        mono = np.zeros(degree, dtype=np.int64)
        mono[degree // 2] = 1
        self._imag_unit_coeffs = mono

    # -- accounting ---------------------------------------------------------

    def levels_consumed(self) -> int:
        """Levels burned per bootstrap: CtS + exp eval + squarings + StC."""
        exp_depth = ceil(log2(self.config.taylor_degree + 1)) + 2
        return 1 + 1 + exp_depth + self.squarings + 1  # CtS, divide, exp, sq, StC

    def keyswitch_count(self) -> int:
        """Keyswitches per bootstrap (drives the performance model)."""
        count = 0
        for part in (self.coeff_to_slot, self.slot_to_coeff):
            for half in (part.a_part, part.b_part):
                if half is not None:
                    count += half.rotation_count()
            if part.needs_conjugation():
                count += 1
        # EvalMod runs twice (real and imaginary lanes): ~2 sqrt(d) PS
        # multiplies + r squarings + one conjugation each.
        ps_mults = 2 * ceil(np.sqrt(self.config.taylor_degree + 1))
        count += 2 * (ps_mults + self.squarings + 1)
        return count

    # -- stages --------------------------------------------------------------

    def _multiply_by_i(self, ct: Ciphertext) -> Ciphertext:
        poly = RnsPoly.from_integers(ct.basis, self._imag_unit_coeffs, EVAL)
        return self.ctx.mul_plain(ct, Plaintext(poly, 1.0))

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a level-1 ciphertext over the full chain.

        Declared scale becomes q1, so downstream slots read eps + I where
        eps = m/q1 is the (small) message and I the integer overflow.
        """
        ctx = self.ctx
        if ct.level != 1:
            raise LevelMismatchError(
                "mod_raise expects a fully depleted (L=1) input",
                level=ct.level,
            )
        full = ctx.basis_at(ctx.params.max_level)
        q1 = ct.basis.moduli[0]

        def raise_poly(poly: RnsPoly) -> RnsPoly:
            coeffs = poly.to_coeff().data[0].astype(np.int64)
            centered = coeffs - np.int64(q1) * (coeffs > np.uint64(q1 // 2))
            return RnsPoly.from_integers(full, centered, EVAL)

        return Ciphertext(raise_poly(ct.c0), raise_poly(ct.c1), float(q1))

    def _eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """sin-based modular reduction; input slots (eps + I)/2^r, real.

        Returns slots ~ 4*pi*i*eps (constant folded into SlotToCoeff).
        """
        ctx = self.ctx
        d = self.config.taylor_degree
        coeffs = [(2j * pi) ** k / factorial(k) for k in range(d + 1)]
        exp_ct = evaluate_polynomial(ctx, ct, coeffs, self.relin_hint)
        for _ in range(self.squarings):
            exp_ct = mul_rescale(ctx, exp_ct, exp_ct, self.relin_hint)
        # Im extraction: z - conj(z) = 2i sin(2 pi eps) ~= 4 pi i eps.
        return ctx.sub(exp_ct, ctx.conjugate(exp_ct, self.conj_hint))

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a depleted ciphertext; see module docstring for stages."""
        with obs.span("fhe.bootstrap", "fhe"):
            obs.count("fhe.bootstrap")
            return self._bootstrap(ct)

    def _bootstrap(self, ct: Ciphertext) -> Ciphertext:
        ctx = self.ctx
        input_scale = ct.scale
        q1 = float(ct.basis.moduli[0])
        work_scale = ctx.default_scale
        raised = self.mod_raise(ct)

        packed = self.coeff_to_slot.apply(
            raised, self.rotation_hints, self.conj_hint, result_scale=work_scale
        )
        # Divide by 2*2^r with one plaintext multiply (costs a level): the
        # transform's noise shrinks together with the signal, so it escapes
        # the 2^r noise amplification of the squarings (see cts_fn note).
        packed = ctx.pmult(
            packed, [1.0 / (2.0 * 2.0**self.squarings)], work_scale
        )
        # Split packed slots a_j + i*a_{j+n} into two real-slotted cts:
        # z + conj(z) = 2 Re(z);  i*(conj(z) - z) = 2 Im(z).
        conj_packed = ctx.conjugate(packed, self.conj_hint)
        real_part = ctx.add(packed, conj_packed)
        imag_part = self._multiply_by_i(ctx.sub(conj_packed, packed))

        real_mod = self._eval_mod(real_part)
        imag_mod = self._eval_mod(imag_part)
        recombined = ctx.add(real_mod, self._multiply_by_i(imag_mod))

        refreshed = self.slot_to_coeff.apply(
            recombined, self.rotation_hints, self.conj_hint,
            result_scale=recombined.scale,
        )
        # Output plaintext is m/q1 at the working scale; declare the
        # composite so decryption sees the original values.
        refreshed.scale = refreshed.scale * input_scale / q1
        return refreshed
