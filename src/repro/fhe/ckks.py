"""The CKKS scheme: keys, encryption, and homomorphic evaluation.

This module ties the substrate together into the FHE interface of Sec. 2.1:
element-wise addition, element-wise multiplication, and slot rotations over
encrypted complex vectors, with rescaling and level management.  All
parameters follow the paper's conventions: 28-bit RNS moduli, boosted
t-digit keyswitching with seeded hints, dense or sparse ternary secrets.

The scheme is exact about its own bookkeeping (levels, scales, bases) and
approximate about values, as CKKS is by construction.  Every
ciphertext-consuming operation guards its invariants through
`repro.reliability.guards`, raising typed errors
(:class:`LevelMismatchError`, :class:`ScaleMismatchError`,
:class:`NoiseBudgetExhaustedError`) instead of silently producing garbage.
A context built with a ``ReliabilityPolicy`` in ``"degrade"`` mode repairs
what it can: operands whose scale outgrew the canonical ~q get a rescale
auto-inserted, and an op that needs levels the ciphertext no longer has
triggers an automatic bootstrap (see :meth:`CkksContext.set_bootstrapper`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log2

import numpy as np

from repro.fhe.encoder import CkksEncoder
from repro.fhe.keyswitch import (
    KeySwitchHint,
    boosted_keyswitch,
    generate_hint,
    standard_keyswitch,
)
from repro.fhe.poly import EVAL, RnsPoly, batch_rescale
from repro.fhe.primes import find_ntt_primes
from repro.fhe.rns import RnsBasis
from repro.fhe.sampling import (
    ERROR_SIGMA,
    error_poly,
    ternary_secret,
)
from repro.obs import collector as obs
from repro.reliability.checksums import limb_checksums, verify_limbs
from repro.reliability.errors import (
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
)
from repro.reliability.guards import (
    ReliabilityPolicy,
    check_min_level,
    check_same_basis,
    check_scale_match,
)

# Relative scale mismatch allowed when adding.  Evaluation code keeps scales
# aligned *exactly* via scale-targeted plaintext encoding (see ``pmult``), so
# this tolerance only absorbs float64 round-off in the bookkeeping.
_SCALE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CkksParams:
    """Static parameters of a CKKS instantiation.

    ``max_level`` is the paper's L_max (number of 28-bit primes in the full
    chain) and ``aux_level`` the size of the special basis P used by boosted
    keyswitching.  ``digits`` is the default keyswitching digit count t;
    t=1 with aux_level == max_level reproduces Listing 1 exactly, and the
    general t matches Sec. 3.1 (hint of t+1 ciphertexts, modulus expansion
    (t+1)/t).
    """

    degree: int = 2048
    max_level: int = 8
    aux_level: int | None = None
    modulus_bits: int = 28
    digits: int = 1
    error_sigma: float = ERROR_SIGMA
    secret_hamming: int | None = None
    seed: int = 2022

    def __post_init__(self):
        if self.degree & (self.degree - 1):
            raise ParameterError("degree must be a power of two",
                                 degree=self.degree)
        if self.max_level < 1:
            raise ParameterError("need at least one modulus",
                                 max_level=self.max_level)
        if self.digits < 1 or self.digits > self.max_level:
            raise ParameterError("digits must be in [1, max_level]",
                                 digits=self.digits,
                                 max_level=self.max_level)
        aux = self.aux_level
        if aux is None:
            aux = -(-self.max_level // self.digits)  # ceil
            object.__setattr__(self, "aux_level", aux)
        if aux < 1:
            raise ParameterError("special basis needs at least one prime",
                                 aux_level=aux)

    @property
    def alpha(self) -> int:
        """Digit width in primes: ceil(L_max / t)."""
        return -(-self.max_level // self.digits)

    @property
    def slots(self) -> int:
        return self.degree // 2


class Plaintext:
    """An encoded (unencrypted) polynomial with its scale."""

    def __init__(self, poly: RnsPoly, scale: float):
        self.poly = poly
        self.scale = scale

    @property
    def level(self) -> int:
        return self.poly.level


class Ciphertext:
    """A CKKS ciphertext (c0, c1) with scale and level bookkeeping.

    Decrypts to c0 + c1*s.  ``level`` equals the number of live RNS primes,
    the paper's remaining multiplicative budget L.  ``budget`` carries the
    live worst-case :class:`~repro.fhe.noise.NoiseBudget` when the owning
    context tracks noise; ``integrity`` the per-limb checksums of (c0, c1)
    when the context seals ciphertexts (`repro.reliability.checksums`).
    """

    def __init__(self, c0: RnsPoly, c1: RnsPoly, scale: float,
                 budget=None, integrity=None):
        if c0.basis != c1.basis:
            raise LevelMismatchError(
                "ciphertext halves disagree on basis",
                c0_level=c0.level, c1_level=c1.level,
            )
        self.c0 = c0
        self.c1 = c1
        self.scale = scale
        self.budget = budget
        self.integrity = integrity

    @property
    def level(self) -> int:
        return self.c0.level

    @property
    def basis(self) -> RnsBasis:
        return self.c0.basis

    @property
    def degree(self) -> int:
        return self.c0.degree

    def copy(self) -> "Ciphertext":
        budget = self.budget.clone() if self.budget is not None else None
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.scale,
                          budget=budget, integrity=self.integrity)

    def __repr__(self) -> str:
        return (
            f"Ciphertext(N={self.degree}, L={self.level}, "
            f"log_scale={np.log2(self.scale):.1f})"
        )

    def size_words(self) -> int:
        """Residue words occupied: 2 polynomials of L residues each."""
        return 2 * self.level * self.degree


@dataclass
class SecretKey:
    """Ternary secret; coefficient form kept so it can enter any basis."""

    coeffs: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False)

    def poly(self, basis: RnsBasis) -> RnsPoly:
        poly = self._cache.get(basis.moduli)
        if poly is None:
            poly = RnsPoly.from_integers(basis, self.coeffs, EVAL)
            self._cache[basis.moduli] = poly
        return poly


class CkksContext:
    """Key generation plus every homomorphic operation.

    One context owns the modulus chain (Q basis), the special basis (P), the
    encoder, and the keyswitch hints it has generated.  Methods that consume
    hints take them explicitly so tests can exercise hint reuse, exactly as
    the compiler's reuse analysis does for KSH traffic.

    ``policy`` selects how invariant violations are handled (strict typed
    errors vs graceful degradation), whether a live noise budget is
    threaded through ciphertexts, and whether results are sealed with
    per-limb checksums; see :class:`repro.reliability.ReliabilityPolicy`.
    """

    def __init__(self, params: CkksParams,
                 policy: ReliabilityPolicy | None = None):
        self.params = params
        self.policy = policy or ReliabilityPolicy()
        primes = find_ntt_primes(
            params.max_level + params.aux_level,
            params.modulus_bits,
            params.degree,
        )
        # The chain is consumed from the back by rescaling, so the q primes
        # come first; the remaining primes form the special basis P.
        self.q_basis = RnsBasis(primes[: params.max_level])
        self.aux_basis = RnsBasis(primes[params.max_level :])
        self.full_basis = self.q_basis.extend(self.aux_basis)
        self.encoder = CkksEncoder(params.degree)
        self.rng = np.random.default_rng(params.seed)
        self.default_scale = float(self.q_basis.moduli[-1])
        self._hint_seeds = iter(range(10_000_000, 2**31))
        self._bootstrapper = None
        self._degrading = False
        # Generated-hint cache (ARK-style inter-operation key reuse): a
        # hint is a pure function of (secret key, kind, digit count) given
        # this context's seed stream, so repeated requests - rotation fans
        # re-deriving the same steps, serving lanes rebuilding transform
        # pipelines - return the already-generated hint instead of
        # re-sampling uniforms.  Values keep a strong reference to the
        # secret key so the id() component of the key stays valid.
        self._hint_cache: dict[tuple, tuple[SecretKey, KeySwitchHint]] = {}

    # -- bases -------------------------------------------------------------

    def basis_at(self, level: int) -> RnsBasis:
        if not 1 <= level <= self.params.max_level:
            raise ParameterError(
                f"level {level} outside [1, {self.params.max_level}]",
                level=level,
            )
        return self.q_basis[:level]

    # -- reliability plumbing ----------------------------------------------

    def set_bootstrapper(self, bootstrapper) -> None:
        """Register the bootstrapper graceful degradation refreshes with."""
        self._bootstrapper = bootstrapper

    def seal(self, ct: Ciphertext) -> Ciphertext:
        """Attach per-limb checksums (no-op unless the policy asks)."""
        if not self.policy.checksums:
            return ct
        with obs.span("reliability.checksum.seal", "reliability"):
            ct.integrity = (
                limb_checksums(ct.c0.data, ct.c0.basis.moduli),
                limb_checksums(ct.c1.data, ct.c1.basis.moduli),
            )
        return ct

    def verify_integrity(self, ct: Ciphertext,
                         what: str = "ciphertext") -> None:
        """Check a sealed ciphertext's limbs; raises FaultDetectedError."""
        if ct.integrity is None:
            return
        with obs.span("reliability.checksum.verify", "reliability"):
            verify_limbs(ct.c0.data, ct.c0.basis.moduli, ct.integrity[0],
                         f"{what}.c0")
            verify_limbs(ct.c1.data, ct.c1.basis.moduli, ct.integrity[1],
                         f"{what}.c1")

    def snapshot(self, ct: Ciphertext):
        """Sealed deep copy of ``ct`` for checkpoint/replay recovery.

        Verifies the ciphertext's integrity first (when sealed), so a
        corrupted operand is detected *at the checkpoint boundary*
        instead of being enshrined as a rollback target.  Returns a
        :class:`repro.reliability.recovery.CiphertextSnapshot`.
        """
        from repro.reliability import recovery  # deferred: it imports fhe

        if self.policy.checksums:
            self.verify_integrity(ct, "snapshot operand")
        with obs.span("reliability.recovery.snapshot", "reliability"):
            return recovery.snapshot_ciphertext(ct)

    def restore(self, snap) -> Ciphertext:
        """Materialize a snapshot, re-verifying its seal (bit-identical
        to the ciphertext :meth:`snapshot` captured)."""
        with obs.span("reliability.recovery.restore", "reliability"):
            return snap.restore()

    def _finish(self, out: Ciphertext, kind: str,
                *parents: Ciphertext, seal: bool = True) -> Ciphertext:
        """Post-op bookkeeping: thread the noise budget, seal the result.

        ``seal=False`` skips the fresh reseal for ops that already carried
        their operands' seals forward (see :meth:`_carry_seal`).
        """
        policy = self.policy
        if policy.track_noise:
            self._thread_budget(out, kind, parents)
        if policy.checksums and seal:
            self.seal(out)
        return out

    def _carry_seal(self, out: Ciphertext, a: Ciphertext, b: Ciphertext,
                    sign: int) -> bool:
        """Derive a linear op's output seal from its operands' seals.

        Limb checksums are additive mod q, so ``sum((a +- b) mod q) ==
        (sum(a) +- sum(b)) mod q`` limb by limb: the *clean-input* seal
        carries through add/sub without re-reading the data.  This is
        what keeps a corrupted operand detectable - a fresh reseal over
        already-corrupted limbs would launder the fault into a validly
        sealed result, while the carried seal mismatches the damaged
        data at the next verification boundary (keyswitch operand check,
        eviction sweep, or checkpoint).  Returns False (caller reseals
        fresh) when either operand is unsealed.
        """
        if (not self.policy.checksums or a.integrity is None
                or b.integrity is None):
            return False
        q = np.array(out.c0.basis.moduli, dtype=np.uint64)
        if sign >= 0:
            out.integrity = ((a.integrity[0] + b.integrity[0]) % q,
                             (a.integrity[1] + b.integrity[1]) % q)
        else:
            out.integrity = ((a.integrity[0] + q - b.integrity[0]) % q,
                             (a.integrity[1] + q - b.integrity[1]) % q)
        return True

    def _thread_budget(self, out, kind, parents) -> None:
        budgets = [p.budget for p in parents
                   if isinstance(p, Ciphertext) and p.budget is not None]
        if not budgets:
            return
        budget = budgets[0].clone()
        for other in budgets[1:]:
            budget.noise_bits = max(budget.noise_bits, other.noise_bits)
        if kind == "add":
            budget.add()
        elif kind == "pmult":
            budget.pmult()
        elif kind == "multiply":
            budget.cmult()
        elif kind == "keyswitch":
            budget.keyswitch()
        elif kind == "rescale":
            budget.rescale_op()
        elif kind == "bootstrap":
            budget.refresh(out.level)
        budget.levels = out.level  # structural truth wins
        out.budget = budget
        if (budget.headroom_bits <= 0 and not self.policy.degrade
                and not self._degrading):
            raise NoiseBudgetExhaustedError(
                f"{kind} left no noise headroom; decryption would fail - "
                "bootstrap first or use a 'degrade'-mode context",
                op=kind, level=out.level,
                noise_bits=round(budget.noise_bits, 1),
            )

    def _auto_bootstrap(self, ct: Ciphertext, op: str) -> Ciphertext:
        """Degrade-mode repair: refresh a depleted ciphertext in place."""
        if self._bootstrapper is None:
            raise NoiseBudgetExhaustedError(
                f"{op} exhausted the modulus chain and no bootstrapper is "
                "registered; call set_bootstrapper() (or bootstrap "
                "explicitly)",
                op=op, level=ct.level,
            )
        obs.count("reliability.auto_bootstrap")
        self._degrading = True
        try:
            with obs.span("reliability.auto_bootstrap", "reliability"):
                if ct.level > 1:
                    ct = self.drop_to_level(ct, 1)
                refreshed = self._bootstrapper.bootstrap(ct)
        finally:
            self._degrading = False
        return self._finish(refreshed, "bootstrap", ct)

    def _ensure_level(self, ct: Ciphertext, needed: int,
                      op: str) -> Ciphertext:
        """Strict: raise if the level is gone.  Degrade: bootstrap."""
        if ct.level >= needed:
            return ct
        if self.policy.degrade and not self._degrading:
            return self._auto_bootstrap(ct, op)
        check_min_level(ct, needed, op)
        return ct  # unreachable; check_min_level raised

    def _normalize_scale(self, ct: Ciphertext, op: str) -> Ciphertext:
        """Degrade-mode repair: rescale operands whose scale outgrew ~q.

        Un-rescaled products carry scale ~q^2; multiplying them again
        would push the scale past the live modulus.  Auto-inserting the
        deferred rescale restores the canonical ~q scale (each pass
        divides by one 28-bit prime), exactly what a library's
        rescale-before-multiply pass does.
        """
        threshold = 2 * self.params.modulus_bits - 2
        while log2(ct.scale) >= threshold and ct.level >= 2:
            obs.count("reliability.auto_rescale")
            with obs.span("reliability.auto_rescale", "reliability"):
                ct = self.rescale(ct)
        return ct

    def _prepare_pair(self, a: Ciphertext, b: Ciphertext,
                      op: str) -> tuple[Ciphertext, Ciphertext]:
        """Degrade-mode repairs before a ct x ct multiply."""
        if not self.policy.degrade or self._degrading:
            return a, b
        if a is b:
            a = b = self._normalize_scale(
                self._ensure_level(a, self.policy.min_level + 1, op), op)
            return a, b
        a = self._normalize_scale(
            self._ensure_level(a, self.policy.min_level + 1, op), op)
        b = self._normalize_scale(
            self._ensure_level(b, self.policy.min_level + 1, op), op)
        if a.level != b.level:  # repairs may have desynced the bases
            target = min(a.level, b.level)
            a = self.drop_to_level(a, target)
            b = self.drop_to_level(b, target)
        return a, b

    # -- key generation ------------------------------------------------------

    def keygen(self) -> SecretKey:
        coeffs = ternary_secret(
            self.params.degree, self.rng, self.params.secret_hamming
        )
        return SecretKey(coeffs=coeffs)

    def _cached_hint(self, sk: SecretKey, kind: str, digits: int | None,
                     make) -> KeySwitchHint:
        key = (id(sk), kind, self.params.digits if digits is None else digits)
        entry = self._hint_cache.get(key)
        if entry is not None:
            obs.count("fhe.cache.hint.hit")
            return entry[1]
        obs.count("fhe.cache.hint.miss")
        hint = make()
        self._hint_cache[key] = (sk, hint)
        return hint

    def relin_hint(self, sk: SecretKey, digits: int | None = None) -> KeySwitchHint:
        """Hint for s^2 -> s (homomorphic multiplication)."""
        def make():
            s = sk.poly(self.full_basis)
            return self._make_hint(s * s, sk, digits, label="relin")
        return self._cached_hint(sk, "relin", digits, make)

    def rotation_hint(
        self, sk: SecretKey, steps: int, digits: int | None = None
    ) -> KeySwitchHint:
        """Hint for phi_k(s) -> s where phi_k rotates slots by ``steps``."""
        def make():
            k = self.rotation_exponent(steps)
            s_rot = sk.poly(self.full_basis).automorphism(k)
            return self._make_hint(s_rot, sk, digits, label=f"rot{steps}")
        return self._cached_hint(sk, f"rot{steps % self.params.slots}",
                                 digits, make)

    def conjugation_hint(self, sk: SecretKey, digits: int | None = None) -> KeySwitchHint:
        def make():
            k = 2 * self.params.degree - 1
            s_conj = sk.poly(self.full_basis).automorphism(k)
            return self._make_hint(s_conj, sk, digits, label="conj")
        return self._cached_hint(sk, "conj", digits, make)

    def standard_relin_hint(self, sk: SecretKey) -> KeySwitchHint:
        """Per-prime (BV) hint, the algorithm F1 accelerates; for comparison."""
        s = sk.poly(self.q_basis)
        return generate_hint(
            s * s, sk.poly(self.q_basis), self.q_basis, None, 1,
            self.rng, next(self._hint_seeds), self.params.error_sigma,
            label="relin-std", integrity=self.policy.checksums,
        )

    def _make_hint(self, s_old, sk, digits, label) -> KeySwitchHint:
        digits = self.params.digits if digits is None else digits
        alpha = -(-self.params.max_level // digits)
        if alpha > len(self.aux_basis):
            raise ParameterError(
                f"{digits}-digit keyswitching needs {alpha} special primes, "
                f"context has {len(self.aux_basis)}",
                digits=digits, alpha=alpha,
            )
        aux_used = (
            self.aux_basis[:alpha]
            if alpha < len(self.aux_basis)
            else self.aux_basis
        )
        full_used = self.q_basis.extend(aux_used)
        # ``s_old`` arrives over the maximal basis; because aux_used is a
        # prefix of the special basis, restriction is a row slice (valid in
        # the EVAL domain too, since the NTT acts per residue).
        s_old_used = RnsPoly(full_used, s_old.data[: len(full_used)], s_old.domain)
        return generate_hint(
            s_old_used, sk.poly(full_used), self.q_basis, aux_used,
            alpha, self.rng, next(self._hint_seeds), self.params.error_sigma,
            label=label, integrity=self.policy.checksums,
        )

    def rotation_exponent(self, steps: int) -> int:
        """Automorphism exponent 5^steps mod 2N realizing a rotation."""
        n2 = 2 * self.params.degree
        return pow(5, steps % self.params.slots, n2)

    # -- encode / encrypt / decrypt -----------------------------------------

    def encode(self, values, level: int | None = None,
               scale: float | None = None) -> Plaintext:
        level = self.params.max_level if level is None else level
        scale = self.default_scale if scale is None else scale
        poly = self.encoder.encode_poly(self.basis_at(level), values, scale)
        return Plaintext(poly, scale)

    def encrypt(self, sk: SecretKey, plaintext: Plaintext) -> Ciphertext:
        """Symmetric encryption: ct = (-a*s + m + e, a)."""
        basis = plaintext.poly.basis
        degree = self.params.degree
        a = RnsPoly.uniform_random(basis, degree, self.rng, EVAL)
        e = error_poly(basis, degree, self.rng, self.params.error_sigma)
        s = sk.poly(basis)
        c0 = plaintext.poly.to_eval() + e - a * s
        ct = Ciphertext(c0, a, plaintext.scale)
        if self.policy.track_noise:
            from repro.fhe.noise import NoiseBudget  # deferred: noise imports us

            ct.budget = NoiseBudget(
                degree=degree,
                modulus_bits_per_level=self.params.modulus_bits,
                levels=ct.level, sigma=self.params.error_sigma,
            )
        return self.seal(ct) if self.policy.checksums else ct

    def encrypt_values(self, sk: SecretKey, values,
                       level: int | None = None) -> Ciphertext:
        return self.encrypt(sk, self.encode(values, level))

    def decrypt(self, sk: SecretKey, ct: Ciphertext) -> np.ndarray:
        """Decrypt to complex slot values."""
        if self.policy.checksums:
            self.verify_integrity(ct, "decrypt operand")
        s = sk.poly(ct.basis)
        m = (ct.c0 + ct.c1 * s).to_coeff()
        return self.encoder.decode(m.to_integers(), ct.scale)

    def decrypt_poly(self, sk: SecretKey, ct: Ciphertext) -> RnsPoly:
        s = sk.poly(ct.basis)
        return (ct.c0 + ct.c1 * s).to_coeff()

    # -- additive operations ---------------------------------------------------

    def _check_add(self, a: Ciphertext, b) -> None:
        check_scale_match(a, b, "add", _SCALE_TOLERANCE)

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        check_same_basis(a, b, "add")
        self._check_add(a, b)
        out = Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale)
        carried = self._carry_seal(out, a, b, 1)
        return self._finish(out, "add", a, b, seal=not carried)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        check_same_basis(a, b, "sub")
        self._check_add(a, b)
        out = Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale)
        carried = self._carry_seal(out, a, b, -1)
        return self._finish(out, "add", a, b, seal=not carried)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return self._finish(Ciphertext(-a.c0, -a.c1, a.scale), "copy", a)

    def add_plain(self, a: Ciphertext, pt: Plaintext) -> Ciphertext:
        if pt.poly.basis != a.basis:
            raise LevelMismatchError(
                "plaintext encoded at a different level than the "
                "ciphertext; re-encode at the ciphertext's level",
                ct_level=a.level, pt_level=pt.level,
            )
        self._check_add(a, pt)
        out = Ciphertext(a.c0 + pt.poly.to_eval(), a.c1.copy(), a.scale)
        return self._finish(out, "add", a)

    def add_scalar(self, a: Ciphertext, value: complex) -> Ciphertext:
        pt = self.encode([value], level=a.level, scale=a.scale)
        return self.add_plain(a, pt)

    # -- multiplicative operations ---------------------------------------------

    def mul_plain(self, a: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Ciphertext x plaintext; scales multiply, no keyswitch needed."""
        if pt.poly.basis != a.basis:
            raise LevelMismatchError(
                "plaintext encoded at a different level than the "
                "ciphertext; re-encode at the ciphertext's level",
                ct_level=a.level, pt_level=pt.level,
            )
        p = pt.poly.to_eval()
        out = Ciphertext(a.c0 * p, a.c1 * p, a.scale * pt.scale)
        return self._finish(out, "mul_plain", a)

    def mul_scalar(self, a: Ciphertext, value: complex,
                   scale: float | None = None) -> Ciphertext:
        """Multiply by a scalar; the default encoding scale is the level's
        last prime, so a following rescale leaves ``a.scale`` unchanged."""
        scale = float(a.basis.moduli[-1]) if scale is None else scale
        pt = self.encode([value], level=a.level, scale=scale)
        return self.mul_plain(a, pt)

    def pmult(self, a: Ciphertext, values,
              result_scale: float | None = None,
              cache: dict | None = None, cache_key=None) -> Ciphertext:
        """Plaintext multiply + rescale with an exactly targeted result scale.

        CKKS scales drift when moduli are not exactly 2**28; summing
        branches of different depth then adds mismatched-scale values.  The
        fix used throughout this library: pick the *encoding* scale of the
        plaintext as ``result_scale * q_last / a.scale`` so the product
        rescales to ``result_scale`` exactly.  The paper's compiler does the
        equivalent bookkeeping when it schedules plaintext operands.

        ``cache``/``cache_key`` let callers that multiply by the same
        operand repeatedly (BSGS diagonals, re-applied bootstrapping
        transforms) memoize the encoded plaintext: the full key includes
        the level and encoding scale, so a hit is exactly the Plaintext a
        fresh encode would produce, and the encoder FFT + forward NTT are
        skipped.
        """
        a = self._ensure_level(a, 2, "pmult")
        if result_scale is None:
            result_scale = a.scale
        q_last = float(a.basis.moduli[-1])
        enc_scale = result_scale * q_last / a.scale
        pt = None
        if cache is not None:
            full_key = (cache_key, a.level, enc_scale)
            pt = cache.get(full_key)
            obs.count("fhe.cache.plaintext.hit" if pt is not None
                      else "fhe.cache.plaintext.miss")
        if pt is None:
            pt = self.encode(values, level=a.level, scale=enc_scale)
            if cache is not None:
                cache[full_key] = pt
        out = self.rescale(self.mul_plain(a, pt))
        # Float bookkeeping may be off by an ulp; pin the declared scale.
        out.scale = result_scale
        return self._finish(out, "pmult", a)

    def pmult_deferred(self, a: Ciphertext, values,
                       result_scale: float | None = None,
                       cache: dict | None = None, cache_key=None) -> Ciphertext:
        """Plaintext multiply *without* the trailing rescale.

        Same targeted-scale encoding as :meth:`pmult`, but the product is
        returned at scale ``result_scale * q_last`` so an accumulator can
        sum many such terms and rescale the sum once - the lazy-rescale
        trick the BSGS inner loop uses.  One rescale per group instead of
        one per diagonal removes almost all of the transform traffic the
        per-term rescales would pay, and rounding once (instead of once
        per term) can only shrink the accumulated rescale error.
        """
        a = self._ensure_level(a, 2, "pmult")
        if result_scale is None:
            result_scale = a.scale
        q_last = float(a.basis.moduli[-1])
        enc_scale = result_scale * q_last / a.scale
        pt = None
        if cache is not None:
            full_key = (cache_key, a.level, enc_scale)
            pt = cache.get(full_key)
            obs.count("fhe.cache.plaintext.hit" if pt is not None
                      else "fhe.cache.plaintext.miss")
        if pt is None:
            pt = self.encode(values, level=a.level, scale=enc_scale)
            if cache is not None:
                cache[full_key] = pt
        out = self.mul_plain(a, pt)
        # Pin the product scale so every deferred term in a sum agrees
        # exactly; the caller's single rescale then lands on result_scale.
        out.scale = result_scale * q_last
        return out

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relin: KeySwitchHint) -> Ciphertext:
        """Full homomorphic multiplication with relinearization.

        (a0 + a1 s)(b0 + b1 s) = d0 + d1 s + d2 s^2; the d2 term is folded
        back to degree one by keyswitching with the s^2 -> s hint.
        """
        a, b = self._prepare_pair(a, b, "multiply")
        check_same_basis(a, b, "multiply")
        if self.policy.checksums:
            self.verify_integrity(a, "multiply operand")
            if b is not a:
                self.verify_integrity(b, "multiply operand")
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        ks0, ks1 = self._apply_hint(d2, relin)
        out = Ciphertext(d0 + ks0, d1 + ks1, a.scale * b.scale)
        return self._finish(out, "multiply", a, b)

    def square(self, a: Ciphertext, relin: KeySwitchHint) -> Ciphertext:
        return self.multiply(a, a, relin)

    def _apply_hint(self, poly: RnsPoly, hint: KeySwitchHint):
        if hint.aux_count:
            aux = self.aux_basis[: hint.aux_count] if hint.aux_count < len(
                self.aux_basis
            ) else self.aux_basis
            return boosted_keyswitch(poly, hint, aux)
        return standard_keyswitch(poly, hint)

    # -- level management -------------------------------------------------------

    def rescale(self, a: Ciphertext) -> Ciphertext:
        """Drop the last prime, dividing the scale by it (trims noise)."""
        a = self._ensure_level(a, 2, "rescale")
        q_last = a.basis.moduli[-1]
        # Both halves share one stacked INTT/NTT pair (see batch_rescale).
        c0, c1 = batch_rescale([a.c0, a.c1])
        out = Ciphertext(c0, c1, a.scale / q_last)
        return self._finish(out, "rescale", a)

    def mod_drop(self, a: Ciphertext, levels: int = 1) -> Ciphertext:
        """Discard trailing primes without dividing (level alignment)."""
        if levels >= a.level:
            raise NoiseBudgetExhaustedError(
                "mod_drop would discard every live prime",
                level=a.level, dropping=levels,
            )
        c0, c1 = a.c0, a.c1
        for _ in range(levels):
            c0 = c0.drop_last_modulus()
            c1 = c1.drop_last_modulus()
        return self._finish(Ciphertext(c0, c1, a.scale), "drop", a)

    def drop_to_level(self, a: Ciphertext, level: int) -> Ciphertext:
        if level > a.level:
            raise LevelMismatchError(
                "cannot raise level by dropping; only bootstrapping "
                "restores levels",
                level=a.level, requested=level,
            )
        if level == a.level:
            return a
        return self.mod_drop(a, a.level - level)

    # -- rotations ---------------------------------------------------------------

    def rotate(self, a: Ciphertext, steps: int,
               hint: KeySwitchHint) -> Ciphertext:
        """Cyclically rotate slots left by ``steps``.

        Applies the automorphism x -> x^(5^steps) to both halves, then
        keyswitches the c1 half back to the original key.
        """
        k = self.rotation_exponent(steps)
        return self._automorphism_and_switch(a, k, hint)

    def conjugate(self, a: Ciphertext, hint: KeySwitchHint) -> Ciphertext:
        """Complex-conjugate every slot (automorphism x -> x^-1)."""
        return self._automorphism_and_switch(a, 2 * self.params.degree - 1, hint)

    def _automorphism_and_switch(self, a, exponent, hint) -> Ciphertext:
        if self.policy.checksums:
            self.verify_integrity(a, "keyswitch operand")
        c0 = a.c0.automorphism(exponent)
        c1 = a.c1.automorphism(exponent)
        ks0, ks1 = self._apply_hint(c1, hint)
        out = Ciphertext(c0 + ks0, ks1, a.scale)
        return self._finish(out, "keyswitch", a)
