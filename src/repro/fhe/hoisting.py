"""Hoisted rotations: many rotations of one ciphertext for the price of
one decomposition.

The dominant cost of a rotation's keyswitch is the ModUp of the input
(INTT + changeRNSBase + NTT of the c1 polynomial).  When the *same*
ciphertext is rotated by many different amounts — every BSGS baby step,
every bootstrapping transform stage — that work is identical across
rotations and can be done once ("hoisted") before the per-rotation
automorphism + hint multiply.  Halevi-Shoup introduced the trick; the
paper's compiler applies it inside its keyswitch pipelines.

Functionally we exploit that the automorphism phi_k commutes with the RNS
digit decomposition: raising c1 once and applying phi_k to the *raised*
digits equals raising phi_k(c1), because the digit split is coefficient-
wise.  Cost accounting: k rotations cost 1 ModUp + k (automorphism +
hint-multiply + ModDown) instead of k of everything.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext
from repro.fhe.keyswitch import KeySwitchHint, digit_bases, mod_down
from repro.fhe.poly import COEFF, EVAL, RnsPoly
from repro.reliability.checksums import limb_checksums, verify_limbs
from repro.reliability.errors import ParameterError


class HoistedRotator:
    """Precomputes the ModUp of a ciphertext's c1 for reuse across rotations.

    Usage::

        rotator = HoistedRotator(ctx, ct, alpha=ctx.params.alpha)
        for steps, hint in rotation_plan:
            out = rotator.rotate(steps, hint)

    When the context's reliability policy asks for checksums, the shared
    raised digits are sealed at construction and re-verified on every
    :meth:`rotate` - they are the hoisted equivalent of an operand
    ciphertext, and a limb fault in them would otherwise silently poison
    *every* rotation of the group.
    """

    def __init__(self, ctx: CkksContext, ct: Ciphertext, alpha: int):
        if alpha < 1:
            raise ParameterError("alpha must be >= 1", alpha=alpha)
        if alpha > len(ctx.aux_basis):
            raise ParameterError(
                f"alpha={alpha} exceeds the special basis: "
                f"context has {len(ctx.aux_basis)} auxiliary primes",
                alpha=alpha,
            )
        self.ctx = ctx
        self.ct = ct
        self.alpha = alpha
        q_level = ct.basis
        aux = ctx.aux_basis[:alpha] if alpha < len(ctx.aux_basis) else ctx.aux_basis
        self.aux = aux
        self.target = q_level.extend(aux)
        if ctx.policy.checksums:
            ctx.verify_integrity(ct, "hoist source")
        # ModUp once: decompose c1 into digits, raise each to Q*P.
        coeff = ct.c1.to_coeff()
        self.raised_digits: list[RnsPoly] = []
        offset = 0
        for digit in digit_bases(q_level, alpha):
            rows = coeff.data[offset: offset + len(digit)]
            offset += len(digit)
            raised = RnsPoly(digit, rows, COEFF).change_basis(self.target)
            self.raised_digits.append(raised)  # kept in COEFF domain
        # Seal carry through the hoist: checksum each raised digit once;
        # every rotation re-verifies before consuming the shared object.
        self.integrity: list[np.ndarray] | None = None
        if ctx.policy.checksums:
            self.integrity = [
                limb_checksums(digit.data, digit.basis.moduli)
                for digit in self.raised_digits
            ]

    def verify_integrity(self) -> None:
        """Check the sealed raised digits; raises FaultDetectedError."""
        if self.integrity is None:
            return
        for i, (digit, reference) in enumerate(
                zip(self.raised_digits, self.integrity)):
            verify_limbs(digit.data, digit.basis.moduli, reference,
                         f"hoisted raised digit {i}")

    def rotate(self, steps: int, hint: KeySwitchHint) -> Ciphertext:
        """One rotation using the shared decomposition."""
        ctx = self.ctx
        self.verify_integrity()
        k = ctx.rotation_exponent(steps)
        # phi_k commutes with the coefficient-wise digit split, so apply it
        # to the raised digits and proceed with the (per-rotation) NTT,
        # hint multiply and ModDown.
        acc0 = RnsPoly.zero(self.target, self.ct.degree, EVAL)
        acc1 = RnsPoly.zero(self.target, self.ct.degree, EVAL)
        for i, raised in enumerate(self.raised_digits):
            permuted = raised.automorphism(k).to_eval()
            b_rows, a_rows = hint.restricted_rows(i, self.target)
            acc0 = acc0 + permuted * RnsPoly(self.target, b_rows, EVAL)
            acc1 = acc1 + permuted * RnsPoly(self.target, a_rows, EVAL)
        ks0 = mod_down(acc0, self.ct.basis, self.aux)
        ks1 = mod_down(acc1, self.ct.basis, self.aux)
        c0 = self.ct.c0.automorphism(k)
        return ctx.seal(Ciphertext(c0 + ks0, ks1, self.ct.scale))


def hoisted_rotations(
    ctx: CkksContext,
    ct: Ciphertext,
    plan: dict[int, KeySwitchHint],
) -> dict[int, Ciphertext]:
    """Rotate ``ct`` by every step in ``plan`` with one shared ModUp."""
    if not plan:
        return {}
    alpha = next(iter(plan.values())).alpha
    rotator = HoistedRotator(ctx, ct, alpha)
    return {steps: rotator.rotate(steps, hint)
            for steps, hint in plan.items()}


def hoisting_savings(level: int, digits: int, rotations: int) -> float:
    """NTT-pass ratio: k separate rotations vs one hoisted group.

    A fused t-digit keyswitch at level L runs ``L + tL + 2a + 2L`` NTT
    passes (ModUp INTT + raise, then ModDown; a = ceil(L/t)).  Hoisting
    runs the ModUp prefix ``L + tL`` once and the per-rotation remainder
    ``2a + 2L`` k times, so the closed form this function returns is::

        separate(L, t, k) = k * (L + t*L + 2*a + 2*L)
        hoisted(L, t, k)  = (L + t*L) + k * (2*a + 2*L)
        ratio = separate / hoisted

    These counts are exactly the cost model's NTT element counts divided
    by N (:func:`repro.core.cost.hoist_modup_cost` plus k times
    :func:`repro.core.cost.hoisted_rotate_keyswitch_cost` against k times
    the keyswitch inside a fused rotate), a correspondence the property
    suite sweeps in ``tests/fhe/test_hoisting.py``.  For t = 1 the ratio
    approaches 6L / 4L = 1.5 as k grows; at k = 1 it is exactly 1 (the
    split is an exact complement, hoisting a singleton is break-even).
    """
    ell = level
    alpha = -(-ell // digits)
    separate = rotations * (ell + digits * ell + 2 * alpha + 2 * ell)
    hoisted = (ell + digits * ell) + rotations * (2 * alpha + 2 * ell)
    return separate / hoisted
