"""RNS polynomials: the data type every FHE operation manipulates.

An :class:`RnsPoly` is a residue matrix of shape (L, N): L residue
polynomials of degree < N, one per modulus of its basis, in either the
coefficient domain or the NTT (evaluation) domain.  This is exactly the
granularity at which CraterLake's vector FUs operate - one residue
polynomial streams through a functional unit in N/E cycles.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.ntt import BatchedNttContext, eval_automorphism_permutation
from repro.fhe.rns import RnsBasis
from repro.reliability.errors import (
    LevelMismatchError,
    NoiseBudgetExhaustedError,
    ParameterError,
)

COEFF = "coeff"
EVAL = "eval"


class RnsPoly:
    """A polynomial in Z_Q[x]/(x^N + 1) stored in RNS form."""

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: RnsBasis, data: np.ndarray, domain: str = COEFF):
        data = np.asarray(data, dtype=np.uint64)
        if data.ndim != 2 or data.shape[0] != len(basis):
            raise ParameterError(
                f"data shape {data.shape} does not match basis of size {len(basis)}"
            )
        if domain not in (COEFF, EVAL):
            raise ParameterError(f"unknown domain {domain!r}")
        self.basis = basis
        self.data = data
        self.domain = domain

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis, degree: int, domain: str = COEFF) -> "RnsPoly":
        return cls(basis, np.zeros((len(basis), degree), dtype=np.uint64), domain)

    @classmethod
    def from_integers(cls, basis: RnsBasis, coeffs, domain: str = COEFF) -> "RnsPoly":
        """Build from signed big-int coefficients (coefficient-domain input)."""
        poly = cls(basis, basis.to_residues(coeffs), COEFF)
        return poly.to_eval() if domain == EVAL else poly

    @classmethod
    def uniform_random(
        cls, basis: RnsBasis, degree: int, rng: np.random.Generator,
        domain: str = EVAL,
    ) -> "RnsPoly":
        """Uniformly random element of R_Q.

        Sampled directly per-residue: choosing each residue uniformly is
        equivalent, by CRT, to sampling the wide coefficient uniformly.
        Sampling in the EVAL domain is also uniform because the NTT is a
        bijection; this is what seeded keyswitch-hint expansion does.
        """
        rows = [
            rng.integers(0, q, size=degree, dtype=np.uint64) for q in basis
        ]
        return cls(basis, np.stack(rows), domain)

    # -- basic queries ----------------------------------------------------

    @property
    def degree(self) -> int:
        return self.data.shape[1]

    @property
    def level(self) -> int:
        """Number of residue polynomials L (the paper's multiplicative budget)."""
        return self.data.shape[0]

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.basis, self.data.copy(), self.domain)

    def __repr__(self) -> str:
        return f"RnsPoly(N={self.degree}, L={self.level}, domain={self.domain})"

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.basis != other.basis:
            raise LevelMismatchError(
                "operands live in different RNS bases",
                left_level=self.level, right_level=other.level,
            )
        if self.domain != other.domain:
            raise ParameterError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )
        if self.degree != other.degree:
            raise ParameterError("degree mismatch",
                                 left=self.degree, right=other.degree)

    # -- domain conversion ------------------------------------------------

    def to_eval(self) -> "RnsPoly":
        if self.domain == EVAL:
            return self
        ntt = BatchedNttContext.get(self.basis.moduli, self.degree)
        return RnsPoly(self.basis, ntt.forward(self.data), EVAL)

    def to_coeff(self) -> "RnsPoly":
        if self.domain == COEFF:
            return self
        ntt = BatchedNttContext.get(self.basis.moduli, self.degree)
        return RnsPoly(self.basis, ntt.inverse(self.data), COEFF)

    # -- ring arithmetic ---------------------------------------------------

    def _moduli_column(self) -> np.ndarray:
        return self.basis.moduli_col

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        q = self._moduli_column()
        # Operands are canonical (< q), so the sum is < 2q and one
        # conditional subtraction - min(w, w - q) with unsigned wraparound -
        # reduces it without a division, to the same value bit for bit.
        w = self.data + other.data
        return RnsPoly(self.basis, np.minimum(w, w - q), self.domain)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        q = self._moduli_column()
        w = self.data + q - other.data
        return RnsPoly(self.basis, np.minimum(w, w - q), self.domain)

    def __neg__(self) -> "RnsPoly":
        q = self._moduli_column()
        w = q - self.data
        return RnsPoly(self.basis, np.minimum(w, w - q), self.domain)

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, RnsPoly):
            self._check_compatible(other)
            if self.domain != EVAL:
                raise ParameterError(
                    "polynomial products require the EVAL domain; call to_eval()"
                )
            q = self._moduli_column()
            return RnsPoly(self.basis, self.data * other.data % q, EVAL)
        return self.scalar_mul(int(other))

    def scalar_mul(self, scalar: int) -> "RnsPoly":
        """Multiply by an integer constant (applied per residue).

        Limb-batched: the scalar's per-limb residues form a column and the
        multiply-reduce is one broadcast expression over the (L, N) matrix.
        """
        q = self.basis.moduli_col
        s = self.basis.scalar_residue_col(scalar)
        return RnsPoly(self.basis, self.data * s % q, self.domain)

    # -- structure operations ----------------------------------------------

    def automorphism(self, k: int) -> "RnsPoly":
        """Apply x -> x^k (k odd), the ring operation behind rotations.

        Coefficient i maps to index i*k mod 2N with a sign flip when the
        product wraps past N.  In the EVAL domain the same map is a pure
        permutation of the evaluation points (the NTT is a bijection, so
        the result is bit-identical to transforming, permuting and
        transforming back) - the zero-NTT path every rotation takes, and
        what the hardware automorphism unit does with two transposes.
        """
        n = self.degree
        if k % 2 == 0:
            raise ParameterError("automorphism exponent must be odd", k=k)
        k %= 2 * n
        if self.domain == EVAL:
            perm = eval_automorphism_permutation(n, k)
            # take() keeps the result C-contiguous (fancy indexing here
            # would hand back an F-ordered buffer) and is measurably
            # faster than self.data[:, perm].
            return RnsPoly(self.basis, self.data.take(perm, axis=1), EVAL)
        poly = self
        idx = np.arange(n, dtype=np.int64) * k % (2 * n)
        sign_flip = idx >= n
        dest = np.where(sign_flip, idx - n, idx)
        out = np.zeros_like(poly.data)
        q = poly._moduli_column()
        out[:, dest] = np.where(sign_flip[None, :], (q - poly.data) % q, poly.data)
        # x^0 never flips; (q - 0) % q is 0 so the formula is safe for zeros.
        return RnsPoly(poly.basis, out, COEFF)

    def drop_last_modulus(self) -> "RnsPoly":
        """Forget the last residue row (used when operands must align)."""
        return RnsPoly(self.basis.drop_last(), self.data[:-1], self.domain)

    def rescale(self) -> "RnsPoly":
        """Divide by the last modulus q_l, rounding: the CKKS rescale.

        Computes (x - [x]_{q_l}) / q_l over the remaining basis.  Requires
        the coefficient-domain residues of the last row, so callers in the
        EVAL domain pay one INTT + (L-1) NTTs, as the hardware does.
        """
        if self.level < 2:
            raise NoiseBudgetExhaustedError(
                "cannot rescale a level-1 polynomial; bootstrap to restore "
                "budget"
            )
        was_eval = self.domain == EVAL
        poly = self.to_coeff() if was_eval else self
        q_last = poly.basis.moduli[-1]
        last_row = poly.data[-1]
        new_basis = poly.basis.drop_last()
        # Centered correction keeps the rounding error at most 1/2.
        centered = last_row.astype(np.int64) - np.int64(q_last) * (
            last_row > np.uint64(q_last // 2)
        )
        # Limb-batched: per-limb q_last inverses are a cached column, the
        # centered correction broadcasts against the (L-1, 1) moduli, and
        # the whole divide-and-round is two vector expressions.
        q_col = new_basis.moduli_col
        inv_col = poly.basis.rescale_inv_col
        corr = np.mod(centered[None, :], q_col.astype(np.int64)).astype(np.uint64)
        out = (poly.data[:-1] + q_col - corr) % q_col * inv_col % q_col
        result = RnsPoly(new_basis, out, COEFF)
        return result.to_eval() if was_eval else result

    def change_basis(self, dest: RnsBasis, exact: bool = False) -> "RnsPoly":
        """changeRNSBase: re-express this polynomial in another basis.

        ``exact=False`` uses the fast conversion (Listing 1 / the CRB unit),
        which may add a small multiple of Q; ``exact=True`` uses big-int CRT.
        Operates on coefficient-domain data, as Listing 1 does (INTT before,
        NTT after).
        """
        was_eval = self.domain == EVAL
        poly = self.to_coeff() if was_eval else self
        if exact:
            data = poly.basis.convert_exact(poly.data, dest)
        else:
            data = poly.basis.convert_approx(poly.data, dest)
        result = RnsPoly(dest, data, COEFF)
        return result.to_eval() if was_eval else result

    def to_integers(self) -> np.ndarray:
        """Centered big-int coefficients (coefficient domain)."""
        return self.basis.to_integers(self.to_coeff().data, centered=True)


def batch_rescale(polys: list[RnsPoly]) -> list[RnsPoly]:
    """Rescale several same-basis polynomials with shared transforms.

    The (L, N) residue matrices are stacked into one (k, L, N) tensor so
    every transform runs as a single batched call, and the arithmetic
    broadcasts across all k polynomials (a ciphertext rescales both
    halves this way).  EVAL-domain inputs additionally take the lazy
    path: only the dropped limb is inverse-transformed and only the
    correction is forward-transformed, instead of round-tripping all L
    limbs.  Bit-exact against per-poly :meth:`RnsPoly.rescale` (which
    tests keep as the reference oracle) by NTT linearity.
    """
    first = polys[0]
    for p in polys[1:]:
        first._check_compatible(p)
    if first.level < 2:
        raise NoiseBudgetExhaustedError(
            "cannot rescale a level-1 polynomial; bootstrap to restore budget"
        )
    was_eval = first.domain == EVAL
    data = np.stack([p.data for p in polys])
    q_last = first.basis.moduli[-1]
    new_basis = first.basis.drop_last()
    if was_eval:
        # Only the last limb needs its coefficients: INTT one row per
        # polynomial, correct in the coefficient domain, NTT the correction
        # back, and subtract in EVAL.  The subtraction and the q_last^{-1}
        # multiply commute with the (linear) NTT modulo each q_i, and a
        # residue's reduced representative is unique, so this is bit-exact
        # against the full INTT -> correct -> NTT round trip while moving
        # half as many rows through the transforms.
        last = BatchedNttContext.get((q_last,), first.degree).inverse(
            data[:, -1:, :]
        )[:, 0, :]
    else:
        last = data[:, -1, :]
    centered = last.astype(np.int64) - np.int64(q_last) * (
        last > np.uint64(q_last // 2)
    )
    q_col = new_basis.moduli_col
    inv_col = first.basis.rescale_inv_col
    corr = np.mod(centered[:, None, :], q_col.astype(np.int64)).astype(np.uint64)
    if was_eval:
        corr = BatchedNttContext.get(new_basis.moduli, first.degree).forward(corr)
    out = (data[:, :-1] + q_col - corr) % q_col * inv_col % q_col
    domain = EVAL if was_eval else COEFF
    return [RnsPoly(new_basis, out[i], domain) for i in range(len(polys))]
