"""RLWE security estimation (table-driven stand-in for the LWE estimator).

The paper uses the LWE estimator of Albrecht et al. [5] to pick (N, logQP)
operating points (Sec. 8).  Running that Sage tool is out of scope here;
instead we encode the standard ternary-secret RLWE security tables (the
Homomorphic Encryption Standard [4] numbers, extended to 80 bits and to
N=128K by the lambda ~ N/log(Q) scaling the paper quotes in Sec. 2.3) and
interpolate.  Only these level choices feed the evaluation, so fidelity to
the published operating points is what matters:

* 80-bit @ N=64K  -> logQP up to ~2900 (the paper's main configuration,
  L=60 q-primes at 28 bits plus 2-digit special primes fits: Sec. 3.1).
* 128-bit @ N=64K -> logQP up to ~1782; forces bootstrapping twice as often
  with 1/2/3-digit keyswitching (Sec. 9.4).
* 200-bit        -> requires N=128K (Sec. 9.4).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.reliability.errors import ParameterError

# max log2(QP) per ring degree at each security level, ternary secret.
# 128/192/256 rows follow the HE Standard; 80-bit and N=131072 rows use the
# lambda ~ c * N / logQP fit through the published points.
_MAX_LOGQ = {
    80: {
        1024: 44, 2048: 88, 4096: 176, 8192: 354,
        16384: 709, 32768: 1420, 65536: 2900, 131072: 5800,
    },
    128: {
        1024: 27, 2048: 54, 4096: 109, 8192: 218,
        16384: 438, 32768: 881, 65536: 1782, 131072: 3564,
    },
    192: {
        1024: 19, 2048: 37, 4096: 75, 8192: 152,
        16384: 305, 32768: 611, 65536: 1230, 131072: 2460,
    },
    256: {
        1024: 14, 2048: 29, 4096: 58, 8192: 118,
        16384: 237, 32768: 476, 65536: 958, 131072: 1916,
    },
}

_LEVELS = sorted(_MAX_LOGQ)


def max_log_q_for_security(degree: int, security: int) -> float:
    """Largest log2(QP) admissible at ``security`` bits for ring degree N.

    Interpolates linearly in security between table rows (e.g. the paper's
    200-bit target sits between the 192- and 256-bit standard rows).
    """
    if degree not in _MAX_LOGQ[128]:
        raise ParameterError(f"no table row for N={degree}")
    if security <= _LEVELS[0]:
        return float(_MAX_LOGQ[_LEVELS[0]][degree])
    if security >= _LEVELS[-1]:
        return float(_MAX_LOGQ[_LEVELS[-1]][degree])
    hi_idx = bisect_left(_LEVELS, security)
    lo, hi = _LEVELS[hi_idx - 1], _LEVELS[hi_idx]
    if security == hi:
        return float(_MAX_LOGQ[hi][degree])
    frac = (security - lo) / (hi - lo)
    q_lo, q_hi = _MAX_LOGQ[lo][degree], _MAX_LOGQ[hi][degree]
    return q_lo + frac * (q_hi - q_lo)


def security_bits(degree: int, log_qp: float) -> float:
    """Estimated security of an (N, logQP) pair, by inverse interpolation."""
    if log_qp <= 0:
        raise ParameterError("logQP must be positive")
    # Security is monotonically decreasing in logQP at fixed N.
    lo_sec, hi_sec = _LEVELS[0], _LEVELS[-1]
    if log_qp >= max_log_q_for_security(degree, lo_sec):
        # Extrapolate below the table with the lambda ~ N/logQP law.
        return lo_sec * max_log_q_for_security(degree, lo_sec) / log_qp
    if log_qp <= max_log_q_for_security(degree, hi_sec):
        return hi_sec * max_log_q_for_security(degree, hi_sec) / log_qp
    # Bisect the interpolated, continuous curve.
    lo, hi = float(lo_sec), float(hi_sec)
    for _ in range(60):
        mid = (lo + hi) / 2
        if max_log_q_for_security(degree, mid) >= log_qp:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


class SecurityEstimator:
    """Helper for picking keyswitching digit schedules at a security target.

    Sec. 3.1: a t-digit keyswitch at level L needs logQP =
    logQ * (1 + 1/t) * (alpha rounding aside); larger t shrinks the special
    basis but grows the hint.  ``digits_for_level`` returns the smallest t
    whose expansion keeps (N, logQP) at the requested security - the rule
    the paper applies ("2-digit keyswitching for L > 52 and 1-digit
    elsewhere" at 80 bits / N=64K).
    """

    def __init__(self, degree: int, security: int, modulus_bits: int = 28,
                 max_digits: int = 4):
        self.degree = degree
        self.security = security
        self.modulus_bits = modulus_bits
        self.max_digits = max_digits
        self.max_log_qp = max_log_q_for_security(degree, security)

    def max_level(self) -> int:
        """Largest usable L (with the best allowed digit count)."""
        level = int(self.max_log_qp // self.modulus_bits)
        while level > 0 and self.digits_for_level(level) is None:
            level -= 1
        return level

    def log_qp(self, level: int, digits: int) -> float:
        """logQP of a t-digit keyswitch at level L (alpha = ceil(L/t))."""
        alpha = -(-level // digits)
        return (level + alpha) * self.modulus_bits

    def digits_for_level(self, level: int) -> int | None:
        """Smallest digit count t that is secure at this level, else None."""
        for digits in range(1, self.max_digits + 1):
            if self.log_qp(level, digits) <= self.max_log_qp:
                return digits
        return None

    def digit_schedule(self, max_level: int) -> dict[int, int]:
        """Digit count to use at every level 1..max_level.

        Raises if some level is insecure even at ``max_digits`` - the signal
        that bootstrapping must happen sooner or N must grow.
        """
        schedule = {}
        for level in range(1, max_level + 1):
            digits = self.digits_for_level(level)
            if digits is None:
                raise ParameterError(
                    f"level {level} insecure at {self.security} bits for "
                    f"N={self.degree} even with {self.max_digits}-digit "
                    "keyswitching"
                )
            schedule[level] = digits
        return schedule


def ciphertext_megabytes(degree: int, level: int, bytes_per_word: float = 3.5) -> float:
    """Size of a (c0, c1) ciphertext in MB; 3.5 B/word packs 28-bit residues."""
    return 2 * degree * level * bytes_per_word / 2**20


def hint_megabytes(degree: int, level: int, digits: int,
                   bytes_per_word: float = 3.5, seeded: bool = True) -> float:
    """Keyswitch hint footprint in MB.

    (t+1) ciphertexts' worth of residues (Sec. 3.1); seeded generation
    (KSHGen) halves what must be stored/moved.
    """
    alpha = -(-level // digits)
    rows = digits * (level + alpha)  # per hint half
    halves = 1 if seeded else 2
    return halves * rows * degree * bytes_per_word / 2**20
