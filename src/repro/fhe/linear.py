"""Homomorphic linear transforms (matrix-vector products on slots).

A dense n x n complex matrix applied to the encrypted slot vector is the
building block of CoeffToSlot/SlotToCoeff in bootstrapping and of the
matrix-vector multiplies in the LSTM/HELR/LoLa benchmarks.  The standard
diagonal (Halevi-Shoup) method is used with baby-step/giant-step (BSGS)
rotation batching:

    M v = sum_d diag_d(M) . rot_d(v)
        = sum_g rot_{g*n1}( sum_b rot_{-g*n1}(diag_{g*n1+b}) . rot_b(v) )

which needs ~2*sqrt(D) rotations for D nonzero diagonals instead of D.
Rotation hints are declared up front (``required_rotations``) so callers -
like the paper's compiler - can generate, reuse and account for each hint.

Real-linear maps (those involving conjugation, which CoeffToSlot needs) are
expressed as z -> A z + B conj(z); :func:`holomorphic_parts` recovers A and
B from any numpy-implemented real-linear function by probing.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext
from repro.fhe.keyswitch import KeySwitchHint
from repro.fhe.polyeval import add_any
from repro.reliability.errors import ParameterError


def holomorphic_parts(fn, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Matrices (A, B) with fn(z) = A z + B conj(z) for real-linear fn.

    Probes fn column by column with e_j and i*e_j.  Any real-linear map on
    C^n decomposes uniquely this way; homomorphically, the B part is applied
    to the conjugated ciphertext.
    """
    out_dim = len(fn(np.zeros(n, dtype=np.complex128) + 0j))
    a = np.empty((out_dim, n), dtype=np.complex128)
    b = np.empty((out_dim, n), dtype=np.complex128)
    for j in range(n):
        e = np.zeros(n, dtype=np.complex128)
        e[j] = 1.0
        f_real = fn(e)
        e[j] = 1.0j
        f_imag = fn(e)
        a[:, j] = (f_real - 1j * f_imag) / 2
        b[:, j] = (f_real + 1j * f_imag) / 2
    return a, b


class LinearTransform:
    """BSGS evaluation of a (square, slot-sized) matrix on a ciphertext.

    ``matrix`` must be n x n where n is the context's slot count.  Zero
    diagonals are skipped, so structured matrices (tridiagonal, butterfly
    stages of the FFT decomposition, convolution-style banded matrices) cost
    proportionally less - the same sparsity the paper's bootstrapping
    decomposition exploits.
    """

    def __init__(self, ctx: CkksContext, matrix: np.ndarray,
                 tol: float = 1e-12, baby_steps: int | None = None):
        n = ctx.params.slots
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (n, n):
            raise ParameterError(f"matrix must be {n}x{n} (full slot count)")
        self.ctx = ctx
        self.n = n
        idx = np.arange(n)
        self.diagonals: dict[int, np.ndarray] = {}
        for d in range(n):
            diag = matrix[idx, (idx + d) % n]
            if np.max(np.abs(diag)) > tol:
                self.diagonals[d] = diag
        if not self.diagonals:
            raise ParameterError("matrix is numerically zero")
        if baby_steps is None:
            # Power of two near sqrt(D) balances baby/giant rotation counts.
            d_count = len(self.diagonals)
            baby_steps = max(
                1, 1 << int(round(np.log2(max(1.0, np.sqrt(d_count)))))
            )
        elif baby_steps < 1 or baby_steps & (baby_steps - 1):
            raise ParameterError("baby_steps must be a power of two",
                                 baby_steps=baby_steps)
        # Noise note: baby-step rotations happen *before* the diagonal
        # multiplication, so their keyswitch noise is attenuated by the
        # (typically small) matrix entries; giant-step rotations act on the
        # accumulated sums at full weight.  Noise-critical callers
        # (CoeffToSlot in bootstrapping) therefore pass a large baby_steps.
        self.n1 = baby_steps
        self.groups: dict[int, list[int]] = {}
        for d in self.diagonals:
            self.groups.setdefault(d // self.n1 * self.n1, []).append(d)
        # The giant-step pre-rotation of each diagonal is fixed by d, so
        # roll once here; and the encoded plaintext each application
        # multiplies by depends only on (d, level, encoding scale), so
        # repeated applications (every bootstrap reuses its CoeffToSlot /
        # SlotToCoeff matrices) hit this cache instead of re-running the
        # encoder FFT and a forward NTT per diagonal.
        self._rolled = {
            d: np.roll(diag, d // self.n1 * self.n1)
            for d, diag in self.diagonals.items()
        }
        self._pt_cache: dict[tuple, object] = {}

    def required_rotations(self) -> set[int]:
        """Rotation steps whose hints :meth:`apply` will need."""
        steps = {d % self.n1 for d in self.diagonals}
        steps |= set(self.groups)
        steps.discard(0)
        return steps

    def rotation_count(self) -> int:
        """Number of keyswitches one application performs (for cost checks)."""
        babies = {d % self.n1 for d in self.diagonals} - {0}
        giants = set(self.groups) - {0}
        return len(babies) + len(giants)

    def apply(
        self,
        ct: Ciphertext,
        rotation_hints: dict[int, KeySwitchHint],
        result_scale: float | None = None,
    ) -> Ciphertext:
        """Homomorphically compute matrix @ slots(ct); costs one level."""
        ctx = self.ctx
        if result_scale is None:
            result_scale = ct.scale
        rotated: dict[int, Ciphertext] = {0: ct}
        for b in sorted({d % self.n1 for d in self.diagonals}):
            if b not in rotated:
                rotated[b] = ctx.rotate(ct, b, rotation_hints[b])
        total = None
        for g, dlist in sorted(self.groups.items()):
            # Lazy rescale: every diagonal product is accumulated at scale
            # result_scale * q_last and the *sum* is rescaled once, so a
            # group of k diagonals pays one rescale instead of k.
            inner = None
            for d in sorted(dlist):
                term = ctx.pmult_deferred(rotated[d % self.n1],
                                          self._rolled[d], result_scale,
                                          cache=self._pt_cache, cache_key=d)
                inner = add_any(ctx, inner, term)
            inner = ctx.rescale(inner)
            inner.scale = result_scale
            if g:
                inner = ctx.rotate(inner, g, rotation_hints[g])
            total = add_any(ctx, total, inner)
        return total


class RealLinearTransform:
    """z -> A z + B conj(z): a conjugation-aware pair of LinearTransforms.

    This is the exact shape of the CoeffToSlot and SlotToCoeff maps: they
    are real-linear but not complex-linear, so one branch runs on the
    conjugated ciphertext (one extra keyswitch, as the paper's bootstrap
    op counts include).
    """

    def __init__(self, ctx: CkksContext, fn_or_parts, tol: float = 1e-12,
                 baby_steps: int | None = None):
        if callable(fn_or_parts):
            a, b = holomorphic_parts(fn_or_parts, ctx.params.slots)
        else:
            a, b = fn_or_parts
        self.ctx = ctx
        self.a_part = (
            None if _is_zero(a, tol) else LinearTransform(ctx, a, tol, baby_steps)
        )
        self.b_part = (
            None if _is_zero(b, tol) else LinearTransform(ctx, b, tol, baby_steps)
        )
        if self.a_part is None and self.b_part is None:
            raise ParameterError("transform is numerically zero")

    def required_rotations(self) -> set[int]:
        steps = set()
        for part in (self.a_part, self.b_part):
            if part is not None:
                steps |= part.required_rotations()
        return steps

    def needs_conjugation(self) -> bool:
        return self.b_part is not None

    def apply(
        self,
        ct: Ciphertext,
        rotation_hints: dict[int, KeySwitchHint],
        conj_hint: KeySwitchHint | None = None,
        result_scale: float | None = None,
    ) -> Ciphertext:
        ctx = self.ctx
        if result_scale is None:
            result_scale = ct.scale
        total = None
        if self.a_part is not None:
            total = self.a_part.apply(ct, rotation_hints, result_scale)
        if self.b_part is not None:
            if conj_hint is None:
                raise ParameterError("transform needs a conjugation hint")
            conj_ct = ctx.conjugate(ct, conj_hint)
            total = add_any(
                ctx, total, self.b_part.apply(conj_ct, rotation_hints, result_scale)
            )
        return total


def _is_zero(matrix: np.ndarray, tol: float) -> bool:
    return bool(np.max(np.abs(matrix)) <= tol)
