"""NTT-friendly prime generation.

CraterLake stores every ciphertext polynomial in the residue number system
(RNS), so the wide ciphertext modulus Q is a product of narrow primes.  The
hardware fixes the residue width to 28 bits (Sec. 5.5): narrower residues
would not leave enough NTT-friendly primes for the 2*Lmax = 120 moduli that
deep benchmarks need.  A prime q is NTT-friendly for ring degree N when
q = 1 (mod 2N), which guarantees a primitive 2N-th root of unity mod q and
therefore a negacyclic NTT over Z_q[x]/(x^N + 1).
"""

from __future__ import annotations

from functools import lru_cache

from repro.reliability.errors import ParameterError

# Deterministic Miller-Rabin witness set, valid for all n < 3.3 * 10^24,
# which covers every modulus this library can represent (< 2^64).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_prime(n: int) -> bool:
    """Deterministic primality test for n < 3.3e24 (Miller-Rabin)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_primes(count: int, bits: int, ring_degree: int) -> list[int]:
    """Return ``count`` distinct primes q = 1 (mod 2N), each just below 2**bits.

    Primes are returned in decreasing order starting from the largest
    candidate below ``2**bits``.  Keeping all moduli close to the same power
    of two keeps the CKKS rescaling error small (each rescale divides the
    scale by one modulus, so moduli should approximate the scale).

    Raises ``ValueError`` if the congruence class is too sparse to supply
    ``count`` primes of the requested width, mirroring the paper's
    observation that 28 bits is the narrowest width with enough primes for
    2*Lmax = 120 moduli at N = 64K.
    """
    if count <= 0:
        raise ParameterError("count must be positive", count=count)
    if ring_degree & (ring_degree - 1):
        raise ParameterError("ring_degree must be a power of two",
                             ring_degree=ring_degree)
    if bits < 8 or bits > 62:
        raise ParameterError("bits must be in [8, 62]", bits=bits)
    step = 2 * ring_degree
    if (1 << bits) <= step:
        raise ParameterError("2**bits must exceed 2N to admit q = 1 mod 2N")
    primes: list[int] = []
    # Largest value < 2**bits congruent to 1 mod 2N.
    candidate = ((1 << bits) - 2) // step * step + 1
    floor = 1 << (bits - 1)
    while len(primes) < count and candidate > floor:
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ParameterError(
            f"only {len(primes)} NTT-friendly {bits}-bit primes exist for "
            f"N={ring_degree}; {count} requested"
        )
    return primes


@lru_cache(maxsize=None)
def _factorize(n: int) -> tuple[int, ...]:
    """Distinct prime factors of n (trial division; n - 1 of a 28-bit prime)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return tuple(factors)


def primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of Z_q (q prime)."""
    order = q - 1
    factors = _factorize(order)
    g = 2
    while True:
        if all(pow(g, order // f, q) != 1 for f in factors):
            return g
        g += 1


@lru_cache(maxsize=None)
def root_of_unity(q: int, order: int) -> int:
    """A primitive ``order``-th root of unity modulo prime q.

    Requires order | q - 1.  For the negacyclic NTT we use order = 2N, whose
    existence is exactly the NTT-friendliness condition.
    """
    if (q - 1) % order != 0:
        raise ParameterError(f"{order} does not divide q - 1 = {q - 1}")
    g = primitive_root(q)
    root = pow(g, (q - 1) // order, q)
    # Sanity: root must have exact multiplicative order ``order``.
    if order % 2 == 0 and pow(root, order // 2, q) == 1:
        raise ArithmeticError("root has smaller order than requested")
    return root
