"""Noise-budget estimation: the bookkeeping behind Fig. 2.

CKKS noise is what bounds multiplicative depth: every operation adds or
amplifies error, rescaling trades modulus for noise headroom, and when the
chain is exhausted only bootstrapping restores budget.  This module
provides

* :func:`measure_noise_bits` - the *ground truth*: given the secret key,
  the actual integer-domain error of a ciphertext relative to a reference
  plaintext (what a library developer uses to validate parameters);
* :class:`NoiseBudget` - a static estimator tracking worst-case noise bits
  through a computation, in the style of library parameter planners.  The
  simulator does not need it (levels are tracked structurally), but users
  sizing their own programs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext, SecretKey


def measure_noise_bits(ctx: CkksContext, sk: SecretKey, ct: Ciphertext,
                       reference) -> float:
    """log2 of the max integer-domain error vs the expected slot values."""
    expected = ctx.encode(np.asarray(reference), level=ct.level,
                          scale=ct.scale)
    actual = ctx.decrypt_poly(sk, ct)
    diff = actual - expected.poly.to_coeff()
    mags = np.array([abs(int(v)) for v in diff.to_integers()], dtype=float)
    return float(log2(mags.max() + 1))


def budget_bits(ct: Ciphertext) -> float:
    """Remaining headroom: log2(Q) - log2(scale) for the live basis."""
    return ct.basis.log_modulus - log2(ct.scale)


@dataclass
class NoiseBudget:
    """Worst-case noise tracker for parameter planning (Fig. 2's curve).

    Tracks the estimated error magnitude (in bits, integer domain) and the
    live modulus; ``headroom`` hitting zero means decryption failure - the
    moment bootstrapping becomes mandatory.
    """

    degree: int
    modulus_bits_per_level: int
    levels: int
    sigma: float = 3.2
    noise_bits: float = 0.0

    def __post_init__(self):
        if self.noise_bits == 0.0:
            # Fresh encryption noise ~ sigma * sqrt(N)-ish.
            self.noise_bits = log2(8 * self.sigma * sqrt(self.degree))

    @property
    def log_q(self) -> float:
        return self.levels * self.modulus_bits_per_level

    @property
    def headroom_bits(self) -> float:
        return max(0.0, self.log_q - self.noise_bits)

    def multiply(self, scale_bits: float | None = None) -> "NoiseBudget":
        """ct x ct multiply + rescale: noise grows by ~scale_bits' worth of
        message energy, then one level is spent."""
        scale_bits = scale_bits or self.modulus_bits_per_level
        if self.levels <= 1:
            raise ValueError("budget exhausted: bootstrap required")
        # Multiplication roughly doubles relative error and rescale trims
        # modulus; worst case noise after rescale ~ old + keyswitch floor.
        self.noise_bits = max(self.noise_bits + 1,
                              log2(sqrt(self.degree) * self.sigma * 8))
        self.levels -= 1
        return self

    def rotate(self) -> "NoiseBudget":
        """Rotation: additive keyswitch noise, no level spent."""
        ks = log2(sqrt(self.degree) * self.sigma * 8)
        self.noise_bits = max(self.noise_bits, ks) + 0.1
        return self

    def depth_capacity(self) -> int:
        """How many more multiplies fit before exhaustion."""
        return max(0, self.levels - 1)

    def trace(self, multiplies: int) -> list[float]:
        """Fig. 2-style budget-over-time series for ``multiplies`` ops."""
        out = [self.headroom_bits]
        for _ in range(multiplies):
            if self.levels <= 1:
                break
            self.multiply()
            out.append(self.headroom_bits)
        return out
